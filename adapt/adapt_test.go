package adapt_test

import (
	"math"
	"testing"

	"prefcover"
	"prefcover/adapt"
	"prefcover/clickstream"
	"prefcover/synth"
)

// iphoneSessions is the paper's Figure 3 clickstream through the public
// packages.
func iphoneSessions() *clickstream.Store {
	return clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "silver", Clicks: []string{"gold"}},
		{ID: "s2", Purchase: "silver", Clicks: []string{"spacegray"}},
		{ID: "s3", Purchase: "spacegray"},
		{ID: "s4", Purchase: "spacegray", Clicks: []string{"silver"}},
		{ID: "s5", Purchase: "gold", Clicks: []string{"spacegray"}},
	})
}

func TestPublicBuildGraph(t *testing.T) {
	g, rep, err := adapt.BuildGraph(iphoneSessions(), adapt.Options{Variant: prefcover.Normalized})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 4 {
		t.Fatalf("graph shape: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if rep.PurchaseSessions != 5 {
		t.Errorf("report = %+v", rep)
	}
	silver, _ := g.Lookup("silver")
	if w := g.NodeWeight(silver); math.Abs(w-0.4) > 1e-9 {
		t.Errorf("W(silver) = %g", w)
	}
}

func TestPipelineForcedVariant(t *testing.T) {
	v := prefcover.Normalized
	p := &adapt.Pipeline{Variant: &v, K: 1}
	res, err := p.Run(iphoneSessions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != prefcover.Normalized || !res.VariantConfident {
		t.Errorf("variant = %v confident=%v", res.Variant, res.VariantConfident)
	}
	if len(res.Solution.Order) != 1 {
		t.Fatalf("order = %v", res.Solution.Order)
	}
	// SpaceGray covers itself (0.4), half of silver's requests (0.2), and
	// all of gold's (0.2): the best single retain.
	if got := res.Graph.Label(res.Solution.Order[0]); got != "spacegray" {
		t.Errorf("retained %s, want spacegray", got)
	}
	if math.Abs(res.Solution.Cover-0.8) > 1e-9 {
		t.Errorf("cover = %g, want 0.8", res.Solution.Cover)
	}
}

func TestPipelineAutoVariantNormalized(t *testing.T) {
	// Figure 3 data is single-alternative: the pipeline must pick
	// Normalized and rebuild with fractional counting.
	p := &adapt.Pipeline{K: 1}
	res, err := p.Run(iphoneSessions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != prefcover.Normalized || !res.VariantConfident {
		t.Errorf("variant = %v confident=%v", res.Variant, res.VariantConfident)
	}
	if !res.Report.FitnessComputed {
		t.Error("fitness stats lost in the rebuild")
	}
	if res.Report.SingleAlternativeShare != 1 {
		t.Errorf("share = %g", res.Report.SingleAlternativeShare)
	}
}

func TestPipelineAutoVariantIndependent(t *testing.T) {
	cat, err := synth.NewCatalog(synth.CatalogSpec{Items: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sessions, err := synth.GenerateSessions(cat, synth.SessionSpec{
		Sessions: 3000, PurchaseRate: 1, Regime: synth.RegimeIndependent, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &adapt.Pipeline{K: 10, Lazy: true}
	res, err := p.Run(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != prefcover.Independent {
		t.Errorf("variant = %v, want Independent", res.Variant)
	}
	if len(res.Solution.Order) != 10 {
		t.Errorf("retained %d items", len(res.Solution.Order))
	}
}

func TestPipelineThresholdMode(t *testing.T) {
	v := prefcover.Independent
	p := &adapt.Pipeline{Variant: &v, Threshold: 0.6}
	res, err := p.Run(iphoneSessions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.Reached || res.Solution.Cover < 0.6-1e-9 {
		t.Errorf("threshold run: reached=%v cover=%g", res.Solution.Reached, res.Solution.Cover)
	}
}

// nonRewindable wraps a store hiding its Reset method.
type nonRewindable struct{ src clickstream.Source }

func (n *nonRewindable) Next() (*clickstream.Session, error) { return n.src.Next() }

func TestPipelineNonRewindableError(t *testing.T) {
	p := &adapt.Pipeline{K: 1}
	_, err := p.Run(&nonRewindable{src: iphoneSessions()})
	if err == nil {
		t.Fatal("want NotRewindableError")
	}
	if _, ok := err.(*adapt.NotRewindableError); !ok {
		t.Errorf("error type = %T", err)
	}
}

func TestSimilarityAugmentationFacade(t *testing.T) {
	// A behavioral graph where the new TV has no alternatives yet.
	b := prefcover.NewBuilder(0, 0)
	b.AddLabeledNode("tv-old", 0.7)
	b.AddLabeledNode("tv-new", 0.3)
	b.AddLabeledEdge("tv-old", "tv-new", 0.4)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := adapt.BuildSimilarityIndex([]adapt.SimilarityDoc{
		{Label: "tv-old", Text: "42 inch LED television wall mount"},
		{Label: "tv-new", Text: "43 inch LED television wall mount"},
	}, adapt.SimilarityIndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := adapt.AugmentWithSimilarity(g, ix, adapt.AugmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdgesAdded == 0 {
		t.Fatal("no edges added")
	}
	newTV, _ := out.Lookup("tv-new")
	oldTV, _ := out.Lookup("tv-old")
	if _, ok := out.EdgeWeight(newTV, oldTV); !ok {
		t.Error("tv-new should gain tv-old as an alternative")
	}
}

func TestThresholdConstants(t *testing.T) {
	if adapt.NormalizedFitThreshold != 0.90 || adapt.IndependentFitThreshold != 0.10 {
		t.Error("paper thresholds changed")
	}
}
