package adapt_test

import (
	"fmt"
	"log"

	"prefcover/adapt"
	"prefcover/clickstream"
)

// ExamplePipeline_Run runs the full Figure 2 flow on the paper's Figure 3
// clickstream: adapt, auto-select the variant, solve.
func ExamplePipeline_Run() {
	sessions := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "silver", Clicks: []string{"gold"}},
		{ID: "s2", Purchase: "silver", Clicks: []string{"spacegray"}},
		{ID: "s3", Purchase: "spacegray"},
		{ID: "s4", Purchase: "spacegray", Clicks: []string{"silver"}},
		{ID: "s5", Purchase: "gold", Clicks: []string{"spacegray"}},
	})
	pipeline := &adapt.Pipeline{K: 1}
	res, err := pipeline.Run(sessions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("variant: %s (confident %v)\n", res.Variant, res.VariantConfident)
	fmt.Printf("keep: %s\n", res.Graph.Label(res.Solution.Order[0]))
	fmt.Printf("cover: %.0f%%\n", 100*res.Solution.Cover)
	// Output:
	// variant: normalized (confident true)
	// keep: spacegray
	// cover: 80%
}
