// Package adapt is the public Data Adaptation Engine (paper Section 5.2,
// Figure 2): it turns raw clickstreams into preference graphs and
// recommends the Preference Cover variant that fits the data, using the
// paper's two rules — the >= 90% single-alternative share for Normalized
// and the < 0.1 average pairwise normalized mutual information for
// Independent.
package adapt

import (
	"context"

	"prefcover"
	"prefcover/clickstream"
	iadapt "prefcover/internal/adapt"
)

// Options configures BuildGraph.
type Options = iadapt.Options

// Report describes the constructed graph and, when Options.ComputeFitness
// is set, the variant-recommendation statistics.
type Report = iadapt.Report

// Decision thresholds from paper Section 5.2.
const (
	// NormalizedFitThreshold is the minimum single-alternative session
	// share for the Normalized variant to fit.
	NormalizedFitThreshold = iadapt.NormalizedFitThreshold
	// IndependentFitThreshold is the maximum average pairwise NMI for the
	// Independent variant to fit.
	IndependentFitThreshold = iadapt.IndependentFitThreshold
)

// BuildGraph drains the clickstream and constructs a preference graph:
// node weights are purchase shares, an edge A->B carries the fraction of
// A-purchase sessions that clicked B (fractional 1/t counting under
// Normalized), and browse-only sessions are ignored.
func BuildGraph(src clickstream.Source, opts Options) (*prefcover.Graph, *Report, error) {
	return iadapt.BuildGraph(src, opts)
}

// Pipeline is the end-to-end flow of the paper's Figure 2: adapt the raw
// data, choose the variant, run the solver, and return everything a
// curation decision needs.
type Pipeline struct {
	// Variant forces a variant; when nil the recommendation rules decide
	// (falling back to Independent when neither rule fires).
	Variant *prefcover.Variant
	// K and Threshold select budget or minimization mode, as in
	// prefcover.Options.
	K         int
	Threshold float64
	// Workers and Lazy tune the solver.
	Workers int
	Lazy    bool
	// MinPurchases filters noise edges from rarely purchased items.
	MinPurchases int
	// Progress, if non-nil, receives the solver's per-iteration
	// ProgressEvent stream (see prefcover.Options.Progress).
	Progress func(prefcover.ProgressEvent)
}

// PipelineResult carries every artifact of a Pipeline run.
type PipelineResult struct {
	Graph   *prefcover.Graph
	Report  *Report
	Variant prefcover.Variant
	// VariantConfident is false when neither fitness rule fired and the
	// Independent default was used.
	VariantConfident bool
	Solution         *prefcover.Solution
}

// Run executes the pipeline on the clickstream.
func (p *Pipeline) Run(src clickstream.Source) (*PipelineResult, error) {
	return p.RunContext(context.Background(), src)
}

// RunContext is Run with cancellation: both the adaptation drain and the
// solver poll ctx, so a deadline bounds the whole Figure 2 flow. On
// cancellation the error is ctx.Err(); no partial result is returned
// (unlike prefcover.SolveContext, the adapt stage has no useful prefix).
func (p *Pipeline) RunContext(ctx context.Context, src clickstream.Source) (*PipelineResult, error) {
	opts := Options{
		MinPurchases:   p.MinPurchases,
		ComputeFitness: p.Variant == nil,
		Ctx:            ctx,
	}
	if p.Variant != nil {
		opts.Variant = *p.Variant
	}
	g, rep, err := BuildGraph(src, opts)
	if err != nil {
		return nil, err
	}
	res := &PipelineResult{Graph: g, Report: rep}
	if p.Variant != nil {
		res.Variant, res.VariantConfident = *p.Variant, true
	} else {
		res.Variant, res.VariantConfident = rep.RecommendVariant()
		if res.Variant == prefcover.Normalized && opts.Variant != prefcover.Normalized {
			// The graph was accumulated with whole-click counting; rebuild
			// with the Normalized fractional counting the recommendation
			// calls for. Sources backed by a Store can be rewound; other
			// sources cannot, so surface the requirement.
			rewinder, ok := src.(interface{ Reset() })
			if !ok {
				return nil, &NotRewindableError{}
			}
			rewinder.Reset()
			firstPass := rep
			g, rep, err = BuildGraph(src, Options{
				Variant:      prefcover.Normalized,
				MinPurchases: p.MinPurchases,
				Ctx:          ctx,
			})
			if err != nil {
				return nil, err
			}
			// Keep the fitness statistics from the first pass; the rebuild
			// skipped computing them.
			rep.SingleAlternativeShare = firstPass.SingleAlternativeShare
			rep.MeanPairwiseNMI = firstPass.MeanPairwiseNMI
			rep.FitnessComputed = firstPass.FitnessComputed
			res.Graph, res.Report = g, rep
		}
	}
	res.Solution, err = prefcover.SolveContext(ctx, g, prefcover.Options{
		Variant:   res.Variant,
		K:         p.K,
		Threshold: p.Threshold,
		Workers:   p.Workers,
		Lazy:      p.Lazy,
		Progress:  p.Progress,
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// NotRewindableError reports that variant auto-selection needed a second
// pass over a non-rewindable source; buffer the stream into a
// clickstream.Store (clickstream.ReadAll) or force a Variant.
type NotRewindableError struct{}

// Error implements error.
func (*NotRewindableError) Error() string {
	return "adapt: variant auto-selection requires a rewindable source (buffer with clickstream.ReadAll or set Pipeline.Variant)"
}
