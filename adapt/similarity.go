package adapt

import (
	"prefcover"
	isim "prefcover/internal/similarity"
)

// SimilarityDoc is one item's textual description for the cold-start
// similarity index (label must match the graph's node label).
type SimilarityDoc = isim.Doc

// SimilarityIndex is a TF-IDF cosine index over item texts.
type SimilarityIndex = isim.Index

// SimilarityIndexOptions tunes BuildSimilarityIndex.
type SimilarityIndexOptions = isim.IndexOptions

// SimilarityMatch is one similar item with its cosine score.
type SimilarityMatch = isim.Match

// AugmentOptions tunes AugmentWithSimilarity.
type AugmentOptions = isim.AugmentOptions

// AugmentReport describes what an augmentation changed.
type AugmentReport = isim.AugmentReport

// BuildSimilarityIndex constructs the index from item texts.
func BuildSimilarityIndex(docs []SimilarityDoc, opts SimilarityIndexOptions) (*SimilarityIndex, error) {
	return isim.BuildIndex(docs, opts)
}

// AugmentWithSimilarity adds similarity-derived alternative edges to items
// with little behavioral signal — the approach the paper's footnote 4
// sketches for approximating edge weights from semantic similarity.
// Behavioral edges are never modified and Normalized feasibility is
// preserved.
func AugmentWithSimilarity(g *prefcover.Graph, ix *SimilarityIndex, opts AugmentOptions) (*prefcover.Graph, *AugmentReport, error) {
	return isim.Augment(g, ix, opts)
}
