// Package budgeted is the public surface of the revenue/storage extension
// (the paper's stated future work): maximize expected covered revenue
// subject to a storage-cost budget. See the internal package documentation
// for the algorithm and its (1-1/e)/2 guarantee.
package budgeted

import (
	"prefcover"
	ibudgeted "prefcover/internal/budgeted"
)

// Spec configures Solve: variant, optional per-item Revenue and Cost
// vectors (nil means all-ones), and the Budget capacity.
type Spec = ibudgeted.Spec

// Result is the budgeted solution: selection order, realized gains, total
// expected covered revenue, cost used, and the winning strategy.
type Result = ibudgeted.Result

// Solve runs the budgeted greedy scheme (better of plain-gain and
// gain/cost-ratio lazy greedy, and the best single affordable item).
func Solve(g *prefcover.Graph, spec Spec) (*Result, error) {
	return ibudgeted.Solve(g, spec)
}

// SolvePartialEnum is the partial-enumeration variant (Khuller-Moss-Naor /
// Sviridenko): every feasible seed of size <= 3 is completed greedily,
// lifting the guarantee to (1-1/e) at O(n^3) cost — for small catalogs
// only. maxSeeds > 0 rejects runs that would exceed that many seed
// completions.
func SolvePartialEnum(g *prefcover.Graph, spec Spec, maxSeeds int64) (*Result, error) {
	return ibudgeted.SolvePartialEnum(g, spec, maxSeeds)
}
