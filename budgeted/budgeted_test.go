package budgeted_test

import (
	"math"
	"testing"

	"prefcover"
	"prefcover/budgeted"
)

func TestPublicSurface(t *testing.T) {
	b := prefcover.NewBuilder(3, 1)
	b.AddLabeledNode("hub", 0.5)
	b.AddLabeledNode("spoke1", 0.3)
	b.AddLabeledNode("spoke2", 0.2)
	b.AddLabeledEdge("spoke1", "hub", 0.9)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := budgeted.Solve(g, budgeted.Spec{
		Variant: prefcover.Independent,
		Revenue: []float64{10, 1, 1},
		Cost:    []float64{2, 1, 1},
		Budget:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostUsed > 2+1e-9 {
		t.Errorf("cost used %g", res.CostUsed)
	}
	// Retaining the hub alone yields revenue 10*0.5 + 0.9*1*0.3 = 5.27,
	// far above any cheap pair.
	if len(res.Order) != 1 || res.Order[0] != 0 {
		t.Errorf("order = %v (strategy %s)", res.Order, res.Strategy)
	}
	if math.Abs(res.Revenue-(10*0.5+0.9*0.3)) > 1e-9 {
		t.Errorf("revenue = %g", res.Revenue)
	}
}
