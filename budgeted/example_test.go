package budgeted_test

import (
	"fmt"
	"log"

	"prefcover"
	"prefcover/budgeted"
)

// Example solves a three-item store with one pricey shelf hog: under a
// budget of 2 shelf units the solver prefers the two cheap items whose
// combined demand beats the big one.
func Example() {
	b := prefcover.NewBuilder(3, 0)
	b.AddLabeledNode("fridge", 0.4) // 2 shelf units
	b.AddLabeledNode("kettle", 0.3) // 1 unit
	b.AddLabeledNode("toaster", 0.3)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := budgeted.Solve(g, budgeted.Spec{
		Variant: prefcover.Independent,
		Cost:    []float64{2, 1, 1},
		Budget:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range res.Order {
		fmt.Println(g.Label(v))
	}
	fmt.Printf("revenue %.1f using %.0f of 2 units (%s)\n", res.Revenue, res.CostUsed, res.Strategy)
	// Output:
	// kettle
	// toaster
	// revenue 0.6 using 2 of 2 units (ratio)
}
