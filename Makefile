GO ?= go
FUZZTIME ?= 10s

# Every fuzz target in the repo, as package:Func pairs. go test allows only
# one -fuzz pattern per invocation, so fuzz-short loops over them.
FUZZ_TARGETS := \
	./internal/graph:FuzzReadTSV \
	./internal/graph:FuzzReadBinary \
	./internal/clickstream:FuzzTSVReader \
	./internal/clickstream:FuzzJSONLReader \
	./internal/clickstream:FuzzClickstreamParse \
	./internal/store:FuzzValidateName \
	./internal/jobs:FuzzJobRequestJSON \
	./cmd/prefcover:FuzzGraphImport

.PHONY: all build test test-race fuzz-short bench bench-json vet fmt-check ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fuzz-short:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%:*}; fn=$${t#*:}; \
		echo "--- fuzz $$fn ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run=NONE -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME) $$pkg; \
	done

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

# bench-json snapshots the curated solver kernels into BENCH_solver.json
# (ns/op, allocs/op, git SHA) — the perf trajectory future PRs diff against.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_solver.json

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the pre-merge gate: static checks, full build and tests (including
# the race detector — the jobs/cache/store subsystems are concurrency-heavy),
# plus a smoke run of the benchmark harness (tiny benchtime; result discarded).
ci: vet fmt-check build test test-race
	$(GO) run ./cmd/benchjson -quiet -benchtime 1x \
		-bench '^(BenchmarkGainKernels|BenchmarkFig4aGreedySmall|BenchmarkPublicSolve)$$' \
		-out $(or $(TMPDIR),/tmp)/prefcover-bench-smoke.json
	@echo "ci: all gates passed"
