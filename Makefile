GO ?= go
FUZZTIME ?= 10s

# Seeds for the chaos suite (internal/server's TestChaos*). Three distinct
# seeds so CI exercises three different fault schedules; override with
# CHAOS_SEEDS=... to replay a specific failing schedule.
CHAOS_SEEDS ?= 1,7,1337

# Packages whose test coverage is floored (the resilience layer: silent
# coverage rot here would hollow out the chaos suite's guarantees).
COVER_PKGS := ./internal/retry ./internal/faults
COVER_FLOOR := 70

# Every fuzz target in the repo, as package:Func pairs. go test allows only
# one -fuzz pattern per invocation, so fuzz-short loops over them.
FUZZ_TARGETS := \
	./internal/graph:FuzzReadTSV \
	./internal/graph:FuzzReadBinary \
	./internal/clickstream:FuzzTSVReader \
	./internal/clickstream:FuzzJSONLReader \
	./internal/clickstream:FuzzClickstreamParse \
	./internal/store:FuzzValidateName \
	./internal/jobs:FuzzJobRequestJSON \
	./internal/faults:FuzzFaultSpec \
	./internal/trace:FuzzTraceparent \
	./internal/promtext:FuzzPromText \
	./internal/slo:FuzzSLOSpec \
	./internal/kernel:FuzzSketchRoundTrip \
	./cmd/prefcover:FuzzGraphImport

.PHONY: all build test test-race chaos cover fuzz-short smoke cluster-smoke loadgen loadgen-smoke bench bench-json bench-gate profile vet fmt-check ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...
	$(MAKE) chaos

# chaos runs the end-to-end resilience suites under the race detector across
# $(CHAOS_SEEDS); each seed is a fully reproducible fault schedule. Covers
# the single-node suite (internal/server) and the 3-node gateway cluster
# suite (internal/cluster: replication, failover accounting, the
# cluster-level differential oracle).
chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -count=1 -run '^TestChaos' \
		./internal/server ./internal/cluster

# cover enforces a coverage floor on the resilience packages.
cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | awk '{for (i=1;i<=NF;i++) if ($$i ~ /%$$/) {sub("%","",$$i); print $$i}}'); \
		echo "coverage $$pkg: $$pct%"; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{print (p+0 >= f) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then \
			echo "coverage for $$pkg is $$pct%, below the $(COVER_FLOOR)% floor"; exit 1; fi; \
	done

fuzz-short:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%:*}; fn=$${t#*:}; \
		echo "--- fuzz $$fn ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run=NONE -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME) $$pkg; \
	done

# smoke boots the real prefcoverd binary on an ephemeral port, scrapes
# /metrics and /debug/statusz, validates the Prometheus text format and
# the expected metric families, and checks SIGTERM drains cleanly. The
# SLO half boots a second daemon with a tight availability SLO plus a
# fault injector and watches the ALERTS lifecycle fire and resolve
# through /metrics, /debug/slo, and /debug/faults.
smoke:
	$(GO) test -count=1 -run '^(TestStatuszMetricsSmoke|TestSLOAlertSmoke)$$' ./cmd/prefcoverd

# cluster-smoke boots three real prefcoverd nodes plus a -gateway process,
# pushes a graph through the gateway (R=2 replication), kills the node
# that served a solve, and checks failover keeps answering with the
# identical ordered prefix while the ring rebalances onto the survivors.
cluster-smoke:
	$(GO) test -count=1 -run '^TestClusterSmoke$$' ./cmd/prefcoverd

# loadgen-smoke boots the real prefcoverd and prefcover binaries, fires a
# one-second open-loop burst at the daemon, verifies the recorded
# BENCH_serving.json entry (quantiles, error budget, cache ratio), and
# checks that the request schedule is byte-reproducible per seed.
loadgen-smoke:
	$(GO) test -count=1 -run '^TestLoadgenSmoke$$' ./cmd/prefcover

# loadgen snapshots serving latency into BENCH_serving.json: a 5 s
# open-loop run at 200 rps against an in-process prefcoverd — the serving
# trajectory future PRs diff against (compare BENCH_solver.json).
loadgen:
	$(GO) run ./cmd/prefcover loadgen -preset yc -rps 200 -duration 5s -seed 1 \
		-out BENCH_serving.json

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

# bench-json snapshots the curated solver kernels into BENCH_solver.json
# (ns/op, allocs/op, git SHA) — the perf trajectory future PRs diff against.
# Three repetitions, per-benchmark minima recorded: the same estimator
# bench-gate compares with, so shared-vCPU noise cannot skew the baseline.
bench-json:
	$(GO) run ./cmd/benchjson -count 3 -out BENCH_solver.json

# bench-gate re-runs the gain-kernel benchmarks and fails on regression
# against the committed BENCH_solver.json: >25% ns/op drift or any allocs/op
# growth. Three repetitions, gated on the per-benchmark minimum (transient
# scheduler noise only ever pushes a measurement up); benchtime inherits the
# snapshot's so cold-start amortization matches.
bench-gate:
	$(GO) run ./cmd/benchjson -quiet -gate BENCH_solver.json -tolerance 0.25 \
		-count 3 -bench '^BenchmarkGainKernels$$'

# profile boots the real daemon, drives labeled solves under a
# server-side CPU capture armed through /debug/profilez, and asserts the
# decoded profile carries the solver's pprof labels
# (graph/strategy/endpoint/k_bucket) — the end-to-end check that
# continuous profiling attributes samples to workloads.
profile:
	$(GO) test -count=1 -run '^TestProfileCaptureE2E$$' -v ./cmd/prefcoverd

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# ci is the pre-merge gate: static checks, full build and tests (including
# the race detector — the jobs/cache/store subsystems are concurrency-heavy —
# and the multi-seed chaos suites via test-race), coverage floors on the
# resilience packages, the statusz/metrics daemon smoke test, the cluster
# smoke test (real nodes + gateway, kill-one-node failover), the loadgen
# smoke test (real binaries, real traffic, schedule reproducibility), plus a
# smoke run of the benchmark harness (tiny benchtime; result discarded), and
# the bench-gate regression check of the gain kernels against the committed
# BENCH_solver.json snapshot.
ci: vet fmt-check build test test-race cover smoke cluster-smoke loadgen-smoke
	$(GO) run ./cmd/benchjson -quiet -benchtime 1x \
		-bench '^(BenchmarkGainKernels|BenchmarkFig4aGreedySmall|BenchmarkPublicSolve)$$' \
		-out $(or $(TMPDIR),/tmp)/prefcover-bench-smoke.json
	$(MAKE) bench-gate
	@echo "ci: all gates passed"
