GO ?= go
FUZZTIME ?= 10s

# Every fuzz target in the repo, as package:Func pairs. go test allows only
# one -fuzz pattern per invocation, so fuzz-short loops over them.
FUZZ_TARGETS := \
	./internal/graph:FuzzReadTSV \
	./internal/graph:FuzzReadBinary \
	./internal/clickstream:FuzzTSVReader \
	./internal/clickstream:FuzzJSONLReader \
	./internal/clickstream:FuzzClickstreamParse \
	./cmd/prefcover:FuzzGraphImport

.PHONY: all build test test-race fuzz-short bench vet

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fuzz-short:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%:*}; fn=$${t#*:}; \
		echo "--- fuzz $$fn ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run=NONE -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME) $$pkg; \
	done

bench:
	$(GO) test -bench=. -benchmem -run=NONE .
