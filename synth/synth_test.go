package synth_test

import (
	"math"
	"testing"

	"prefcover"
	"prefcover/adapt"
	"prefcover/synth"
)

func TestFacadeCatalogAndSessions(t *testing.T) {
	cat, err := synth.NewCatalog(synth.CatalogSpec{Items: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 200 {
		t.Fatalf("len = %d", cat.Len())
	}
	store, err := synth.GenerateSessions(cat, synth.SessionSpec{
		Sessions: 500, PurchaseRate: 1, Regime: synth.RegimeIndependent, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, rep, err := adapt.BuildGraph(store, adapt.Options{Variant: prefcover.Independent})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PurchaseSessions != 500 {
		t.Errorf("purchases = %d", rep.PurchaseSessions)
	}
	var sum float64
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		sum += g.NodeWeight(v)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %g", sum)
	}
}

func TestFacadeGenerateGraphAndPresets(t *testing.T) {
	g, err := synth.GenerateGraph(synth.GraphSpec{Nodes: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if len(synth.Presets()) != 4 {
		t.Error("expected 4 presets")
	}
	for _, p := range synth.Presets() {
		if _, _, err := synth.PresetSpecs(p, 0.001, 1); err != nil {
			t.Errorf("%s: %v", p, err)
		}
		if _, err := synth.PresetGraphSpec(p, 0.001, 1); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	// Presets solve end to end through the public API.
	spec, err := synth.PresetGraphSpec(synth.YC, 0.005, 4)
	if err != nil {
		t.Fatal(err)
	}
	yg, err := synth.GenerateGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := prefcover.Solve(yg, prefcover.Options{Variant: prefcover.Independent, K: 10, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Order) != 10 {
		t.Errorf("order = %d", len(sol.Order))
	}
}
