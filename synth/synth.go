// Package synth is the public synthetic-workload surface: structured item
// catalogs, clickstream simulation under either dependency regime, direct
// preference-graph generation, and presets shaped like the paper's Table 2
// datasets (PE, PF, PM, YC). It exists because the paper's evaluation data
// is private (eBay) or an external download (YooChoose); see DESIGN.md for
// the substitution rationale.
package synth

import (
	"prefcover"
	"prefcover/clickstream"
	isynth "prefcover/internal/synth"
)

// CatalogSpec configures NewCatalog (catalog size, category/brand/tier
// structure, Zipf popularity, seed).
type CatalogSpec = isynth.CatalogSpec

// Catalog is an immutable synthetic item catalog with popularity weights.
type Catalog = isynth.Catalog

// Item is one catalog entry.
type Item = isynth.Item

// NewCatalog builds a catalog deterministically from its spec.
func NewCatalog(spec CatalogSpec) (*Catalog, error) { return isynth.NewCatalog(spec) }

// Regime selects the ground-truth dependency structure between alternative
// clicks in simulated sessions.
type Regime = isynth.Regime

// The two regimes, corresponding to the two Preference Cover variants.
const (
	RegimeIndependent       = isynth.RegimeIndependent
	RegimeSingleAlternative = isynth.RegimeSingleAlternative
)

// SessionSpec configures GenerateSessions.
type SessionSpec = isynth.SessionSpec

// GenerateSessions simulates a clickstream over the catalog.
func GenerateSessions(cat *Catalog, spec SessionSpec) (*clickstream.Store, error) {
	return isynth.GenerateSessions(cat, spec)
}

// GraphSpec configures GenerateGraph.
type GraphSpec = isynth.GraphSpec

// GenerateGraph produces a preference graph directly (Zipf popularity,
// Poisson degrees, community-local edges), for workloads where simulating
// sessions first would only add noise.
func GenerateGraph(spec GraphSpec) (*prefcover.Graph, error) { return isynth.GenerateGraph(spec) }

// Preset names one of the paper's Table 2 datasets.
type Preset = isynth.Preset

// The four datasets of Table 2.
const (
	PE = isynth.PE
	PF = isynth.PF
	PM = isynth.PM
	YC = isynth.YC
)

// Presets lists all presets in Table 2 order.
func Presets() []Preset { return isynth.Presets() }

// PresetSpecs returns catalog and session specs matching the preset's
// shape at the given scale in (0, 1].
func PresetSpecs(p Preset, scale float64, seed int64) (CatalogSpec, SessionSpec, error) {
	return isynth.PresetSpecs(p, scale, seed)
}

// PresetGraphSpec returns a direct-graph spec matching the preset at the
// given scale.
func PresetGraphSpec(p Preset, scale float64, seed int64) (GraphSpec, error) {
	return isynth.PresetGraphSpec(p, scale, seed)
}
