module prefcover

go 1.22
