// Package prefcover selects a reduced e-commerce inventory that maximally
// covers consumer demand, implementing the Preference Cover problem of
// Gershtein, Milo and Novgorodov, "Inventory Reduction via Maximal Coverage
// in E-Commerce" (EDBT 2020).
//
// # Model
//
// Consumer preferences are a directed Graph: each item (node) carries its
// purchase probability, and an edge from item A to item B with weight p
// means that when A is unavailable a consumer requesting A buys B instead
// with probability p. Given a budget k, the library picks the k items whose
// retention maximizes the probability that a random request ends in a
// purchase — the cover C(S).
//
// Two Variant values interpret multi-alternative probabilities:
// Independent treats each alternative as an independent chance to save the
// sale; Normalized assumes each consumer accepts at most one alternative
// (per-item outgoing weights then sum to at most 1).
//
// # Usage
//
// Build a graph with a Builder (or adapt one from raw clickstream data with
// the prefcover/adapt package), then call Solve:
//
//	b := prefcover.NewBuilder(0, 0)
//	b.AddLabeledNode("tv-lg-19", 0.6)
//	b.AddLabeledNode("tv-lg-21", 0.4)
//	b.AddLabeledEdge("tv-lg-19", "tv-lg-21", 0.8)
//	g, err := b.Build(prefcover.BuildOptions{})
//	...
//	sol, err := prefcover.Solve(g, prefcover.Options{
//		Variant: prefcover.Independent,
//		K:       1,
//	})
//
// Solve runs the paper's greedy algorithm — (1-1/e)-optimal for
// Independent, max{1-1/e, 1-(1-k/n)^2} for Normalized — and returns the
// retained items in selection order together with per-item coverage
// reports. Setting Options.Threshold instead of K solves the complementary
// minimization problem (smallest set reaching a target cover). Options.Lazy
// and Options.Workers select lazy (CELF) evaluation and goroutine-parallel
// scanning; all strategies return the identical solution.
//
// The package is a facade over the internal implementation; the exported
// names below are the supported, documented surface.
package prefcover

import (
	"context"
	"io"

	"prefcover/internal/baseline"
	"prefcover/internal/cover"
	"prefcover/internal/graph"
	"prefcover/internal/greedy"
)

// Variant selects the probabilistic interpretation of alternative edges.
type Variant = graph.Variant

// The two Preference Cover variants of the paper.
const (
	// Independent assumes alternative suitability events are independent
	// (IPC_k, paper Section 2.1).
	Independent = graph.Independent
	// Normalized assumes each consumer accepts at most one alternative
	// (NPC_k, paper Section 2.2).
	Normalized = graph.Normalized
)

// ParseVariant parses "independent"/"i"/"ipc" or "normalized"/"n"/"npc".
func ParseVariant(s string) (Variant, error) { return graph.ParseVariant(s) }

// Graph is an immutable preference graph. Construct one with a Builder or
// with the prefcover/adapt package.
type Graph = graph.Graph

// Builder accumulates items and alternative edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder preallocated for the given counts.
func NewBuilder(nodeHint, edgeHint int) *Builder { return graph.NewBuilder(nodeHint, edgeHint) }

// BuildOptions controls Builder.Build (duplicate-edge policy, weight
// normalization, zero-edge dropping).
type BuildOptions = graph.BuildOptions

// Duplicate-edge policies for BuildOptions.
const (
	DupError   = graph.DupError
	DupKeepMax = graph.DupKeepMax
	DupSum     = graph.DupSum
	DupCombine = graph.DupCombine
)

// ValidateOptions controls Graph.Validate.
type ValidateOptions = graph.ValidateOptions

// Stats summarizes a preference graph (Table 2 columns plus degree and
// skew structure).
type Stats = graph.Stats

// ComputeStats scans a graph once and returns its Stats.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// Edge is a materialized directed edge.
type Edge = graph.Edge

// Options configures Solve. Exactly one of K (budget mode) or Threshold
// (minimization mode) must be positive; setting both caps the minimization
// at K items.
type Options = greedy.Options

// Solution is the solver output: retained items in selection order, their
// marginal gains, the total cover, and per-item coverage.
type Solution = greedy.Solution

// ProgressEvent describes one completed solver iteration: the selected
// node, its marginal gain, C(S) so far, and the per-iteration work
// counters (candidates evaluated; lazy-heap re-evaluations). Subscribe
// via Options.Progress.
type ProgressEvent = greedy.ProgressEvent

// Strategy names reported in ProgressEvent.Strategy. The first five are
// also valid explicit Options.Strategy values (see ParseStrategy);
// StrategyLazyFlat and StrategySketch select the data-oriented gain
// kernels of internal/kernel and are only reachable that way.
const (
	StrategyScan       = greedy.StrategyScan
	StrategyParallel   = greedy.StrategyParallel
	StrategyLazy       = greedy.StrategyLazy
	StrategyLazyFlat   = greedy.StrategyLazyFlat
	StrategySketch     = greedy.StrategySketch
	StrategyStochastic = greedy.StrategyStochastic
	StrategyPinned     = greedy.StrategyPinned
)

// ParseStrategy validates an explicit Options.Strategy value ("" selects
// the strategy from the Lazy/Workers knobs).
func ParseStrategy(s string) (string, error) { return greedy.ParseStrategy(s) }

// Solve runs the greedy Preference Cover algorithm (paper Algorithm 1).
func Solve(g *Graph, opts Options) (*Solution, error) { return greedy.Solve(g, opts) }

// SolveContext is Solve with cancellation: the solver polls ctx once per
// iteration (and per worker chunk in the parallel scan) and, when it
// fires, returns the partial Solution selected so far — a valid greedy
// prefix with Reached == false — together with ctx.Err(). Because the
// greedy order is incremental (Section 3.2), that prefix is itself the
// optimal-within-guarantee solution for its own size, so deadline-bounded
// serving can use it as a degraded answer.
func SolveContext(ctx context.Context, g *Graph, opts Options) (*Solution, error) {
	opts.Ctx = ctx
	return greedy.Solve(g, opts)
}

// MinCover solves the complementary minimization problem: the smallest
// retained set whose cover reaches threshold. It is shorthand for Solve
// with Options.Threshold set.
func MinCover(g *Graph, variant Variant, threshold float64) (*Solution, error) {
	return greedy.Solve(g, Options{Variant: variant, Threshold: threshold})
}

// Evaluate computes C(S) for an explicit retained set (node ids), without
// running the solver.
func Evaluate(g *Graph, variant Variant, set []int32) (float64, error) {
	return cover.EvaluateSet(g, variant, set)
}

// EvaluateLabels is Evaluate for labeled graphs.
func EvaluateLabels(g *Graph, variant Variant, labels []string) (float64, error) {
	set, err := LookupAll(g, labels)
	if err != nil {
		return 0, err
	}
	return cover.EvaluateSet(g, variant, set)
}

// PerItemCoverage returns, for every item, the probability its requests
// are matched by the given retained set (1 for retained items).
func PerItemCoverage(g *Graph, variant Variant, set []int32) ([]float64, error) {
	return cover.PerItemCoverage(g, variant, set)
}

// Baseline identifies one of the paper's comparison algorithms.
type Baseline uint8

// The baselines of the paper's experimental study (Section 5.3).
const (
	// BaselineTopKW retains the k best-selling items.
	BaselineTopKW Baseline = iota
	// BaselineTopKC retains the k items with the highest individual
	// coverage (own weight plus in-neighbor weight it matches).
	BaselineTopKC
)

// SolveBaseline runs a non-greedy baseline at budget k and returns its
// retained set and cover. For the Random baseline use the internal seedable
// API via the experiments harness; it is intentionally not part of the
// library surface.
func SolveBaseline(g *Graph, variant Variant, k int, which Baseline) ([]int32, float64, error) {
	var res *baseline.Result
	var err error
	switch which {
	case BaselineTopKC:
		res, err = baseline.TopKC(g, variant, k)
	default:
		res, err = baseline.TopKW(g, variant, k)
	}
	if err != nil {
		return nil, 0, err
	}
	return res.Set, res.Cover, nil
}

// LookupAll resolves labels to node ids, failing on the first unknown
// label.
func LookupAll(g *Graph, labels []string) ([]int32, error) {
	set := make([]int32, len(labels))
	for i, label := range labels {
		v, ok := g.Lookup(label)
		if !ok {
			return nil, &UnknownItemError{Label: label}
		}
		set[i] = v
	}
	return set, nil
}

// UnknownItemError reports a label missing from the graph.
type UnknownItemError struct{ Label string }

// Error implements error.
func (e *UnknownItemError) Error() string { return "prefcover: unknown item " + e.Label }

// Graph codecs, re-exported for convenience.

// WriteGraphTSV serializes a graph in the human-readable TSV format.
func WriteGraphTSV(w io.Writer, g *Graph) error { return graph.WriteTSV(w, g) }

// ReadGraphTSV parses the TSV format.
func ReadGraphTSV(r io.Reader, opts BuildOptions) (*Graph, error) { return graph.ReadTSV(r, opts) }

// WriteGraphJSON serializes a graph as one JSON document.
func WriteGraphJSON(w io.Writer, g *Graph) error { return graph.WriteJSON(w, g) }

// ReadGraphJSON parses the JSON format.
func ReadGraphJSON(r io.Reader, opts BuildOptions) (*Graph, error) { return graph.ReadJSON(r, opts) }

// WriteGraphBinary serializes a graph in the compact binary format used
// for large catalogs.
func WriteGraphBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ReadGraphBinary parses the binary format.
func ReadGraphBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }
