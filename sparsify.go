package prefcover

import "prefcover/internal/sparsify"

// SparsifyOptions selects a graph prune: drop edges below MinWeight and/or
// keep only the MaxOutDegree heaviest alternatives per item.
type SparsifyOptions = sparsify.Options

// SparsifyResult is the pruned graph plus an upper bound (LossBound) on
// the cover any retained set can lose to the prune, valid for both
// variants.
type SparsifyResult = sparsify.Result

// Sparsify prunes negligible alternative edges before solving. At
// clickstream scale most edges carry probabilities too small to change
// which items are retained; pruning them shrinks memory and greedy time
// while LossBound certifies the worst-case cover impact.
func Sparsify(g *Graph, opts SparsifyOptions) (*SparsifyResult, error) {
	return sparsify.Prune(g, opts)
}
