package server

import (
	"bytes"
	"time"

	"prefcover/internal/promtext"
	"prefcover/internal/slo"
)

// SLOConfig wires the burn-rate monitor into a server: the daemon's
// -slo-spec / -scrape-interval / -alert-webhook flags land here. The
// monitor self-scrapes — it renders the server's own registry in-process
// each interval (no HTTP hop, no listener dependency) and feeds the tsdb
// ring the /debug/slo evaluations read from.
type SLOConfig struct {
	// Spec lists the objectives (see internal/slo's grammar). An empty
	// spec with a positive ScrapeInterval still snapshots history for
	// windowed queries, but never alerts.
	Spec slo.Spec
	// ScrapeInterval is the snapshot cadence (default 10s when the
	// monitor is enabled at all).
	ScrapeInterval time.Duration
	// FastWindow/SlowWindow/ForDuration tune the evaluator; zero values
	// use the slo defaults (5m/1h/30s).
	FastWindow  time.Duration
	SlowWindow  time.Duration
	ForDuration time.Duration
	// WebhookURL, when set, receives firing/resolved transitions as JSON
	// POSTs with retry.
	WebhookURL string
}

// enabled reports whether any knob asks for the monitor.
func (c SLOConfig) enabled() bool {
	return c.Spec.Enabled() || c.ScrapeInterval > 0
}

// newMonitor builds the server's self-scraping monitor. Tests reach the
// same machinery through Config.SLO plus Monitor().
func (s *Server) newMonitor(cfg SLOConfig) *slo.Monitor {
	var notifier slo.Notifier
	if cfg.WebhookURL != "" {
		notifier = &slo.WebhookNotifier{URL: cfg.WebhookURL}
	}
	return slo.NewMonitor(slo.MonitorOptions{
		Spec:     cfg.Spec,
		Scrape:   s.selfScrape,
		Interval: cfg.ScrapeInterval,
		Eval: slo.EvalConfig{
			FastWindow: cfg.FastWindow,
			SlowWindow: cfg.SlowWindow,
		},
		ForDuration: cfg.ForDuration,
		Alerts:      s.met.alerts,
		Logger:      s.logger,
		Notifier:    notifier,
	})
}

// selfScrape produces one parsed snapshot of the server's registry,
// refreshing the per-scrape gauges exactly like a /metrics pull so the
// tsdb sees the same data an external scraper would.
func (s *Server) selfScrape() (*promtext.Metrics, error) {
	s.met.updateRuntime(s.started)
	s.updateServing()
	var buf bytes.Buffer
	if err := s.met.registry.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return promtext.Parse(&buf)
}

// Monitor exposes the SLO monitor; nil when the server was built without
// SLOConfig.
func (s *Server) Monitor() *slo.Monitor { return s.monitor }
