package server

// Request-scoped observability plumbing: request IDs, the flight-recorder
// root span per /v1/* request, the structured access log, and the runtime
// telemetry refreshed on every /metrics scrape.

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"prefcover/internal/trace"
)

// reqIDKey is the context key carrying the request ID.
type reqIDKey struct{}

// requestIDFrom returns the request ID installed by instrument, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// endpointKey carries the instrumented endpoint pattern ("/v1/solve") so
// the solver path can label its pprof samples with the route that asked.
type endpointKey struct{}

func withEndpoint(ctx context.Context, endpoint string) context.Context {
	return context.WithValue(ctx, endpointKey{}, endpoint)
}

// endpointFrom returns the endpoint installed by instrument, or "".
func endpointFrom(ctx context.Context) string {
	ep, _ := ctx.Value(endpointKey{}).(string)
	return ep
}

// graphNameKey carries the registry name of the graph being solved —
// inline bodies have no name and profile as "(inline)".
type graphNameKey struct{}

func withGraphName(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, graphNameKey{}, name)
}

// graphNameFrom returns the graph name installed by solveRef, or "".
func graphNameFrom(ctx context.Context) string {
	name, _ := ctx.Value(graphNameKey{}).(string)
	return name
}

// ensureRequestID returns the inbound X-Request-ID when usable, otherwise
// a fresh random ID. Inbound IDs pass through verbatim so callers can
// correlate their own identifiers across header, logs and error bodies.
func ensureRequestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-ID")); id != "" {
		return id
	}
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "unidentified"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts printable-ASCII IDs up to 128 bytes (no
// quotes or backslashes, which would complicate log and JSON contexts);
// anything else is discarded so a hostile header cannot inject log lines.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

// statusRecorder captures the response code and body size for the request
// counter and the access log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// sampleTrace implements -trace-sample: true for every Nth instrumented
// request (the first request is always sampled when tracing is on).
func (s *Server) sampleTrace() bool {
	n := s.traceEvery
	if n <= 0 {
		return false
	}
	return (s.traceSeq.Add(1)-1)%int64(n) == 0
}

// instrument wraps an endpoint with the observability layers — request
// ID, root span, metrics, access log — and (for limited endpoints) the
// admission control layer.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.HandlerFunc {
	distributed := strings.HasPrefix(endpoint, "/v1/")
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := ensureRequestID(r)
		w.Header().Set("X-Request-ID", reqID)
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		ctx := context.WithValue(r.Context(), reqIDKey{}, reqID)
		ctx = withEndpoint(ctx, endpoint)
		var root *trace.Span
		traceID := ""
		if distributed {
			// A sampled inbound traceparent continues the caller's
			// distributed trace: it is always recorded (the caller already
			// made the sampling decision) and parented to the caller's span.
			if sc, err := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader)); err == nil && sc.Sampled {
				root = s.tracer.RootContext("request "+endpoint, sc)
				traceID = sc.TraceID
				root.SetAttr("requestID", reqID)
			}
		}
		if root == nil && limited && s.sampleTrace() {
			root = s.tracer.Root("request "+endpoint, reqID)
			traceID = reqID
		}
		if root != nil {
			root.SetAttr("method", r.Method)
			ctx = trace.NewContext(ctx, root)
		}
		r = r.WithContext(ctx)
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			// The latency observation carries the trace ID as an exemplar:
			// the histogram remembers which trace produced its slowest
			// sample, and statusz links the p99 cell to that trace.
			s.met.latency.With(endpoint).ObserveExemplar(dur.Seconds(), traceID)
			s.met.requests.With(endpoint, strconv.Itoa(sr.code)).Inc()
			if root != nil {
				root.SetAttr("status", sr.code)
				root.End()
			}
			s.accessLog(r, reqID, traceID, sr, dur)
			if t := s.limits.SlowRequestThreshold; t > 0 && dur >= t {
				if s.logger != nil {
					s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
						slog.String("endpoint", endpoint),
						slog.Int("status", sr.code),
						slog.Duration("duration", dur),
						slog.Duration("threshold", t),
						slog.String("request_id", reqID),
						slog.String("trace_id", traceID),
					)
				}
				// A breached threshold snapshots heap+goroutine profiles so
				// the state that made this request slow is retained even if
				// nobody is watching; the capturer's cooldown rate-limits it.
				s.capturer.Trigger("slow_request")
			}
		}()
		if limited && s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.met.rejected.With(endpoint, "capacity").Inc()
				s.writeError(sr, r, http.StatusTooManyRequests,
					errCapacity(s.limits.MaxConcurrent))
				return
			}
		}
		s.met.inFlight.With().Inc()
		defer s.met.inFlight.With().Dec()
		if s.testHookStart != nil {
			s.testHookStart(endpoint)
		}
		h(sr, r)
	}
}

// accessLog emits the one structured line per request the daemon's
// operators grep by request_id.
func (s *Server) accessLog(r *http.Request, reqID, traceID string, sr *statusRecorder, dur time.Duration) {
	if s.logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sr.code),
		slog.Int64("bytes", sr.bytes),
		slog.Duration("duration", dur),
		slog.String("request_id", reqID),
	}
	if traceID != "" && traceID != reqID {
		attrs = append(attrs, slog.String("trace_id", traceID))
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// handleMetrics refreshes the runtime and serving gauges and serves the
// scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.updateRuntime(s.started)
	s.updateServing()
	s.met.registry.Handler().ServeHTTP(w, r)
}

// updateServing snapshots the registry, cache and job queue into their
// gauges, once per scrape like the runtime set.
func (s *Server) updateServing() {
	s.met.storeGraphs.With().Set(int64(s.store.Len()))
	s.met.storeBytes.With().Set(s.store.TotalBytes())
	for _, info := range s.store.List() {
		s.met.graphSolves.With(info.Name).Set(info.Solves)
	}
	s.met.cacheEntries.With().Set(int64(s.cache.Len()))
	s.met.jobsQueueDepth.With().Set(int64(s.jobs.Depth()))
	s.met.jobsRunning.With().Set(int64(s.jobs.Running()))
	files, bytes := s.capturer.Stats()
	s.met.profilezFiles.With().Set(int64(files))
	s.met.profilezBytes.With().Set(bytes)
}

// updateRuntime snapshots process health into the runtime gauge set; it
// runs once per scrape so the gauges are exactly as fresh as Prometheus
// sees them.
func (m *serverMetrics) updateRuntime(started time.Time) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.goroutines.With().Set(int64(runtime.NumGoroutine()))
	m.heapAlloc.With().Set(int64(ms.HeapAlloc))
	m.heapSys.With().Set(int64(ms.HeapSys))
	m.gcCycles.With().Set(int64(ms.NumGC))
	m.gcPause.With().Set(float64(ms.PauseTotalNs) / 1e9)
	m.uptime.With().Set(time.Since(started).Seconds())
}

// handleTraces dumps the flight-recorder ring: Chrome trace-event JSON by
// default (load in chrome://tracing or Perfetto), the human-readable tree
// for Accept: text/plain (or the legacy ?format=tree knob).
//
//	?trace=<id>  only roots with that trace ID (request ID or W3C trace ID)
//	?limit=N     newest N traces
//	?epoch=unix  absolute Unix-epoch microseconds instead of
//	             earliest-root-relative — what lets a client merge these
//	             events with its own on one timeline
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethods(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	roots := s.tracer.Snapshot()
	if id := q.Get("trace"); id != "" {
		kept := roots[:0]
		for _, root := range roots {
			if root.TraceID() == id {
				kept = append(kept, root)
			}
		}
		roots = kept
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		if n < len(roots) {
			roots = roots[len(roots)-n:] // ring is oldest-first; keep the newest N
		}
	}
	tree := q.Get("format") == "tree"
	if !tree {
		var err error
		if tree, err = treeFromAccept(r.Header.Get("Accept")); err != nil {
			s.writeError(w, r, http.StatusNotAcceptable, err)
			return
		}
	}
	if tree {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, root := range roots {
			_ = trace.WriteTreeSpan(w, root)
		}
		return
	}
	var epoch time.Time
	if q.Get("epoch") == "unix" {
		epoch = time.Unix(0, 0)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteChromeEvents(w, trace.ChromeEvents(roots, epoch))
}

// treeFromAccept resolves the /debug/traces representation: JSON (the
// default, also */*) or the text tree. An Accept that matches neither is a
// 406.
func treeFromAccept(header string) (bool, error) {
	if strings.TrimSpace(header) == "" {
		return false, nil
	}
	for _, part := range strings.Split(header, ",") {
		mt, _, err := mime.ParseMediaType(part)
		if err != nil {
			continue
		}
		switch mt {
		case "application/json", "application/*", "*/*":
			return false, nil
		case "text/plain", "text/*":
			return true, nil
		}
	}
	return false, fmt.Errorf("not acceptable %q (use application/json or text/plain)", header)
}
