package server

// Request-scoped observability plumbing: request IDs, the flight-recorder
// root span per /v1/* request, the structured access log, and the runtime
// telemetry refreshed on every /metrics scrape.

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"prefcover/internal/trace"
)

// reqIDKey is the context key carrying the request ID.
type reqIDKey struct{}

// requestIDFrom returns the request ID installed by instrument, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// ensureRequestID returns the inbound X-Request-ID when usable, otherwise
// a fresh random ID. Inbound IDs pass through verbatim so callers can
// correlate their own identifiers across header, logs and error bodies.
func ensureRequestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-ID")); id != "" {
		return id
	}
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "unidentified"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts printable-ASCII IDs up to 128 bytes (no
// quotes or backslashes, which would complicate log and JSON contexts);
// anything else is discarded so a hostile header cannot inject log lines.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

// statusRecorder captures the response code and body size for the request
// counter and the access log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// sampleTrace implements -trace-sample: true for every Nth instrumented
// request (the first request is always sampled when tracing is on).
func (s *Server) sampleTrace() bool {
	n := s.traceEvery
	if n <= 0 {
		return false
	}
	return (s.traceSeq.Add(1)-1)%int64(n) == 0
}

// instrument wraps an endpoint with the observability layers — request
// ID, root span, metrics, access log — and (for limited endpoints) the
// admission control layer.
func (s *Server) instrument(endpoint string, limited bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := ensureRequestID(r)
		w.Header().Set("X-Request-ID", reqID)
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		ctx := context.WithValue(r.Context(), reqIDKey{}, reqID)
		var root *trace.Span
		if limited && s.sampleTrace() {
			root = s.tracer.Root("request "+endpoint, reqID)
			root.SetAttr("method", r.Method)
			ctx = trace.NewContext(ctx, root)
		}
		r = r.WithContext(ctx)
		start := time.Now()
		defer func() {
			dur := time.Since(start)
			s.met.latency.With(endpoint).Observe(dur.Seconds())
			s.met.requests.With(endpoint, strconv.Itoa(sr.code)).Inc()
			if root != nil {
				root.SetAttr("status", sr.code)
				root.End()
			}
			s.accessLog(r, reqID, sr, dur)
		}()
		if limited && s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.met.rejected.With(endpoint, "capacity").Inc()
				s.writeError(sr, r, http.StatusTooManyRequests,
					errCapacity(s.limits.MaxConcurrent))
				return
			}
		}
		s.met.inFlight.With().Inc()
		defer s.met.inFlight.With().Dec()
		if s.testHookStart != nil {
			s.testHookStart(endpoint)
		}
		h(sr, r)
	}
}

// accessLog emits the one structured line per request the daemon's
// operators grep by request_id.
func (s *Server) accessLog(r *http.Request, reqID string, sr *statusRecorder, dur time.Duration) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sr.code),
		slog.Int64("bytes", sr.bytes),
		slog.Duration("duration", dur),
		slog.String("request_id", reqID),
	)
}

// handleMetrics refreshes the runtime and serving gauges and serves the
// scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.updateRuntime(s.started)
	s.updateServing()
	s.met.registry.Handler().ServeHTTP(w, r)
}

// updateServing snapshots the registry, cache and job queue into their
// gauges, once per scrape like the runtime set.
func (s *Server) updateServing() {
	s.met.storeGraphs.With().Set(int64(s.store.Len()))
	s.met.storeBytes.With().Set(s.store.TotalBytes())
	for _, info := range s.store.List() {
		s.met.graphSolves.With(info.Name).Set(info.Solves)
	}
	s.met.cacheEntries.With().Set(int64(s.cache.Len()))
	s.met.jobsQueueDepth.With().Set(int64(s.jobs.Depth()))
	s.met.jobsRunning.With().Set(int64(s.jobs.Running()))
}

// updateRuntime snapshots process health into the runtime gauge set; it
// runs once per scrape so the gauges are exactly as fresh as Prometheus
// sees them.
func (m *serverMetrics) updateRuntime(started time.Time) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.goroutines.With().Set(int64(runtime.NumGoroutine()))
	m.heapAlloc.With().Set(int64(ms.HeapAlloc))
	m.heapSys.With().Set(int64(ms.HeapSys))
	m.gcCycles.With().Set(int64(ms.NumGC))
	m.gcPause.With().Set(float64(ms.PauseTotalNs) / 1e9)
	m.uptime.With().Set(time.Since(started).Seconds())
}

// handleTraces dumps the flight-recorder ring: Chrome trace-event JSON by
// default (load in chrome://tracing or Perfetto), ?format=tree for the
// human-readable summary.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "tree" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.tracer.WriteTree(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.tracer.WriteChrome(w)
}
