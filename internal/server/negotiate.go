package server

// Content negotiation for graph payloads. Three wire formats share one
// graph model: the JSON document (default), the tab-separated text codec,
// and the versioned binary codec. Uploads select theirs with Content-Type,
// downloads with Accept; an explicitly unknown type is a 415/406 rather
// than a silent fallback, so a client sending protobuf by accident learns
// immediately instead of getting a JSON parse error about byte 0.

import (
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"prefcover"
)

// graphFormat enumerates the wire codecs.
type graphFormat int

const (
	formatJSON graphFormat = iota
	formatBinary
	formatTSV
)

// Media types served and accepted for graphs.
const (
	mediaJSON   = "application/json"
	mediaBinary = "application/octet-stream"
	mediaTSV    = "text/tab-separated-values"
)

func (f graphFormat) contentType() string {
	switch f {
	case formatBinary:
		return mediaBinary
	case formatTSV:
		return mediaTSV
	default:
		return mediaJSON
	}
}

// errUnsupportedMedia marks negotiation failures so handlers can map them
// to 415 (uploads) or 406 (downloads).
type errUnsupportedMedia struct{ ct string }

func (e *errUnsupportedMedia) Error() string {
	return fmt.Sprintf("unsupported graph media type %q (use %s, %s or %s)",
		e.ct, mediaJSON, mediaBinary, mediaTSV)
}

// graphFormatFromContentType resolves an upload's format. An absent or
// blank Content-Type means JSON, matching the original /v1/solve contract.
func graphFormatFromContentType(header string) (graphFormat, error) {
	if strings.TrimSpace(header) == "" {
		return formatJSON, nil
	}
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return formatJSON, &errUnsupportedMedia{ct: header}
	}
	switch mt {
	case mediaJSON, "text/json":
		return formatJSON, nil
	case mediaBinary:
		return formatBinary, nil
	case mediaTSV, "text/tsv":
		return formatTSV, nil
	default:
		return formatJSON, &errUnsupportedMedia{ct: header}
	}
}

// graphFormatFromAccept resolves a download's format. Empty, */* and
// application/* mean JSON; the Accept header is scanned left to right and
// the first recognized type wins (no q-value arithmetic — three formats do
// not need it).
func graphFormatFromAccept(header string) (graphFormat, error) {
	if strings.TrimSpace(header) == "" {
		return formatJSON, nil
	}
	for _, part := range strings.Split(header, ",") {
		mt, _, err := mime.ParseMediaType(part)
		if err != nil {
			continue
		}
		switch mt {
		case mediaJSON, "text/json", "*/*", "application/*":
			return formatJSON, nil
		case mediaBinary:
			return formatBinary, nil
		case mediaTSV, "text/tsv", "text/*":
			return formatTSV, nil
		}
	}
	return formatJSON, &errUnsupportedMedia{ct: header}
}

// decodeGraph parses one graph in the given format.
func decodeGraph(r io.Reader, f graphFormat) (*prefcover.Graph, error) {
	switch f {
	case formatBinary:
		g, err := prefcover.ReadGraphBinary(r)
		if err != nil {
			return nil, fmt.Errorf("parsing binary graph: %w", err)
		}
		return g, nil
	case formatTSV:
		g, err := prefcover.ReadGraphTSV(r, prefcover.BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("parsing TSV graph: %w", err)
		}
		return g, nil
	default:
		g, err := prefcover.ReadGraphJSON(r, prefcover.BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("parsing graph JSON: %w", err)
		}
		return g, nil
	}
}

// encodeGraph writes g in the given format.
func encodeGraph(w io.Writer, g *prefcover.Graph, f graphFormat) error {
	switch f {
	case formatBinary:
		return prefcover.WriteGraphBinary(w, g)
	case formatTSV:
		return prefcover.WriteGraphTSV(w, g)
	default:
		return prefcover.WriteGraphJSON(w, g)
	}
}

// allowMethods gates a handler on its method set: a miss answers 405 with
// the RFC-required Allow header and the JSON error envelope. On a match
// the request body is bounded by MaxBodyBytes.
func (s *Server) allowMethods(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	s.writeError(w, r, http.StatusMethodNotAllowed,
		fmt.Errorf("method %s not allowed (allow: %s)", r.Method, strings.Join(methods, ", ")))
	return false
}
