package server

// Distributed-tracing tests: one trace ID followed across the three hops
// of an async remote solve — client span → server request span → job
// worker span — plus the /debug/traces filtering and negotiation surface
// and the /debug/statusz page built on top of the unified data.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"prefcover/internal/jobs"
	"prefcover/internal/trace"
)

// findRoot returns the first recorded root span with the given name and
// trace ID, or nil.
func findRoot(roots []*trace.Span, name, traceID string) *trace.Span {
	for _, r := range roots {
		if r.Name() == name && r.TraceID() == traceID {
			return r
		}
	}
	return nil
}

// TestDistributedTraceThreeHops drives a submitted job like `prefcover
// remote job -trace` does: a client-side span injects traceparent on the
// POST, the middleware continues the trace in the request root span, and
// the job worker's solve spans join it across the queue boundary. Every
// hop must share the client's trace ID and parent to the span of the hop
// before it.
func TestDistributedTraceThreeHops(t *testing.T) {
	s, ts := newServingServer(t, Config{Jobs: jobs.Options{Workers: 1}})
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, servingGraph(t, 120)))

	// Hop 1: the client. One call span with one attempt child, exactly the
	// tree remoteClient.do builds; the attempt span is what crosses the wire.
	ct := trace.New(4)
	csc := trace.NewSpanContext()
	callSpan := ct.RootContext("call POST /v1/jobs", csc)
	attempt := callSpan.Child("attempt 1")

	reqBody, _ := json.Marshal(map[string]any{"graph_ref": "demo", "variant": "independent", "k": 6})
	hdr := http.Header{
		"Content-Type":          []string{"application/json"},
		trace.TraceparentHeader: []string{attempt.Context().Traceparent()},
	}
	resp, data := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", hdr, reqBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, data)
	}
	var submitted jobPayload
	if err := json.Unmarshal(data, &submitted); err != nil {
		t.Fatal(err)
	}
	// The job payload advertises the trace it belongs to, at submission
	// time and on every later status poll.
	if submitted.TraceID != csc.TraceID {
		t.Errorf("submitted traceId = %q, want %q", submitted.TraceID, csc.TraceID)
	}
	final := pollJob(t, ts.URL, submitted.ID)
	if final.State != "done" {
		t.Fatalf("job final state = %q (%s)", final.State, final.Error)
	}
	if final.TraceID != csc.TraceID {
		t.Errorf("final traceId = %q, want %q", final.TraceID, csc.TraceID)
	}
	attempt.End()
	callSpan.End()

	// Hop 2: the request root span continues the client's trace, parented
	// to the attempt span that carried the header. The middleware records
	// it just after the response is written, so poll briefly.
	var roots []*trace.Span
	var reqRoot *trace.Span
	deadline := time.Now().Add(5 * time.Second)
	for reqRoot == nil && time.Now().Before(deadline) {
		roots = s.Tracer().Snapshot()
		if reqRoot = findRoot(roots, "request /v1/jobs", csc.TraceID); reqRoot == nil {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if reqRoot == nil {
		t.Fatalf("no request root with trace ID %s; roots = %d", csc.TraceID, len(roots))
	}
	if reqRoot.ParentSpanID() != attempt.SpanID() {
		t.Errorf("request root parent = %q, want client attempt span %q",
			reqRoot.ParentSpanID(), attempt.SpanID())
	}
	if got := reqRoot.Attr("requestID"); got == nil || got == "" {
		t.Error("request root span has no requestID attr")
	}

	// Hop 3: the worker-side "job solve" root crossed the queue boundary —
	// same trace ID, parented to the request span that enqueued it, with
	// the queue wait and the solver's iteration spans underneath.
	jobRoot := findRoot(roots, "job solve", csc.TraceID)
	if jobRoot == nil {
		t.Fatalf("no job solve root with trace ID %s", csc.TraceID)
	}
	if jobRoot.ParentSpanID() != reqRoot.SpanID() {
		t.Errorf("job root parent = %q, want request span %q", jobRoot.ParentSpanID(), reqRoot.SpanID())
	}
	if got := jobRoot.Attr("jobID"); got != submitted.ID {
		t.Errorf("job root jobID attr = %v, want %q", got, submitted.ID)
	}
	names := make(map[string]int)
	var walk func(*trace.Span)
	walk = func(sp *trace.Span) {
		names[sp.Name()]++
		if sp.TraceID() != csc.TraceID {
			t.Errorf("span %q trace ID %q, want %q", sp.Name(), sp.TraceID(), csc.TraceID)
		}
		if sp != jobRoot && sp.ParentSpanID() == "" {
			t.Errorf("span %q has no parent link", sp.Name())
		}
		for _, c := range sp.Children() {
			walk(c)
		}
	}
	walk(jobRoot)
	for _, want := range []string{"queued", "solve", "iteration 1"} {
		if names[want] == 0 {
			t.Errorf("job trace missing span %q; have %v", want, names)
		}
	}

	// /debug/traces?trace=<id> serves exactly this trace's server-side
	// spans, with the span IDs a client needs to stitch its own half on.
	resp, data = doReq(t, http.MethodGet, ts.URL+"/debug/traces?trace="+csc.TraceID+"&epoch=unix", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces status = %d", resp.StatusCode)
	}
	var events []struct {
		Name string         `json:"name"`
		TS   float64        `json:"ts"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("traces dump: %v\n%s", err, data)
	}
	if len(events) == 0 {
		t.Fatal("filtered trace dump is empty")
	}
	sawParent := false
	for _, ev := range events {
		if ev.Args["traceID"] != csc.TraceID {
			t.Errorf("event %q traceID = %v, want %q", ev.Name, ev.Args["traceID"], csc.TraceID)
		}
		if ev.Args["parentSpanId"] == attempt.SpanID() {
			sawParent = true
		}
		// epoch=unix timestamps are absolute: around now, not around zero.
		if ev.TS < float64(time.Now().Add(-time.Hour).UnixMicro()) {
			t.Errorf("event %q ts = %v, want absolute unix micros", ev.Name, ev.TS)
		}
	}
	if !sawParent {
		t.Errorf("no event parented to the client attempt span %s", attempt.SpanID())
	}
}

// TestDistributedTraceUnsampled: a traceparent with the sampled bit clear
// is a caller saying "do not record"; the request must not land in the
// flight recorder.
func TestDistributedTraceUnsampled(t *testing.T) {
	s, ts := newServingServer(t, Config{})
	tp := "00-" + strings.Repeat("ab", 16) + "-" + strings.Repeat("cd", 8) + "-00"
	doReq(t, http.MethodPost, ts.URL+"/v1/pipeline?k=2",
		http.Header{trace.TraceparentHeader: []string{tp}}, []byte(tinyClickstream))
	if got := len(s.Tracer().Snapshot()); got != 0 {
		t.Errorf("unsampled traceparent recorded %d traces, want 0", got)
	}
}

// TestTracesQuerySurface covers the /debug/traces operator knobs added
// alongside propagation: ?limit, Accept negotiation, and 405 + Allow.
func TestTracesQuerySurface(t *testing.T) {
	s, ts := newServingServer(t, Config{})
	s.EnableTracing(1, 8)
	for i := 0; i < 3; i++ {
		doReq(t, http.MethodPost, ts.URL+"/v1/pipeline?k=2", nil, []byte(tinyClickstream))
	}
	if got := len(s.Tracer().Snapshot()); got != 3 {
		t.Fatalf("recorded %d traces, want 3", got)
	}

	// ?limit keeps the newest N.
	resp, data := doReq(t, http.MethodGet, ts.URL+"/debug/traces?limit=1", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit=1 status = %d", resp.StatusCode)
	}
	var events []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatal(err)
	}
	rootCount := 0
	for _, ev := range events {
		if ev.Name == "request /v1/pipeline" {
			rootCount++
		}
	}
	if rootCount != 1 {
		t.Errorf("limit=1 returned %d request roots, want 1", rootCount)
	}
	if resp, data := doReq(t, http.MethodGet, ts.URL+"/debug/traces?limit=-1", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=-1 status = %d: %s", resp.StatusCode, data)
	}

	// Accept negotiation: text/plain gets the tree, application/json (and
	// no Accept) the Chrome events, anything else 406.
	resp, data = doReq(t, http.MethodGet, ts.URL+"/debug/traces",
		http.Header{"Accept": []string{"text/plain"}}, nil)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Accept text/plain content type = %q", ct)
	}
	if !strings.Contains(string(data), "request /v1/pipeline") {
		t.Errorf("tree output missing request root:\n%s", data)
	}
	resp, data = doReq(t, http.MethodGet, ts.URL+"/debug/traces",
		http.Header{"Accept": []string{"application/json"}}, nil)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept application/json content type = %q", ct)
	}
	if err := json.Unmarshal(data, &[]map[string]any{}); err != nil {
		t.Errorf("json output: %v", err)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/debug/traces",
		http.Header{"Accept": []string{"image/png"}}, nil); resp.StatusCode != http.StatusNotAcceptable {
		t.Errorf("Accept image/png status = %d, want 406", resp.StatusCode)
	}

	// Unsupported methods answer 405 with the Allow header, like /v1/*.
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/debug/traces", nil, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != "GET" {
		t.Errorf("Allow = %q, want GET", got)
	}
}

// TestStatuszPage exercises the operator dashboard end to end: after some
// traffic it must render 200 HTML carrying the build identity, the RED
// table with the hit endpoints, the serving occupancy and the
// slowest-trace list with /debug/traces links.
func TestStatuszPage(t *testing.T) {
	s, ts := newServingServer(t, Config{})
	s.EnableTracing(1, 8)
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, servingGraph(t, 60)))
	doReq(t, http.MethodPost, ts.URL+"/v1/pipeline?k=2", nil, []byte(tinyClickstream))

	resp, data := doReq(t, http.MethodGet, ts.URL+"/debug/statusz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	page := string(data)
	for _, want := range []string{
		"<h1>prefcoverd</h1>",
		"uptime",
		"prefcover_runtime_goroutines",
		"/v1/pipeline",
		"/v1/graphs/{name}",
		"prefcover_store_graphs",
		"prefcover_jobs_queue_depth",
		"Slowest traces",
		`href="/debug/traces?trace=`,
		"<p>none</p>", // no fault injector armed
	} {
		if !strings.Contains(page, want) {
			t.Errorf("statusz missing %q", want)
		}
	}
	// The RED row for the pipeline hit carries real quantiles, not the
	// empty-histogram dash.
	for _, line := range strings.Split(page, "\n") {
		if strings.Contains(line, "/v1/pipeline") && strings.Contains(line, "<td>-</td>") {
			t.Errorf("pipeline RED row has empty quantiles: %s", line)
		}
	}
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/debug/statusz", nil, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST statusz status = %d, want 405", resp.StatusCode)
	}
}
