package server

// The end-to-end resilience suite: a seeded random workload (registry
// CRUD, warm/cold reference solves, async job lifecycles) drives a server
// whose /v1/* surface and disk persistence are under fault injection,
// through internal/chaostest's retrying client. The assertions are the
// tentpole guarantees:
//
//   - no goroutine leaks once everything is closed;
//   - every HTTP response is either a valid result or a well-formed JSON
//     error envelope (checked per response by the chaos client);
//   - the solve cache never serves a prefix that disagrees with a fresh
//     solve (differential oracle, run after faults are disabled);
//   - the client's retry counters exactly account for the injected faults:
//     injector total == retries + give-ups, because each injected fault
//     surfaces as exactly one transient observation and nothing else in
//     the configuration can produce one.
//
// Everything is reproducible from the seed: the injector's fault schedule,
// the workload's operation sequence, and the retry jitter all derive from
// it. CHAOS_SEEDS=1,7,1337 (comma-separated) runs the suite once per seed;
// unset, it runs the fixed default seed.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"prefcover"
	"prefcover/internal/chaostest"
	"prefcover/internal/faults"
	"prefcover/internal/graphtest"
	"prefcover/internal/jobs"
	"prefcover/internal/metrics"
	"prefcover/internal/store"
)

// chaosSeeds reads CHAOS_SEEDS (comma-separated int64s); default one fixed
// seed so the suite is deterministic in a bare `go test` run.
func chaosSeeds(t *testing.T) []int64 {
	raw := os.Getenv("CHAOS_SEEDS")
	if raw == "" {
		return []int64{1}
	}
	var out []int64
	for _, tok := range strings.Split(raw, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: bad seed %q: %v", tok, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		t.Fatal("CHAOS_SEEDS set but contained no seeds")
	}
	return out
}

func TestChaosServing(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runChaosServing(t, seed) })
	}
}

func TestChaosDiskPersistence(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runChaosDisk(t, seed) })
	}
}

// chaosGraphs builds the workload's catalog: three distinct graphs, all
// large enough that their binary encodings exceed the injector's maximum
// partial-write allowance (4096 bytes), so a drawn torn write always
// actually tears.
func chaosGraphs(t *testing.T) [][]byte {
	t.Helper()
	var out [][]byte
	for i, n := range []int{500, 600, 700} {
		g := graphtest.Random(rand.New(rand.NewSource(int64(100+i))), n, 6, prefcover.Independent)
		out = append(out, graphJSON(t, g))
	}
	return out
}

func runChaosServing(t *testing.T, seed int64) {
	baseline := chaostest.GoroutineBaseline()

	// The full HTTP fault menu. Disk faults are deliberately absent here:
	// an HTTP "partial" runs the real handler underneath, so a disk fault
	// drawn inside it would be masked by the one transport-level failure
	// the client observes, and the injected == observed identity would
	// need slop. runChaosDisk covers the disk path with its own exact
	// accounting instead.
	httpInj := faults.New(faults.Spec{
		Seed:       seed,
		Error:      0.06,
		Throttle:   0.05,
		Unavail:    0.04,
		Reset:      0.04,
		Partial:    0.04,
		Latency:    200 * time.Microsecond,
		LatencyP:   0.2,
		RetryAfter: time.Millisecond,
	})
	// No MaxConcurrent, no SolveTimeout, and a queue deeper than the whole
	// workload: nothing but the injector can produce a transient status,
	// which is what makes the retry accounting below an equality.
	srv, err := NewWithConfig(Config{
		Store:  store.Options{Dir: t.TempDir()},
		Jobs:   jobs.Options{Workers: 2, QueueDepth: 256},
		Faults: httpInj,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	client := chaostest.NewClient(seed, metrics.NewRegistry())
	rng := rand.New(rand.NewSource(seed))
	bodies := chaosGraphs(t)
	names := []string{"alpha", "beta", "gamma"}
	ctx := context.Background()
	jsonHdr := "application/json"

	var jobIDs []string
	keysUsed := 0
	const ops = 250
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1: // upload / replace
			name := names[rng.Intn(len(names))]
			body := bodies[rng.Intn(len(bodies))]
			_, _ = client.Do(ctx, http.MethodPut, ts.URL+"/v1/graphs/"+name, jsonHdr, body, nil)
		case 2: // download
			name := names[rng.Intn(len(names))]
			_, _ = client.Do(ctx, http.MethodGet, ts.URL+"/v1/graphs/"+name, "", nil, nil)
		case 3: // delete (re-uploaded by later ops; 404 is a fine outcome)
			name := names[rng.Intn(len(names))]
			_, _ = client.Do(ctx, http.MethodDelete, ts.URL+"/v1/graphs/"+name, "", nil, nil)
		case 4, 5, 6: // reference solve, warm and cold, varying budgets
			name := names[rng.Intn(len(names))]
			k := 1 + rng.Intn(8)
			body := []byte(`{"graph_ref":"` + name + `"}`)
			url := fmt.Sprintf("%s/v1/solve?variant=independent&k=%d", ts.URL, k)
			_, _ = client.Do(ctx, http.MethodPost, url, jsonHdr, body, nil)
		case 7: // async job submission under an idempotency key
			name := names[rng.Intn(len(names))]
			keysUsed++
			key := fmt.Sprintf("chaos-%d-%d", seed, keysUsed)
			body := []byte(fmt.Sprintf(`{"graph_ref":%q,"variant":"independent","k":%d}`, name, 1+rng.Intn(8)))
			res, _ := client.Do(ctx, http.MethodPost, ts.URL+"/v1/jobs", jsonHdr, body,
				http.Header{"Idempotency-Key": {key}})
			if res != nil && res.Status < 300 {
				var snap struct {
					ID string `json:"id"`
				}
				if json.Unmarshal(res.Body, &snap) == nil && snap.ID != "" {
					jobIDs = append(jobIDs, snap.ID)
				}
			}
		case 8: // poll a known job
			if len(jobIDs) > 0 {
				id := jobIDs[rng.Intn(len(jobIDs))]
				_, _ = client.Do(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id, "", nil, nil)
			}
		case 9: // cancel (or forget) a known job
			if len(jobIDs) > 0 {
				id := jobIDs[rng.Intn(len(jobIDs))]
				_, _ = client.Do(ctx, http.MethodDelete, ts.URL+"/v1/jobs/"+id, "", nil, nil)
			}
		}
	}

	// ---- Assertions ----

	for _, v := range client.Violations() {
		t.Errorf("error-envelope violation: %s", v)
	}

	// Stop injecting, then reconcile: every injected fault surfaced as
	// exactly one transient the client either retried or gave up on.
	srv.SetFaults(nil)
	injected := httpInj.TotalFaults()
	observed := client.Counters.Retries() + client.Counters.GiveUps()
	if injected != observed {
		t.Errorf("retry accounting: injected %d faults (%s) but client observed %d (retries=%d giveups=%d)",
			injected, httpInj.CountsString(), observed, client.Counters.Retries(), client.Counters.GiveUps())
	}
	counts := httpInj.Counts()
	withAfter := counts[faults.KindThrottle] + counts[faults.KindUnavail]
	if h := client.Counters.Honored(); h > withAfter {
		t.Errorf("honored Retry-After %d times but only %d injected faults carried one", h, withAfter)
	} else if withAfter > client.Counters.GiveUps() && h == 0 {
		t.Errorf("%d injected faults carried Retry-After but none was honored", withAfter)
	}

	// Idempotency: the keys bound how many jobs can exist — a retried
	// submission that double-enqueued would break this.
	res, err := client.Do(ctx, http.MethodGet, ts.URL+"/v1/jobs", "", nil, nil)
	if err != nil || res == nil || res.Status != http.StatusOK {
		t.Fatalf("job listing after chaos: %v (%+v)", err, res)
	}
	var listing struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(res.Body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) > keysUsed {
		t.Errorf("%d jobs exist for %d idempotency keys: retries double-enqueued", len(listing.Jobs), keysUsed)
	}

	// Differential oracle: with faults off, every cached answer the server
	// gives must agree with a fresh local solve of the same graph.
	chaosOracle(t, ts, names)

	ts.Close()
	srv.Close()
	client.CloseIdle()
	chaostest.CheckGoroutines(t, baseline)
}

// chaosOracle downloads each surviving graph and, for several budgets,
// compares the server's (cache-served) reference solve against a direct
// in-process solve. The ordered-prefix property says they must agree
// exactly — any divergence means the cache served stale or corrupted
// results under chaos.
func chaosOracle(t *testing.T, ts *httptest.Server, names []string) {
	t.Helper()
	for _, name := range names {
		resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/graphs/"+name, nil, nil)
		if resp.StatusCode == http.StatusNotFound {
			continue // deleted by the workload and never re-uploaded
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("oracle: GET %s = %d", name, resp.StatusCode)
			continue
		}
		g, err := prefcover.ReadGraphJSON(bytes.NewReader(body), prefcover.BuildOptions{})
		if err != nil {
			t.Errorf("oracle: parsing downloaded %s: %v", name, err)
			continue
		}
		for _, k := range []int{1, 3, 6} {
			url := fmt.Sprintf("%s/v1/solve?variant=independent&k=%d", ts.URL, k)
			resp, body := doReq(t, http.MethodPost, url,
				http.Header{"Content-Type": {"application/json"}},
				[]byte(`{"graph_ref":"`+name+`"}`))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("oracle: solve %s k=%d = %d (%s)", name, k, resp.StatusCode, body)
				continue
			}
			var got solveResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			want, err := prefcover.SolveContext(context.Background(), g,
				prefcover.Options{K: k, Lazy: true, Variant: prefcover.Independent})
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Order) != len(want.Order) {
				t.Errorf("oracle: %s k=%d: server returned %d items, fresh solve %d",
					name, k, len(got.Order), len(want.Order))
				continue
			}
			for i, v := range want.Order {
				if got.Order[i] != g.Label(v) {
					t.Errorf("oracle: %s k=%d: order[%d] = %q, fresh solve %q — cache disagrees with a fresh solve",
						name, k, i, got.Order[i], g.Label(v))
				}
			}
			if math.Abs(got.Cover-want.Cover) > 1e-9 {
				t.Errorf("oracle: %s k=%d: cover %g vs fresh %g", name, k, got.Cover, want.Cover)
			}
		}
	}
}

// runChaosDisk hammers the persistence path: every PUT draws from the disk
// injector, so snapshot writes error or tear on a seeded schedule. The
// same exact accounting holds — each disk fault becomes one 500, one
// client-side transient — and the store must stay consistent: no torn temp
// files on disk, and each name either serves its content or 404s.
func runChaosDisk(t *testing.T, seed int64) {
	baseline := chaostest.GoroutineBaseline()
	diskInj := faults.New(faults.Spec{Seed: seed, Error: 0.15, Partial: 0.1})
	dir := t.TempDir()
	srv, err := NewWithConfig(Config{Store: store.Options{Dir: dir, Faults: diskInj}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	client := chaostest.NewClient(seed+1000, metrics.NewRegistry())
	rng := rand.New(rand.NewSource(seed + 1000))
	bodies := chaosGraphs(t)
	names := []string{"disk-a", "disk-b"}
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		name := names[rng.Intn(len(names))]
		if rng.Intn(5) == 0 {
			_, _ = client.Do(ctx, http.MethodDelete, ts.URL+"/v1/graphs/"+name, "", nil, nil)
			continue
		}
		_, _ = client.Do(ctx, http.MethodPut, ts.URL+"/v1/graphs/"+name,
			"application/json", bodies[rng.Intn(len(bodies))], nil)
	}

	for _, v := range client.Violations() {
		t.Errorf("error-envelope violation: %s", v)
	}
	injected := diskInj.TotalFaults()
	observed := client.Counters.Retries() + client.Counters.GiveUps()
	if injected != observed {
		t.Errorf("disk retry accounting: injected %d (%s), observed %d (retries=%d giveups=%d)",
			injected, diskInj.CountsString(), observed, client.Counters.Retries(), client.Counters.GiveUps())
	}

	// Consistency: no torn temp files survive, and every snapshot on disk
	// belongs to a name the registry still serves.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("torn temp file left on disk: %s", e.Name())
		}
	}
	for _, name := range names {
		resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/graphs/"+name, nil, nil)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
			t.Errorf("graph %s in inconsistent state after disk chaos: %d", name, resp.StatusCode)
		}
	}

	ts.Close()
	srv.Close()
	client.CloseIdle()
	chaostest.CheckGoroutines(t, baseline)
}
