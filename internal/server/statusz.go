package server

// GET /debug/statusz: the one-glance operator page. Everything on it is
// read from state the server already keeps — the metrics registry, the
// flight recorder, the subsystem occupancy counters, the fault injector —
// rendered as a single self-contained HTML document with no scripts,
// stylesheets or external fetches, so it works over the crudest tunnel.

import (
	"fmt"
	"html"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"prefcover/internal/metrics"
	"prefcover/internal/trace"
	"prefcover/internal/version"
)

// endpointRED is one row of the per-endpoint RED table: rate, errors,
// duration quantiles, derived from the request counters and latency
// histograms at render time.
type endpointRED struct {
	Endpoint string
	Requests int64
	Errors   int64 // 5xx responses
	P50      float64
	P90      float64
	P99      float64
	// ExemplarTrace is the trace ID of the slowest observation this
	// histogram has seen (when that request was traced): the p99 cell
	// links to it, turning a suspicious tail number into the exact
	// request that produced it.
	ExemplarTrace string
}

// redStats joins prefcover_http_requests_total (for counts and error
// rates) with prefcover_http_request_duration_seconds (for quantiles),
// one row per endpoint, sorted by request volume.
func (s *Server) redStats() []endpointRED {
	byEndpoint := make(map[string]*endpointRED)
	row := func(endpoint string) *endpointRED {
		r, ok := byEndpoint[endpoint]
		if !ok {
			r = &endpointRED{Endpoint: endpoint}
			byEndpoint[endpoint] = r
		}
		return r
	}
	s.met.requests.Each(func(labels []string, c *metrics.Counter) {
		if len(labels) != 2 {
			return
		}
		r := row(labels[0])
		n := c.Value()
		r.Requests += n
		if strings.HasPrefix(labels[1], "5") {
			r.Errors += n
		}
	})
	s.met.latency.Each(func(labels []string, h *metrics.Histogram) {
		if len(labels) != 1 {
			return
		}
		r := row(labels[0])
		r.P50 = h.Quantile(0.50)
		r.P90 = h.Quantile(0.90)
		r.P99 = h.Quantile(0.99)
		if _, id, ok := h.Exemplar(); ok {
			r.ExemplarTrace = id
		}
	})
	rows := make([]endpointRED, 0, len(byEndpoint))
	for _, r := range byEndpoint {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Requests != rows[j].Requests {
			return rows[i].Requests > rows[j].Requests
		}
		return rows[i].Endpoint < rows[j].Endpoint
	})
	return rows
}

// slowTrace is one entry of the slowest-recent-traces table.
type slowTrace struct {
	Name     string
	TraceID  string
	Start    time.Time
	Duration time.Duration
	Spans    int
}

// slowestTraces returns the n slowest completed traces in the flight
// recorder, slowest first.
func (s *Server) slowestTraces(n int) []slowTrace {
	var out []slowTrace
	for _, root := range s.tracer.Snapshot() {
		out = append(out, slowTrace{
			Name:     root.Name(),
			TraceID:  root.TraceID(),
			Start:    root.Start(),
			Duration: root.Duration(),
			Spans:    root.NumSpans(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// statuszSlowTraces caps the slowest-traces table.
const statuszSlowTraces = 10

// statuszTopConsumers caps the top-resource-consumers table.
const statuszTopConsumers = 10

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethods(w, r, http.MethodGet) {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	v := version.Get()

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>prefcoverd statusz</title></head><body>\n")
	b.WriteString("<h1>prefcoverd</h1>\n")

	// Build identity and process vitals.
	fmt.Fprintf(&b, "<h2>Build</h2>\n<table border=\"1\" cellpadding=\"4\">\n")
	fmt.Fprintf(&b, "<tr><td>module</td><td>%s</td></tr>\n", html.EscapeString(v.Module))
	fmt.Fprintf(&b, "<tr><td>version</td><td>%s</td></tr>\n", html.EscapeString(v.Version))
	fmt.Fprintf(&b, "<tr><td>revision</td><td>%s</td></tr>\n", html.EscapeString(v.Revision))
	fmt.Fprintf(&b, "<tr><td>go</td><td>%s</td></tr>\n", html.EscapeString(v.GoVersion))
	fmt.Fprintf(&b, "<tr><td>uptime</td><td>%s</td></tr>\n", time.Since(s.started).Round(time.Second))
	b.WriteString("</table>\n")

	fmt.Fprintf(&b, "<h2>Runtime</h2>\n<table border=\"1\" cellpadding=\"4\">\n")
	fmt.Fprintf(&b, "<tr><td>prefcover_runtime_goroutines</td><td>%d</td></tr>\n", runtime.NumGoroutine())
	fmt.Fprintf(&b, "<tr><td>prefcover_runtime_heap_alloc_bytes</td><td>%d</td></tr>\n", ms.HeapAlloc)
	fmt.Fprintf(&b, "<tr><td>prefcover_runtime_heap_sys_bytes</td><td>%d</td></tr>\n", ms.HeapSys)
	fmt.Fprintf(&b, "<tr><td>prefcover_runtime_gc_cycles_total</td><td>%d</td></tr>\n", ms.NumGC)
	fmt.Fprintf(&b, "<tr><td>prefcover_runtime_gc_pause_seconds_total</td><td>%.6f</td></tr>\n", float64(ms.PauseTotalNs)/1e9)
	b.WriteString("</table>\n")

	// Per-endpoint RED: rate (requests and req/s over uptime), errors, and
	// duration quantiles interpolated from the live histograms.
	b.WriteString("<h2>Endpoints (RED)</h2>\n")
	b.WriteString("<table border=\"1\" cellpadding=\"4\">\n<tr><th>endpoint</th><th>requests</th><th>rate/s</th><th>errors</th><th>error %</th><th>p50</th><th>p90</th><th>p99</th></tr>\n")
	uptime := time.Since(s.started).Seconds()
	for _, row := range s.redStats() {
		errPct := 0.0
		if row.Requests > 0 {
			errPct = 100 * float64(row.Errors) / float64(row.Requests)
		}
		rate := 0.0
		if uptime > 0 {
			rate = float64(row.Requests) / uptime
		}
		p99 := quantileCell(row.P99)
		if row.ExemplarTrace != "" {
			id := html.EscapeString(row.ExemplarTrace)
			p99 = fmt.Sprintf("<a href=\"/debug/traces?trace=%s\" title=\"slowest observed request\">%s</a>", id, p99)
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%.3f</td><td>%d</td><td>%.1f%%</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(row.Endpoint), row.Requests, rate, row.Errors, errPct,
			quantileCell(row.P50), quantileCell(row.P90), p99)
	}
	b.WriteString("</table>\n")

	// Subsystem occupancy, same numbers the /metrics gauges report.
	b.WriteString("<h2>Serving</h2>\n<table border=\"1\" cellpadding=\"4\">\n")
	fmt.Fprintf(&b, "<tr><td>prefcover_store_graphs</td><td>%d</td></tr>\n", s.store.Len())
	fmt.Fprintf(&b, "<tr><td>prefcover_store_bytes</td><td>%d</td></tr>\n", s.store.TotalBytes())
	fmt.Fprintf(&b, "<tr><td>prefcover_solvecache_entries</td><td>%d</td></tr>\n", s.cache.Len())
	fmt.Fprintf(&b, "<tr><td>prefcover_solvecache_bytes</td><td>%d</td></tr>\n", s.cache.Bytes())
	fmt.Fprintf(&b, "<tr><td>prefcover_jobs_queue_depth</td><td>%d</td></tr>\n", s.jobs.Depth())
	fmt.Fprintf(&b, "<tr><td>prefcover_jobs_running</td><td>%d</td></tr>\n", s.jobs.Running())
	b.WriteString("</table>\n")

	// Top resource consumers: cumulative per-solve accounting by
	// (graph, strategy), CPU-heaviest first — the "where does the solver
	// budget go" panel. Cache hits cost no solver work and are absent.
	b.WriteString("<h2>Top resource consumers (solves)</h2>\n")
	if top := s.accountant.Top(statuszTopConsumers); len(top) == 0 {
		b.WriteString("<p>no solves yet</p>\n")
	} else {
		b.WriteString("<table border=\"1\" cellpadding=\"4\">\n<tr><th>graph</th><th>strategy</th><th>solves</th><th>cpu</th><th>wall</th><th>alloc</th><th>objects</th><th>gc pause</th></tr>\n")
		for _, c := range top {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%.3fs</td><td>%.3fs</td><td>%d</td><td>%d</td><td>%.6fs</td></tr>\n",
				html.EscapeString(c.Graph), html.EscapeString(c.Strategy), c.Solves,
				float64(c.CPUNanos)/1e9, float64(c.WallNanos)/1e9,
				c.AllocBytes, c.AllocObjects, float64(c.GCPauseNanos)/1e9)
		}
		b.WriteString("</table>\n")
	}

	// Profile ring occupancy, linked to the index for downloads.
	files, bytes := s.capturer.Stats()
	fmt.Fprintf(&b, "<h2>Profiles</h2>\n<p><a href=\"/debug/profilez\">/debug/profilez</a>: %d captures retained, %d bytes</p>\n", files, bytes)

	// Fault injection: loud when armed, one quiet line when not.
	b.WriteString("<h2>Faults</h2>\n")
	if inj := s.Faults(); inj != nil {
		fmt.Fprintf(&b, "<p><b>active:</b> <code>%s</code> (injected so far: %s)</p>\n",
			html.EscapeString(inj.Spec().String()), html.EscapeString(inj.CountsString()))
	} else {
		b.WriteString("<p>none</p>\n")
	}

	// The slowest recent traces, each linked to its filtered dump.
	fmt.Fprintf(&b, "<h2>Slowest traces (last %d recorded, worst %d)</h2>\n", trace.DefaultCapacity, statuszSlowTraces)
	b.WriteString("<table border=\"1\" cellpadding=\"4\">\n<tr><th>trace</th><th>name</th><th>duration</th><th>spans</th><th>started</th></tr>\n")
	for _, st := range s.slowestTraces(statuszSlowTraces) {
		id := html.EscapeString(st.TraceID)
		fmt.Fprintf(&b, "<tr><td><a href=\"/debug/traces?trace=%s\">%s</a></td><td>%s</td><td>%s</td><td>%d</td><td>%s</td></tr>\n",
			id, id, html.EscapeString(st.Name), st.Duration.Round(time.Microsecond), st.Spans,
			st.Start.Format(time.RFC3339))
	}
	b.WriteString("</table>\n")
	b.WriteString("<p><a href=\"/metrics\">/metrics</a> · <a href=\"/debug/traces\">/debug/traces</a> · <a href=\"/debug/profilez\">/debug/profilez</a>")
	if s.enablePprof {
		b.WriteString(" · <a href=\"/debug/pprof/\">/debug/pprof</a>")
	}
	b.WriteString(" · <a href=\"/version\">/version</a></p>\n")
	b.WriteString("</body></html>\n")

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// quantileCell renders a latency quantile, "-" when the histogram is empty
// (Quantile returns NaN).
func quantileCell(v float64) string {
	if v != v { // NaN
		return "-"
	}
	return fmt.Sprintf("%.4fs", v)
}
