package server

// Fault-injection middleware: the serving half of internal/faults. When an
// injector is installed (prefcoverd -fault-spec, or PUT /debug/faults with
// fault control enabled), every /v1/* request draws one decision from the
// seeded stream before its handler runs — added latency, an injected 500,
// a 429/503 with Retry-After, a connection reset, or a truncated response.
// Because the draw happens under the instrument wrapper, injected failures
// are observable through the same metrics, logs, and request IDs as
// organic ones, which is what lets the chaos harness reconcile the
// injector's own counts against the client's retry counters.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"prefcover/internal/faults"
)

// readAllLimit buffers at most n bytes of the request body.
func readAllLimit(r *http.Request, n int64) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r.Body, n))
}

// SetFaults installs (or, with nil, removes) the HTTP fault injector.
// Safe to call while serving: each request loads the pointer once.
func (s *Server) SetFaults(in *faults.Injector) { s.faultInj.Store(in) }

// Faults returns the currently installed HTTP fault injector, or nil.
func (s *Server) Faults() *faults.Injector { return s.faultInj.Load() }

// retryAfterValue renders an injected Retry-After as delay-seconds
// (truncated; sub-second injections advertise "0", which is valid per RFC
// 9110 and means "retry whenever you like, on your own backoff").
func retryAfterValue(d time.Duration) string {
	return strconv.Itoa(int(d / time.Second))
}

// withFaults wraps h with the fault-injection decision. It sits inside
// instrument, so injected statuses hit the request counters and the
// access log like any real failure.
func (s *Server) withFaults(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		in := s.faultInj.Load()
		if in == nil {
			h(w, r)
			return
		}
		kind, delay := in.NextOp()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
			}
		}
		switch kind {
		case faults.KindError:
			s.writeError(w, r, http.StatusInternalServerError,
				fmt.Errorf("%w: internal error", faults.ErrInjected))
		case faults.KindThrottle:
			w.Header().Set("Retry-After", retryAfterValue(in.RetryAfter()))
			s.writeError(w, r, http.StatusTooManyRequests,
				fmt.Errorf("%w: throttled", faults.ErrInjected))
		case faults.KindUnavail:
			w.Header().Set("Retry-After", retryAfterValue(in.RetryAfter()))
			s.writeError(w, r, http.StatusServiceUnavailable,
				fmt.Errorf("%w: unavailable", faults.ErrInjected))
		case faults.KindReset:
			// ErrAbortHandler makes net/http drop the connection without a
			// response — the client sees a reset/EOF, never a status.
			panic(http.ErrAbortHandler)
		case faults.KindPartial:
			// Run the real handler against a byte-capped writer, then abort
			// the connection. The abort is unconditional: with chunked
			// encoding a small response could otherwise complete inside the
			// cap and the "partial" fault would be invisible to the client,
			// breaking the injected == observed accounting.
			tw := &truncatedResponseWriter{ResponseWriter: w, remaining: in.PartialLimit()}
			h(tw, r)
			panic(http.ErrAbortHandler)
		default:
			h(w, r)
		}
	}
}

// truncatedResponseWriter forwards response bytes until its allowance runs
// out, then silently drops the rest; withFaults aborts the connection
// afterwards so the client always observes the truncation.
type truncatedResponseWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *truncatedResponseWriter) Write(p []byte) (int, error) {
	if t.remaining <= 0 {
		// Report success so the handler keeps its normal control flow; the
		// bytes just never reach the wire.
		return len(p), nil
	}
	if len(p) > t.remaining {
		n, err := t.ResponseWriter.Write(p[:t.remaining])
		t.remaining -= n
		if err != nil {
			return n, err
		}
		return len(p), nil
	}
	n, err := t.ResponseWriter.Write(p)
	t.remaining -= n
	return n, err
}

// handleFaults is /debug/faults, mounted only with Config.FaultControl:
//
//	GET    -> {"spec": "...", "counts": {...}, "total": N}
//	PUT    body: spec text (see internal/faults grammar); empty disables
//	DELETE -> remove the injector
//
// Installing a spec resets the stream and the counts — each PUT starts a
// fresh reproducible experiment.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.writeFaultState(w)
	case http.MethodPut, http.MethodPost:
		body, err := readAllLimit(r, 1<<16)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		spec, err := faults.ParseSpec(string(body))
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		if !spec.Enabled() {
			s.SetFaults(nil)
		} else {
			s.SetFaults(faults.New(spec))
		}
		s.writeFaultState(w)
	case http.MethodDelete:
		s.SetFaults(nil)
		w.WriteHeader(http.StatusNoContent)
	default:
		s.allowMethods(w, r, http.MethodGet, http.MethodPut, http.MethodDelete)
	}
}

// faultState is the /debug/faults GET/PUT reply.
type faultState struct {
	Enabled bool                  `json:"enabled"`
	Spec    string                `json:"spec,omitempty"`
	Counts  map[faults.Kind]int64 `json:"counts,omitempty"`
	Total   int64                 `json:"total"`
}

func (s *Server) writeFaultState(w http.ResponseWriter) {
	in := s.Faults()
	if in == nil {
		writeJSON(w, faultState{})
		return
	}
	writeJSON(w, faultState{
		Enabled: true,
		Spec:    in.Spec().String(),
		Counts:  in.Counts(),
		Total:   in.TotalFaults(),
	})
}
