package server

// Tests for the PR-2 observability layer: request-ID propagation through
// header, access log and error body; the /version endpoint; runtime
// telemetry on /metrics; and the always-on trace flight recorder.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// syncBuffer lets the handler goroutines and the test body share a log
// sink without racing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDPropagation follows one client-supplied X-Request-ID
// through the whole observable surface: echoed verbatim in the response
// header, stamped on the access-log line, and quoted in the JSON error
// body of a failing request.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	srv := New(Limits{}, logger)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const reqID = "client-trace-42"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/pipeline?k=2",
		strings.NewReader("this is not json"))
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("response header X-Request-ID = %q, want %q", got, reqID)
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, body)
	}
	if e.RequestID != reqID {
		t.Errorf("error body requestId = %q, want %q", e.RequestID, reqID)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "request_id="+reqID) {
		t.Errorf("access log missing request_id=%s:\n%s", reqID, logs)
	}
	accessLine := ""
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "msg=request") && strings.Contains(line, "path=/v1/pipeline") {
			accessLine = line
		}
	}
	if accessLine == "" {
		t.Fatalf("no access-log line for /v1/pipeline:\n%s", logs)
	}
	for _, want := range []string{"method=POST", "status=400", "bytes=", "duration=", "request_id=" + reqID} {
		if !strings.Contains(accessLine, want) {
			t.Errorf("access line missing %q: %s", want, accessLine)
		}
	}
}

// TestRequestIDGenerated covers the other two branches of ensureRequestID:
// no inbound ID at all, and a hostile one that must be discarded.
func TestRequestIDGenerated(t *testing.T) {
	srv := New(Limits{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := doPipeline(t, ts.URL)
	gen := resp.Header.Get("X-Request-ID")
	if len(gen) != 16 {
		t.Errorf("generated ID %q, want 16 hex chars", gen)
	}

	hostile := `evil" request_id=spoofed \`
	req, _ := http.NewRequest("POST", ts.URL+"/v1/pipeline?k=2",
		strings.NewReader(tinyClickstream))
	req.Header.Set("X-Request-ID", hostile)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got == hostile || strings.Contains(got, "\"") || len(got) != 16 {
		t.Errorf("hostile inbound ID not replaced: %q", got)
	}
}

func TestVersionEndpoint(t *testing.T) {
	srv := New(Limits{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var info struct {
		Module    string `json:"module"`
		Version   string `json:"version"`
		GoVersion string `json:"goVersion"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("body is not JSON: %v\n%s", err, body)
	}
	if info.Module == "" || info.GoVersion == "" {
		t.Errorf("incomplete version info: %s", body)
	}
	// /version is instrumented like any API endpoint.
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("/version response has no X-Request-ID")
	}
}

// TestRuntimeMetrics checks the scrape-time runtime telemetry gauges.
func TestRuntimeMetrics(t *testing.T) {
	srv := New(Limits{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, text := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"# TYPE prefcover_runtime_goroutines gauge",
		"prefcover_runtime_goroutines ",
		"prefcover_runtime_heap_alloc_bytes ",
		"prefcover_runtime_heap_sys_bytes ",
		"prefcover_runtime_gc_cycles_total ",
		"prefcover_runtime_gc_pause_seconds_total ",
		"prefcover_process_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Goroutines and heap are never zero in a live process.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "prefcover_runtime_goroutines ") && strings.HasSuffix(line, " 0") {
			t.Errorf("implausible zero gauge: %s", line)
		}
	}
}

// TestTraceFlightRecorder turns on 1:1 sampling, runs a pipeline request,
// and checks /debug/traces serves a Chrome trace with the request root,
// the phase spans, and one span per greedy iteration.
func TestTraceFlightRecorder(t *testing.T) {
	srv := New(Limits{}, nil)
	srv.EnableTracing(1, 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const reqID = "trace-me-1"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/pipeline?k=2",
		strings.NewReader(tinyClickstream))
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline status %d", resp.StatusCode)
	}

	tresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var events []struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		Args map[string]interface{} `json:"args"`
	}
	if err := json.Unmarshal(traceBody, &events); err != nil {
		t.Fatalf("trace dump is not Chrome JSON: %v\n%s", err, traceBody)
	}
	names := make(map[string]int)
	for _, ev := range events {
		names[ev.Name]++
		if ev.Args["traceID"] != reqID {
			t.Errorf("event %q traceID = %v, want %q", ev.Name, ev.Args["traceID"], reqID)
		}
	}
	for _, want := range []string{"request /v1/pipeline", "parse", "adapt", "solve", "iteration 1", "iteration 2"} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q; have %v", want, names)
		}
	}

	// The human-readable form carries the same tree.
	hresp, err := http.Get(ts.URL + "/debug/traces?format=tree")
	if err != nil {
		t.Fatal(err)
	}
	treeBody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(treeBody), "request /v1/pipeline ["+reqID+"]") ||
		!strings.Contains(string(treeBody), "iteration 1") {
		t.Errorf("tree dump incomplete:\n%s", treeBody)
	}
}

// TestTraceSampling records every 2nd limited request when -trace-sample 2.
func TestTraceSampling(t *testing.T) {
	srv := New(Limits{}, nil)
	srv.EnableTracing(2, 8)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp, _ := doPipeline(t, ts.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status %d", i, resp.StatusCode)
		}
	}
	if got := len(srv.Tracer().Snapshot()); got != 2 {
		t.Errorf("recorded %d traces at sample=2 over 4 requests, want 2", got)
	}
}
