package server

// Internal-package tests for the serving subsystems added around the
// solver: the graph registry endpoints, the prefix-aware solve cache, and
// the async job queue. These need unexported access — the shared
// concurrency limiter (to hold job workers at the gate deterministically)
// and the metric counters (to prove a warm cache answers without invoking
// the solver).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"prefcover"
	"prefcover/internal/graphtest"
	"prefcover/internal/jobs"
	"prefcover/internal/solvecache"
	"prefcover/internal/store"
)

func newServingServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// servingGraph is a deterministic random graph shared by these tests.
func servingGraph(t *testing.T, n int) *prefcover.Graph {
	t.Helper()
	return graphtest.Random(rand.New(rand.NewSource(7)), n, 6, prefcover.Independent)
}

// labeledGraph rebuilds servingGraph with explicit node labels.
// graphtest.Random graphs are unlabeled, and synthetic "#N" labels do not
// survive a JSON round trip (WriteGraphJSON only emits labels for labeled
// graphs), so pin-by-label tests need real labels on both sides.
func labeledGraph(t *testing.T, n int) *prefcover.Graph {
	t.Helper()
	g := servingGraph(t, n)
	b := prefcover.NewBuilder(g.NumNodes(), g.NumEdges())
	label := func(v int32) string { return fmt.Sprintf("item-%03d", v) }
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		b.AddLabeledNode(label(v), g.NodeWeight(v))
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			b.AddLabeledEdge(label(v), label(u), ws[i])
		}
	}
	lg, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

func graphJSON(t *testing.T, g *prefcover.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := prefcover.WriteGraphJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// doReq issues one request and returns the response with its body read.
func doReq(t *testing.T, method, url string, header http.Header, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// totalSolves sums the solver-invocation counter over every strategy and
// outcome — the proof metric for "served with zero solver work".
func totalSolves(s *Server) int64 {
	var sum int64
	for _, strategy := range []string{"scan", "lazy", "parallel", "stochastic", "pinned"} {
		for _, outcome := range []string{"ok", "canceled", "error"} {
			sum += s.met.solves.With(strategy, outcome).Value()
		}
	}
	return sum
}

func TestGraphRegistryCRUD(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	g := servingGraph(t, 60)
	body := graphJSON(t, g)
	jsonHdr := http.Header{"Content-Type": []string{"application/json"}}

	resp, data := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo", jsonHdr, body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first PUT status = %d: %s", resp.StatusCode, data)
	}
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) || len(etag) != 66 {
		t.Fatalf("ETag = %q, want quoted sha256 hex", etag)
	}
	var info store.Info
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("bad info JSON: %v\n%s", err, data)
	}
	if info.Name != "demo" || info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("info = %+v", info)
	}

	// Idempotent replace: same content, 200 (not 201), same ETag.
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo", jsonHdr, body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != etag {
		t.Fatalf("re-PUT status = %d etag = %q", resp.StatusCode, resp.Header.Get("ETag"))
	}

	// TSV uploads negotiate through the text codec. Text float formatting is
	// lossy, so TSV content addresses independently of the JSON upload — the
	// ETag just has to be a well-formed content hash for the decoded graph.
	var tsv bytes.Buffer
	if err := prefcover.WriteGraphTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	resp, tsvData := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo-tsv",
		http.Header{"Content-Type": []string{"text/tab-separated-values"}}, tsv.Bytes())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("TSV PUT status = %d: %s", resp.StatusCode, tsvData)
	}
	tsvTag := resp.Header.Get("ETag")
	if !strings.HasPrefix(tsvTag, `"`) || !strings.HasSuffix(tsvTag, `"`) || len(tsvTag) != 66 {
		t.Fatalf("TSV ETag = %q, want quoted sha256 hex", tsvTag)
	}
	var tsvInfo store.Info
	if err := json.Unmarshal(tsvData, &tsvInfo); err != nil {
		t.Fatal(err)
	}
	if tsvInfo.Nodes != g.NumNodes() || tsvInfo.Edges != g.NumEdges() {
		t.Fatalf("TSV info = %+v, want %d nodes %d edges", tsvInfo, g.NumNodes(), g.NumEdges())
	}
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/graphs/demo-tsv", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("TSV DELETE status = %d", resp.StatusCode)
	}

	resp, data = doReq(t, http.MethodGet, ts.URL+"/v1/graphs", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var list struct {
		Graphs []store.Info `json:"graphs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "demo" {
		t.Fatalf("list = %+v", list)
	}

	// Download round-trips through each negotiated format.
	resp, data = doReq(t, http.MethodGet, ts.URL+"/v1/graphs/demo", nil, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("GET status = %d ct = %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("GET ETag = %q", resp.Header.Get("ETag"))
	}
	got, err := prefcover.ReadGraphJSON(bytes.NewReader(data), prefcover.BuildOptions{})
	if err != nil || got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("JSON round-trip: err=%v nodes=%d edges=%d", err, got.NumNodes(), got.NumEdges())
	}
	resp, data = doReq(t, http.MethodGet, ts.URL+"/v1/graphs/demo",
		http.Header{"Accept": []string{"application/octet-stream"}}, nil)
	if resp.StatusCode != http.StatusOK || !bytes.HasPrefix(data, []byte("PCG1")) {
		t.Fatalf("binary GET status = %d prefix = %q", resp.StatusCode, data[:min(4, len(data))])
	}
	resp, data = doReq(t, http.MethodGet, ts.URL+"/v1/graphs/demo",
		http.Header{"Accept": []string{"text/tab-separated-values"}}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tsv GET status = %d", resp.StatusCode)
	}
	if _, err := prefcover.ReadGraphTSV(bytes.NewReader(data), prefcover.BuildOptions{}); err != nil {
		t.Fatalf("TSV round-trip: %v", err)
	}

	// Conditional GET: a matching ETag is a 304 with no body.
	resp, data = doReq(t, http.MethodGet, ts.URL+"/v1/graphs/demo",
		http.Header{"If-None-Match": []string{etag}}, nil)
	if resp.StatusCode != http.StatusNotModified || len(data) != 0 {
		t.Fatalf("If-None-Match status = %d body = %q", resp.StatusCode, data)
	}

	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/graphs/demo", nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/graphs/demo", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE status = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/graphs/demo", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE status = %d", resp.StatusCode)
	}

	// Invalid names never reach the registry.
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/graphs/.hidden", jsonHdr, body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dotfile name status = %d", resp.StatusCode)
	}
}

func TestGraphUploadUnsupportedMedia(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	body := graphJSON(t, servingGraph(t, 20))
	xml := http.Header{"Content-Type": []string{"application/xml"}}

	resp, data := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo", xml, body)
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("PUT status = %d: %s", resp.StatusCode, data)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("415 body not an error envelope: %s", data)
	}

	resp, _ = doReq(t, http.MethodPost, ts.URL+"/v1/solve?variant=i&k=3", xml, body)
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/v1/stats", xml, body)
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	cases := []struct {
		method, path, wantAllow string
	}{
		{http.MethodGet, "/v1/adapt", "POST"},
		{http.MethodDelete, "/v1/solve", "POST"},
		{http.MethodPut, "/v1/pipeline", "POST"},
		{http.MethodGet, "/v1/stats", "POST"},
		{http.MethodPost, "/v1/graphs", "GET"},
		{http.MethodPatch, "/v1/graphs/x", "GET, HEAD, PUT, DELETE"},
		{http.MethodDelete, "/v1/jobs", "GET, POST"},
		{http.MethodPost, "/v1/jobs/abc", "GET, DELETE"},
	}
	for _, tc := range cases {
		t.Run(tc.method+" "+tc.path, func(t *testing.T) {
			resp, data := doReq(t, tc.method, ts.URL+tc.path, nil, nil)
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("status = %d: %s", resp.StatusCode, data)
			}
			if got := resp.Header.Get("Allow"); got != tc.wantAllow {
				t.Fatalf("Allow = %q, want %q", got, tc.wantAllow)
			}
			var apiErr struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &apiErr); err != nil || apiErr.Error == "" {
				t.Fatalf("405 body not an error envelope: %s", data)
			}
		})
	}
}

// solveRefHTTP posts a graph_ref solve and decodes the reply.
func solveRefHTTP(t *testing.T, baseURL, name, params string) (*http.Response, solveResponse) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"graph_ref": name})
	resp, data := doReq(t, http.MethodPost, baseURL+"/v1/solve"+params,
		http.Header{"Content-Type": []string{"application/json"}}, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve %s status = %d: %s", params, resp.StatusCode, data)
	}
	var out solveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestSolveByRefWarmCacheSkipsSolver is the core acceptance test: after
// one budget-k solve of a registered graph, every budget k' ≤ k and every
// reachable threshold is served from the cached prefix with the solver
// invocation counter provably unchanged.
func TestSolveByRefWarmCacheSkipsSolver(t *testing.T) {
	s, ts := newServingServer(t, Config{})
	g := servingGraph(t, 300)
	const kMax = 24
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, g))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	// Cold: one real solve at the largest budget.
	resp, cold := solveRefHTTP(t, ts.URL, "demo", fmt.Sprintf("?variant=i&k=%d", kMax))
	if got := resp.Header.Get("X-Prefcover-Cache"); got != "miss" {
		t.Fatalf("cold solve cache header = %q", got)
	}
	if cold.K != kMax {
		t.Fatalf("cold K = %d", cold.K)
	}
	base := totalSolves(s)
	if base == 0 {
		t.Fatal("cold solve did not increment the solver counter")
	}

	// Warm: every smaller budget must be byte-equal to a fresh solve and
	// must not touch the solver.
	for _, k := range []int{1, 2, 5, 11, kMax - 1, kMax} {
		resp, warm := solveRefHTTP(t, ts.URL, "demo", fmt.Sprintf("?variant=i&k=%d", k))
		if got := resp.Header.Get("X-Prefcover-Cache"); got != "hit" {
			t.Fatalf("k=%d cache header = %q", k, got)
		}
		want, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: k, Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(warm.Order) != k || warm.Cover != want.Cover || !warm.Reached {
			t.Fatalf("k=%d: got cover %v len %d, want cover %v len %d",
				k, warm.Cover, len(warm.Order), want.Cover, len(want.Order))
		}
		for i, v := range want.Order {
			if warm.Order[i] != g.Label(v) {
				t.Fatalf("k=%d order[%d] = %q, want %q", k, i, warm.Order[i], g.Label(v))
			}
			if warm.Gains[i] != want.Gains[i] {
				t.Fatalf("k=%d gains[%d] = %v, want %v", k, i, warm.Gains[i], want.Gains[i])
			}
		}
		if len(warm.Coverage) != g.NumNodes() {
			t.Fatalf("k=%d coverage len = %d", k, len(warm.Coverage))
		}
		// Partial-prefix hits recompute coverage from scratch rather than
		// replaying the solver's incremental accumulation, so the two can
		// differ in the last ULP; compare with a tolerance.
		for i, c := range want.Coverage {
			if math.Abs(warm.Coverage[i]-c) > 1e-9 {
				t.Fatalf("k=%d coverage[%d] = %v, want %v", k, i, warm.Coverage[i], c)
			}
		}
	}

	// Threshold mode against the cached curve: compare with MinCover for a
	// threshold the cached prefix reaches.
	reachable := cold.Cover * 0.8
	resp, warmT := solveRefHTTP(t, ts.URL, "demo", fmt.Sprintf("?variant=i&threshold=%g", reachable))
	if got := resp.Header.Get("X-Prefcover-Cache"); got != "hit" {
		t.Fatalf("threshold cache header = %q", got)
	}
	wantT, err := prefcover.MinCover(g, prefcover.Independent, reachable)
	if err != nil {
		t.Fatal(err)
	}
	if len(warmT.Order) != len(wantT.Order) || warmT.Cover != wantT.Cover || warmT.Reached != wantT.Reached {
		t.Fatalf("threshold: got (len %d, cover %v, reached %v), want (len %d, cover %v, reached %v)",
			len(warmT.Order), warmT.Cover, warmT.Reached, len(wantT.Order), wantT.Cover, wantT.Reached)
	}

	if got := totalSolves(s); got != base {
		t.Fatalf("solver ran %d more times on warm queries", got-base)
	}

	// The warm traffic shows up on /metrics.
	resp, metricsBody := doReq(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		`prefcover_solvecache_requests_total{status="hit"} 7`,
		`prefcover_solvecache_requests_total{status="miss"} 1`,
		`prefcover_store_graphs 1`,
		`prefcover_store_graph_solves{graph="demo"} 1`,
		`prefcover_solvecache_entries 1`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Beyond the cached prefix the cache must decline and solve fresh.
	resp, _ = solveRefHTTP(t, ts.URL, "demo", fmt.Sprintf("?variant=i&k=%d", kMax+10))
	if got := resp.Header.Get("X-Prefcover-Cache"); got != "miss" {
		t.Fatalf("k beyond prefix cache header = %q", got)
	}
	if got := totalSolves(s); got != base+1 {
		t.Fatalf("beyond-prefix solve count = %d, want %d", got, base+1)
	}
}

func TestSolveByRefPinsMatchInline(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	g := labeledGraph(t, 120)
	body := graphJSON(t, g)
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, body)

	pin := g.Label(17)
	params := "?variant=i&k=9&pin=" + url.QueryEscape(pin)
	_, byRef := solveRefHTTP(t, ts.URL, "demo", params)
	resp, data := doReq(t, http.MethodPost, ts.URL+"/v1/solve"+params,
		http.Header{"Content-Type": []string{"application/json"}}, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline status = %d: %s", resp.StatusCode, data)
	}
	var inline solveResponse
	if err := json.Unmarshal(data, &inline); err != nil {
		t.Fatal(err)
	}
	if byRef.Order[0] != pin || inline.Order[0] != pin {
		t.Fatalf("pin not first: ref %q inline %q", byRef.Order[0], inline.Order[0])
	}
	if byRef.Cover != inline.Cover || len(byRef.Order) != len(inline.Order) {
		t.Fatalf("ref vs inline: cover %v/%v len %d/%d", byRef.Cover, inline.Cover, len(byRef.Order), len(inline.Order))
	}
	for i := range inline.Order {
		if byRef.Order[i] != inline.Order[i] {
			t.Fatalf("order[%d] = %q vs %q", i, byRef.Order[i], inline.Order[i])
		}
	}
}

func TestSolveRefUnknownGraph(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	body, _ := json.Marshal(map[string]string{"graph_ref": "nope"})
	resp, _ := doReq(t, http.MethodPost, ts.URL+"/v1/solve?variant=i&k=3",
		http.Header{"Content-Type": []string{"application/json"}}, body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// pollJob GETs a job until it reaches a terminal state.
func pollJob(t *testing.T, baseURL, id string) jobPayload {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := doReq(t, http.MethodGet, baseURL+"/v1/jobs/"+id, nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job GET status = %d: %s", resp.StatusCode, data)
		}
		var snap jobPayload
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatal(err)
		}
		switch snap.State {
		case "done", "failed", "canceled":
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobPayload{}
}

func TestJobLifecycleHTTP(t *testing.T) {
	s, ts := newServingServer(t, Config{Jobs: jobs.Options{Workers: 1}})
	g := servingGraph(t, 200)
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, g))

	const k = 15
	reqBody, _ := json.Marshal(map[string]any{"graph_ref": "demo", "variant": "independent", "k": k})
	resp, data := doReq(t, http.MethodPost, ts.URL+"/v1/jobs",
		http.Header{"Content-Type": []string{"application/json"}}, reqBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, data)
	}
	var submitted jobPayload
	if err := json.Unmarshal(data, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.ID == "" || submitted.State != "queued" {
		t.Fatalf("submitted = %+v", submitted)
	}

	final := pollJob(t, ts.URL, submitted.ID)
	if final.State != "done" || final.Error != "" {
		t.Fatalf("final = %+v", final)
	}
	if final.Progress.Step != k || final.Progress.Target != k || final.Progress.Cover <= 0 {
		t.Fatalf("progress = %+v", final.Progress)
	}
	if final.Started == nil || final.Finished == nil {
		t.Fatalf("timestamps missing: %+v", final)
	}
	result, ok := final.Result.(map[string]any)
	if !ok {
		t.Fatalf("result = %T", final.Result)
	}
	order, _ := result["order"].([]any)
	if len(order) != k {
		t.Fatalf("result order len = %d", len(order))
	}

	// The finished job warmed the cache: a synchronous reference solve at a
	// smaller budget is a hit with no further solver runs.
	base := totalSolves(s)
	resp, warm := solveRefHTTP(t, ts.URL, "demo", "?variant=i&k=4")
	if got := resp.Header.Get("X-Prefcover-Cache"); got != "hit" {
		t.Fatalf("post-job solve cache header = %q", got)
	}
	if len(warm.Order) != 4 {
		t.Fatalf("warm order len = %d", len(warm.Order))
	}
	if got := totalSolves(s); got != base {
		t.Fatal("post-job solve invoked the solver")
	}

	// Listing includes the job; deleting a finished job forgets it.
	resp, data = doReq(t, http.MethodGet, ts.URL+"/v1/jobs", nil, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), submitted.ID) {
		t.Fatalf("list status = %d body = %s", resp.StatusCode, data)
	}
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/jobs/"+submitted.ID, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete finished status = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+submitted.ID, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete status = %d", resp.StatusCode)
	}
}

func TestJobValidation(t *testing.T) {
	_, ts := newServingServer(t, Config{Jobs: jobs.Options{Workers: 1}})
	jsonHdr := http.Header{"Content-Type": []string{"application/json"}}
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"unknown graph", `{"graph_ref":"nope","variant":"i","k":3}`, http.StatusNotFound},
		{"missing ref", `{"variant":"i","k":3}`, http.StatusBadRequest},
		{"no k or threshold", `{"graph_ref":"x","variant":"i"}`, http.StatusBadRequest},
		{"unknown field", `{"graph_ref":"x","variant":"i","k":3,"treshold":0.5}`, http.StatusBadRequest},
		{"bad variant", `{"graph_ref":"x","variant":"zzz","k":3}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", jsonHdr, []byte(tc.body))
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.wantStatus, data)
			}
		})
	}
}

// TestJobQueueFullAndCancel holds the shared concurrency limiter so the
// single worker blocks at the gate, proving (a) a full queue answers 429
// and (b) queued jobs cancel cleanly without ever touching the solver.
func TestJobQueueFullAndCancel(t *testing.T) {
	s, ts := newServingServer(t, Config{
		Limits: Limits{MaxConcurrent: 1},
		Jobs:   jobs.Options{Workers: 1, QueueDepth: 1},
	})
	g := servingGraph(t, 80)
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, g))

	// Occupy the only concurrency slot: the job worker now blocks at the
	// gate, so accepted jobs pile up queued.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	reqBody, _ := json.Marshal(map[string]any{"graph_ref": "demo", "variant": "i", "k": 5})
	jsonHdr := http.Header{"Content-Type": []string{"application/json"}}
	var accepted []string
	saw429 := false
	for i := 0; i < 4 && !saw429; i++ {
		resp, data := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", jsonHdr, reqBody)
		switch resp.StatusCode {
		case http.StatusAccepted:
			var snap jobPayload
			if err := json.Unmarshal(data, &snap); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, snap.ID)
		case http.StatusTooManyRequests:
			saw429 = true
			var apiErr struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &apiErr); err != nil || !strings.Contains(apiErr.Error, "queue full") {
				t.Fatalf("429 body = %s", data)
			}
		default:
			t.Fatalf("submit status = %d: %s", resp.StatusCode, data)
		}
	}
	if !saw429 {
		t.Fatal("queue never filled: no 429 within worker+queue+1 submissions")
	}
	// Worker (1) + queue (1) bounds the accepted backlog.
	if len(accepted) > 2 {
		t.Fatalf("accepted %d jobs with worker=1 queue=1", len(accepted))
	}

	// Cancel everything that was accepted; all of it is still gated.
	for _, id := range accepted {
		resp, data := doReq(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel status = %d: %s", resp.StatusCode, data)
		}
		if snap := pollJob(t, ts.URL, id); snap.State != "canceled" {
			t.Fatalf("job %s state = %s after cancel", id, snap.State)
		}
	}
	if got := totalSolves(s); got != 0 {
		t.Fatalf("solver ran %d times for canceled jobs", got)
	}
}

// TestDeleteDuringSolveNotCached deletes the graph while its solve is in
// flight: the response is still served, but the result must not remain in
// the cache (its content was invalidated mid-run).
func TestDeleteDuringSolveNotCached(t *testing.T) {
	s, err := NewWithConfig(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := servingGraph(t, 150)
	if _, _, err := s.store.Put("demo", g); err != nil {
		t.Fatal(err)
	}

	rs, _, err := s.newRefSolve("demo", prefcover.Independent,
		prefcover.Options{K: 10, Lazy: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	deleted := false
	rs.opts.Progress = func(ev prefcover.ProgressEvent) {
		if !deleted && ev.Step == 2 {
			deleted = true
			if !s.store.Delete("demo") {
				t.Error("mid-solve delete failed")
			}
		}
	}
	resp, status, err := s.solveRef(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	if status != solvecache.StatusMiss || resp.K != 10 {
		t.Fatalf("status = %v K = %d", status, resp.K)
	}
	if !deleted {
		t.Fatal("progress hook never fired")
	}
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("cache holds %d entries after mid-solve delete", n)
	}

	// Re-registering the same content starts cold: the orphaned result is
	// really gone.
	if _, _, err := s.store.Put("demo", g); err != nil {
		t.Fatal(err)
	}
	rs2, _, err := s.newRefSolve("demo", prefcover.Independent,
		prefcover.Options{K: 10, Lazy: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, status, err = s.solveRef(context.Background(), rs2); err != nil || status != solvecache.StatusMiss {
		t.Fatalf("re-solve status = %v err = %v, want fresh miss", status, err)
	}
}

// TestGraphReplaceInvalidatesCache replaces a graph's content through the
// API and checks the old cached solution is not served for the new graph.
func TestGraphReplaceInvalidatesCache(t *testing.T) {
	s, ts := newServingServer(t, Config{})
	jsonHdr := http.Header{"Content-Type": []string{"application/json"}}
	g1 := servingGraph(t, 90)
	g2 := graphtest.Random(rand.New(rand.NewSource(99)), 90, 6, prefcover.Independent)

	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo", jsonHdr, graphJSON(t, g1))
	solveRefHTTP(t, ts.URL, "demo", "?variant=i&k=6")
	if s.cache.Len() != 1 {
		t.Fatalf("cache len = %d after first solve", s.cache.Len())
	}

	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo", jsonHdr, graphJSON(t, g2))
	if s.cache.Len() != 0 {
		t.Fatalf("cache len = %d after replace", s.cache.Len())
	}
	resp, fresh := solveRefHTTP(t, ts.URL, "demo", "?variant=i&k=6")
	if got := resp.Header.Get("X-Prefcover-Cache"); got != "miss" {
		t.Fatalf("post-replace cache header = %q", got)
	}
	want, err := prefcover.Solve(g2, prefcover.Options{Variant: prefcover.Independent, K: 6, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cover != want.Cover {
		t.Fatalf("post-replace cover = %v, want %v (solved against stale graph?)", fresh.Cover, want.Cover)
	}
}
