// Package server implements the paper's end-to-end system (Figure 2) as an
// HTTP service: the Data Adaptation Engine and the Preference Cover Solver
// behind a small JSON API. cmd/prefcoverd wires it to a listener; the
// package itself is net/http-handler based and fully testable with
// httptest.
//
// Endpoints:
//
//	GET  /healthz                         liveness probe
//	GET  /readyz                          readiness probe: 503 once the job
//	                                      queue saturates; body carries load
//	                                      signals for gateway routing
//	GET  /metrics                         Prometheus text exposition
//	GET  /version                         build identity (module, VCS revision, Go)
//	GET  /debug/traces                    flight-recorder dump: Chrome trace
//	                                      JSON, or a text tree via Accept:
//	                                      text/plain (legacy ?format=tree);
//	                                      ?trace=<id>, ?limit=N, ?epoch=unix
//	GET  /debug/statusz                   one-page HTML operator dashboard
//	                                      (build, runtime, RED stats,
//	                                      occupancy, faults, slowest traces)
//	POST /v1/adapt?variant=auto|i|n       body: JSONL clickstream
//	                                      -> {graph, report, variant}
//	POST /v1/solve?variant=i|n&k=K        body: graph JSON
//	     [&threshold=T&lazy=0|1&workers=W]
//	                                      -> {order, cover, coverage, gains}
//	POST /v1/pipeline?k=K[...]            body: JSONL clickstream
//	                                      -> adapt + recommend + solve
//	GET  /v1/graphs                       registry listing
//	PUT  /v1/graphs/{name}                upload a graph (JSON/TSV/binary
//	                                      by Content-Type); ETag = content
//	GET  /v1/graphs/{name}                download (format by Accept, 304
//	                                      on If-None-Match)
//	DEL  /v1/graphs/{name}                remove + invalidate cached solves
//	POST /v1/jobs                         async solve by graph_ref -> 202
//	GET  /v1/jobs[/{id}]                  queue listing / job status
//	DEL  /v1/jobs/{id}                    cancel or forget a job
//
// /v1/solve additionally accepts {"graph_ref": "name"} in place of an
// inline graph: the solve then runs against the registered graph through
// the prefix-aware result cache (internal/solvecache) — a warm cache
// serves any budget up to the cached prefix length, and threshold queries
// by binary search over the cached cover curve, with zero solver work.
// Repeated ?pin=LABEL parameters force-retain items ahead of the greedy
// fill on both the inline and reference paths.
//
// Observability and robustness: every endpoint is instrumented (request
// counts by status, latency histograms, an in-flight gauge, solver work
// counters, runtime telemetry — see newServerMetrics for the full name
// list). Each request gets an X-Request-ID (generated, or taken verbatim
// from the inbound header) that is echoed in the response header, stamped
// on every structured log line, and included in JSON error bodies, so one
// ID follows a request through every signal. With EnableTracing, every
// Nth /v1/* request additionally records a flight-recorder span tree
// (parse → adapt → recommend → solve, with one span per greedy
// iteration), dumped at /debug/traces. A /v1/* request arriving with a
// sampled W3C traceparent header is always recorded, continuing the
// caller's distributed trace: the request root span parents to the
// caller's span, and a job submission carries the context across the
// queue so worker-side solver spans join the same trace (see
// internal/trace/propagate.go). The /v1/* endpoints respect
// Limits.SolveTimeout (503 on expiry) and Limits.MaxConcurrent (immediate
// 429 when saturated), and the handler cooperates with
// http.Server.Shutdown: in-flight requests run to completion because
// nothing here detaches from the request goroutine.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	netpprof "net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"prefcover"
	"prefcover/adapt"
	"prefcover/clickstream"
	"prefcover/internal/faults"
	"prefcover/internal/jobs"
	"prefcover/internal/metrics"
	"prefcover/internal/profilez"
	"prefcover/internal/slo"
	"prefcover/internal/solvecache"
	"prefcover/internal/store"
	"prefcover/internal/trace"
	"prefcover/internal/version"
)

// Limits protects the service from oversized or runaway requests.
type Limits struct {
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// MaxSolveK caps the solvable budget (default: unlimited).
	MaxSolveK int
	// SolveTimeout bounds each /v1/* request end to end — clickstream
	// parse, adaptation and solve all poll the deadline. On expiry the
	// request fails with 503 and a JSON error body. 0 disables.
	SolveTimeout time.Duration
	// MaxConcurrent caps concurrently executing /v1/* requests; excess
	// requests are rejected immediately with 429 rather than queued, so
	// overload sheds load instead of building an invisible backlog.
	// /healthz and /metrics are exempt. 0 disables.
	MaxConcurrent int
	// SlowRequestThreshold, when positive, emits one structured warning log
	// line (request ID, trace ID, endpoint, status, duration) for every
	// request that takes at least this long — the grep-first signal when
	// latency histograms say something is slow but not which requests.
	SlowRequestThreshold time.Duration
}

// Server is the HTTP handler set.
type Server struct {
	limits Limits
	logger *slog.Logger
	met    *serverMetrics
	// sem is the concurrency limiter; nil when MaxConcurrent == 0.
	sem chan struct{}
	// store is the named graph registry backing solve-by-reference.
	store *store.Registry
	// cache holds ordered greedy prefixes keyed by graph content hash.
	cache *solvecache.Cache
	// jobs is the async solve queue; its workers share sem.
	jobs *jobs.Manager
	// tracer is the flight recorder; traceEvery selects every Nth /v1/*
	// request for recording (0 = off).
	tracer     *trace.Tracer
	traceEvery int
	traceSeq   atomic.Int64
	// faultInj, when non-nil, injects faults into every /v1/* request
	// (see internal/faults); swappable at runtime through SetFaults and,
	// with faultControl, the /debug/faults endpoint.
	faultInj     atomic.Pointer[faults.Injector]
	faultControl bool
	// capturer owns the /debug/profilez ring: periodic and trigger-based
	// profile snapshots (slow requests, job-queue saturation).
	capturer *profilez.Capturer
	// accountant aggregates per-solve resource usage by (graph, strategy)
	// for the statusz top-consumers panel.
	accountant *profilez.Accountant
	// enablePprof mounts net/http/pprof under /debug/pprof/ on the main
	// mux, next to the other /debug/* handlers.
	enablePprof bool
	// monitor is the SLO burn-rate monitor (self-scrape loop, alert state
	// machine, /debug/slo); nil unless Config.SLO enables it.
	monitor *slo.Monitor
	// started anchors the uptime gauge.
	started time.Time
	// testHookStart, when set (tests only), runs inside the instrumented
	// handler after limiter admission, letting tests hold a request
	// in-flight deterministically.
	testHookStart func(endpoint string)
}

// Config is the full constructor input: request limits plus the bounds of
// the three serving subsystems. The zero value of each subsystem section
// gets that subsystem's defaults, so Config{Limits: l, Logger: lg} is
// equivalent to New(l, lg).
type Config struct {
	Limits Limits
	Logger *slog.Logger
	// Store bounds the graph registry (Dir enables disk persistence). The
	// Logger and OnInvalidate fields are managed by the server.
	Store store.Options
	// Cache bounds the solve-result cache. OnEvict is managed by the
	// server.
	Cache solvecache.Options
	// Jobs sizes the async queue and worker pool. Gate and OnFinish are
	// managed by the server (workers share the request limiter).
	Jobs jobs.Options
	// Faults, when non-nil, injects failures into every /v1/* request —
	// the -fault-spec flag. Store.Faults separately covers disk writes.
	Faults *faults.Injector
	// FaultControl mounts /debug/faults so the injector can be inspected
	// and swapped at runtime. Meant for test and chaos builds only: the
	// endpoint is unauthenticated load-breaking power.
	FaultControl bool
	// Profilez configures the continuous-profiling capturer behind
	// /debug/profilez (capture directory, retention bounds, periodic
	// interval, trigger cooldown). The zero value works: on-demand and
	// trigger captures into an owned temp directory, no periodic loop.
	// The Logger and OnCapture fields are managed by the server.
	Profilez profilez.Options
	// EnablePprof mounts the standard net/http/pprof handlers under
	// /debug/pprof/ on the same mux as the other /debug/* pages — the
	// -pprof flag. /debug/profilez exists independently of it: profilez
	// snapshots and retains, /debug/pprof serves live one-shot pulls.
	EnablePprof bool
	// SLO enables the burn-rate monitor (-slo-spec, -scrape-interval,
	// -alert-webhook). The zero value leaves it off: no background loop,
	// /debug/slo reports disabled.
	SLO SLOConfig
}

// New returns a Server with the given limits and default subsystem bounds;
// a nil logger discards logs.
func New(limits Limits, logger *slog.Logger) *Server {
	s, err := NewWithConfig(Config{Limits: limits, Logger: logger})
	if err != nil {
		// Unreachable: construction only fails when Store.Dir cannot be
		// created, and this path passes no Dir.
		panic(err)
	}
	return s
}

// NewWithConfig returns a Server wired per cfg. It can fail only when
// Store.Dir is set and unusable (the registry reloads persisted graphs at
// startup). Call Close when done to drain the job workers.
func NewWithConfig(cfg Config) (*Server, error) {
	limits := cfg.Limits
	if limits.MaxBodyBytes <= 0 {
		limits.MaxBodyBytes = 64 << 20
	}
	s := &Server{
		limits:  limits,
		logger:  cfg.Logger,
		met:     newServerMetrics(),
		tracer:  trace.New(trace.DefaultCapacity),
		started: time.Now(),
	}
	if limits.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, limits.MaxConcurrent)
	}

	cacheOpts := cfg.Cache
	cacheOpts.OnEvict = func(solvecache.Key) { s.met.cacheEvictions.With().Inc() }
	s.cache = solvecache.New(cacheOpts)

	storeOpts := cfg.Store
	storeOpts.Logger = cfg.Logger
	storeOpts.OnInvalidate = func(name, hash string) {
		// The registry dropped this content (replace, delete or eviction);
		// every cached result derived from it is now unreachable garbage.
		n := s.cache.InvalidateGraph(hash)
		s.met.cacheInvalidations.With().Add(int64(n))
	}
	reg, err := store.New(storeOpts)
	if err != nil {
		return nil, err
	}
	s.store = reg

	jobOpts := cfg.Jobs
	jobOpts.Gate = s.sem
	jobOpts.OnFinish = func(state jobs.State) { s.met.jobsTotal.With(string(state)).Inc() }
	s.jobs = jobs.New(jobOpts)

	s.faultControl = cfg.FaultControl
	if cfg.Faults != nil {
		s.faultInj.Store(cfg.Faults)
	}

	s.accountant = profilez.NewAccountant()
	profOpts := cfg.Profilez
	profOpts.Logger = cfg.Logger
	profOpts.OnCapture = func(e profilez.Entry) {
		s.met.profilezCaptures.With(string(e.Kind), e.Trigger).Inc()
	}
	s.capturer = profilez.New(profOpts)
	s.capturer.Start()
	s.enablePprof = cfg.EnablePprof
	if cfg.SLO.enabled() {
		s.monitor = s.newMonitor(cfg.SLO)
		s.monitor.Start()
	}
	return s, nil
}

// Close drains the async job workers (cancelling queued and running jobs)
// and stops the profile capturer. The HTTP handlers stay usable; only job
// submission starts failing.
func (s *Server) Close() {
	s.jobs.Close()
	s.capturer.Close()
	if s.monitor != nil {
		s.monitor.Close()
	}
}

// Store exposes the graph registry (tests, embedders).
func (s *Server) Store() *store.Registry { return s.store }

// Cache exposes the solve-result cache (tests, embedders).
func (s *Server) Cache() *solvecache.Cache { return s.cache }

// EnableTracing turns the flight recorder on: every sample-th /v1/*
// request records a span tree into a ring of the given capacity
// (capacity <= 0 keeps the default). Call before serving traffic.
func (s *Server) EnableTracing(sample, capacity int) {
	s.traceEvery = sample
	if capacity > 0 {
		s.tracer = trace.New(capacity)
	}
}

// Tracer exposes the flight recorder (tests, embedders).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Profilez exposes the profile capturer (tests, embedders).
func (s *Server) Profilez() *profilez.Capturer { return s.capturer }

// serverMetrics is the instrument set, one per Server so tests and
// multi-tenant embeddings do not share state.
type serverMetrics struct {
	registry *metrics.Registry
	requests *metrics.CounterVec   // prefcover_http_requests_total{endpoint,code}
	latency  *metrics.HistogramVec // prefcover_http_request_duration_seconds{endpoint}
	inFlight *metrics.GaugeVec     // prefcover_http_in_flight_requests
	rejected *metrics.CounterVec   // prefcover_http_rejected_total{endpoint,reason}
	// alerts carries the SLO alert lifecycle in the Prometheus ALERTS
	// convention: the series for an alert's current state is 1.
	alerts *metrics.GaugeVec // ALERTS{alertname,endpoint,severity,state}

	solverIterations *metrics.CounterVec   // prefcover_solver_iterations_total{strategy}
	solverEvals      *metrics.CounterVec   // prefcover_solver_gain_evaluations_total{strategy}
	solverReevals    *metrics.CounterVec   // prefcover_solver_heap_reevaluations_total{strategy}
	solves           *metrics.CounterVec   // prefcover_solver_solves_total{strategy,outcome}
	solveStage       *metrics.HistogramVec // prefcover_solve_stage_seconds{stage}

	// Per-solve resource attribution and the approximation-gap
	// certificate (internal/profilez).
	solveCPUSeconds  *metrics.FloatGaugeVec // prefcover_solve_resource_cpu_seconds_total{strategy}
	solveAllocBytes  *metrics.CounterVec    // prefcover_solve_resource_alloc_bytes_total{strategy}
	solveGCPause     *metrics.FloatGaugeVec // prefcover_solve_resource_gc_pause_seconds_total{strategy}
	approxGap        *metrics.HistogramVec  // prefcover_solve_approx_gap{strategy}
	profilezCaptures *metrics.CounterVec    // prefcover_profilez_captures_total{kind,trigger}
	profilezFiles    *metrics.GaugeVec      // prefcover_profilez_ring_files
	profilezBytes    *metrics.GaugeVec      // prefcover_profilez_ring_bytes

	// Serving-layer subsystems (registry, solve cache, job queue).
	cacheOps           *metrics.CounterVec // prefcover_solvecache_requests_total{status}
	cacheEvictions     *metrics.CounterVec // prefcover_solvecache_evictions_total
	cacheInvalidations *metrics.CounterVec // prefcover_solvecache_invalidated_total
	cacheEntries       *metrics.GaugeVec   // prefcover_solvecache_entries
	storeGraphs        *metrics.GaugeVec   // prefcover_store_graphs
	storeBytes         *metrics.GaugeVec   // prefcover_store_bytes
	graphSolves        *metrics.GaugeVec   // prefcover_store_graph_solves{graph}
	jobsTotal          *metrics.CounterVec // prefcover_jobs_total{outcome}
	jobsQueueDepth     *metrics.GaugeVec   // prefcover_jobs_queue_depth
	jobsRunning        *metrics.GaugeVec   // prefcover_jobs_running

	// Runtime telemetry, refreshed per scrape (updateRuntime).
	goroutines *metrics.GaugeVec      // prefcover_runtime_goroutines
	heapAlloc  *metrics.GaugeVec      // prefcover_runtime_heap_alloc_bytes
	heapSys    *metrics.GaugeVec      // prefcover_runtime_heap_sys_bytes
	gcCycles   *metrics.GaugeVec      // prefcover_runtime_gc_cycles_total
	gcPause    *metrics.FloatGaugeVec // prefcover_runtime_gc_pause_seconds_total
	uptime     *metrics.FloatGaugeVec // prefcover_process_uptime_seconds
}

func newServerMetrics() *serverMetrics {
	r := metrics.NewRegistry()
	return &serverMetrics{
		registry: r,
		requests: r.NewCounter("prefcover_http_requests_total",
			"HTTP requests served, by endpoint and status code.", "endpoint", "code"),
		latency: r.NewHistogram("prefcover_http_request_duration_seconds",
			"End-to-end request latency.", nil, "endpoint"),
		inFlight: r.NewGauge("prefcover_http_in_flight_requests",
			"Requests currently executing."),
		rejected: r.NewCounter("prefcover_http_rejected_total",
			"Requests rejected before execution, by reason.", "endpoint", "reason"),
		alerts: r.NewGauge("ALERTS",
			"SLO burn-rate alerts: 1 on the series matching each alert's current state.",
			"alertname", "endpoint", "severity", "state"),
		solverIterations: r.NewCounter("prefcover_solver_iterations_total",
			"Greedy selections performed, by strategy.", "strategy"),
		solverEvals: r.NewCounter("prefcover_solver_gain_evaluations_total",
			"Marginal-gain evaluations performed, by strategy.", "strategy"),
		solverReevals: r.NewCounter("prefcover_solver_heap_reevaluations_total",
			"Lazy-heap stale-bound recomputations, by strategy.", "strategy"),
		solves: r.NewCounter("prefcover_solver_solves_total",
			"Solver runs, by strategy and outcome (ok/canceled/error).", "strategy", "outcome"),
		// Per-iteration stages run from sub-microsecond (cache-warm commits)
		// to ~1s (scan picks on large graphs), so the buckets run finer than
		// the request-latency defaults.
		solveStage: r.NewHistogram("prefcover_solve_stage_seconds",
			"Per-iteration solver stage durations (gain_eval, node_commit, progress_callback).",
			[]float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1},
			"stage"),
		solveCPUSeconds: r.NewFloatGauge("prefcover_solve_resource_cpu_seconds_total",
			"Cumulative process CPU seconds attributed to solver runs, by strategy.", "strategy"),
		solveAllocBytes: r.NewCounter("prefcover_solve_resource_alloc_bytes_total",
			"Cumulative heap bytes allocated during solver runs, by strategy.", "strategy"),
		solveGCPause: r.NewFloatGauge("prefcover_solve_resource_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause seconds elapsed during solver runs, by strategy.", "strategy"),
		// The gap certificate lives in [0,1]; most solves certify within a
		// few percent, so the buckets concentrate near zero.
		approxGap: r.NewHistogram("prefcover_solve_approx_gap",
			"Certified upper bound on how far the greedy cover can be below the optimal size-k cover (min over iterations of C(S_i)+k*maxRemainingGain_i, capped at 1, minus the final cover).",
			[]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1},
			"strategy"),
		profilezCaptures: r.NewCounter("prefcover_profilez_captures_total",
			"Profiles captured into the /debug/profilez ring, by kind and trigger.", "kind", "trigger"),
		profilezFiles: r.NewGauge("prefcover_profilez_ring_files",
			"Profile captures currently retained on disk."),
		profilezBytes: r.NewGauge("prefcover_profilez_ring_bytes",
			"Bytes of profile captures currently retained on disk."),
		cacheOps: r.NewCounter("prefcover_solvecache_requests_total",
			"Reference-solve cache outcomes (hit/miss/coalesced).", "status"),
		cacheEvictions: r.NewCounter("prefcover_solvecache_evictions_total",
			"Cached solve results evicted by the LRU bound."),
		cacheInvalidations: r.NewCounter("prefcover_solvecache_invalidated_total",
			"Cached solve results dropped because their graph content was replaced or deleted."),
		cacheEntries: r.NewGauge("prefcover_solvecache_entries",
			"Cached solve results at scrape time."),
		storeGraphs: r.NewGauge("prefcover_store_graphs",
			"Graphs registered at scrape time."),
		storeBytes: r.NewGauge("prefcover_store_bytes",
			"Approximate bytes of registered graph content."),
		graphSolves: r.NewGauge("prefcover_store_graph_solves",
			"Solver runs recorded against each registered graph.", "graph"),
		jobsTotal: r.NewCounter("prefcover_jobs_total",
			"Async jobs reaching a terminal state, by outcome.", "outcome"),
		jobsQueueDepth: r.NewGauge("prefcover_jobs_queue_depth",
			"Async jobs queued but not yet running."),
		jobsRunning: r.NewGauge("prefcover_jobs_running",
			"Async jobs executing at scrape time."),
		goroutines: r.NewGauge("prefcover_runtime_goroutines",
			"Goroutines at scrape time."),
		heapAlloc: r.NewGauge("prefcover_runtime_heap_alloc_bytes",
			"Bytes of allocated heap objects at scrape time."),
		heapSys: r.NewGauge("prefcover_runtime_heap_sys_bytes",
			"Bytes of heap obtained from the OS."),
		gcCycles: r.NewGauge("prefcover_runtime_gc_cycles_total",
			"Completed GC cycles since process start."),
		gcPause: r.NewFloatGauge("prefcover_runtime_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause seconds."),
		uptime: r.NewFloatGauge("prefcover_process_uptime_seconds",
			"Seconds since the server was constructed."),
	}
}

// Handler returns the routed, instrumented http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", false, s.handleHealth))
	mux.HandleFunc("/readyz", s.instrument("/readyz", false, s.handleReady))
	mux.HandleFunc("/version", s.instrument("/version", false, s.handleVersion))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/statusz", s.handleStatusz)
	mux.Handle("/debug/profilez", s.capturer.Handler())
	if s.monitor != nil {
		mux.Handle("/debug/slo", s.monitor.DebugHandler())
	} else {
		mux.Handle("/debug/slo", slo.DisabledHandler())
	}
	if s.enablePprof {
		// The stock pprof handlers, on the same mux as every other
		// /debug/* page (no second listener): live one-shot pulls for
		// `go tool pprof http://...`, alongside profilez's retained ring.
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
	// withFaults sits inside instrument so injected failures are metered
	// and logged like organic ones; it is a no-op until an injector is
	// installed (-fault-spec or /debug/faults).
	mux.HandleFunc("/v1/adapt", s.instrument("/v1/adapt", true, s.withFaults(s.handleAdapt)))
	mux.HandleFunc("/v1/solve", s.instrument("/v1/solve", true, s.withFaults(s.handleSolve)))
	mux.HandleFunc("/v1/pipeline", s.instrument("/v1/pipeline", true, s.withFaults(s.handlePipeline)))
	mux.HandleFunc("/v1/stats", s.instrument("/v1/stats", true, s.withFaults(s.handleStats)))
	mux.HandleFunc("/v1/graphs", s.instrument("/v1/graphs", false, s.withFaults(s.handleGraphList)))
	mux.HandleFunc("/v1/graphs/", s.instrument("/v1/graphs/{name}", true, s.withFaults(s.handleGraph)))
	// Job endpoints bypass the request limiter: submission only enqueues
	// (the solve itself acquires a slot from the worker side) and status
	// polling must stay available while every slot is busy solving.
	mux.HandleFunc("/v1/jobs", s.instrument("/v1/jobs", false, s.withFaults(s.handleJobs)))
	mux.HandleFunc("/v1/jobs/", s.instrument("/v1/jobs/{id}", false, s.withFaults(s.handleJob)))
	if s.faultControl {
		mux.HandleFunc("/debug/faults", s.instrument("/debug/faults", false, s.handleFaults))
	}
	return mux
}

// errCapacity is the 429 load-shed error.
func errCapacity(maxConcurrent int) error {
	return fmt.Errorf("server at capacity (%d concurrent requests)", maxConcurrent)
}

// requestCtx derives the per-request work context: the client connection
// context (so disconnects cancel the solve) bounded by SolveTimeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.limits.SolveTimeout > 0 {
		return context.WithTimeout(r.Context(), s.limits.SolveTimeout)
	}
	return r.Context(), func() {}
}

// writeWorkError maps a pipeline/solve failure to a status: deadline and
// cancellation become 503 (the request was valid, the server gave up),
// everything else stays a client error.
func (s *Server) writeWorkError(w http.ResponseWriter, r *http.Request, endpoint string, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.met.rejected.With(endpoint, "timeout").Inc()
		s.writeError(w, r, http.StatusServiceUnavailable, fmt.Errorf("request aborted: %w", err))
		return
	}
	s.writeError(w, r, http.StatusBadRequest, err)
}

// solve runs the solver with metrics, tracing, profiling attribution and
// cancellation attached: when the request is being recorded, a "solve"
// span wraps the run and the ProgressEvent stream is folded into one
// child span per greedy iteration (no extra solver plumbing). The solver
// goroutine carries pprof labels (graph/strategy/endpoint/k_bucket/job)
// so CPU samples are attributable per workload, per-solve resource usage
// (CPU, allocations, GC pause) is measured around the run, and the
// iteration stream's MaxRemainingGain bounds are folded into the
// approximation-gap certificate. The returned Usage is nil only when the
// solver never ran.
func (s *Server) solve(ctx context.Context, g *prefcover.Graph, opts prefcover.Options) (*prefcover.Solution, *profilez.Usage, error) {
	strategy := solveStrategy(opts)
	_, span := trace.StartSpan(ctx, "solve")
	span.SetAttr("strategy", strategy)
	defer span.End()
	recordIteration := trace.IterationRecorderStages(span, func(stage string, seconds float64) {
		s.met.solveStage.With(stage).Observe(seconds)
	})
	var reevals int64
	// The certificate: after iteration i any size-k solution satisfies
	// f(OPT_k) <= C(S_i) + k*bound_i (monotone submodularity), so the min
	// over iterations — capped at 1, cover can't exceed it — upper-bounds
	// the optimum, and minUB - finalCover bounds the approximation gap.
	minUB := math.Inf(1)
	budgetK := float64(opts.K)
	// Chain rather than replace any caller-supplied Progress hook (async
	// jobs feed their status endpoint through it).
	prev := opts.Progress
	opts.Progress = func(ev prefcover.ProgressEvent) {
		reevals += ev.Reevaluated
		if budgetK > 0 && ev.MaxRemainingGain >= 0 {
			ub := ev.Cover + budgetK*ev.MaxRemainingGain
			if ub > 1 {
				ub = 1
			}
			if ub < minUB {
				minUB = ub
			}
		}
		recordIteration(ev)
		if prev != nil {
			prev(ev)
		}
	}

	// Inline bodies have no registry name; label them "inline" so every
	// CPU sample is attributable by graph, not just registered traffic.
	graphName := graphNameFrom(ctx)
	if graphName == "" {
		graphName = "inline"
	}
	labels := profilez.SolveLabels{
		Graph:    graphName,
		Strategy: strategy,
		Endpoint: endpointFrom(ctx),
		K:        opts.K,
		Job:      jobs.IDFrom(ctx),
	}
	var sol *prefcover.Solution
	var err error
	before := profilez.TakeSample()
	profilez.Do(ctx, labels, func(ctx context.Context) {
		sol, err = prefcover.SolveContext(ctx, g, opts)
	})
	usage := profilez.Since(before)

	s.met.solveCPUSeconds.With(strategy).Add(float64(usage.CPUNanos) / 1e9)
	s.met.solveAllocBytes.With(strategy).Add(usage.AllocBytes)
	s.met.solveGCPause.With(strategy).Add(float64(usage.GCPauseNanos) / 1e9)
	s.accountant.Record(labels.Graph, strategy, usage)
	span.SetAttr("wallNs", usage.WallNanos)
	span.SetAttr("cpuNs", usage.CPUNanos)
	span.SetAttr("allocBytes", usage.AllocBytes)
	span.SetAttr("gcPauseNs", usage.GCPauseNanos)

	if sol != nil {
		s.met.solverIterations.With(strategy).Add(int64(len(sol.Order)))
		s.met.solverEvals.With(strategy).Add(sol.GainEvals)
		s.met.solverReevals.With(strategy).Add(reevals)
		span.SetAttr("iterations", len(sol.Order))
		span.SetAttr("gainEvals", sol.GainEvals)
		span.SetAttr("cover", sol.Cover)
		if err == nil && !math.IsInf(minUB, 1) {
			gap := minUB - sol.Cover
			if gap < 0 {
				gap = 0 // float slack; the bound can't be beaten for real
			}
			span.SetAttr("optUpperBound", minUB)
			span.SetAttr("approxGap", gap)
			s.met.approxGap.With(strategy).Observe(gap)
		}
	}
	outcome := "ok"
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		outcome = "canceled"
	case err != nil:
		outcome = "error"
	}
	span.SetAttr("outcome", outcome)
	s.met.solves.With(strategy, outcome).Inc()
	return sol, &usage, err
}

// solveStrategy names the solver's resolved strategy for metric labels.
func solveStrategy(opts prefcover.Options) string {
	return opts.StrategyName()
}

// apiError is the JSON error envelope; RequestID lets a client quote the
// exact server-side log lines for its failure.
type apiError struct {
	Error     string `json:"error"`
	RequestID string `json:"requestId,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	reqID := requestIDFrom(r.Context())
	if s.logger != nil {
		s.logger.LogAttrs(r.Context(), slog.LevelWarn, "request failed",
			slog.String("error", err.Error()),
			slog.Int("status", status),
			slog.String("request_id", reqID),
		)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error(), RequestID: reqID})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// readyResponse is the /readyz body. Beyond the ready bit it carries the
// load signals a routing gateway uses for its least-loaded tiebreak:
// queued and running async jobs plus occupied solver slots, all cheap
// snapshots (no /metrics scrape needed on the probe path).
type readyResponse struct {
	Status     string `json:"status"` // "ready" | "unavailable"
	Graphs     int    `json:"graphs"`
	QueueDepth int    `json:"queueDepth"`
	QueueCap   int    `json:"queueCap"`
	Running    int    `json:"running"`
	InFlight   int    `json:"inFlight"` // occupied solver slots (0 when unlimited)
}

// handleReady is the readiness probe: 200 while the server can take new
// work, 503 once the async job queue is saturated (a submit would be
// rejected with ErrQueueFull). Liveness stays on /healthz; gateways and
// orchestrators should probe this endpoint instead.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := readyResponse{
		Status:     "ready",
		Graphs:     s.store.Len(),
		QueueDepth: s.jobs.Depth(),
		QueueCap:   s.jobs.Cap(),
		Running:    s.jobs.Running(),
		InFlight:   len(s.sem),
	}
	if resp.QueueDepth >= resp.QueueCap {
		resp.Status = "unavailable"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// handleVersion reports the build identity, so traces and benchmark
// trajectories can be tied to an exact revision.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, version.Get())
}

// adaptResponse is the /v1/adapt reply.
type adaptResponse struct {
	Variant          string          `json:"variant"`
	VariantConfident bool            `json:"variantConfident"`
	Report           *adapt.Report   `json:"report"`
	Graph            json.RawMessage `json:"graph"`
}

func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	return s.allowMethods(w, r, http.MethodPost)
}

// readSessions buffers the request clickstream (the trace's "parse"
// phase).
func (s *Server) readSessions(r *http.Request) (*clickstream.Store, error) {
	_, span := trace.StartSpan(r.Context(), "parse")
	defer span.End()
	store, err := clickstream.ReadAll(clickstream.NewJSONLReader(r.Body))
	if err != nil {
		return nil, fmt.Errorf("parsing JSONL clickstream: %w", err)
	}
	if store.Len() == 0 {
		return nil, fmt.Errorf("empty clickstream")
	}
	span.SetAttr("sessions", store.Len())
	return store, nil
}

// adaptStore runs the adaptation with optional variant auto-selection
// (the trace's "adapt" phase, with "recommend" and "rebuild" sub-spans on
// the auto path).
func adaptStore(ctx context.Context, store *clickstream.Store, variantParam string) (*prefcover.Graph, *adapt.Report, prefcover.Variant, bool, error) {
	ctx, span := trace.StartSpan(ctx, "adapt")
	defer span.End()
	if variantParam == "" || variantParam == "auto" {
		g, rep, err := adapt.BuildGraph(store, adapt.Options{ComputeFitness: true, Ctx: ctx})
		if err != nil {
			return nil, nil, 0, false, err
		}
		rsp := span.Child("recommend")
		variant, confident := rep.RecommendVariant()
		rsp.SetAttr("variant", variant.String())
		rsp.SetAttr("confident", confident)
		rsp.End()
		if variant == prefcover.Normalized {
			rebuild := span.Child("rebuild")
			store.Reset()
			g2, rep2, err := adapt.BuildGraph(store, adapt.Options{Variant: variant, Ctx: ctx})
			rebuild.End()
			if err != nil {
				return nil, nil, 0, false, err
			}
			rep2.SingleAlternativeShare = rep.SingleAlternativeShare
			rep2.MeanPairwiseNMI = rep.MeanPairwiseNMI
			rep2.FitnessComputed = true
			span.SetAttr("nodes", g2.NumNodes())
			span.SetAttr("edges", g2.NumEdges())
			return g2, rep2, variant, confident, nil
		}
		span.SetAttr("nodes", g.NumNodes())
		span.SetAttr("edges", g.NumEdges())
		return g, rep, variant, confident, nil
	}
	variant, err := prefcover.ParseVariant(variantParam)
	if err != nil {
		return nil, nil, 0, false, err
	}
	g, rep, err := adapt.BuildGraph(store, adapt.Options{Variant: variant, Ctx: ctx})
	if g != nil {
		span.SetAttr("nodes", g.NumNodes())
		span.SetAttr("edges", g.NumEdges())
	}
	return g, rep, variant, true, err
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	store, err := s.readSessions(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	g, rep, variant, confident, err := adaptStore(ctx, store, r.URL.Query().Get("variant"))
	if err != nil {
		s.writeWorkError(w, r, "/v1/adapt", err)
		return
	}
	var buf bytes.Buffer
	if err := prefcover.WriteGraphJSON(&buf, g); err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, adaptResponse{
		Variant:          variant.String(),
		VariantConfident: confident,
		Report:           rep,
		Graph:            json.RawMessage(bytes.TrimSpace(buf.Bytes())),
	})
}

// solveResponse is the /v1/solve and /v1/pipeline solver payload.
type solveResponse struct {
	Variant  string    `json:"variant"`
	K        int       `json:"k"`
	Cover    float64   `json:"cover"`
	Reached  bool      `json:"reached"`
	Order    []string  `json:"order"`
	Gains    []float64 `json:"gains"`
	Coverage []float64 `json:"coverage"`
	// Resources is the per-solve resource accounting when the solver
	// actually ran for this response; absent on cache hits, which cost no
	// solver work by construction.
	Resources *profilez.Usage `json:"resources,omitempty"`
}

// solveParams parses solver query parameters shared by /v1/solve and
// /v1/pipeline.
func (s *Server) solveParams(r *http.Request) (prefcover.Options, error) {
	q := r.URL.Query()
	opts := prefcover.Options{Lazy: true}
	if v := q.Get("lazy"); v == "0" || v == "false" {
		opts.Lazy = false
	}
	if v := q.Get("strategy"); v != "" {
		// An explicit strategy supersedes the lazy/workers knobs (this is
		// how the lazyflat and sketch kernels are selected over HTTP).
		strat, err := prefcover.ParseStrategy(v)
		if err != nil {
			return opts, fmt.Errorf("bad strategy %q", v)
		}
		opts.Strategy = strat
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad workers %q", v)
		}
		opts.Workers = n
	}
	if v := q.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 {
			return opts, fmt.Errorf("bad k %q", v)
		}
		if s.limits.MaxSolveK > 0 && k > s.limits.MaxSolveK {
			return opts, fmt.Errorf("k %d exceeds server limit %d", k, s.limits.MaxSolveK)
		}
		opts.K = k
	}
	if v := q.Get("threshold"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return opts, fmt.Errorf("bad threshold %q", v)
		}
		opts.Threshold = t
	}
	if opts.K == 0 && opts.Threshold == 0 {
		return opts, fmt.Errorf("need k or threshold")
	}
	return opts, nil
}

func solutionPayload(g *prefcover.Graph, variant prefcover.Variant, sol *prefcover.Solution) solveResponse {
	order := make([]string, len(sol.Order))
	for i, v := range sol.Order {
		order[i] = g.Label(v)
	}
	return solveResponse{
		Variant:  variant.String(),
		K:        len(sol.Order),
		Cover:    sol.Cover,
		Reached:  sol.Reached,
		Order:    order,
		Gains:    sol.Gains,
		Coverage: sol.Coverage,
	}
}

// readGraphBody parses the request graph (the trace's "parse" phase) in
// the format the Content-Type negotiates: JSON by default, the binary or
// TSV codec on request, 415 for anything unrecognized.
func readGraphBody(r *http.Request) (*prefcover.Graph, error) {
	format, err := graphFormatFromContentType(r.Header.Get("Content-Type"))
	if err != nil {
		return nil, err
	}
	_, span := trace.StartSpan(r.Context(), "parse")
	defer span.End()
	g, err := decodeGraph(r.Body, format)
	if err != nil {
		return nil, err
	}
	span.SetAttr("nodes", g.NumNodes())
	span.SetAttr("edges", g.NumEdges())
	return g, nil
}

// writeGraphBodyError maps graph-parse failures to their status: an
// unrecognized media type is 415, everything else a plain 400.
func (s *Server) writeGraphBodyError(w http.ResponseWriter, r *http.Request, err error) {
	var um *errUnsupportedMedia
	if errors.As(err, &um) {
		s.writeError(w, r, http.StatusUnsupportedMediaType, err)
		return
	}
	s.writeError(w, r, http.StatusBadRequest, err)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	variant, err := prefcover.ParseVariant(r.URL.Query().Get("variant"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opts, err := s.solveParams(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opts.Variant = variant
	pinLabels := r.URL.Query()["pin"]

	// A JSON body may be a reference ({"graph_ref": "name"}) instead of an
	// inline graph; binary and TSV bodies are always inline.
	format, err := graphFormatFromContentType(r.Header.Get("Content-Type"))
	if err != nil {
		s.writeError(w, r, http.StatusUnsupportedMediaType, err)
		return
	}
	if format == formatJSON {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		var probe struct {
			GraphRef string `json:"graph_ref"`
		}
		// An inline graph document ({"nodes": ..., "edges": ...}) decodes
		// into the probe with an empty ref, so this cannot misfire.
		if json.Unmarshal(body, &probe) == nil && probe.GraphRef != "" {
			s.solveByRef(w, r, probe.GraphRef, variant, opts, pinLabels)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	g, err := readGraphBody(r)
	if err != nil {
		s.writeGraphBodyError(w, r, err)
		return
	}
	pinned, err := prefcover.LookupAll(g, pinLabels)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opts.Pinned = pinned
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	sol, usage, err := s.solve(ctx, g, opts)
	if err != nil {
		s.writeWorkError(w, r, "/v1/solve", err)
		return
	}
	resp := solutionPayload(g, variant, sol)
	resp.Resources = usage
	writeJSON(w, resp)
}

// handleStats summarizes an uploaded graph (Table 2-style columns plus
// degree structure) without solving anything.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	g, err := readGraphBody(r)
	if err != nil {
		s.writeGraphBodyError(w, r, err)
		return
	}
	writeJSON(w, prefcover.ComputeStats(g))
}

// pipelineResponse is the /v1/pipeline reply.
type pipelineResponse struct {
	Adapt adaptResponse `json:"adapt"`
	Solve solveResponse `json:"solve"`
}

func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	opts, err := s.solveParams(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	store, err := s.readSessions(r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	g, rep, variant, confident, err := adaptStore(ctx, store, r.URL.Query().Get("variant"))
	if err != nil {
		s.writeWorkError(w, r, "/v1/pipeline", err)
		return
	}
	opts.Variant = variant
	sol, usage, err := s.solve(ctx, g, opts)
	if err != nil {
		s.writeWorkError(w, r, "/v1/pipeline", err)
		return
	}
	var buf bytes.Buffer
	if err := prefcover.WriteGraphJSON(&buf, g); err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	solveResp := solutionPayload(g, variant, sol)
	solveResp.Resources = usage
	writeJSON(w, pipelineResponse{
		Adapt: adaptResponse{
			Variant:          variant.String(),
			VariantConfident: confident,
			Report:           rep,
			Graph:            json.RawMessage(bytes.TrimSpace(buf.Bytes())),
		},
		Solve: solveResp,
	})
}
