// Package server implements the paper's end-to-end system (Figure 2) as an
// HTTP service: the Data Adaptation Engine and the Preference Cover Solver
// behind a small JSON API. cmd/prefcoverd wires it to a listener; the
// package itself is net/http-handler based and fully testable with
// httptest.
//
// Endpoints:
//
//	GET  /healthz                         liveness probe
//	POST /v1/adapt?variant=auto|i|n       body: JSONL clickstream
//	                                      -> {graph, report, variant}
//	POST /v1/solve?variant=i|n&k=K        body: graph JSON
//	     [&threshold=T&lazy=0|1&workers=W]
//	                                      -> {order, cover, coverage, gains}
//	POST /v1/pipeline?k=K[...]            body: JSONL clickstream
//	                                      -> adapt + recommend + solve
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"prefcover"
	"prefcover/adapt"
	"prefcover/clickstream"
)

// Limits protects the service from oversized requests.
type Limits struct {
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
	// MaxSolveK caps the solvable budget (default: unlimited).
	MaxSolveK int
}

// Server is the HTTP handler set.
type Server struct {
	limits Limits
	logger *log.Logger
}

// New returns a Server with the given limits; a nil logger discards logs.
func New(limits Limits, logger *log.Logger) *Server {
	if limits.MaxBodyBytes <= 0 {
		limits.MaxBodyBytes = 64 << 20
	}
	return &Server{limits: limits, logger: logger}
}

// Handler returns the routed http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/adapt", s.handleAdapt)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/pipeline", s.handlePipeline)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.logf("request failed: %v", err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// adaptResponse is the /v1/adapt reply.
type adaptResponse struct {
	Variant          string          `json:"variant"`
	VariantConfident bool            `json:"variantConfident"`
	Report           *adapt.Report   `json:"report"`
	Graph            json.RawMessage `json:"graph"`
}

func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
	return true
}

// readSessions buffers the request clickstream.
func (s *Server) readSessions(r *http.Request) (*clickstream.Store, error) {
	store, err := clickstream.ReadAll(clickstream.NewJSONLReader(r.Body))
	if err != nil {
		return nil, fmt.Errorf("parsing JSONL clickstream: %w", err)
	}
	if store.Len() == 0 {
		return nil, fmt.Errorf("empty clickstream")
	}
	return store, nil
}

// adaptStore runs the adaptation with optional variant auto-selection.
func adaptStore(store *clickstream.Store, variantParam string) (*prefcover.Graph, *adapt.Report, prefcover.Variant, bool, error) {
	if variantParam == "" || variantParam == "auto" {
		g, rep, err := adapt.BuildGraph(store, adapt.Options{ComputeFitness: true})
		if err != nil {
			return nil, nil, 0, false, err
		}
		variant, confident := rep.RecommendVariant()
		if variant == prefcover.Normalized {
			store.Reset()
			g2, rep2, err := adapt.BuildGraph(store, adapt.Options{Variant: variant})
			if err != nil {
				return nil, nil, 0, false, err
			}
			rep2.SingleAlternativeShare = rep.SingleAlternativeShare
			rep2.MeanPairwiseNMI = rep.MeanPairwiseNMI
			rep2.FitnessComputed = true
			return g2, rep2, variant, confident, nil
		}
		return g, rep, variant, confident, nil
	}
	variant, err := prefcover.ParseVariant(variantParam)
	if err != nil {
		return nil, nil, 0, false, err
	}
	g, rep, err := adapt.BuildGraph(store, adapt.Options{Variant: variant})
	return g, rep, variant, true, err
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	store, err := s.readSessions(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	g, rep, variant, confident, err := adaptStore(store, r.URL.Query().Get("variant"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var buf bytes.Buffer
	if err := prefcover.WriteGraphJSON(&buf, g); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, adaptResponse{
		Variant:          variant.String(),
		VariantConfident: confident,
		Report:           rep,
		Graph:            json.RawMessage(bytes.TrimSpace(buf.Bytes())),
	})
}

// solveResponse is the /v1/solve and /v1/pipeline solver payload.
type solveResponse struct {
	Variant  string    `json:"variant"`
	K        int       `json:"k"`
	Cover    float64   `json:"cover"`
	Reached  bool      `json:"reached"`
	Order    []string  `json:"order"`
	Gains    []float64 `json:"gains"`
	Coverage []float64 `json:"coverage"`
}

// solveParams parses solver query parameters shared by /v1/solve and
// /v1/pipeline.
func (s *Server) solveParams(r *http.Request) (prefcover.Options, error) {
	q := r.URL.Query()
	opts := prefcover.Options{Lazy: true}
	if v := q.Get("lazy"); v == "0" || v == "false" {
		opts.Lazy = false
	}
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, fmt.Errorf("bad workers %q", v)
		}
		opts.Workers = n
	}
	if v := q.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 {
			return opts, fmt.Errorf("bad k %q", v)
		}
		if s.limits.MaxSolveK > 0 && k > s.limits.MaxSolveK {
			return opts, fmt.Errorf("k %d exceeds server limit %d", k, s.limits.MaxSolveK)
		}
		opts.K = k
	}
	if v := q.Get("threshold"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return opts, fmt.Errorf("bad threshold %q", v)
		}
		opts.Threshold = t
	}
	if opts.K == 0 && opts.Threshold == 0 {
		return opts, fmt.Errorf("need k or threshold")
	}
	return opts, nil
}

func solutionPayload(g *prefcover.Graph, variant prefcover.Variant, sol *prefcover.Solution) solveResponse {
	order := make([]string, len(sol.Order))
	for i, v := range sol.Order {
		order[i] = g.Label(v)
	}
	return solveResponse{
		Variant:  variant.String(),
		K:        len(sol.Order),
		Cover:    sol.Cover,
		Reached:  sol.Reached,
		Order:    order,
		Gains:    sol.Gains,
		Coverage: sol.Coverage,
	}
}

// readGraphBody parses the request graph: application/octet-stream means
// the compact binary codec, anything else the JSON document.
func readGraphBody(r *http.Request) (*prefcover.Graph, error) {
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		g, err := prefcover.ReadGraphBinary(r.Body)
		if err != nil {
			return nil, fmt.Errorf("parsing binary graph: %w", err)
		}
		return g, nil
	}
	g, err := prefcover.ReadGraphJSON(r.Body, prefcover.BuildOptions{})
	if err != nil {
		return nil, fmt.Errorf("parsing graph JSON: %w", err)
	}
	return g, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	variant, err := prefcover.ParseVariant(r.URL.Query().Get("variant"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, err := s.solveParams(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	opts.Variant = variant
	g, err := readGraphBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sol, err := prefcover.Solve(g, opts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, solutionPayload(g, variant, sol))
}

// handleStats summarizes an uploaded graph (Table 2-style columns plus
// degree structure) without solving anything.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	g, err := readGraphBody(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, prefcover.ComputeStats(g))
}

// pipelineResponse is the /v1/pipeline reply.
type pipelineResponse struct {
	Adapt adaptResponse `json:"adapt"`
	Solve solveResponse `json:"solve"`
}

func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	opts, err := s.solveParams(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	store, err := s.readSessions(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	g, rep, variant, confident, err := adaptStore(store, r.URL.Query().Get("variant"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	opts.Variant = variant
	sol, err := prefcover.Solve(g, opts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var buf bytes.Buffer
	if err := prefcover.WriteGraphJSON(&buf, g); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, pipelineResponse{
		Adapt: adaptResponse{
			Variant:          variant.String(),
			VariantConfident: confident,
			Report:           rep,
			Graph:            json.RawMessage(bytes.TrimSpace(buf.Bytes())),
		},
		Solve: solutionPayload(g, variant, sol),
	})
}
