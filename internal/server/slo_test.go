package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prefcover/internal/faults"
	"prefcover/internal/slo"
)

// testLogger keeps transition logs out of the test output.
func testLogger(t *testing.T) *slog.Logger {
	t.Helper()
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// sloSpec parses or fails the test.
func sloSpec(t *testing.T, text string) slo.Spec {
	t.Helper()
	s, err := slo.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerSLOEndToEnd drives real HTTP traffic with injected faults
// through a server whose monitor is ticked manually, and watches the
// alert reach firing on /metrics and /debug/slo.
func TestServerSLOEndToEnd(t *testing.T) {
	s, err := NewWithConfig(Config{
		Logger: testLogger(t),
		SLO: SLOConfig{
			Spec:           sloSpec(t, "avail:/v1/solve:99"),
			ScrapeInterval: time.Hour, // the loop's first immediate tick, then manual Ticks
			FastWindow:     100 * time.Millisecond,
			SlowWindow:     200 * time.Millisecond,
			ForDuration:    time.Nanosecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Monitor() == nil {
		t.Fatal("monitor should be constructed")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// All /v1/solve requests fail: injected 500s via the fault layer.
	inj, err := faults.ParseSpec("seed=1,error=1.0")
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(faults.New(inj))

	drive := func(n int) {
		for i := 0; i < n; i++ {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(`{}`))
			if err != nil {
				t.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}

	// Ticks bracket the error traffic so the windows see real increases;
	// wall sleeps keep elapsed > 0 between snapshots.
	state := func() slo.State {
		st := s.Monitor().Status()
		if len(st.Alerts) != 1 {
			t.Fatalf("alerts = %+v", st.Alerts)
		}
		return st.Alerts[0].State
	}
	deadline := time.Now().Add(10 * time.Second)
	for state() != slo.StateFiring {
		if time.Now().After(deadline) {
			t.Fatalf("alert never fired; status %+v", s.Monitor().Status())
		}
		drive(20)
		time.Sleep(5 * time.Millisecond)
		s.Monitor().Tick()
	}

	// The ALERTS series must be visible on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	want := `ALERTS{alertname="avail_burn",endpoint="/v1/solve",severity="critical",state="firing"} 1`
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metrics missing %q:\n%s", want, firstLines(string(body), 20))
	}

	// /debug/slo reports the same state in both representations.
	req, _ := http.NewRequest("GET", ts.URL+"/debug/slo", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st slo.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if !st.Enabled || len(st.Alerts) != 1 || st.Alerts[0].State != slo.StateFiring {
		t.Fatalf("/debug/slo JSON = %+v", st)
	}
	resp, err = http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(page), "firing") {
		t.Fatalf("/debug/slo HTML missing firing state:\n%s", firstLines(string(page), 30))
	}

	// Disarm the faults and drive clean traffic: the alert must resolve.
	s.SetFaults(nil)
	deadline = time.Now().Add(10 * time.Second)
	for state() != slo.StateResolved {
		if time.Now().After(deadline) {
			t.Fatalf("alert never resolved; status %+v", s.Monitor().Status())
		}
		drive(40)
		time.Sleep(5 * time.Millisecond)
		s.Monitor().Tick()
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(body), `state="resolved"} 1`) {
		t.Fatal("/metrics missing resolved series after recovery")
	}
	if !strings.Contains(string(body), `state="firing"} 0`) {
		t.Fatal("/metrics should show an explicit 0 on the firing series after recovery")
	}
}

// TestServerSLODisabled checks the off state: no monitor, no background
// loop, /debug/slo explains itself.
func TestServerSLODisabled(t *testing.T) {
	s := New(Limits{}, testLogger(t))
	defer s.Close()
	if s.Monitor() != nil {
		t.Fatal("monitor should be nil without SLOConfig")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "disabled") {
		t.Fatalf("disabled /debug/slo: %d %q", resp.StatusCode, firstLines(string(body), 5))
	}
}

// TestSLOConcurrentScrapeEvaluateRender hammers the monitor from every
// side at once — the self-scrape loop, traffic mutating the registry,
// /metrics renders, /debug/slo renders — under the race detector.
func TestSLOConcurrentScrapeEvaluateRender(t *testing.T) {
	s, err := NewWithConfig(Config{
		Logger: testLogger(t),
		SLO: SLOConfig{
			Spec:           sloSpec(t, "avail:/v1/solve:99.9,p99:/v1/solve:0.05"),
			ScrapeInterval: time.Millisecond,
			FastWindow:     50 * time.Millisecond,
			SlowWindow:     100 * time.Millisecond,
			ForDuration:    5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	get := func(path, accept string) {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return // server may be shutting down
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
					strings.NewReader(fmt.Sprintf(`{"bad": %d}`, i)))
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
			}
		}(i)
	}
	for _, path := range []string{"/metrics", "/debug/slo"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get(path, "")
				get(path, "application/json")
			}
		}(path)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Monitor().Tick() // external ticks race the internal loop on purpose
			s.Monitor().Status()
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	ts.Close()
	s.Close()
}

// firstLines truncates noisy bodies in failure messages.
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
