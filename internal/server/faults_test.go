package server

// Deterministic tests for the fault-injection layer and the job
// idempotency keys — the pieces the chaos harness later exercises under
// randomized load. Here every spec uses probability 1, so each behavior
// is provoked on demand.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"prefcover/internal/faults"
	"prefcover/internal/store"
)

func mustSpec(t *testing.T, text string) faults.Spec {
	t.Helper()
	spec, err := faults.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestFaultMiddlewareInjectedError(t *testing.T) {
	_, ts := newServingServer(t, Config{Faults: faults.New(mustSpec(t, "error=1"))})
	resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/graphs", nil, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var apiErr struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(body, &apiErr); err != nil {
		t.Fatalf("injected error body is not the JSON envelope: %v (%q)", err, body)
	}
	if !strings.Contains(apiErr.Error, "injected fault") || apiErr.RequestID == "" {
		t.Fatalf("envelope = %+v, want injected-fault message with a request id", apiErr)
	}
	// Non-/v1 endpoints are exempt: health stays green under full chaos.
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under faults = %d, want 200", resp.StatusCode)
	}
}

func TestFaultMiddlewareThrottleAndUnavailAdvertiseRetryAfter(t *testing.T) {
	cases := []struct {
		spec string
		want int
	}{
		{"throttle=1,retryafter=2s", http.StatusTooManyRequests},
		{"unavail=1,retryafter=2s", http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		_, ts := newServingServer(t, Config{Faults: faults.New(mustSpec(t, tc.spec))})
		resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/graphs", nil, nil)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status = %d, want %d", tc.spec, resp.StatusCode, tc.want)
		}
		if got := resp.Header.Get("Retry-After"); got != "2" {
			t.Fatalf("%s: Retry-After = %q, want \"2\"", tc.spec, got)
		}
	}
}

func TestFaultMiddlewareResetDropsConnection(t *testing.T) {
	_, ts := newServingServer(t, Config{Faults: faults.New(mustSpec(t, "reset=1"))})
	_, err := http.Get(ts.URL + "/v1/graphs")
	if err == nil {
		t.Fatal("reset fault should surface as a transport error, got a response")
	}
}

func TestFaultMiddlewarePartialTruncatesResponse(t *testing.T) {
	srv, ts := newServingServer(t, Config{Faults: faults.New(mustSpec(t, "partial=1"))})
	// Upload without faults so there is a real response to truncate, then
	// re-enable for the read.
	srv.SetFaults(nil)
	g := servingGraph(t, 60)
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/g",
		http.Header{"Content-Type": {"application/json"}}, graphJSON(t, g))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("setup PUT = %d", resp.StatusCode)
	}
	srv.SetFaults(faults.New(mustSpec(t, "partial=1")))
	r, err := http.Get(ts.URL + "/v1/graphs/g")
	if err == nil {
		_, err = io.ReadAll(r.Body)
		r.Body.Close()
	}
	if err == nil {
		t.Fatal("partial fault should truncate the response mid-body")
	}
}

func TestDiskFaultsFailPut(t *testing.T) {
	_, ts := newServingServer(t, Config{
		Store: store.Options{
			Dir:    t.TempDir(),
			Faults: faults.New(mustSpec(t, "error=1")),
		},
	})
	g := servingGraph(t, 40)
	resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/g",
		http.Header{"Content-Type": {"application/json"}}, graphJSON(t, g))
	// An injected persistence failure is a server fault (500), never a 400.
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "injected fault") {
		t.Fatalf("body %q should name the injected fault", body)
	}
	// The failed put must leave nothing behind — not in memory, not on disk.
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/graphs/g", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("graph visible after failed persist: %d", resp.StatusCode)
	}
}

func TestDiskFaultsPartialWrite(t *testing.T) {
	dir := t.TempDir()
	_, ts := newServingServer(t, Config{
		Store: store.Options{
			Dir:    dir,
			Faults: faults.New(mustSpec(t, "partial=1")),
		},
	})
	// Big enough that its encoding exceeds any drawn truncation point
	// (limit <= 4096 bytes).
	g := servingGraph(t, 2000)
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/g",
		http.Header{"Content-Type": {"application/json"}}, graphJSON(t, g))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 on torn write", resp.StatusCode)
	}
	// The torn temp file must have been cleaned up.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("leftover file after torn write: %s", e.Name())
	}
}

func TestDebugFaultsEndpoint(t *testing.T) {
	srv, ts := newServingServer(t, Config{FaultControl: true})
	// Starts disabled.
	resp, body := doReq(t, http.MethodGet, ts.URL+"/debug/faults", nil, nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"enabled":false`) {
		t.Fatalf("initial state = %d %q", resp.StatusCode, body)
	}
	// Install a spec; the echo is the canonical form.
	resp, body = doReq(t, http.MethodPut, ts.URL+"/debug/faults", nil, []byte("seed=3,error=1"))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "seed=3,error=1") {
		t.Fatalf("install = %d %q", resp.StatusCode, body)
	}
	if srv.Faults() == nil {
		t.Fatal("injector not installed")
	}
	// The installed spec takes effect immediately.
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/graphs", nil, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("after install: /v1/graphs = %d, want 500", resp.StatusCode)
	}
	// Counts are visible.
	_, body = doReq(t, http.MethodGet, ts.URL+"/debug/faults", nil, nil)
	if !strings.Contains(string(body), `"total":1`) {
		t.Fatalf("counts not reflected: %q", body)
	}
	// Bad specs are rejected without replacing the injector.
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/debug/faults", nil, []byte("error=9"))
	if resp.StatusCode != http.StatusBadRequest || srv.Faults() == nil {
		t.Fatalf("bad spec: status %d, injector %v", resp.StatusCode, srv.Faults())
	}
	// DELETE removes it.
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/debug/faults", nil, nil)
	if resp.StatusCode != http.StatusNoContent || srv.Faults() != nil {
		t.Fatalf("delete: status %d, injector %v", resp.StatusCode, srv.Faults())
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/graphs", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after delete: /v1/graphs = %d, want 200", resp.StatusCode)
	}
}

func TestDebugFaultsAbsentWithoutFaultControl(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/debug/faults", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/faults without FaultControl = %d, want 404", resp.StatusCode)
	}
}

func TestJobSubmitIdempotencyKey(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	g := servingGraph(t, 60)
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/g",
		http.Header{"Content-Type": {"application/json"}}, graphJSON(t, g))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	payload := []byte(`{"graph_ref":"g","variant":"independent","k":5}`)
	hdr := http.Header{
		"Content-Type":    {"application/json"},
		"Idempotency-Key": {"chaos-key-1"},
	}
	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", hdr, payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d %q", resp.StatusCode, body)
	}
	var first struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &first); err != nil || first.ID == "" {
		t.Fatalf("first submit body %q: %v", body, err)
	}
	// Resending the identical request (the client retrying after a lost
	// response) must land on the same job.
	resp, body = doReq(t, http.MethodPost, ts.URL+"/v1/jobs", hdr, payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replayed submit = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("replayed submit missing Idempotency-Replayed header")
	}
	var second struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("replay created a new job: %s != %s", second.ID, first.ID)
	}
	// A different key is new work.
	hdr.Set("Idempotency-Key", "chaos-key-2")
	resp, body = doReq(t, http.MethodPost, ts.URL+"/v1/jobs", hdr, payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh-key submit = %d %q", resp.StatusCode, body)
	}
}
