package server

// Internal-package tests for the observability and admission-control
// layers: these need the unexported testHookStart hook to hold requests
// in-flight deterministically, which the black-box server_test cannot do.

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const tinyClickstream = `{"id":"s1","purchase":"silver","clicks":["gold"]}
{"id":"s2","purchase":"silver","clicks":["spacegray"]}
{"id":"s3","purchase":"spacegray"}
{"id":"s4","purchase":"spacegray","clicks":["silver"]}
{"id":"s5","purchase":"gold","clicks":["spacegray"]}
`

func doPipeline(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/pipeline?k=2", "application/json",
		strings.NewReader(tinyClickstream))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func scrapeMetrics(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsContent runs one successful pipeline request and checks the
// scrape exposes the request counters, the latency histogram and the
// solver work counters with the documented names.
func TestMetricsContent(t *testing.T) {
	srv := New(Limits{}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, body := doPipeline(t, ts.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline status %d: %s", resp.StatusCode, body)
	}
	resp, text := scrapeMetrics(t, ts.URL)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		`prefcover_http_requests_total{endpoint="/v1/pipeline",code="200"} 1`,
		`prefcover_http_request_duration_seconds_bucket{endpoint="/v1/pipeline",le="+Inf"} 1`,
		`prefcover_http_request_duration_seconds_count{endpoint="/v1/pipeline"} 1`,
		`prefcover_http_in_flight_requests 0`,
		`prefcover_solver_solves_total{strategy="lazy",outcome="ok"} 1`,
		"# TYPE prefcover_http_request_duration_seconds histogram",
		"prefcover_solver_iterations_total{strategy=\"lazy\"}",
		"prefcover_solver_gain_evaluations_total{strategy=\"lazy\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	// The scrape itself must not be counted as an instrumented request.
	if strings.Contains(text, `endpoint="/metrics"`) {
		t.Error("/metrics counted itself")
	}
}

// TestSolveTimeoutReturns503 sets an already-hopeless deadline and expects
// the documented degradation: 503 with a JSON error envelope, plus a
// rejected{reason="timeout"} tick.
func TestSolveTimeoutReturns503(t *testing.T) {
	srv := New(Limits{SolveTimeout: time.Nanosecond}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := doPipeline(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, body)
	}
	if !strings.Contains(e.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", e.Error)
	}
	_, text := scrapeMetrics(t, ts.URL)
	if !strings.Contains(text, `prefcover_http_rejected_total{endpoint="/v1/pipeline",reason="timeout"} 1`) {
		t.Errorf("timeout rejection not counted:\n%s", text)
	}
	if !strings.Contains(text, `prefcover_http_requests_total{endpoint="/v1/pipeline",code="503"} 1`) {
		t.Error("503 not counted in requests_total")
	}
}

// TestConcurrencyLimitReturns429 holds one request in-flight via the test
// hook and checks the next one is shed immediately with 429 instead of
// queued.
func TestConcurrencyLimitReturns429(t *testing.T) {
	srv := New(Limits{MaxConcurrent: 1}, nil)
	admitted := make(chan struct{})
	release := make(chan struct{})
	var hooked bool
	srv.testHookStart = func(endpoint string) {
		if endpoint != "/v1/pipeline" || hooked {
			return
		}
		hooked = true
		close(admitted)
		<-release
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _ := doPipeline(t, ts.URL)
		first <- resp.StatusCode
	}()
	<-admitted

	resp, body := doPipeline(t, ts.URL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("429 body is not JSON: %v\n%s", err, body)
	}
	if !strings.Contains(e.Error, "capacity") {
		t.Errorf("429 error %q does not mention capacity", e.Error)
	}

	// Health stays exempt from the limiter while the slot is held.
	if hresp, err := http.Get(ts.URL + "/healthz"); err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while saturated: %v %v", err, hresp)
	} else {
		hresp.Body.Close()
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("held request finished with %d", code)
	}
	_, text := scrapeMetrics(t, ts.URL)
	if !strings.Contains(text, `prefcover_http_rejected_total{endpoint="/v1/pipeline",reason="capacity"} 1`) {
		t.Error("capacity rejection not counted")
	}
}

// TestGracefulShutdownDrains verifies the handler cooperates with
// http.Server.Shutdown: a request already executing when shutdown begins
// runs to completion and gets its 200 before Shutdown returns.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := New(Limits{}, nil)
	admitted := make(chan struct{})
	release := make(chan struct{})
	var hooked bool
	srv.testHookStart = func(endpoint string) {
		if endpoint != "/v1/pipeline" || hooked {
			return
		}
		hooked = true
		close(admitted)
		<-release
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	reqDone := make(chan int, 1)
	go func() {
		resp, _ := doPipeline(t, url)
		reqDone <- resp.StatusCode
	}()
	<-admitted

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(t.Context()) }()

	// With the request still blocked in the handler, Shutdown must wait.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a request in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if code := <-reqDone; code != http.StatusOK {
		t.Fatalf("drained request finished with %d", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
}
