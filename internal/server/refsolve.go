package server

// Solve-by-reference: a /v1/solve body of {"graph_ref": "name"} (or an
// async job) solves a registered graph through the prefix-aware cache.
// The cache exploits the greedy solution's ordered-prefix property — one
// solve at budget k answers every budget k' ≤ k and, via the cover curve,
// threshold queries — so a warm cache serves these requests with zero
// solver work.

import (
	"context"
	"fmt"
	"net/http"

	"prefcover"
	"prefcover/internal/profilez"
	"prefcover/internal/solvecache"
	"prefcover/internal/store"
	"prefcover/internal/trace"
)

// refSolve is a reference solve with its inputs resolved against the
// registry: the pinned labels looked up on the graph, the cache key built
// from the content hash, and the query split out of the solver options.
type refSolve struct {
	name    string
	entry   *store.Entry
	variant prefcover.Variant
	opts    prefcover.Options
	key     solvecache.Key
	query   solvecache.Query
}

// newRefSolve resolves name and pins; on failure the second return is the
// HTTP status the error maps to.
func (s *Server) newRefSolve(name string, variant prefcover.Variant, opts prefcover.Options, pinLabels []string) (*refSolve, int, error) {
	if err := store.ValidateName(name); err != nil {
		return nil, http.StatusBadRequest, err
	}
	entry, ok := s.store.Get(name)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("graph %q not found", name)
	}
	pinned, err := prefcover.LookupAll(entry.Graph, pinLabels)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	opts.Variant = variant
	opts.Pinned = pinned
	return &refSolve{
		name:    name,
		entry:   entry,
		variant: variant,
		opts:    opts,
		key: solvecache.Key{
			GraphHash: entry.Hash,
			Variant:   variant,
			Pins:      solvecache.PinsKey(pinned),
			Strategy:  solveStrategy(opts),
		},
		query: solvecache.Query{K: opts.K, Threshold: opts.Threshold},
	}, 0, nil
}

// solveRef answers rs through the cache, running the solver only on a
// miss. The "cache" span records which way it went.
func (s *Server) solveRef(ctx context.Context, rs *refSolve) (solveResponse, solvecache.Status, error) {
	cctx, span := trace.StartSpan(ctx, "cache")
	span.SetAttr("graph", rs.name)
	defer span.End()
	var usage *profilez.Usage
	hit, status, err := s.cache.Do(cctx, rs.key, rs.query, func() (*solvecache.Result, error) {
		sol, u, serr := s.solve(withGraphName(ctx, rs.name), rs.entry.Graph, rs.opts)
		if serr != nil {
			return nil, serr
		}
		usage = u
		s.store.RecordSolve(rs.name)
		return solvecache.NewResult(sol, rs.entry.Graph.NumNodes(), len(rs.opts.Pinned)), nil
	})
	span.SetAttr("status", status.String())
	s.met.cacheOps.With(status.String()).Inc()
	if err != nil {
		return solveResponse{}, status, err
	}
	if status == solvecache.StatusMiss {
		// The graph may have been replaced or deleted while the solver ran,
		// in which case the invalidation hook fired before Do stored this
		// result — re-check the name → content mapping and drop the orphan.
		if cur, ok := s.store.Get(rs.name); !ok || cur.Hash != rs.key.GraphHash {
			s.cache.InvalidateGraph(rs.key.GraphHash)
		}
	}
	resp, err := s.hitPayload(rs, hit)
	if err == nil && usage != nil {
		// Resources only when this caller ran the solver: a hit (or a fill
		// coalesced onto another in-flight request) did no solver work here.
		resp.Resources = usage
	}
	return resp, status, err
}

// hitPayload converts a cache hit into the /v1/solve response shape. A hit
// on a shorter-than-cached prefix carries no per-item coverage; it is
// recomputed with the cover engine — linear in the graph, no solver work.
func (s *Server) hitPayload(rs *refSolve, h *solvecache.Hit) (solveResponse, error) {
	g := rs.entry.Graph
	coverage := h.Coverage
	if coverage == nil {
		var err error
		coverage, err = prefcover.PerItemCoverage(g, rs.variant, h.Order)
		if err != nil {
			return solveResponse{}, err
		}
	}
	order := make([]string, len(h.Order))
	for i, v := range h.Order {
		order[i] = g.Label(v)
	}
	return solveResponse{
		Variant:  rs.variant.String(),
		K:        len(h.Order),
		Cover:    h.Cover,
		Reached:  h.Reached,
		Order:    order,
		Gains:    h.Gains,
		Coverage: coverage,
	}, nil
}

// solveByRef is the /v1/solve handler tail for reference bodies.
func (s *Server) solveByRef(w http.ResponseWriter, r *http.Request, name string, variant prefcover.Variant, opts prefcover.Options, pinLabels []string) {
	rs, status, err := s.newRefSolve(name, variant, opts, pinLabels)
	if err != nil {
		s.writeError(w, r, status, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, cstat, err := s.solveRef(ctx, rs)
	if err != nil {
		s.writeWorkError(w, r, "/v1/solve", err)
		return
	}
	w.Header().Set("X-Prefcover-Cache", cstat.String())
	writeJSON(w, resp)
}
