package server

// End-to-end tests for ISSUE 7's profiling and resource-attribution
// wiring: pprof labels on the solver hot path (the acceptance criterion —
// a decoded CPU profile from a labeled solve carries the graph/strategy/
// endpoint pairs), per-solve resource accounting surfaced in responses,
// job results and trace spans, trigger-based captures, and the statusz
// panels built from all of it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"prefcover/internal/jobs"
	"prefcover/internal/profilez"
	"prefcover/internal/trace"
)

// TestSolveProfileLabels is the acceptance test: solve a registered graph
// over HTTP while the CPU profiler runs, decode the resulting profile,
// and find solver samples labeled with the graph, strategy and endpoint
// that asked for them. The cache is invalidated between solves so every
// request actually runs the solver (a warm prefix cache answers with
// zero solver work, which would leave nothing to sample).
func TestSolveProfileLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU-profile based; skipped under -short")
	}
	s, ts := newServingServer(t, Config{})
	g := servingGraph(t, 4000)
	resp, data := doReq(t, http.MethodPut, ts.URL+"/v1/graphs/labeled-demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, g))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d: %s", resp.StatusCode, data)
	}
	entry, ok := s.Store().Get("labeled-demo")
	if !ok {
		t.Fatal("registered graph not in store")
	}

	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	// Solve until ~400ms of solver wall time has accumulated: at the
	// default 100 Hz sampling that is ~40 samples, nearly all inside the
	// labeled scan loop.
	start := time.Now()
	body, _ := json.Marshal(map[string]string{"graph_ref": "labeled-demo"})
	for solves := 0; time.Since(start) < 400*time.Millisecond && solves < 100; solves++ {
		s.Cache().InvalidateGraph(entry.Hash)
		resp, data := doReq(t, http.MethodPost, ts.URL+"/v1/solve?variant=i&k=150&lazy=0",
			http.Header{"Content-Type": []string{"application/json"}}, body)
		if resp.StatusCode != http.StatusOK {
			pprof.StopCPUProfile()
			t.Fatalf("solve status = %d: %s", resp.StatusCode, data)
		}
	}
	pprof.StopCPUProfile()

	info, err := profilez.ReadProfile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Samples == 0 {
		t.Skip("CPU profiler returned no samples (heavily loaded or throttled environment)")
	}
	for _, want := range [][2]string{
		{profilez.LabelGraph, "labeled-demo"},
		{profilez.LabelStrategy, "scan"},
		{profilez.LabelEndpoint, "/v1/solve"},
		{profilez.LabelKBucket, profilez.KBucket(150)},
	} {
		if !info.HasLabel(want[0], want[1]) {
			t.Errorf("decoded profile (%d samples) has no sample labeled %s=%q; labels seen: %v",
				info.Samples, want[0], want[1], info.Labels)
		}
	}
}

// findSpan walks a span tree for the first span with the given name.
func findSpan(sp *trace.Span, name string) *trace.Span {
	if sp.Name() == name {
		return sp
	}
	for _, c := range sp.Children() {
		if found := findSpan(c, name); found != nil {
			return found
		}
	}
	return nil
}

// TestJobResourcesCrossCheckSpan submits a traced async job and checks
// the same per-solve resource accounting lands in both places the issue
// requires: the job's result JSON (resources.cpuNs/allocBytes/gcPauseNs)
// and the worker-side "solve" span attributes — and that the two agree
// exactly, because they are one measurement.
func TestJobResourcesCrossCheckSpan(t *testing.T) {
	s, ts := newServingServer(t, Config{Jobs: jobs.Options{Workers: 1}})
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, servingGraph(t, 400)))

	// A sampled traceparent makes the worker open a "job solve" root span
	// whose solve child carries the resource attributes. The header must
	// carry a parent span ID, so mint a client span like a real caller.
	client := trace.New(2).RootContext("client", trace.NewSpanContext())
	reqBody, _ := json.Marshal(map[string]any{"graph_ref": "demo", "variant": "independent", "k": 12})
	resp, data := doReq(t, http.MethodPost, ts.URL+"/v1/jobs", http.Header{
		"Content-Type":          []string{"application/json"},
		trace.TraceparentHeader: []string{client.Context().Traceparent()},
	}, reqBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, data)
	}
	var submitted jobPayload
	if err := json.Unmarshal(data, &submitted); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL, submitted.ID)
	if final.State != "done" {
		t.Fatalf("job state = %q (%s)", final.State, final.Error)
	}

	result, ok := final.Result.(map[string]any)
	if !ok {
		t.Fatalf("job result is %T, want object", final.Result)
	}
	res, ok := result["resources"].(map[string]any)
	if !ok {
		t.Fatalf("job result has no resources object: %v", result["resources"])
	}
	for _, field := range []string{"wallNs", "cpuNs", "allocBytes", "allocObjects", "gcPauseNs"} {
		if _, ok := res[field].(float64); !ok {
			t.Errorf("resources.%s missing or not a number: %v", field, res[field])
		}
	}
	if wall, _ := res["wallNs"].(float64); wall <= 0 {
		t.Errorf("resources.wallNs = %v, want > 0", res["wallNs"])
	}

	// The worker's root span lands in the flight recorder just after the
	// job result is visible; poll briefly like the distributed-trace tests.
	var solveSpan *trace.Span
	deadline := time.Now().Add(5 * time.Second)
	for solveSpan == nil && time.Now().Before(deadline) {
		for _, root := range s.Tracer().Snapshot() {
			if root.Name() == "job solve" {
				solveSpan = findSpan(root, "solve")
			}
		}
		if solveSpan == nil {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if solveSpan == nil {
		t.Fatal("no worker-side solve span recorded")
	}
	for attr, field := range map[string]string{
		"wallNs": "wallNs", "cpuNs": "cpuNs",
		"allocBytes": "allocBytes", "gcPauseNs": "gcPauseNs",
	} {
		got, ok := solveSpan.Attr(attr).(int64)
		if !ok {
			t.Errorf("solve span attr %s missing or not int64: %v", attr, solveSpan.Attr(attr))
			continue
		}
		if want := int64(res[field].(float64)); got != want {
			t.Errorf("solve span %s = %d, job result resources.%s = %d; want identical", attr, got, field, want)
		}
	}
	// The certificate rides the same span: a deterministic full solve must
	// have a finite upper bound and a gap in [0,1].
	gap, ok := solveSpan.Attr("approxGap").(float64)
	if !ok {
		t.Fatalf("solve span approxGap missing: %v", solveSpan.Attr("approxGap"))
	}
	if gap < 0 || gap > 1 {
		t.Errorf("approxGap = %g, want within [0,1]", gap)
	}
	if _, ok := solveSpan.Attr("optUpperBound").(float64); !ok {
		t.Error("solve span optUpperBound missing")
	}
}

// TestSolveResourcesPresentOnMissAbsentOnHit: the response resources
// field reports this request's solver work — present when the solver ran
// (cache miss), absent when the prefix cache answered.
func TestSolveResourcesPresentOnMissAbsentOnHit(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, servingGraph(t, 200)))

	resp, cold := solveRefHTTP(t, ts.URL, "demo", "?variant=i&k=10")
	if got := resp.Header.Get("X-Prefcover-Cache"); got != "miss" {
		t.Fatalf("cold cache header = %q", got)
	}
	if cold.Resources == nil {
		t.Fatal("cache-miss response has no resources")
	}
	if cold.Resources.WallNanos <= 0 {
		t.Errorf("miss resources wallNs = %d, want > 0", cold.Resources.WallNanos)
	}

	resp, warm := solveRefHTTP(t, ts.URL, "demo", "?variant=i&k=10")
	if got := resp.Header.Get("X-Prefcover-Cache"); got != "hit" {
		t.Fatalf("warm cache header = %q", got)
	}
	if warm.Resources != nil {
		t.Errorf("cache-hit response carries resources %+v, want absent (no solver work)", warm.Resources)
	}

	// Inline bodies always run the solver and always carry resources.
	resp2, data := doReq(t, http.MethodPost, ts.URL+"/v1/solve?variant=i&k=5",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, servingGraph(t, 100)))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("inline solve status = %d: %s", resp2.StatusCode, data)
	}
	var inline solveResponse
	if err := json.Unmarshal(data, &inline); err != nil {
		t.Fatal(err)
	}
	if inline.Resources == nil {
		t.Error("inline solve response has no resources")
	}
}

// TestSlowRequestTriggersCapture: a request breaching the slow-request
// threshold must snapshot heap+goroutine profiles into the ring, tagged
// with the trigger that fired.
func TestSlowRequestTriggersCapture(t *testing.T) {
	_, ts := newServingServer(t, Config{
		Limits: Limits{SlowRequestThreshold: time.Nanosecond}, // every request is "slow"
	})
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, servingGraph(t, 100)))
	s2, _ := solveRefHTTP(t, ts.URL, "demo", "?variant=i&k=5")
	_ = s2

	// Trigger captures run async; poll the index until they land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, data := doReq(t, http.MethodGet, ts.URL+"/debug/profilez?format=json", nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("profilez index status = %d", resp.StatusCode)
		}
		var idx struct {
			Captures []profilez.Entry `json:"captures"`
		}
		if err := json.Unmarshal(data, &idx); err != nil {
			t.Fatal(err)
		}
		kinds := map[profilez.Kind]bool{}
		for _, e := range idx.Captures {
			if e.Trigger == "slow_request" {
				kinds[e.Kind] = true
			}
		}
		if kinds[profilez.KindHeap] && kinds[profilez.KindGoroutine] {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow_request captures never appeared; index: %s", data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatuszConsumersAndExemplar: after a traced solve, statusz shows the
// top-resource-consumers row for the graph, links the p99 cell to the
// slowest trace, reports the profile ring, and links /debug/profilez in
// the footer.
func TestStatuszConsumersAndExemplar(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/hotgraph",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, servingGraph(t, 200)))

	client := trace.New(2).RootContext("client", trace.NewSpanContext())
	traceID := client.TraceID()
	body, _ := json.Marshal(map[string]string{"graph_ref": "hotgraph"})
	resp, data := doReq(t, http.MethodPost, ts.URL+"/v1/solve?variant=i&k=8", http.Header{
		"Content-Type":          []string{"application/json"},
		trace.TraceparentHeader: []string{client.Context().Traceparent()},
	}, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d: %s", resp.StatusCode, data)
	}

	// The latency observation (and its exemplar) happens in the middleware
	// defer, which can run just after the client sees the response body —
	// poll until the exemplar link shows up.
	var html string
	wanted := []string{
		"Top resource consumers",
		"<td>hotgraph</td>",
		"/debug/profilez",
		fmt.Sprintf("/debug/traces?trace=%s", traceID), // p99 exemplar link
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, page := doReq(t, http.MethodGet, ts.URL+"/debug/statusz", nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("statusz status = %d", resp.StatusCode)
		}
		html = string(page)
		missing := false
		for _, want := range wanted {
			if !strings.Contains(html, want) {
				missing = true
			}
		}
		if !missing || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, want := range wanted {
		if !strings.Contains(html, want) {
			t.Errorf("statusz page missing %q", want)
		}
	}
	// /debug/pprof is not linked unless enabled.
	if strings.Contains(html, "/debug/pprof") {
		t.Error("statusz links /debug/pprof with EnablePprof off")
	}
}

// TestPprofMuxGating: /debug/pprof/ serves only when Config.EnablePprof
// is set, and /debug/profilez is always mounted.
func TestPprofMuxGating(t *testing.T) {
	_, off := newServingServer(t, Config{})
	resp, _ := doReq(t, http.MethodGet, off.URL+"/debug/pprof/", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof with EnablePprof off: status = %d, want 404", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, off.URL+"/debug/profilez", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("profilez index: status = %d, want 200", resp.StatusCode)
	}

	_, on := newServingServer(t, Config{EnablePprof: true})
	resp, _ = doReq(t, http.MethodGet, on.URL+"/debug/pprof/", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with EnablePprof on: status = %d, want 200", resp.StatusCode)
	}
	resp, page := doReq(t, http.MethodGet, on.URL+"/debug/statusz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(page), "/debug/pprof/") {
		t.Error("statusz footer missing /debug/pprof link with EnablePprof on")
	}
}

// TestMetricsCarryResourceFamilies: one solve populates the new resource
// and profilez metric families on /metrics.
func TestMetricsCarryResourceFamilies(t *testing.T) {
	_, ts := newServingServer(t, Config{})
	doReq(t, http.MethodPut, ts.URL+"/v1/graphs/demo",
		http.Header{"Content-Type": []string{"application/json"}}, graphJSON(t, servingGraph(t, 150)))
	solveRefHTTP(t, ts.URL, "demo", "?variant=i&k=6")

	resp, data := doReq(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	scrape := string(data)
	for _, family := range []string{
		"prefcover_solve_resource_cpu_seconds_total",
		"prefcover_solve_resource_alloc_bytes_total",
		"prefcover_solve_resource_gc_pause_seconds_total",
		"prefcover_solve_approx_gap",
		"prefcover_profilez_ring_files",
		"prefcover_profilez_ring_bytes",
	} {
		if !strings.Contains(scrape, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
}
