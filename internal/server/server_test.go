package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"prefcover"
	. "prefcover/internal/server"
)

func testServer(t *testing.T, limits Limits) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(limits, nil).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// figure3JSONL is the paper's Figure 3 clickstream as JSONL.
const figure3JSONL = `{"id":"s1","purchase":"silver","clicks":["gold"]}
{"id":"s2","purchase":"silver","clicks":["spacegray"]}
{"id":"s3","purchase":"spacegray"}
{"id":"s4","purchase":"spacegray","clicks":["silver"]}
{"id":"s5","purchase":"gold","clicks":["spacegray"]}
`

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHealthz(t *testing.T) {
	ts := testServer(t, Limits{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAdaptAutoVariant(t *testing.T) {
	ts := testServer(t, Limits{})
	resp, body := postJSON(t, ts.URL+"/v1/adapt?variant=auto", figure3JSONL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Variant          string          `json:"variant"`
		VariantConfident bool            `json:"variantConfident"`
		Graph            json.RawMessage `json:"graph"`
		Report           struct {
			PurchaseSessions       int     `json:"PurchaseSessions"`
			SingleAlternativeShare float64 `json:"SingleAlternativeShare"`
		} `json:"report"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad json: %v\n%s", err, body)
	}
	if out.Variant != "normalized" || !out.VariantConfident {
		t.Errorf("variant = %s confident=%v", out.Variant, out.VariantConfident)
	}
	if out.Report.PurchaseSessions != 5 || out.Report.SingleAlternativeShare != 1 {
		t.Errorf("report = %+v", out.Report)
	}
	// The embedded graph must parse back.
	g, err := prefcover.ReadGraphJSON(bytes.NewReader(out.Graph), prefcover.BuildOptions{})
	if err != nil {
		t.Fatalf("embedded graph: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 4 {
		t.Errorf("graph shape %d/%d", g.NumNodes(), g.NumEdges())
	}
}

func TestSolveEndpoint(t *testing.T) {
	ts := testServer(t, Limits{})
	// Figure 1 graph as JSON.
	b := prefcover.NewBuilder(0, 0)
	b.AddLabeledNode("A", 0.33)
	b.AddLabeledNode("B", 0.22)
	b.AddLabeledNode("C", 0.22)
	b.AddLabeledNode("D", 0.06)
	b.AddLabeledNode("E", 0.17)
	b.AddLabeledEdge("A", "B", 2.0/3.0)
	b.AddLabeledEdge("A", "C", 0.3)
	b.AddLabeledEdge("B", "C", 0.8)
	b.AddLabeledEdge("C", "B", 1.0)
	b.AddLabeledEdge("D", "C", 0.5)
	b.AddLabeledEdge("E", "D", 0.9)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var graphJSON bytes.Buffer
	if err := prefcover.WriteGraphJSON(&graphJSON, g); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve?variant=i&k=2", graphJSON.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Cover float64  `json:"cover"`
		Order []string `json:"order"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Cover-0.873) > 1e-9 {
		t.Errorf("cover = %g", out.Cover)
	}
	if len(out.Order) != 2 || out.Order[0] != "B" || out.Order[1] != "D" {
		t.Errorf("order = %v", out.Order)
	}
}

func TestPipelineEndpoint(t *testing.T) {
	ts := testServer(t, Limits{})
	resp, body := postJSON(t, ts.URL+"/v1/pipeline?k=1", figure3JSONL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Adapt struct {
			Variant string `json:"variant"`
		} `json:"adapt"`
		Solve struct {
			Cover float64  `json:"cover"`
			Order []string `json:"order"`
		} `json:"solve"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Adapt.Variant != "normalized" {
		t.Errorf("variant = %s", out.Adapt.Variant)
	}
	if len(out.Solve.Order) != 1 || out.Solve.Order[0] != "spacegray" {
		t.Errorf("order = %v", out.Solve.Order)
	}
	if math.Abs(out.Solve.Cover-0.8) > 1e-9 {
		t.Errorf("cover = %g", out.Solve.Cover)
	}
}

func TestPipelineThresholdMode(t *testing.T) {
	ts := testServer(t, Limits{})
	resp, body := postJSON(t, ts.URL+"/v1/pipeline?threshold=0.9&variant=n", figure3JSONL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Solve struct {
			Reached bool    `json:"reached"`
			Cover   float64 `json:"cover"`
		} `json:"solve"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Solve.Reached || out.Solve.Cover < 0.9-1e-9 {
		t.Errorf("solve = %+v", out.Solve)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := testServer(t, Limits{})
	for name, tc := range map[string]struct {
		path, body string
		wantStatus int
	}{
		"get on solve":        {"/v1/solve?variant=i&k=1", "", http.StatusMethodNotAllowed},
		"bad variant":         {"/v1/solve?variant=zzz&k=1", "{}", http.StatusBadRequest},
		"missing k":           {"/v1/solve?variant=i", "{}", http.StatusBadRequest},
		"bad k":               {"/v1/solve?variant=i&k=x", "{}", http.StatusBadRequest},
		"bad threshold":       {"/v1/solve?variant=i&threshold=x", "{}", http.StatusBadRequest},
		"bad workers":         {"/v1/solve?variant=i&k=1&workers=x", "{}", http.StatusBadRequest},
		"bad graph":           {"/v1/solve?variant=i&k=1", "{nope", http.StatusBadRequest},
		"empty clickstream":   {"/v1/adapt", "", http.StatusBadRequest},
		"garbage clickstream": {"/v1/adapt", "not json", http.StatusBadRequest},
		"pipeline no budget":  {"/v1/pipeline", figure3JSONL, http.StatusBadRequest},
	} {
		var resp *http.Response
		var body []byte
		if name == "get on solve" {
			r, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			resp = r
		} else {
			resp, body = postJSON(t, ts.URL+tc.path, tc.body)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (%s)", name, resp.StatusCode, tc.wantStatus, body)
		}
	}
}

func TestMaxSolveKLimit(t *testing.T) {
	ts := testServer(t, Limits{MaxSolveK: 3})
	resp, body := postJSON(t, ts.URL+"/v1/solve?variant=i&k=10", "{}")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "server limit") {
		t.Errorf("body = %s", body)
	}
}

func TestMaxBodyLimit(t *testing.T) {
	ts := testServer(t, Limits{MaxBodyBytes: 64})
	big := strings.Repeat(figure3JSONL, 10)
	resp, _ := postJSON(t, ts.URL+"/v1/adapt", big)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("oversized body should fail")
	}
}

func TestSolveBinaryGraph(t *testing.T) {
	ts := testServer(t, Limits{})
	b := prefcover.NewBuilder(0, 0)
	b.AddLabeledNode("x", 0.6)
	b.AddLabeledNode("y", 0.4)
	b.AddLabeledEdge("x", "y", 0.5)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := prefcover.WriteGraphBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve?variant=i&k=1", "application/octet-stream", &bin)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body.String())
	}
	var out struct {
		Order []string `json:"order"`
	}
	if err := json.Unmarshal(body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Order) != 1 || out.Order[0] != "y" {
		t.Errorf("order = %v", out.Order)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t, Limits{})
	graphJSON := `{"nodes":[{"weight":0.6},{"weight":0.4}],"edges":[{"src":0,"dst":1,"weight":0.5}]}`
	resp, body := postJSON(t, ts.URL+"/v1/stats", graphJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Nodes int `json:"Nodes"`
		Edges int `json:"Edges"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Nodes != 2 || out.Edges != 1 {
		t.Errorf("stats = %+v", out)
	}
	// Garbage binary body.
	resp2, err := http.Post(ts.URL+"/v1/stats", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage binary status = %d", resp2.StatusCode)
	}
}

// TestConcurrentPipelines exercises the handler under parallel load; run
// with -race in CI to catch shared-state regressions.
func TestConcurrentPipelines(t *testing.T) {
	ts := testServer(t, Limits{})
	const workers = 8
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/pipeline?k=1", "application/json", strings.NewReader(figure3JSONL))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSolveScanStrategyParam(t *testing.T) {
	ts := testServer(t, Limits{})
	graphJSON := `{"nodes":[{"label":"x","weight":0.6},{"label":"y","weight":0.4}],"edges":[{"src":0,"dst":1,"weight":0.5}]}`
	for _, q := range []string{"lazy=0", "lazy=1", "workers=4"} {
		resp, body := postJSON(t, fmt.Sprintf("%s/v1/solve?variant=i&k=1&%s", ts.URL, q), graphJSON)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", q, resp.StatusCode, body)
		}
		var out struct {
			Order []string `json:"order"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		// Gain(y) = 0.4 + 0.5*0.6 = 0.7 beats Gain(x) = 0.6.
		if len(out.Order) != 1 || out.Order[0] != "y" {
			t.Errorf("%s: order = %v", q, out.Order)
		}
	}
}
