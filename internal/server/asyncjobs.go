package server

// The async solve endpoints. A job references a registered graph, enters a
// bounded queue (full queue = 429, same load-shedding stance as the
// synchronous limiter), runs on workers that share the server's
// concurrency budget, and lands its result in the solve cache — so one
// finished job warms every subsequent prefix query against that graph.
//
//	POST   /v1/jobs        body: {graph_ref, variant, k|threshold, ...} -> 202 {id}
//	GET    /v1/jobs        -> {jobs: [...]} newest first
//	GET    /v1/jobs/{id}   -> {id, state, progress, result?, error?}
//	DELETE /v1/jobs/{id}   -> cancel (202) or forget a finished job (204)

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"prefcover"
	"prefcover/internal/jobs"
	"prefcover/internal/trace"
)

// jobPayload is the job JSON shape; zero timestamps and absent results are
// omitted rather than serialized as zero values.
type jobPayload struct {
	ID       string        `json:"id"`
	State    string        `json:"state"`
	Progress jobs.Progress `json:"progress"`
	Result   any           `json:"result,omitempty"`
	Error    string        `json:"error,omitempty"`
	Created  time.Time     `json:"created"`
	Started  *time.Time    `json:"started,omitempty"`
	Finished *time.Time    `json:"finished,omitempty"`
	// TraceID is the distributed trace the submission belonged to, so a
	// client polling job status can fetch /debug/traces?trace=<id>.
	TraceID string `json:"traceId,omitempty"`
}

func jobJSON(snap jobs.Snapshot) jobPayload {
	p := jobPayload{
		ID:       snap.ID,
		State:    string(snap.State),
		Progress: snap.Progress,
		Result:   snap.Result,
		Created:  snap.Created,
		TraceID:  snap.Trace.TraceID,
	}
	if snap.Err != nil {
		p.Error = snap.Err.Error()
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		p.Started = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		p.Finished = &t
	}
	return p
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		snaps := s.jobs.List()
		out := make([]jobPayload, len(snaps))
		for i, snap := range snaps {
			out[i] = jobJSON(snap)
		}
		writeJSON(w, map[string]any{"jobs": out})
		return
	}
	s.submitJob(w, r)
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	req, err := jobs.ParseRequest(body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	if s.limits.MaxSolveK > 0 && req.K > s.limits.MaxSolveK {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("k %d exceeds server limit %d", req.K, s.limits.MaxSolveK))
		return
	}
	variant, err := req.ParseVariant()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opts := prefcover.Options{
		K:         req.K,
		Threshold: req.Threshold,
		Lazy:      req.LazyEnabled(),
		Workers:   req.Workers,
		Strategy:  req.Strategy,
	}
	// Validate the reference and pins now so a bad submission fails at POST
	// time, not minutes later inside the queue; the task re-resolves at run
	// time because the graph can change while the job waits.
	if _, status, err := s.newRefSolve(req.GraphRef, variant, opts, req.Pins); err != nil {
		s.writeError(w, r, status, err)
		return
	}
	// An Idempotency-Key header makes retried submissions safe: the same
	// key lands on the already-enqueued job instead of creating a second
	// one. The sanitizer mirrors X-Request-ID's (header values must stay
	// log- and JSON-safe).
	idemKey := sanitizeRequestID(r.Header.Get("Idempotency-Key"))
	// The submitter's trace position (extracted from traceparent by the
	// middleware) crosses the queue boundary with the job, so worker-side
	// solve spans join the same trace as this POST.
	sc := trace.SpanContextFromContext(r.Context())
	snap, replayed, err := s.jobs.SubmitIdempotent(idemKey, sc,
		s.jobTask(sc, time.Now(), req.GraphRef, variant, opts, req.Pins))
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.met.rejected.With("/v1/jobs", "queue_full").Inc()
		// A saturated queue is exactly when an operator wants to know what
		// the workers are doing: snapshot heap+goroutine profiles (cooldown
		// keeps a rejection storm from flooding the ring).
		s.capturer.Trigger("job_queue_saturated")
		s.writeError(w, r, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrClosed):
		s.writeError(w, r, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	if replayed {
		// 200, not 202: nothing new was accepted; the body is the live
		// state of the original submission.
		w.Header().Set("Idempotency-Replayed", "true")
		writeJSON(w, jobJSON(snap))
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, jobJSON(snap))
}

// jobTask builds the queued work: resolve the reference fresh, solve
// through the cache with progress streaming, return the same payload the
// synchronous endpoint would. When the submission carried a trace context,
// the worker opens a "job solve" root span continuing it — with a "queued"
// child covering the time spent waiting for a worker — so solver iteration
// spans land in the submitter's trace.
func (s *Server) jobTask(sc trace.SpanContext, submitted time.Time, name string, variant prefcover.Variant, opts prefcover.Options, pinLabels []string) jobs.Task {
	return func(ctx context.Context, update func(jobs.Progress)) (any, error) {
		// Worker-side solves profile under the submission endpoint; the job
		// ID itself arrives via jobs.IDFrom in the solver path.
		ctx = withEndpoint(ctx, "/v1/jobs")
		if sc.Valid() && s.tracer != nil {
			span := s.tracer.RootContext("job solve", sc)
			span.SetAttr("graph", name)
			if id := jobs.IDFrom(ctx); id != "" {
				span.SetAttr("jobID", id)
			}
			span.ChildAt("queued", submitted).End()
			defer span.End()
			ctx = trace.NewContext(ctx, span)
		}
		rs, _, err := s.newRefSolve(name, variant, opts, pinLabels)
		if err != nil {
			return nil, err
		}
		target := rs.opts.K
		rs.opts.Progress = func(ev prefcover.ProgressEvent) {
			update(jobs.Progress{Step: ev.Step, Target: target, Cover: ev.Cover})
		}
		if s.limits.SolveTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.limits.SolveTimeout)
			defer cancel()
		}
		resp, _, err := s.solveRef(ctx, rs)
		if err != nil {
			return nil, err
		}
		return resp, nil
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("bad job path %q", r.URL.Path))
		return
	}
	switch r.Method {
	case http.MethodGet:
		snap, ok := s.jobs.Get(id)
		if !ok {
			s.writeError(w, r, http.StatusNotFound, fmt.Errorf("job %q not found", id))
			return
		}
		writeJSON(w, jobJSON(snap))
	case http.MethodDelete:
		switch {
		case s.jobs.Cancel(id):
			w.WriteHeader(http.StatusAccepted)
			writeJSON(w, map[string]string{"id": id, "state": "canceling"})
		case s.jobs.Remove(id):
			w.WriteHeader(http.StatusNoContent)
		default:
			s.writeError(w, r, http.StatusNotFound, fmt.Errorf("job %q not found", id))
		}
	default:
		s.allowMethods(w, r, http.MethodGet, http.MethodDelete)
	}
}
