package server

// The graph registry endpoints. Uploading a graph once and solving it by
// reference is what makes the solve cache and the async job queue
// possible: the registry's content hash is the cache partition key, and a
// job can outlive any single HTTP connection because the graph it needs
// lives server-side.
//
//	GET    /v1/graphs          -> [{name, hash, nodes, edges, ...}]
//	PUT    /v1/graphs/{name}   body: graph (JSON/TSV/binary by Content-Type)
//	GET    /v1/graphs/{name}   -> graph (format by Accept), ETag, 304 support
//	DELETE /v1/graphs/{name}   -> 204; drops cached results for its content

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"prefcover/internal/faults"
	"prefcover/internal/store"
)

// graphName extracts and validates the {name} path element.
func graphName(path string) (string, error) {
	name := strings.TrimPrefix(path, "/v1/graphs/")
	if name == "" || strings.Contains(name, "/") {
		return "", fmt.Errorf("bad graph path %q", path)
	}
	if err := store.ValidateName(name); err != nil {
		return "", err
	}
	return name, nil
}

// etagFor quotes a content hash per RFC 9110 ETag syntax.
func etagFor(hash string) string { return `"` + hash + `"` }

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	if !s.allowMethods(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, map[string]any{
		"graphs":     s.store.List(),
		"totalBytes": s.store.TotalBytes(),
	})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	name, err := graphName(r.URL.Path)
	if err != nil {
		s.writeError(w, r, http.StatusNotFound, err)
		return
	}
	switch r.Method {
	case http.MethodPut:
		r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
		s.putGraph(w, r, name)
	case http.MethodGet, http.MethodHead:
		s.getGraph(w, r, name)
	case http.MethodDelete:
		s.deleteGraph(w, r, name)
	default:
		s.allowMethods(w, r, http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete)
	}
}

func (s *Server) putGraph(w http.ResponseWriter, r *http.Request, name string) {
	format, err := graphFormatFromContentType(r.Header.Get("Content-Type"))
	if err != nil {
		s.writeError(w, r, http.StatusUnsupportedMediaType, err)
		return
	}
	g, err := decodeGraph(r.Body, format)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	entry, replaced, err := s.store.Put(name, g)
	if err != nil {
		// An injected persistence failure is the server's fault, not the
		// client's: 500 so a retrying client knows to try again.
		status := http.StatusBadRequest
		if errors.Is(err, faults.ErrInjected) {
			status = http.StatusInternalServerError
		}
		s.writeError(w, r, status, err)
		return
	}
	w.Header().Set("ETag", etagFor(entry.Hash))
	info, _ := s.store.Info(name)
	if !replaced {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
	}
	writeJSON(w, info)
}

func (s *Server) getGraph(w http.ResponseWriter, r *http.Request, name string) {
	entry, ok := s.store.Get(name)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("graph %q not found", name))
		return
	}
	etag := etagFor(entry.Hash)
	w.Header().Set("ETag", etag)
	// Content-addressed 304: the ETag IS the content hash, so a match means
	// the client's copy is bit-identical — no body needed.
	if match := r.Header.Get("If-None-Match"); match != "" {
		for _, cand := range strings.Split(match, ",") {
			if strings.TrimSpace(cand) == etag || strings.TrimSpace(cand) == "*" {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	format, err := graphFormatFromAccept(r.Header.Get("Accept"))
	if err != nil {
		s.writeError(w, r, http.StatusNotAcceptable, err)
		return
	}
	w.Header().Set("Content-Type", format.contentType())
	if r.Method == http.MethodHead {
		return
	}
	if err := encodeGraph(w, entry.Graph, format); err != nil && s.logger != nil {
		s.logger.Warn("graph download write failed", "graph", name, "error", err.Error())
	}
}

func (s *Server) deleteGraph(w http.ResponseWriter, r *http.Request, name string) {
	if !s.store.Delete(name) {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("graph %q not found", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
