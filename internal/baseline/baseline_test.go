package baseline_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	. "prefcover/internal/baseline"
	"prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
)

const tol = 1e-9

func TestTopKWPicksHeaviest(t *testing.T) {
	g := fixture.Figure1Graph() // A=0.33 B=0.22 C=0.22 D=0.06 E=0.17
	res, err := TopKW(g, graph.Independent, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Lookup("A")
	b, _ := g.Lookup("B")
	if res.Set[0] != a || res.Set[1] != b {
		t.Fatalf("TopKW picked %v, want [A B]", res.Set)
	}
	// Example 1.1: {A,B} covers 77%.
	if math.Abs(res.Cover-fixture.Fig1CoverTopK) > tol {
		t.Errorf("cover = %g, want %g", res.Cover, fixture.Fig1CoverTopK)
	}
}

func TestIndividualCoverage(t *testing.T) {
	g := fixture.Figure1Graph()
	ic := IndividualCoverage(g)
	b, _ := g.Lookup("B")
	// B alone covers itself + 2/3 of A + all of C = 0.66.
	if math.Abs(ic[b]-0.66) > tol {
		t.Errorf("IndividualCoverage(B) = %g, want 0.66", ic[b])
	}
	e, _ := g.Lookup("E")
	// E has no in-edges: covers only itself.
	if math.Abs(ic[e]-0.17) > tol {
		t.Errorf("IndividualCoverage(E) = %g, want 0.17", ic[e])
	}
}

func TestTopKCOnFigure1(t *testing.T) {
	// Individual coverages on Figure 1: B=0.66, C=0.525, A=0.33, D=0.213,
	// E=0.17 — so TopKC picks {B,C}. B and C cover each other almost
	// entirely, which is exactly the overlap blindness the paper ascribes
	// to this baseline: it loses here even to TopKW's {A,B}.
	g := fixture.Figure1Graph()
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		kc, err := TopKC(g, variant, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := g.Lookup("B")
		c, _ := g.Lookup("C")
		if len(kc.Set) != 2 || kc.Set[0] != b || kc.Set[1] != c {
			t.Fatalf("variant %v: TopKC picked %v, want {B,C}", variant, kc.Set)
		}
		if kc.Cover >= fixture.Fig1CoverBD {
			t.Errorf("variant %v: overlap-blind TopKC should be suboptimal, got %g", variant, kc.Cover)
		}
	}
}

func TestRandomIsValidSet(t *testing.T) {
	g := fixture.Figure1Graph()
	rng := rand.New(rand.NewSource(42))
	res, err := Random(g, graph.Independent, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 3 {
		t.Fatalf("set size = %d", len(res.Set))
	}
	seen := map[int32]bool{}
	for _, v := range res.Set {
		if seen[v] || v < 0 || int(v) >= g.NumNodes() {
			t.Fatalf("bad set %v", res.Set)
		}
		seen[v] = true
	}
	fresh, _ := cover.EvaluateSet(g, graph.Independent, res.Set)
	if math.Abs(fresh-res.Cover) > tol {
		t.Errorf("reported cover %g != fresh %g", res.Cover, fresh)
	}
}

func TestBestRandomAtLeastSingle(t *testing.T) {
	g := fixture.Figure1Graph()
	rngA := rand.New(rand.NewSource(1))
	rngB := rand.New(rand.NewSource(1))
	single, err := Random(g, graph.Independent, 2, rngA)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestRandom(g, graph.Independent, 2, 10, rngB)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cover < single.Cover-tol {
		t.Errorf("best of 10 (%g) worse than first draw (%g)", best.Cover, single.Cover)
	}
	if _, err := BestRandom(g, graph.Independent, 2, 0, rngB); err == nil {
		t.Error("zero runs should error")
	}
}

func TestBruteForceFindsFigure1Optimum(t *testing.T) {
	g := fixture.Figure1Graph()
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		res, stats, err := BruteForce(g, variant, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if stats.SubsetsEvaluated != 10 { // C(5,2)
			t.Errorf("evaluated %d subsets, want 10", stats.SubsetsEvaluated)
		}
		b, _ := g.Lookup("B")
		d, _ := g.Lookup("D")
		if len(res.Set) != 2 || res.Set[0] != b || res.Set[1] != d {
			t.Fatalf("optimum = %v, want {B,D}", res.Set)
		}
		if math.Abs(res.Cover-fixture.Fig1CoverBD) > tol {
			t.Errorf("optimum cover = %g", res.Cover)
		}
	}
}

func TestBruteForceBudgetGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphtest.Random(rng, 30, 3, graph.Independent)
	if _, _, err := BruteForce(g, graph.Independent, 15, 1000); err == nil {
		t.Fatal("want budget-exceeded error")
	}
}

func TestBruteForceDominatesEverything(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 5+rng.Intn(4), 3, graph.Independent)
		k := 1 + rng.Intn(3)
		bf, _, err := BruteForce(g, graph.Independent, k, 1_000_000)
		if err != nil {
			return false
		}
		kw, err1 := TopKW(g, graph.Independent, k)
		kc, err2 := TopKC(g, graph.Independent, k)
		rd, err3 := Random(g, graph.Independent, k, rng)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return bf.Cover >= kw.Cover-tol && bf.Cover >= kc.Cover-tol && bf.Cover >= rd.Cover-tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKValidation(t *testing.T) {
	g := fixture.Figure1Graph()
	rng := rand.New(rand.NewSource(0))
	if _, err := TopKW(g, graph.Independent, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := TopKC(g, graph.Independent, 99); err == nil {
		t.Error("k>n should fail")
	}
	if _, err := Random(g, graph.Independent, -1, rng); err == nil {
		t.Error("negative k should fail")
	}
	if _, _, err := BruteForce(g, graph.Independent, 6, 0); err == nil {
		t.Error("k>n should fail")
	}
}

func TestMinCoverTopKW(t *testing.T) {
	g := fixture.Figure1Graph()
	res, err := MinCoverTopKW(g, graph.Independent, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("0.7 should be reachable")
	}
	if res.Cover < 0.7-tol {
		t.Errorf("cover %g below threshold", res.Cover)
	}
	// Minimality: one fewer prefix item must be below the threshold.
	if res.Size > 1 {
		order := g.TopNodesByWeight(g.NumNodes())
		c, _ := cover.EvaluateSet(g, graph.Independent, order[:res.Size-1])
		if c >= 0.7-tol {
			t.Errorf("prefix %d already covers %g", res.Size-1, c)
		}
	}
}

func TestMinCoverTopKC(t *testing.T) {
	g := fixture.Figure1Graph()
	kw, err := MinCoverTopKW(g, graph.Independent, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := MinCoverTopKC(g, graph.Independent, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// The coverage-aware ranking should not need more items than the
	// weight ranking on this instance.
	if kc.Size > kw.Size {
		t.Errorf("TopKC needs %d items, TopKW needs %d", kc.Size, kw.Size)
	}
}

func TestMinCoverUnreachable(t *testing.T) {
	// An isolated zero-coverage structure: two nodes, no edges, but
	// threshold 1 is reachable only with everything retained; make part of
	// the mass unreachable by... it never is: retaining all nodes covers
	// everything. Instead verify Reached=false is impossible at threshold
	// <= 1 and the full-set fallback works at exactly 1.
	g := fixture.Figure1Graph()
	res, err := MinCoverTopKW(g, graph.Independent, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("threshold 1 reachable by retaining everything")
	}
	if res.Size != g.NumNodes() && res.Cover < 1-tol {
		t.Errorf("size=%d cover=%g", res.Size, res.Cover)
	}
}

func TestMinCoverValidation(t *testing.T) {
	g := fixture.Figure1Graph()
	if _, err := MinCoverTopKW(g, graph.Independent, 0); err == nil {
		t.Error("threshold 0 should fail")
	}
	if _, err := MinCoverTopKC(g, graph.Independent, 1.5); err == nil {
		t.Error("threshold > 1 should fail")
	}
}

// TestMinCoverPrefixBinarySearchMatchesLinear verifies the binary search
// against a linear scan on random graphs.
func TestMinCoverPrefixBinarySearchMatchesLinear(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 4+rng.Intn(20), 4, graph.Independent)
		threshold := 0.3 + 0.6*rng.Float64()
		res, err := MinCoverTopKW(g, graph.Independent, threshold)
		if err != nil || !res.Reached {
			return err == nil // unreachable is fine, nothing to compare
		}
		order := g.TopNodesByWeight(g.NumNodes())
		linear := len(order)
		for size := 1; size <= len(order); size++ {
			c, _ := cover.EvaluateSet(g, graph.Independent, order[:size])
			if c >= threshold-graph.Eps {
				linear = size
				break
			}
		}
		return res.Size == linear
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
