// Package baseline implements the four comparison algorithms of the paper's
// experimental study (Section 5.3): BF (exact brute force), TopK-W (top-k
// by weight), TopK-C (top-k by individual coverage), and Random — plus the
// sorted-prefix binary-search adaptations used for the complementary
// minimization problem (Figure 4f).
package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"prefcover/internal/cover"
	"prefcover/internal/graph"
)

// Result is a baseline's selected set and its cover.
type Result struct {
	Set   []int32
	Cover float64
}

// TopKW returns the k heaviest nodes — the paper's naive baseline that
// "considers each item individually without taking alternatives into
// account". Ties break toward smaller id.
func TopKW(g *graph.Graph, variant graph.Variant, k int) (*Result, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	ids := g.TopNodesByWeight(k)
	set := append([]int32(nil), ids...)
	c, err := cover.EvaluateSet(g, variant, set)
	if err != nil {
		return nil, err
	}
	return &Result{Set: set, Cover: c}, nil
}

// IndividualCoverage returns, for every node, the cover it would achieve
// alone: its own weight plus the weight of requests for its in-neighbors it
// matches. This equals the greedy marginal gain w.r.t. the empty set and is
// identical under both variants.
func IndividualCoverage(g *graph.Graph) []float64 {
	out := make([]float64, g.NumNodes())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		c := g.NodeWeight(v)
		srcs, ws := g.InEdges(v)
		for i, u := range srcs {
			if u == v {
				continue
			}
			c += g.NodeWeight(u) * ws[i]
		}
		out[v] = c
	}
	return out
}

// TopKC returns the k nodes with the highest individual coverage — the
// paper's refined baseline that "takes alternatives into account, however
// not from a global viewpoint": it ignores overlaps between the selected
// items' covers.
func TopKC(g *graph.Graph, variant graph.Variant, k int) (*Result, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	set := topKBy(IndividualCoverage(g), k)
	c, err := cover.EvaluateSet(g, variant, set)
	if err != nil {
		return nil, err
	}
	return &Result{Set: set, Cover: c}, nil
}

// Random selects k nodes uniformly at random using rng. The paper reports
// the best of 10 executions; see BestRandom.
func Random(g *graph.Graph, variant graph.Variant, k int, rng *rand.Rand) (*Result, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	perm := rng.Perm(g.NumNodes())
	set := make([]int32, k)
	for i := 0; i < k; i++ {
		set[i] = int32(perm[i])
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	c, err := cover.EvaluateSet(g, variant, set)
	if err != nil {
		return nil, err
	}
	return &Result{Set: set, Cover: c}, nil
}

// BestRandom runs Random `runs` times and keeps the best cover, matching
// the paper's "best across 10 executions" protocol.
func BestRandom(g *graph.Graph, variant graph.Variant, k, runs int, rng *rand.Rand) (*Result, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("baseline: runs must be positive, got %d", runs)
	}
	var best *Result
	for i := 0; i < runs; i++ {
		r, err := Random(g, variant, k, rng)
		if err != nil {
			return nil, err
		}
		if best == nil || r.Cover > best.Cover {
			best = r
		}
	}
	return best, nil
}

// BruteForce enumerates all subsets of size k and returns one maximizing
// C(S); among ties it returns the lexicographically smallest subset. It is
// exponential (C(n,k) evaluations) and exists as the optimality oracle for
// the Figure 4a/4b experiments and the approximation-ratio tests.
type BruteForceStats struct {
	SubsetsEvaluated int64
}

// BruteForce runs the exhaustive search. maxSubsets > 0 aborts with an
// error once that many subsets were evaluated, protecting callers from
// accidentally launching an infeasible enumeration.
func BruteForce(g *graph.Graph, variant graph.Variant, k int, maxSubsets int64) (*Result, *BruteForceStats, error) {
	if err := checkK(g, k); err != nil {
		return nil, nil, err
	}
	n := g.NumNodes()
	if c := binomial(n, k); maxSubsets > 0 && (c < 0 || c > maxSubsets) {
		return nil, nil, fmt.Errorf("baseline: brute force over C(%d,%d) subsets exceeds budget %d", n, k, maxSubsets)
	}
	idx := make([]int32, k)
	for i := range idx {
		idx[i] = int32(i)
	}
	retained := make([]bool, n)
	stats := &BruteForceStats{}
	best := &Result{Cover: -1}
	for {
		for i := range retained {
			retained[i] = false
		}
		for _, v := range idx {
			retained[v] = true
		}
		c := cover.Evaluate(g, variant, retained)
		stats.SubsetsEvaluated++
		// Strictly-greater keeps the first (lexicographically smallest)
		// maximizer, since enumeration is in lexicographic order.
		if c > best.Cover+graph.Eps {
			best.Cover = c
			best.Set = append(best.Set[:0], idx...)
		}
		if !nextCombination(idx, n) {
			break
		}
	}
	return best, stats, nil
}

// nextCombination advances idx to the next k-combination of [0,n) in
// lexicographic order, returning false after the last one.
func nextCombination(idx []int32, n int) bool {
	k := len(idx)
	for i := k - 1; i >= 0; i-- {
		if idx[i] < int32(n-k+i) {
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
			return true
		}
	}
	return false
}

// binomial returns C(n,k), or -1 on overflow.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c float64 = 1
	for i := 0; i < k; i++ {
		c *= float64(n-i) / float64(i+1)
		if c > math.MaxInt64/2 {
			return -1
		}
	}
	return int64(math.Round(c))
}

// MinCoverResult is the output of a threshold-mode baseline.
type MinCoverResult struct {
	Set     []int32
	Size    int
	Cover   float64
	Reached bool
}

// MinCoverTopKW finds, by binary search over prefixes of the weight-sorted
// node list, the smallest k whose TopK-W set covers at least threshold.
// This is exactly the adaptation the paper describes for Figure 4f. Note
// the cover of a sorted prefix is monotone in its length, so binary search
// is valid.
func MinCoverTopKW(g *graph.Graph, variant graph.Variant, threshold float64) (*MinCoverResult, error) {
	order := g.TopNodesByWeight(g.NumNodes())
	return minCoverPrefix(g, variant, threshold, order)
}

// MinCoverTopKC is MinCoverTopKW with the individual-coverage ranking.
func MinCoverTopKC(g *graph.Graph, variant graph.Variant, threshold float64) (*MinCoverResult, error) {
	order := topKBy(IndividualCoverage(g), g.NumNodes())
	return minCoverPrefix(g, variant, threshold, order)
}

func minCoverPrefix(g *graph.Graph, variant graph.Variant, threshold float64, order []int32) (*MinCoverResult, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("baseline: threshold %g outside (0,1]", threshold)
	}
	full, err := cover.EvaluateSet(g, variant, order)
	if err != nil {
		return nil, err
	}
	if full < threshold-graph.Eps {
		return &MinCoverResult{Set: order, Size: len(order), Cover: full, Reached: false}, nil
	}
	lo, hi := 1, len(order) // smallest prefix length meeting threshold is in [lo,hi]
	var hiCover float64 = full
	for lo < hi {
		mid := (lo + hi) / 2
		c, err := cover.EvaluateSet(g, variant, order[:mid])
		if err != nil {
			return nil, err
		}
		if c >= threshold-graph.Eps {
			hi, hiCover = mid, c
		} else {
			lo = mid + 1
		}
	}
	c := hiCover
	if lo != hi {
		if c, err = cover.EvaluateSet(g, variant, order[:lo]); err != nil {
			return nil, err
		}
	}
	set := append([]int32(nil), order[:lo]...)
	return &MinCoverResult{Set: set, Size: lo, Cover: c, Reached: true}, nil
}

// topKBy returns the indices of the k largest scores, ties toward smaller
// id, in descending-score order.
func topKBy(scores []float64, k int) []int32 {
	ids := make([]int32, len(scores))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := scores[ids[i]], scores[ids[j]]
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func checkK(g *graph.Graph, k int) error {
	if k <= 0 {
		return errors.New("baseline: k must be positive")
	}
	if k > g.NumNodes() {
		return fmt.Errorf("baseline: k=%d exceeds node count %d", k, g.NumNodes())
	}
	return nil
}
