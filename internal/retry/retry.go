// Package retry is the client-side half of the resilience story: a
// stdlib-only exponential-backoff loop with full jitter, a hard attempt
// cap, an optional wall-clock sleep budget, and first-class awareness of
// the server's own load-shedding vocabulary — 429/503 responses and the
// Retry-After header they carry. The serving layer deliberately sheds
// load instead of queueing (see internal/server's limiter and the job
// queue's 429), so a well-behaved client must turn those rejections into
// spaced re-attempts rather than a tight hammer loop; this package is
// that client discipline, shared by `prefcover remote` and the chaos
// test harness.
//
// Only errors explicitly marked transient are retried: the caller
// classifies each failure with Transient / TransientAfter (or the HTTP
// helpers TransportError and HTTPStatusError) and everything else —
// parse errors, 4xx rejections, context cancellation — returns
// immediately. The greedy solver's ordered-prefix semantics make this
// safe to apply broadly: a retried read is idempotent by construction,
// and job submission carries idempotency keys so even a retried POST
// cannot double-enqueue.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Policy shapes the retry loop. The zero value is usable: it gets
// DefaultPolicy's attempt cap and delays.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (0 = DefaultMaxAttempts). 1 means "never retry".
	MaxAttempts int
	// BaseDelay is the backoff before the first retry
	// (0 = DefaultBaseDelay).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = DefaultMaxDelay).
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (0 = 2).
	Multiplier float64
	// Jitter is the random fraction of each delay, in [0,1]: the sleep is
	// drawn uniformly from [delay*(1-Jitter), delay]. 0 means no jitter —
	// deliberate only in tests; synchronized clients re-collide without it.
	Jitter float64
	// Budget caps the total time spent sleeping between attempts
	// (0 = unlimited). A retry whose wait would exceed the remaining
	// budget gives up instead, so a caller-facing deadline stays honest.
	Budget time.Duration
	// Rand supplies jitter randomness; nil uses a process-global seeded
	// source. Tests inject a fixed seed for reproducible schedules.
	Rand *rand.Rand
	// Observer, when non-nil, receives one callback per attempt, retry
	// and give-up — the hook the retry metrics counters hang off.
	Observer Observer
}

// Defaults for the zero Policy: four tries over roughly half a second of
// backoff, gentle enough for interactive CLI use, persistent enough to
// ride out a limiter blip.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
)

// Observer receives the loop's lifecycle events. Implementations must be
// safe for concurrent use when the policy is shared across goroutines.
type Observer interface {
	// Attempt fires before every try, including the first.
	Attempt()
	// Retry fires when a transient failure will be retried after delay;
	// honoredRetryAfter reports whether a server-mandated Retry-After
	// participated in the delay.
	Retry(delay time.Duration, honoredRetryAfter bool, err error)
	// GiveUp fires when a transient failure will NOT be retried (attempt
	// cap or budget exhausted). Non-transient failures never reach it.
	GiveUp(err error)
}

// transientError marks an error as retryable, optionally carrying the
// server-mandated minimum delay before the next attempt. demanded
// distinguishes "the server sent Retry-After: 0" (honor it, retry on our
// own curve) from "no Retry-After at all".
type transientError struct {
	err        error
	retryAfter time.Duration
	demanded   bool
}

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient marks err as retryable. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// TransientAfter marks err retryable with a server-mandated minimum wait
// (a parsed Retry-After). A non-positive delay is equivalent to Transient.
func TransientAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	if after < 0 {
		after = 0
	}
	return &transientError{err: err, retryAfter: after, demanded: true}
}

// AsTransient reports whether err is marked retryable and, if so, the
// server-mandated minimum delay (0 when none was given).
func AsTransient(err error) (retryAfter time.Duration, ok bool) {
	var t *transientError
	if errors.As(err, &t) {
		return t.retryAfter, true
	}
	return 0, false
}

// globalRand backs jitter when Policy.Rand is nil; seeded once, mutex
// guarded because Policy.Do may run concurrently.
var (
	globalMu   sync.Mutex
	globalRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func (p *Policy) jitterFloat() float64 {
	if p.Rand != nil {
		return p.Rand.Float64()
	}
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalRand.Float64()
}

// withDefaults resolves the zero-value knobs.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Do runs op until it succeeds, fails non-transiently, exhausts the
// attempt cap or sleep budget, or ctx is done. The returned error is
// op's own for non-transient failures and ctx.Err() for cancellation;
// exhaustion wraps the last transient error (errors.Is/As reach it).
func (p Policy) Do(ctx context.Context, op func(context.Context) error) error {
	p = p.withDefaults()
	delay := p.BaseDelay
	var slept time.Duration
	for attempt := 1; ; attempt++ {
		if p.Observer != nil {
			p.Observer.Attempt()
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var t *transientError
		if !errors.As(err, &t) {
			return err
		}
		retryAfter, demanded := t.retryAfter, t.demanded
		// The op may have failed because the context died mid-flight;
		// retrying a dead context would misreport cancellation as
		// exhaustion.
		if ctx.Err() != nil {
			return err
		}
		if attempt >= p.MaxAttempts {
			if p.Observer != nil {
				p.Observer.GiveUp(err)
			}
			return fmt.Errorf("retry: giving up after %d attempts: %w", attempt, err)
		}
		// Full-jitter backoff, floored by any server-mandated Retry-After:
		// the server knows its own recovery horizon better than our curve.
		wait := delay
		if p.Jitter > 0 {
			wait = delay - time.Duration(p.jitterFloat()*p.Jitter*float64(delay))
		}
		honored := demanded
		if retryAfter > wait {
			wait = retryAfter
		}
		if p.Budget > 0 && slept+wait > p.Budget {
			if p.Observer != nil {
				p.Observer.GiveUp(err)
			}
			return fmt.Errorf("retry: sleep budget %v exhausted after %d attempts: %w", p.Budget, attempt, err)
		}
		if p.Observer != nil {
			p.Observer.Retry(wait, honored, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
		slept += wait
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// TransportError classifies a transport-level failure (dial refused,
// connection reset, truncated body) as transient: the request may never
// have reached the server, or died on the wire — for idempotent calls a
// re-send is always safe.
func TransportError(err error) error { return Transient(err) }

// StatusTransient reports whether an HTTP status is worth retrying for an
// idempotent request: explicit load shedding (429, 503), gateway froth
// (502, 504), and generic server faults (500). Every 4xx except 429 is
// the client's own fault and retrying it would only repeat the mistake.
func StatusTransient(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// HTTPStatusError classifies err by its response status: transient
// statuses are marked retryable with any Retry-After the header carries;
// everything else passes through untouched.
func HTTPStatusError(status int, header http.Header, err error) error {
	if err == nil || !StatusTransient(status) {
		return err
	}
	if after, ok := RetryAfterHeader(header); ok {
		return TransientAfter(err, after)
	}
	return Transient(err)
}

// RetryAfterHeader parses a Retry-After header: delay-seconds or an
// HTTP-date per RFC 9110 §10.2.3. Absent or malformed values report false.
func RetryAfterHeader(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
