package retry

// Counters is the metrics-backed Observer: four counter families in the
// shared internal/metrics registry, so a process embedding a retrying
// client (or the chaos harness asserting exact fault accounting) can
// scrape its retry behaviour next to everything else.

import (
	"time"

	"prefcover/internal/metrics"
)

// Counters implements Observer over prefcover_retry_* counter families.
type Counters struct {
	attempts *metrics.CounterVec // prefcover_retry_attempts_total
	retries  *metrics.CounterVec // prefcover_retry_retries_total
	giveUps  *metrics.CounterVec // prefcover_retry_giveups_total
	honored  *metrics.CounterVec // prefcover_retry_retry_after_honored_total
}

// NewCounters registers the retry counter families in r.
func NewCounters(r *metrics.Registry) *Counters {
	return &Counters{
		attempts: r.NewCounter("prefcover_retry_attempts_total",
			"Request attempts issued by the retry loop, including first tries."),
		retries: r.NewCounter("prefcover_retry_retries_total",
			"Transient failures that were retried."),
		giveUps: r.NewCounter("prefcover_retry_giveups_total",
			"Transient failures abandoned at the attempt cap or sleep budget."),
		honored: r.NewCounter("prefcover_retry_retry_after_honored_total",
			"Retries whose delay honored a server-sent Retry-After."),
	}
}

func (c *Counters) Attempt() { c.attempts.With().Inc() }

func (c *Counters) Retry(_ time.Duration, honoredRetryAfter bool, _ error) {
	c.retries.With().Inc()
	if honoredRetryAfter {
		c.honored.With().Inc()
	}
}

func (c *Counters) GiveUp(error) { c.giveUps.With().Inc() }

// Attempts returns the attempt count (tests, accounting).
func (c *Counters) Attempts() int64 { return c.attempts.With().Value() }

// Retries returns the retried-failure count.
func (c *Counters) Retries() int64 { return c.retries.With().Value() }

// GiveUps returns the abandoned-failure count.
func (c *Counters) GiveUps() int64 { return c.giveUps.With().Value() }

// Honored returns how many retries honored a Retry-After.
func (c *Counters) Honored() int64 { return c.honored.With().Value() }
