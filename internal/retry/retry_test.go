package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"prefcover/internal/metrics"
)

// fastPolicy keeps test wall-clock negligible while exercising the real
// loop.
func fastPolicy() Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Rand:        rand.New(rand.NewSource(1)),
	}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := fastPolicy().Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return Transient(fmt.Errorf("flaky %d", calls))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnNonTransient(t *testing.T) {
	calls := 0
	base := errors.New("bad request")
	err := fastPolicy().Do(context.Background(), func(context.Context) error {
		calls++
		return base
	})
	if !errors.Is(err, base) {
		t.Fatalf("Do = %v, want %v", err, base)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (non-transient must not retry)", calls)
	}
}

func TestDoGivesUpAtAttemptCap(t *testing.T) {
	calls := 0
	base := errors.New("always down")
	err := fastPolicy().Do(context.Background(), func(context.Context) error {
		calls++
		return Transient(base)
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want MaxAttempts=4", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("give-up error %v should wrap the last failure", err)
	}
}

func TestDoHonorsBudget(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 100
	p.BaseDelay = 10 * time.Millisecond
	p.MaxDelay = 10 * time.Millisecond
	p.Budget = 15 * time.Millisecond
	calls := 0
	start := time.Now()
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Transient(errors.New("down"))
	})
	if err == nil {
		t.Fatal("Do should fail once the budget is exhausted")
	}
	// First retry sleeps ~10ms; the second would push past 15ms and must
	// give up instead, so at most 2 attempts ran.
	if calls > 2 {
		t.Fatalf("calls = %d, want <= 2 under a 15ms budget", calls)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget did not bound the loop (elapsed %v)", elapsed)
	}
}

func TestDoContextCancelDuringSleep(t *testing.T) {
	p := fastPolicy()
	p.BaseDelay = time.Hour // the cancel must cut the sleep short
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := p.Do(ctx, func(context.Context) error {
		return Transient(errors.New("down"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}

func TestDoReturnsOpErrorWhenContextAlreadyDead(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := errors.New("request aborted")
	calls := 0
	err := fastPolicy().Do(ctx, func(context.Context) error {
		calls++
		return Transient(base)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (dead context must not retry)", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("Do = %v, want the op's own error", err)
	}
}

func TestRetryAfterFloorsBackoff(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 2
	reg := metrics.NewRegistry()
	c := NewCounters(reg)
	p.Observer = c
	start := time.Now()
	_ = p.Do(context.Background(), func(context.Context) error {
		return TransientAfter(errors.New("throttled"), 20*time.Millisecond)
	})
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("elapsed %v, want >= the 20ms Retry-After floor", elapsed)
	}
	if c.Honored() != 1 {
		t.Fatalf("honored = %d, want 1", c.Honored())
	}
}

func TestCountersAccounting(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCounters(reg)
	p := fastPolicy()
	p.Observer = c
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Do(context.Background(), func(context.Context) error {
		return Transient(errors.New("always down"))
	})
	if got, want := c.Attempts(), int64(3+4); got != want {
		t.Errorf("attempts = %d, want %d", got, want)
	}
	if got, want := c.Retries(), int64(2+3); got != want {
		t.Errorf("retries = %d, want %d", got, want)
	}
	if got, want := c.GiveUps(), int64(1); got != want {
		t.Errorf("giveups = %d, want %d", got, want)
	}
	// Observed transients == retries + giveups: the identity the chaos
	// harness asserts against the fault injector's own counts.
	if got, want := c.Retries()+c.GiveUps(), int64(2+4); got != want {
		t.Errorf("transients observed = %d, want %d", got, want)
	}
}

func TestJitterStaysWithinBand(t *testing.T) {
	p := Policy{
		MaxAttempts: 2,
		BaseDelay:   50 * time.Millisecond,
		Jitter:      0.5,
		Rand:        rand.New(rand.NewSource(7)),
	}
	var seen time.Duration
	p.Observer = observerFunc{onRetry: func(d time.Duration, _ bool, _ error) { seen = d }}
	_ = p.Do(context.Background(), func(context.Context) error {
		return Transient(errors.New("down"))
	})
	if seen < 25*time.Millisecond || seen > 50*time.Millisecond {
		t.Fatalf("jittered delay %v outside [25ms, 50ms]", seen)
	}
}

func TestBackoffGrowthCapped(t *testing.T) {
	p := Policy{
		MaxAttempts: 6,
		BaseDelay:   time.Microsecond,
		MaxDelay:    4 * time.Microsecond,
		Multiplier:  2,
	}
	var delays []time.Duration
	p.Observer = observerFunc{onRetry: func(d time.Duration, _ bool, _ error) { delays = append(delays, d) }}
	_ = p.Do(context.Background(), func(context.Context) error {
		return Transient(errors.New("down"))
	})
	want := []time.Duration{1, 2, 4, 4, 4} // microseconds, capped at MaxDelay
	if len(delays) != len(want) {
		t.Fatalf("got %d retries, want %d", len(delays), len(want))
	}
	for i, d := range delays {
		if d != want[i]*time.Microsecond {
			t.Errorf("delay[%d] = %v, want %v", i, d, want[i]*time.Microsecond)
		}
	}
}

// observerFunc adapts closures to Observer for tests.
type observerFunc struct {
	onRetry func(time.Duration, bool, error)
}

func (observerFunc) Attempt() {}
func (o observerFunc) Retry(d time.Duration, h bool, err error) {
	if o.onRetry != nil {
		o.onRetry(d, h, err)
	}
}
func (observerFunc) GiveUp(error) {}

func TestAsTransient(t *testing.T) {
	if _, ok := AsTransient(errors.New("plain")); ok {
		t.Error("plain error classified transient")
	}
	if _, ok := AsTransient(nil); ok {
		t.Error("nil classified transient")
	}
	if after, ok := AsTransient(TransientAfter(errors.New("x"), time.Second)); !ok || after != time.Second {
		t.Errorf("TransientAfter round trip = (%v, %v)", after, ok)
	}
	// Wrapping preserves the classification.
	wrapped := fmt.Errorf("context: %w", Transient(errors.New("x")))
	if _, ok := AsTransient(wrapped); !ok {
		t.Error("wrapped transient lost its classification")
	}
	if Transient(nil) != nil || TransientAfter(nil, time.Second) != nil {
		t.Error("marking nil should stay nil")
	}
	if after, ok := AsTransient(TransientAfter(errors.New("x"), -time.Second)); !ok || after != 0 {
		t.Errorf("negative after = (%v, %v), want (0, true)", after, ok)
	}
}

func TestStatusTransient(t *testing.T) {
	for _, status := range []int{429, 500, 502, 503, 504} {
		if !StatusTransient(status) {
			t.Errorf("status %d should be transient", status)
		}
	}
	for _, status := range []int{200, 201, 304, 400, 404, 405, 415, 422} {
		if StatusTransient(status) {
			t.Errorf("status %d should not be transient", status)
		}
	}
}

func TestHTTPStatusError(t *testing.T) {
	base := errors.New("server said no")
	h := http.Header{}
	if err := HTTPStatusError(400, h, base); err != base {
		t.Errorf("400 should pass through untouched, got %v", err)
	}
	if _, ok := AsTransient(HTTPStatusError(503, h, base)); !ok {
		t.Error("503 should be transient")
	}
	h.Set("Retry-After", "2")
	if after, ok := AsTransient(HTTPStatusError(429, h, base)); !ok || after != 2*time.Second {
		t.Errorf("429 with Retry-After: 2 = (%v, %v), want (2s, true)", after, ok)
	}
	if err := HTTPStatusError(200, h, nil); err != nil {
		t.Errorf("nil error should stay nil, got %v", err)
	}
}

func TestRetryAfterHeader(t *testing.T) {
	cases := []struct {
		value string
		want  time.Duration
		ok    bool
	}{
		{"", 0, false},
		{"3", 3 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"garbage", 0, false},
		{time.Now().Add(time.Minute).UTC().Format(http.TimeFormat), 0, true}, // date form parses
		{time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, true},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.value != "" {
			h.Set("Retry-After", tc.value)
		}
		got, ok := RetryAfterHeader(h)
		if ok != tc.ok {
			t.Errorf("RetryAfterHeader(%q) ok = %v, want %v", tc.value, ok, tc.ok)
			continue
		}
		// For the date forms only sanity-check the sign.
		if tc.value != "" && tc.ok && tc.want > 0 && got != tc.want {
			t.Errorf("RetryAfterHeader(%q) = %v, want %v", tc.value, got, tc.want)
		}
		if got < 0 {
			t.Errorf("RetryAfterHeader(%q) = %v, negative", tc.value, got)
		}
	}
}

func TestTransportError(t *testing.T) {
	if _, ok := AsTransient(TransportError(errors.New("connection refused"))); !ok {
		t.Error("transport errors must be transient")
	}
}
