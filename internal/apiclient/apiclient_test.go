package apiclient

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"prefcover/internal/trace"
)

func TestNewRequestIDShape(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewRequestID()
		if !hex16.MatchString(id) {
			t.Fatalf("request ID %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
	}
}

func TestNewTraceparentParses(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		tp := NewTraceparent(sampled)
		sc, err := trace.ParseTraceparent(tp)
		if err != nil {
			t.Fatalf("NewTraceparent(%v) = %q: %v", sampled, tp, err)
		}
		if sc.Sampled != sampled {
			t.Fatalf("NewTraceparent(%v) parsed with sampled=%v: %q", sampled, sc.Sampled, tp)
		}
		// The parsed context must round-trip — proof the IDs are non-zero
		// and well-formed, not just 55 bytes of plausible hex.
		if sc.Traceparent() != tp {
			t.Fatalf("traceparent did not round-trip: %q -> %q", tp, sc.Traceparent())
		}
	}
}

func TestDecorate(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "http://example/", nil)
	Decorate(req, "abcd", "00-1234-5678-01")
	if got := req.Header.Get("X-Request-ID"); got != "abcd" {
		t.Fatalf("X-Request-ID = %q", got)
	}
	if got := req.Header.Get(trace.TraceparentHeader); got != "00-1234-5678-01" {
		t.Fatalf("traceparent = %q", got)
	}
	// Empty values must not clobber or create headers.
	req2 := httptest.NewRequest(http.MethodGet, "http://example/", nil)
	Decorate(req2, "", "")
	if len(req2.Header.Values("X-Request-ID")) != 0 || len(req2.Header.Values(trace.TraceparentHeader)) != 0 {
		t.Fatalf("empty decoration created headers: %v", req2.Header)
	}
}

func TestNewClientTransport(t *testing.T) {
	c := New(Options{Timeout: 3 * time.Second, DisableKeepAlives: true, MaxIdleConnsPerHost: 7})
	if c.Timeout != 3*time.Second {
		t.Fatalf("timeout = %v", c.Timeout)
	}
	tr, ok := c.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T", c.Transport)
	}
	if !tr.DisableKeepAlives || tr.MaxIdleConnsPerHost != 7 {
		t.Fatalf("transport not tuned: %+v", tr)
	}
	if def := New(Options{}); def.Transport.(*http.Transport).MaxIdleConnsPerHost != 64 {
		t.Fatal("default per-host pool should be 64")
	}
}

func TestNewPolicyShape(t *testing.T) {
	p := NewPolicy(4, 10*time.Millisecond, nil)
	if p.MaxAttempts != 4 || p.BaseDelay != 10*time.Millisecond || p.Jitter != 0.5 {
		t.Fatalf("policy shape drifted: %+v", p)
	}
}
