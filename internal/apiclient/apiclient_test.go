package apiclient

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"prefcover/internal/trace"
)

func TestNewRequestIDShape(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		id := NewRequestID()
		if !hex16.MatchString(id) {
			t.Fatalf("request ID %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("request ID %q repeated", id)
		}
		seen[id] = true
	}
}

func TestNewTraceparentParses(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		tp := NewTraceparent(sampled)
		sc, err := trace.ParseTraceparent(tp)
		if err != nil {
			t.Fatalf("NewTraceparent(%v) = %q: %v", sampled, tp, err)
		}
		if sc.Sampled != sampled {
			t.Fatalf("NewTraceparent(%v) parsed with sampled=%v: %q", sampled, sc.Sampled, tp)
		}
		// The parsed context must round-trip — proof the IDs are non-zero
		// and well-formed, not just 55 bytes of plausible hex.
		if sc.Traceparent() != tp {
			t.Fatalf("traceparent did not round-trip: %q -> %q", tp, sc.Traceparent())
		}
	}
}

func TestDecorate(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "http://example/", nil)
	Decorate(req, "abcd", "00-1234-5678-01")
	if got := req.Header.Get("X-Request-ID"); got != "abcd" {
		t.Fatalf("X-Request-ID = %q", got)
	}
	if got := req.Header.Get(trace.TraceparentHeader); got != "00-1234-5678-01" {
		t.Fatalf("traceparent = %q", got)
	}
	// Empty values must not clobber or create headers.
	req2 := httptest.NewRequest(http.MethodGet, "http://example/", nil)
	Decorate(req2, "", "")
	if len(req2.Header.Values("X-Request-ID")) != 0 || len(req2.Header.Values(trace.TraceparentHeader)) != 0 {
		t.Fatalf("empty decoration created headers: %v", req2.Header)
	}
}

func TestNewClientTransport(t *testing.T) {
	c := New(Options{Timeout: 3 * time.Second, DisableKeepAlives: true, MaxIdleConnsPerHost: 7})
	if c.Timeout != 3*time.Second {
		t.Fatalf("timeout = %v", c.Timeout)
	}
	tr, ok := c.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T", c.Transport)
	}
	if !tr.DisableKeepAlives || tr.MaxIdleConnsPerHost != 7 {
		t.Fatalf("transport not tuned: %+v", tr)
	}
	if def := New(Options{}); def.Transport.(*http.Transport).MaxIdleConnsPerHost != 64 {
		t.Fatal("default per-host pool should be 64")
	}
	// Fan-out sizing: the transport-wide idle cap must scale with the
	// number of backends, or an N-node gateway would thrash one host's
	// worth of pooled connections across all N.
	fan := New(Options{MaxIdleConnsPerHost: 8, Hosts: 5}).Transport.(*http.Transport)
	if fan.MaxIdleConns != 4*8*5 {
		t.Fatalf("fan-out MaxIdleConns = %d, want %d", fan.MaxIdleConns, 4*8*5)
	}
}

func TestWithTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release)

	c := New(Options{}) // no client-wide timeout
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req, cancel := WithTimeout(req, 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Do(req); err == nil {
		t.Fatal("request against a stalled handler should time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, per-request deadline not applied", elapsed)
	}

	// d <= 0 must be a no-op returning the same request.
	plain, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	same, noop := WithTimeout(plain, 0)
	noop()
	if same != plain {
		t.Fatal("WithTimeout(req, 0) should return req unchanged")
	}
}

func TestNewPolicyShape(t *testing.T) {
	p := NewPolicy(4, 10*time.Millisecond, nil)
	if p.MaxAttempts != 4 || p.BaseDelay != 10*time.Millisecond || p.Jitter != 0.5 {
		t.Fatalf("policy shape drifted: %+v", p)
	}
}
