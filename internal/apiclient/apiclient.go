// Package apiclient is the one place prefcoverd's HTTP clients are
// constructed. `prefcover remote` and the load generator
// (internal/loadgen) used to each assemble their own http.Client, retry
// policy and identification headers; drift between the two meant the
// traffic the capacity model measured was not the traffic the CLI sent.
// Everything shared now lives here:
//
//   - New builds the tuned *http.Client (transport pooling, optional
//     per-request timeout, optional keep-alive kill switch for harnesses
//     that must observe every connection-level fault exactly once).
//   - Decorate stamps the headers every outbound prefcover request
//     carries: an X-Request-ID (one per logical call, constant across its
//     retry attempts, so client and server logs join on a single ID) and
//     the W3C traceparent when the caller has a trace position.
//   - NewPolicy builds the retry discipline with the shared jitter shape
//     and the caller's Observer (span recorder, metrics counters).
package apiclient

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	mrand "math/rand/v2"
	"net/http"
	"time"

	"prefcover/internal/retry"
)

// Options shapes New. The zero value is the `prefcover remote` client:
// pooled keep-alive connections and no client-side timeout (reference
// solves can legitimately run for minutes; the server owns the deadline).
type Options struct {
	// Timeout bounds each attempt end to end (dial, headers, full body).
	// 0 means no client-side limit.
	Timeout time.Duration
	// DisableKeepAlives forces a fresh connection per request. The chaos
	// and loadgen harnesses set this when they need injected connection
	// resets to surface as exactly one observation (net/http transparently
	// replays idempotent requests on dead *reused* connections, which
	// would swallow the fault before the retry layer could count it).
	DisableKeepAlives bool
	// MaxIdleConnsPerHost sizes the keep-alive pool; the load generator
	// raises it so open-loop bursts do not serialize on two pooled
	// connections (net/http's default). 0 keeps the loadgen-friendly
	// default of 64.
	MaxIdleConnsPerHost int
	// Hosts is how many distinct backends this client fans out to (the
	// cluster gateway talks to every node). It scales the transport-wide
	// idle-connection cap so a multi-node fan-out is not silently capped at
	// one host's pool size — without it, replicating to N nodes evicts and
	// redials warm connections on every round. 0 means a single host.
	Hosts int
}

// New returns the shared tuned client.
func New(opts Options) *http.Client {
	perHost := opts.MaxIdleConnsPerHost
	if perHost <= 0 {
		perHost = 64
	}
	hosts := opts.Hosts
	if hosts <= 0 {
		hosts = 1
	}
	return &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			DisableKeepAlives:   opts.DisableKeepAlives,
			MaxIdleConns:        4 * perHost * hosts,
			MaxIdleConnsPerHost: perHost,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// WithTimeout bounds a single request independently of the client-wide
// Options.Timeout by attaching a deadline context to req. Use it for
// fan-out calls that need a tight per-request budget (gateway health
// probes, replication writes) on a client whose other requests (long
// reference solves) must stay unbounded. The returned cancel must be
// called once the response body is consumed. d <= 0 returns req
// unchanged with a no-op cancel.
func WithTimeout(req *http.Request, d time.Duration) (*http.Request, context.CancelFunc) {
	if d <= 0 {
		return req, func() {}
	}
	ctx, cancel := context.WithTimeout(req.Context(), d)
	return req.WithContext(ctx), cancel
}

// NewRequestID mints a request ID in the same shape the server generates
// (16 hex digits): set it once per logical call and reuse it across retry
// attempts so every server-side log line of every attempt carries it.
func NewRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Uniqueness is all an ID needs; fall back to the fast source.
		for i := range b {
			b[i] = byte(mrand.Uint32())
		}
	}
	return hex.EncodeToString(b[:])
}

// NewTraceparent mints a fresh W3C traceparent value (version 00, random
// trace and span IDs). The load generator sends one per request with
// sampled=false: the header exercises the full propagation path without
// flooding the server's flight recorder, which only records sampled
// inbound traces.
func NewTraceparent(sampled bool) string {
	var b [24]byte
	if _, err := crand.Read(b[:]); err != nil {
		for i := range b {
			b[i] = byte(mrand.Uint32())
		}
	}
	// An all-zero trace or span ID is invalid per the spec; force one bit.
	b[0] |= 1
	b[16] |= 1
	flags := "-00"
	if sampled {
		flags = "-01"
	}
	return "00-" + hex.EncodeToString(b[:16]) + "-" + hex.EncodeToString(b[16:]) + flags
}

// Decorate stamps the shared identification headers on one attempt:
// requestID into X-Request-ID (when non-empty) and traceparent (when
// non-empty). Both are set unconditionally — the caller owns reuse
// semantics (same request ID across retries, fresh traceparent per
// attempt or per call as its trace model demands).
func Decorate(req *http.Request, requestID, traceparent string) {
	if requestID != "" {
		req.Header.Set("X-Request-ID", requestID)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
}

// NewPolicy is the shared retry-policy shape: maxAttempts total tries,
// base backoff doubling with 50% jitter, Retry-After honored by the
// retry package itself, every lifecycle event reported to obs (nil for
// none). retries==0 (maxAttempts==1) still reports GiveUp events, which
// is what lets a non-retrying load generator account for every transient
// failure it chose not to retry.
func NewPolicy(maxAttempts int, base time.Duration, obs retry.Observer) retry.Policy {
	return retry.Policy{
		MaxAttempts: maxAttempts,
		BaseDelay:   base,
		Jitter:      0.5,
		Observer:    obs,
	}
}
