// Package promtext is a hand-rolled parser and canonical writer for the
// Prometheus text exposition format (version 0.0.4) — exactly the dialect
// our own metrics.Registry.WritePrometheus emits: `# HELP` / `# TYPE`
// headers followed by `name{label="value",...} value` sample lines, with
// Go-quoted label values (a superset of the format's \\ \" \n escapes)
// and `%g` floats. It exists so the rest of the observability plane can
// treat a scrape as data: internal/tsdb snapshots parsed scrapes into its
// ring, and the cluster gateway re-exports parsed node scrapes under
// federated names.
//
// Parse canonicalizes: label pairs are sorted by name, a family is
// synthesized (type "untyped") for samples with no preceding `# TYPE`,
// and optional trailing timestamps are dropped. Write renders the
// canonical form back out, so Parse∘Write is the identity on parsed
// metrics — the property the fuzz target holds against arbitrary input.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// Labels is a sample's label set, sorted by label name.
type Labels []Label

// Get returns the value of the named label.
func (ls Labels) Get(name string) (string, bool) {
	for _, l := range ls {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// Matches reports whether every (name, value) in match appears in ls.
func (ls Labels) Matches(match map[string]string) bool {
	for name, want := range match {
		got, ok := ls.Get(name)
		if !ok || got != want {
			return false
		}
	}
	return true
}

// Key joins the label set into one comparable string (0x1f-separated,
// the same convention the metrics registry uses for series keys).
func (ls Labels) Key() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Without returns a copy of ls with the named label removed.
func (ls Labels) Without(name string) Labels {
	out := make(Labels, 0, len(ls))
	for _, l := range ls {
		if l.Name != name {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// With returns a sorted copy of ls with (name, value) set, replacing any
// existing label of that name.
func (ls Labels) With(name, value string) Labels {
	out := make(Labels, 0, len(ls)+1)
	replaced := false
	for _, l := range ls {
		if l.Name == name {
			out = append(out, Label{Name: name, Value: value})
			replaced = true
			continue
		}
		out = append(out, l)
	}
	if !replaced {
		out = append(out, Label{Name: name, Value: value})
		sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	}
	return out
}

// Sample is one sample line: Name carries any histogram suffix
// (_bucket, _sum, _count) verbatim.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Family groups the samples under one `# TYPE` header.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []Sample
}

// Metrics is one parsed scrape.
type Metrics struct {
	Families []Family
	// index maps sample name -> flat sample list, built by Parse so
	// concurrent readers (tsdb queries, federation renders) never mutate.
	index map[string][]Sample
}

// Family returns the named family, or nil.
func (m *Metrics) Family(name string) *Family {
	for i := range m.Families {
		if m.Families[i].Name == name {
			return &m.Families[i]
		}
	}
	return nil
}

// Samples returns every sample with the given sample name (for
// histograms that means the suffixed names: "x_bucket", "x_sum", ...).
func (m *Metrics) Samples(name string) []Sample {
	return m.index[name]
}

// NumSamples counts all samples across families.
func (m *Metrics) NumSamples() int {
	n := 0
	for i := range m.Families {
		n += len(m.Families[i].Samples)
	}
	return n
}

// buildIndex populates the sample-name index; called once at the end of
// Parse and by builders that assemble Metrics by hand (federation).
func (m *Metrics) buildIndex() {
	m.index = make(map[string][]Sample)
	for i := range m.Families {
		for _, s := range m.Families[i].Samples {
			m.index[s.Name] = append(m.index[s.Name], s)
		}
	}
}

// Build assembles a Metrics from hand-constructed families (the
// federation aggregator) and indexes it for queries.
func Build(fams []Family) *Metrics {
	m := &Metrics{Families: fams}
	m.buildIndex()
	return m
}

// belongs reports whether a sample named sampleName is part of family f
// (exact match, or the distribution suffixes on histogram/summary
// families).
func belongs(f *Family, sampleName string) bool {
	if sampleName == f.Name {
		return true
	}
	switch f.Type {
	case "histogram":
		return sampleName == f.Name+"_bucket" || sampleName == f.Name+"_sum" || sampleName == f.Name+"_count"
	case "summary":
		return sampleName == f.Name+"_sum" || sampleName == f.Name+"_count"
	}
	return false
}

// validName reports whether s is a legal metric or label identifier.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9') || (!label && c == ':')
		if !ok {
			return false
		}
	}
	return true
}

// Parse reads one scrape in the text exposition format. Unknown comment
// lines are skipped; malformed sample or header lines are errors (the
// parser guards the federation path, where silently dropping a node's
// series would corrupt cluster aggregates).
func Parse(r io.Reader) (*Metrics, error) {
	m := &Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	pendingHelp := make(map[string]string)
	var cur *Family
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimLeft(rest, " ")
			switch {
			case strings.HasPrefix(rest, "HELP "):
				name, help, _ := strings.Cut(strings.TrimPrefix(rest, "HELP "), " ")
				if !validName(name, false) {
					return nil, fmt.Errorf("promtext: line %d: bad HELP metric name %q", lineNo, name)
				}
				if cur != nil && cur.Name == name && cur.Help == "" {
					cur.Help = help
				} else {
					pendingHelp[name] = help
				}
			case strings.HasPrefix(rest, "TYPE "):
				fields := strings.Fields(strings.TrimPrefix(rest, "TYPE "))
				if len(fields) != 2 {
					return nil, fmt.Errorf("promtext: line %d: bad TYPE line %q", lineNo, line)
				}
				name, typ := fields[0], fields[1]
				if !validName(name, false) {
					return nil, fmt.Errorf("promtext: line %d: bad TYPE metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("promtext: line %d: unknown metric type %q", lineNo, typ)
				}
				m.Families = append(m.Families, Family{Name: name, Help: pendingHelp[name], Type: typ})
				delete(pendingHelp, name)
				cur = &m.Families[len(m.Families)-1]
			default:
				// Plain comment; ignored.
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		if cur == nil || !belongs(cur, s.Name) {
			// A sample with no (matching) TYPE header: synthesize an
			// untyped family so nothing is dropped.
			m.Families = append(m.Families, Family{Name: s.Name, Help: pendingHelp[s.Name], Type: "untyped"})
			delete(pendingHelp, s.Name)
			cur = &m.Families[len(m.Families)-1]
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promtext: %w", err)
	}
	m.buildIndex()
	return m, nil
}

// parseSample parses `name{k="v",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) {
		c := line[i]
		if c == '{' || c == ' ' || c == '\t' {
			break
		}
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name, false) {
		return s, fmt.Errorf("bad sample name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		s.Labels, rest, err = parseLabels(rest)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	// An optional integer timestamp may trail the value; it is dropped
	// (the tsdb stamps snapshots with its own clock).
	valueText := rest
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		valueText = rest[:j]
		tsText := strings.TrimSpace(rest[j:])
		if tsText != "" {
			if _, err := strconv.ParseInt(tsText, 10, 64); err != nil {
				return s, fmt.Errorf("bad timestamp %q", tsText)
			}
		}
	}
	v, err := strconv.ParseFloat(valueText, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", valueText)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block, returning the sorted label
// set and the remainder of the line.
func parseLabels(in string) (Labels, string, error) {
	var ls Labels
	rest := in[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			rest = rest[1:]
			break
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validName(name, true) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %s: value is not quoted", name)
		}
		end := quotedEnd(rest)
		if end < 0 {
			return nil, "", fmt.Errorf("label %s: unterminated quoted value", name)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: bad quoted value: %v", name, err)
		}
		ls = append(ls, Label{Name: name, Value: val})
		rest = strings.TrimLeft(rest[end+1:], " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			rest = rest[1:]
			break
		}
		return nil, "", fmt.Errorf("label %s: expected , or } after value", name)
	}
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls, rest, nil
}

// quotedEnd returns the index of the closing quote of a string starting
// with `"`, honoring backslash escapes; -1 when unterminated.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// Write renders m in the canonical exposition form: HELP (when present)
// and TYPE headers per family, Go-quoted label values, `%g` floats —
// byte-compatible with what metrics.Registry emits.
func Write(w io.Writer, m *Metrics) error {
	for i := range m.Families {
		if err := WriteFamily(w, &m.Families[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFamily renders one family.
func WriteFamily(w io.Writer, f *Family) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Type); err != nil {
		return err
	}
	for _, s := range f.Samples {
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, s Sample) error {
	var b strings.Builder
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteByte('=')
			b.WriteString(strconv.Quote(l.Value))
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(FormatValue(s.Value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatValue renders a sample value the way the registry does (%g:
// shortest round-trip representation; NaN/±Inf spelled out).
func FormatValue(v float64) string {
	return fmt.Sprintf("%g", v)
}
