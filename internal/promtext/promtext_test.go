package promtext

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"prefcover/internal/metrics"
)

// famsEqual is a NaN-aware deep equality over parsed families (the fuzz
// property cannot use reflect.DeepEqual: NaN != NaN).
func famsEqual(a, b []Family) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		fa, fb := a[i], b[i]
		if fa.Name != fb.Name || fa.Help != fb.Help || fa.Type != fb.Type || len(fa.Samples) != len(fb.Samples) {
			return false
		}
		for j := range fa.Samples {
			sa, sb := fa.Samples[j], fb.Samples[j]
			if sa.Name != sb.Name || len(sa.Labels) != len(sb.Labels) {
				return false
			}
			for k := range sa.Labels {
				if sa.Labels[k] != sb.Labels[k] {
					return false
				}
			}
			if sa.Value != sb.Value && !(math.IsNaN(sa.Value) && math.IsNaN(sb.Value)) {
				return false
			}
		}
	}
	return true
}

// TestParseLiveRegistry round-trips a scrape of a real metrics.Registry
// carrying every family type, labels with escapes, and non-finite values.
func TestParseLiveRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	reqs := reg.NewCounter("prefcover_http_requests_total", "Requests served.", "endpoint", "code")
	reqs.With("/v1/solve", "200").Add(41)
	reqs.With("/v1/solve", "500").Add(3)
	reqs.With(`/v1/graphs/{name}`, "200").Inc()
	g := reg.NewGauge("prefcover_inflight", "In-flight requests.")
	g.With().Set(7)
	fg := reg.NewFloatGauge("prefcover_uptime_seconds", "Uptime.")
	fg.With().Set(12.5)
	weird := reg.NewFloatGauge("prefcover_weird", "Escapes and non-finite values.", "path")
	weird.With("a\\b\"c\nd").Set(math.Inf(1))
	weird.With("plain").Set(math.NaN())
	hist := reg.NewHistogram("prefcover_http_request_duration_seconds", "Latency.", []float64{0.01, 0.1, 1}, "endpoint")
	for _, v := range []float64{0.005, 0.02, 0.05, 0.5, 2} {
		hist.With("/v1/solve").Observe(v)
	}

	var raw bytes.Buffer
	if err := reg.WritePrometheus(&raw); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	m, err := Parse(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatalf("Parse of live registry output: %v\ninput:\n%s", err, raw.String())
	}

	// Spot-check structure against the registry.
	f := m.Family("prefcover_http_requests_total")
	if f == nil || f.Type != "counter" || f.Help != "Requests served." {
		t.Fatalf("counter family missing or wrong: %+v", f)
	}
	if len(f.Samples) != 3 {
		t.Fatalf("counter samples = %d, want 3", len(f.Samples))
	}
	found := false
	for _, s := range m.Samples("prefcover_http_requests_total") {
		if s.Labels.Matches(map[string]string{"endpoint": "/v1/solve", "code": "500"}) {
			found = true
			if s.Value != 3 {
				t.Fatalf("500 counter = %g, want 3", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("500-code counter series not found")
	}
	hf := m.Family("prefcover_http_request_duration_seconds")
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hf)
	}
	// 3 finite buckets + +Inf + sum + count = 6 samples under one family.
	if len(hf.Samples) != 6 {
		t.Fatalf("histogram samples = %d, want 6", len(hf.Samples))
	}
	var infBucket, count float64
	for _, s := range m.Samples("prefcover_http_request_duration_seconds_bucket") {
		if le, _ := s.Labels.Get("le"); le == "+Inf" {
			infBucket = s.Value
		}
	}
	for _, s := range m.Samples("prefcover_http_request_duration_seconds_count") {
		count = s.Value
	}
	if infBucket != 5 || count != 5 {
		t.Fatalf("histogram +Inf bucket/count = %g/%g, want 5/5", infBucket, count)
	}
	// The escaped label value must come back exactly.
	gotEscaped := false
	for _, s := range m.Samples("prefcover_weird") {
		if v, ok := s.Labels.Get("path"); ok && v == "a\\b\"c\nd" {
			gotEscaped = true
			if !math.IsInf(s.Value, 1) {
				t.Fatalf("escaped series value = %g, want +Inf", s.Value)
			}
		}
	}
	if !gotEscaped {
		t.Fatal("escaped label value did not round-trip")
	}

	// Write renders the canonical form (labels sorted by name; the
	// registry emits declaration order) — a reparse must be structurally
	// identical to the first parse.
	var rendered bytes.Buffer
	if err := Write(&rendered, m); err != nil {
		t.Fatalf("Write: %v", err)
	}
	m2, err := Parse(bytes.NewReader(rendered.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !famsEqual(m.Families, m2.Families) {
		t.Fatal("round-trip changed the parsed structure")
	}
}

func TestParseSyntheticForms(t *testing.T) {
	in := strings.Join([]string{
		"# a stray comment",
		"",
		"# HELP hinted Has help but type comes later.",
		"# TYPE hinted gauge",
		"hinted 4",
		"bare_sample{x=\"1\"} 2.5 1700000000000",
		"# TYPE dur histogram",
		`dur_bucket{le="0.1"} 1`,
		`dur_bucket{le="+Inf"} 2`,
		"dur_sum 0.3",
		"dur_count 2",
		"after_hist 9",
	}, "\n") + "\n"
	m, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := len(m.Families); got != 4 {
		t.Fatalf("families = %d, want 4", got)
	}
	if f := m.Family("hinted"); f == nil || f.Help != "Has help but type comes later." || f.Type != "gauge" {
		t.Fatalf("hinted family wrong: %+v", f)
	}
	if f := m.Family("bare_sample"); f == nil || f.Type != "untyped" {
		t.Fatalf("bare_sample should synthesize an untyped family: %+v", f)
	}
	if s := m.Samples("bare_sample"); len(s) != 1 || s[0].Value != 2.5 {
		t.Fatalf("bare_sample sample wrong (timestamp must be tolerated): %+v", s)
	}
	if f := m.Family("dur"); f == nil || len(f.Samples) != 4 {
		t.Fatalf("histogram family should absorb _bucket/_sum/_count: %+v", f)
	}
	if f := m.Family("after_hist"); f == nil || f.Type != "untyped" {
		t.Fatalf("sample after histogram should start a fresh family: %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bad name 1",                 // space in name position → bad value
		"x{a=1} 2",                   // unquoted label value
		`x{a="1} 2`,                  // unterminated quote
		`x{a="1"`,                    // unterminated block
		"x{=\"v\"} 1",                // empty label name
		"x nope",                     // bad value
		"x 1 t",                      // bad timestamp
		"# TYPE x frobnitz",          // unknown type
		"# TYPE x",                   // missing type
		"# HELP {bad} h",             // bad help name
		"x{le=\"0.1\",} }",           // junk after label block
		strings.Repeat("x", 3) + "{", // unterminated brace
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in + "\n")); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestLabelsHelpers(t *testing.T) {
	ls := Labels{{"a", "1"}, {"m", "x"}}
	if got := ls.With("z", "9"); len(got) != 3 || got[2].Name != "z" {
		t.Fatalf("With append: %+v", got)
	}
	if got := ls.With("a", "2"); got[0].Value != "2" || len(got) != 2 {
		t.Fatalf("With replace: %+v", got)
	}
	if got := ls.Without("m"); len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("Without: %+v", got)
	}
	if Labels(nil).Key() != "" || ls.Key() == "" {
		t.Fatal("Key sanity")
	}
	if !ls.Matches(map[string]string{"a": "1"}) || ls.Matches(map[string]string{"a": "2"}) {
		t.Fatal("Matches sanity")
	}
}
