package promtext

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzPromText holds the canonicalization property: any input that Parse
// accepts must survive Write∘Parse unchanged — Parse is idempotent on its
// own canonical form. This is the guarantee the federation path leans on:
// a node scrape re-rendered by the gateway parses back to the same data.
func FuzzPromText(f *testing.F) {
	seeds := []string{
		"# HELP a b\n# TYPE a counter\na 1\n",
		"# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.25\nh_count 2\n",
		"x{a=\"v\\\"q\",b=\"w\\\\\"} 2.5\n",
		"g NaN\ng2 +Inf\ng3 -Inf\n",
		"bare 3 1700000000000\n",
		"# TYPE s summary\ns_sum 1\ns_count 2\n",
		"m{z=\"1\",a=\"2\"} 3\n",
		"# HELP late note\nlate 1\n# HELP late2 before\n# TYPE late2 gauge\nlate2 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		m1, err := Parse(strings.NewReader(in))
		if err != nil {
			return // malformed input: rejection is fine, crashing is not
		}
		var buf bytes.Buffer
		if err := Write(&buf, m1); err != nil {
			t.Fatalf("Write failed on parsed metrics: %v", err)
		}
		m2, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical output failed to reparse: %v\noutput:\n%s", err, buf.String())
		}
		if !famsEqual(m1.Families, m2.Families) {
			t.Fatalf("round-trip changed structure\ninput:\n%q\ncanonical:\n%q", in, buf.String())
		}
		// Write must be a fixed point: rendering m2 yields identical bytes.
		var buf2 bytes.Buffer
		if err := Write(&buf2, m2); err != nil {
			t.Fatalf("second Write: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("Write is not a fixed point\nfirst:\n%q\nsecond:\n%q", buf.String(), buf2.String())
		}
	})
}
