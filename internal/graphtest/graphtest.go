// Package graphtest provides seeded random preference-graph generation for
// property-based tests across the repository. Unlike internal/synth, which
// models realistic e-commerce structure, these graphs are adversarially
// unstructured: arbitrary topology within validity constraints, which is
// what invariant tests want.
package graphtest

import (
	"math/rand"

	"prefcover/internal/graph"
)

// Random builds a random valid preference graph with n nodes and per-node
// out-degree up to maxDeg. Node weights form a simplex; edge weights
// respect the variant's constraints (Normalized keeps per-node outgoing
// sums below 1).
func Random(rng *rand.Rand, n, maxDeg int, variant graph.Variant) *graph.Graph {
	b := graph.NewBuilder(n, n*maxDeg/2)
	total := 0.0
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = rng.Float64()
		total += raw[i]
	}
	for _, w := range raw {
		b.AddNode(w / total)
	}
	for v := 0; v < n; v++ {
		deg := rng.Intn(maxDeg + 1)
		budget := 1.0
		for e := 0; e < deg; e++ {
			u := rng.Intn(n)
			if u == v {
				continue
			}
			var w float64
			if variant == graph.Normalized {
				w = rng.Float64() * budget * 0.9
				budget -= w
				if w <= 0 {
					continue
				}
			} else {
				w = rng.Float64()*0.98 + 0.01
			}
			b.AddEdge(int32(v), int32(u), w)
		}
	}
	g, err := b.Build(graph.BuildOptions{Duplicates: graph.DupKeepMax, DropZeroEdges: true})
	if err != nil {
		panic("graphtest: random graph must build: " + err.Error())
	}
	return g
}

// RandomSet picks a uniformly random subset of size k of g's nodes.
func RandomSet(rng *rand.Rand, g *graph.Graph, k int) []int32 {
	perm := rng.Perm(g.NumNodes())
	if k > len(perm) {
		k = len(perm)
	}
	set := make([]int32, k)
	for i := 0; i < k; i++ {
		set[i] = int32(perm[i])
	}
	return set
}
