package quota_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/greedy"
	. "prefcover/internal/quota"
)

const tol = 1e-9

func TestValidation(t *testing.T) {
	g := fixture.Figure1Graph()
	groups := []int32{0, 0, 1, 1, 1}
	cases := map[string]Spec{
		"zero k":         {Variant: graph.Independent, Group: groups, MaxPerGroup: []int{0, 0}},
		"group len":      {Variant: graph.Independent, K: 2, Group: []int32{0}, MaxPerGroup: []int{0}},
		"no groups":      {Variant: graph.Independent, K: 2, Group: groups},
		"unknown group":  {Variant: graph.Independent, K: 2, Group: []int32{0, 0, 9, 1, 1}, MaxPerGroup: []int{0, 0}},
		"negative cap":   {Variant: graph.Independent, K: 2, Group: groups, MaxPerGroup: []int{-1, 0}},
		"floor len":      {Variant: graph.Independent, K: 2, Group: groups, MaxPerGroup: []int{0, 0}, MinPerGroup: []int{1}},
		"negative floor": {Variant: graph.Independent, K: 2, Group: groups, MaxPerGroup: []int{0, 0}, MinPerGroup: []int{-1, 0}},
		"floor over cap": {Variant: graph.Independent, K: 3, Group: groups, MaxPerGroup: []int{1, 0}, MinPerGroup: []int{2, 0}},
		"floors over k":  {Variant: graph.Independent, K: 2, Group: groups, MaxPerGroup: []int{0, 0}, MinPerGroup: []int{2, 2}},
	}
	for name, spec := range cases {
		if _, err := Solve(g, spec); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestUnconstrainedMatchesPlainGreedy(t *testing.T) {
	g := fixture.Figure1Graph()
	res, err := Solve(g, Spec{
		Variant:     graph.Independent,
		K:           2,
		Group:       []int32{0, 0, 0, 0, 0},
		MaxPerGroup: []int{0}, // unlimited
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Order, plain.Order) {
		t.Errorf("order = %v, want %v", res.Order, plain.Order)
	}
	if math.Abs(res.Cover-plain.Cover) > tol {
		t.Errorf("cover = %g, want %g", res.Cover, plain.Cover)
	}
}

func TestCapsAreRespected(t *testing.T) {
	g := fixture.Figure1Graph()
	// Put B and C (the strongest pair around the hub) into group 0 with
	// cap 1: only one of them may be retained.
	groups := []int32{1, 0, 0, 1, 1} // A,D,E in group 1
	res, err := Solve(g, Spec{
		Variant:     graph.Independent,
		K:           3,
		Group:       groups,
		MaxPerGroup: []int{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupCounts[0] > 1 {
		t.Errorf("group 0 count = %d, cap 1", res.GroupCounts[0])
	}
	if len(res.Order) != 3 {
		t.Errorf("retained %d items", len(res.Order))
	}
	// Consistency of the reported cover.
	fresh, err := cover.EvaluateSet(g, graph.Independent, res.Order)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh-res.Cover) > tol {
		t.Errorf("cover %g != fresh %g", res.Cover, fresh)
	}
}

func TestFloorsForceRepresentation(t *testing.T) {
	g := fixture.Figure1Graph()
	// D and E form group 1; plain greedy at k=2 picks B and D, but a floor
	// of 2 on group 1 forces {D,E}.
	groups := []int32{0, 0, 0, 1, 1}
	res, err := Solve(g, Spec{
		Variant:     graph.Independent,
		K:           2,
		Group:       groups,
		MaxPerGroup: []int{0, 0},
		MinPerGroup: []int{0, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FloorsSatisfied {
		t.Fatal("floors should be satisfiable")
	}
	if res.GroupCounts[1] != 2 || res.GroupCounts[0] != 0 {
		t.Errorf("group counts = %v", res.GroupCounts)
	}
}

func TestFloorsUnsatisfiable(t *testing.T) {
	g := fixture.Figure1Graph()
	groups := []int32{0, 0, 0, 0, 1} // only E in group 1
	res, err := Solve(g, Spec{
		Variant:     graph.Independent,
		K:           3,
		Group:       groups,
		MaxPerGroup: []int{0, 0},
		MinPerGroup: []int{0, 2}, // group 1 has one item, floor 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FloorsSatisfied {
		t.Error("floor on a 1-item group cannot be 2-satisfied")
	}
	// The solver still fills the budget elsewhere.
	if len(res.Order) != 3 {
		t.Errorf("retained %d items", len(res.Order))
	}
}

func TestAllGroupsFullStopsEarly(t *testing.T) {
	g := fixture.Figure1Graph()
	res, err := Solve(g, Spec{
		Variant:     graph.Independent,
		K:           5,
		Group:       []int32{0, 0, 0, 0, 0},
		MaxPerGroup: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 2 {
		t.Errorf("retained %d items, cap allows 2", len(res.Order))
	}
}

// TestQuotaInvariants: caps and floors hold, cover matches a fresh
// evaluation, and the constrained cover never exceeds the unconstrained
// greedy cover.
func TestQuotaInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		variant := graph.Independent
		if seed%2 == 0 {
			variant = graph.Normalized
		}
		g := graphtest.Random(rng, 4+rng.Intn(20), 4, variant)
		n := g.NumNodes()
		numGroups := 1 + rng.Intn(4)
		groups := make([]int32, n)
		for i := range groups {
			groups[i] = int32(rng.Intn(numGroups))
		}
		caps := make([]int, numGroups)
		for i := range caps {
			caps[i] = rng.Intn(3) // 0 = unlimited
		}
		k := 1 + rng.Intn(n)
		res, err := Solve(g, Spec{Variant: variant, K: k, Group: groups, MaxPerGroup: caps})
		if err != nil {
			return false
		}
		if len(res.Order) > k {
			return false
		}
		counts := make([]int, numGroups)
		for _, v := range res.Order {
			counts[groups[v]]++
		}
		for i := range counts {
			if counts[i] != res.GroupCounts[i] {
				return false
			}
			if caps[i] > 0 && counts[i] > caps[i] {
				return false
			}
		}
		fresh, err := cover.EvaluateSet(g, variant, res.Order)
		if err != nil || math.Abs(fresh-res.Cover) > 1e-9 {
			return false
		}
		plain, err := greedy.Solve(g, greedy.Options{Variant: variant, K: k})
		if err != nil {
			return false
		}
		return res.Cover <= plain.Cover+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHalfApproximationUnderCaps: on tiny instances the constrained greedy
// stays within 1/2 of the constrained optimum (the matroid-intersection
// guarantee).
func TestHalfApproximationUnderCaps(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 5+rng.Intn(4), 3, graph.Independent)
		n := g.NumNodes()
		groups := make([]int32, n)
		for i := range groups {
			groups[i] = int32(i % 2)
		}
		caps := []int{1 + rng.Intn(2), 1 + rng.Intn(2)}
		k := 2 + rng.Intn(3)
		res, err := Solve(g, Spec{Variant: graph.Independent, K: k, Group: groups, MaxPerGroup: caps})
		if err != nil {
			t.Fatal(err)
		}
		opt := exhaustiveQuota(g, groups, caps, k)
		if res.Cover < 0.5*opt-tol {
			t.Errorf("seed %d: quota greedy %g < 1/2 of optimum %g", seed, res.Cover, opt)
		}
		if res.Cover > opt+tol {
			t.Errorf("seed %d: quota greedy %g exceeds optimum %g", seed, res.Cover, opt)
		}
	}
}

func exhaustiveQuota(g *graph.Graph, groups []int32, caps []int, k int) float64 {
	n := g.NumNodes()
	best := 0.0
	retained := make([]bool, n)
	counts := make([]int, len(caps))
	for mask := 0; mask < 1<<n; mask++ {
		size := 0
		ok := true
		for i := range counts {
			counts[i] = 0
		}
		for v := 0; v < n; v++ {
			retained[v] = mask&(1<<v) != 0
			if retained[v] {
				size++
				grp := groups[v]
				counts[grp]++
				if caps[grp] > 0 && counts[grp] > caps[grp] {
					ok = false
					break
				}
			}
		}
		if !ok || size > k {
			continue
		}
		if c := cover.Evaluate(g, graph.Independent, retained); c > best {
			best = c
		}
	}
	return best
}

func TestGroupsByLabelPrefix(t *testing.T) {
	b := graph.NewBuilder(0, 0)
	b.AddLabeledNode("tv/lg-19", 0.3)
	b.AddLabeledNode("tv/samsung-21", 0.3)
	b.AddLabeledNode("phone/iphone", 0.4)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assignment, names, err := GroupsByLabelPrefix(g, '/')
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "tv" || names[1] != "phone" {
		t.Fatalf("names = %v", names)
	}
	if assignment[0] != 0 || assignment[1] != 0 || assignment[2] != 1 {
		t.Fatalf("assignment = %v", assignment)
	}
	// Unlabeled graphs are rejected.
	b2 := graph.NewBuilder(1, 0)
	b2.AddNode(1)
	g2, _ := b2.Build(graph.BuildOptions{})
	if _, _, err := GroupsByLabelPrefix(g2, '/'); err == nil {
		t.Error("unlabeled graph should fail")
	}
}
