// Package quota solves the Preference Cover problem under per-group
// constraints: every item belongs to a group (category, brand, supplier,
// warehouse zone) and the retained set must respect a per-group maximum
// and/or minimum alongside the global budget k.
//
// Such quotas are ubiquitous in the paper's motivating scenarios — import
// regulations cap per-supplier counts in the overseas-launch setting, and
// express warehouses reserve shelf zones per category. A cardinality
// budget intersected with per-group caps is a partition matroid
// intersection, for which the greedy algorithm retains a 1/2 approximation
// guarantee for monotone submodular objectives (Fisher, Nemhauser, Wolsey
// 1978); per-group minimums are satisfied first by a per-group greedy
// phase, after which the remaining budget is filled globally.
package quota

import (
	"errors"
	"fmt"

	"prefcover/internal/cover"
	"prefcover/internal/graph"
)

// Spec configures Solve.
type Spec struct {
	// Variant selects the cover semantics.
	Variant graph.Variant
	// K is the global retained-set budget.
	K int
	// Group assigns every item a group id in [0, numGroups).
	Group []int32
	// MaxPerGroup caps each group's retained count; 0 entries mean
	// unlimited. Length defines numGroups.
	MaxPerGroup []int
	// MinPerGroup, optional, forces at least this many retained items per
	// group (guaranteed-representation floors). Floors are satisfied
	// before the global fill; their sum must not exceed K.
	MinPerGroup []int
}

// Result is the quota-constrained solution.
type Result struct {
	Order []int32
	Gains []float64
	Cover float64
	// GroupCounts reports how many retained items each group received.
	GroupCounts []int
	// FloorsSatisfied is false when some group could not reach its floor
	// (fewer items exist than the floor demands).
	FloorsSatisfied bool
}

func (s *Spec) validate(n int) (int, error) {
	if s.K <= 0 {
		return 0, errors.New("quota: K must be positive")
	}
	if len(s.Group) != n {
		return 0, fmt.Errorf("quota: group assignment has %d entries for %d items", len(s.Group), n)
	}
	numGroups := len(s.MaxPerGroup)
	if numGroups == 0 {
		return 0, errors.New("quota: MaxPerGroup must define at least one group")
	}
	for v, g := range s.Group {
		if g < 0 || int(g) >= numGroups {
			return 0, fmt.Errorf("quota: item %d assigned to unknown group %d", v, g)
		}
	}
	for g, c := range s.MaxPerGroup {
		if c < 0 {
			return 0, fmt.Errorf("quota: negative cap for group %d", g)
		}
	}
	if s.MinPerGroup != nil {
		if len(s.MinPerGroup) != numGroups {
			return 0, fmt.Errorf("quota: MinPerGroup has %d entries for %d groups", len(s.MinPerGroup), numGroups)
		}
		total := 0
		for g, f := range s.MinPerGroup {
			if f < 0 {
				return 0, fmt.Errorf("quota: negative floor for group %d", g)
			}
			if cap := s.MaxPerGroup[g]; cap > 0 && f > cap {
				return 0, fmt.Errorf("quota: group %d floor %d exceeds cap %d", g, f, cap)
			}
			total += f
		}
		if total > s.K {
			return 0, fmt.Errorf("quota: floors total %d exceed K=%d", total, s.K)
		}
	}
	return numGroups, nil
}

// Solve runs the two-phase quota-constrained greedy.
func Solve(g *graph.Graph, spec Spec) (*Result, error) {
	n := g.NumNodes()
	numGroups, err := spec.validate(n)
	if err != nil {
		return nil, err
	}
	eng := cover.NewEngine(g, spec.Variant)
	res := &Result{GroupCounts: make([]int, numGroups), FloorsSatisfied: true}

	take := func(v int32) {
		gain := eng.Add(v)
		res.Order = append(res.Order, v)
		res.Gains = append(res.Gains, gain)
		res.GroupCounts[spec.Group[v]]++
	}

	// Phase 1: satisfy floors, best-gain-first within each group.
	if spec.MinPerGroup != nil {
		for grp := 0; grp < numGroups; grp++ {
			for res.GroupCounts[grp] < spec.MinPerGroup[grp] {
				best, bestGain := int32(-1), -1.0
				for v := int32(0); v < int32(n); v++ {
					if eng.Retained(v) || int(spec.Group[v]) != grp {
						continue
					}
					if gain := eng.Gain(v); gain > bestGain {
						best, bestGain = v, gain
					}
				}
				if best < 0 {
					res.FloorsSatisfied = false
					break // group exhausted below its floor
				}
				take(best)
			}
		}
	}

	// Phase 2: global greedy fill, skipping full groups.
	for len(res.Order) < spec.K {
		best, bestGain := int32(-1), -1.0
		for v := int32(0); v < int32(n); v++ {
			if eng.Retained(v) {
				continue
			}
			grp := spec.Group[v]
			if cap := spec.MaxPerGroup[grp]; cap > 0 && res.GroupCounts[grp] >= cap {
				continue
			}
			if gain := eng.Gain(v); gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 {
			break // every remaining item sits in a full group
		}
		take(best)
	}
	res.Cover = eng.Cover()
	return res, nil
}

// GroupsByLabelPrefix is a convenience grouping: items whose labels share
// the prefix up to the first occurrence of sep fall into the same group.
// It returns the per-item assignment and the group names in id order.
func GroupsByLabelPrefix(g *graph.Graph, sep byte) ([]int32, []string, error) {
	if !g.Labeled() {
		return nil, nil, errors.New("quota: label-prefix grouping needs a labeled graph")
	}
	assignment := make([]int32, g.NumNodes())
	index := map[string]int32{}
	var names []string
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		label := g.Label(v)
		prefix := label
		for i := 0; i < len(label); i++ {
			if label[i] == sep {
				prefix = label[:i]
				break
			}
		}
		id, ok := index[prefix]
		if !ok {
			id = int32(len(names))
			index[prefix] = id
			names = append(names, prefix)
		}
		assignment[v] = id
	}
	return assignment, names, nil
}
