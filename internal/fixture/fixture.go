// Package fixture provides the paper's worked examples as reusable test and
// demo data: the Figure 1 preference graph (Examples 1.1 and 3.2) and the
// Figure 3 iPhone clickstream.
package fixture

import (
	"prefcover/internal/clickstream"
	"prefcover/internal/graph"
)

// Figure 1 facts, hard-coded from the paper:
//
//	weights:  A=0.33  B=0.22  C=0.22  D=0.06  E=0.17   (sum 1)
//	edges:    A->B 2/3, A->C 0.3, B->C 0.8, C->B 1.0, D->C 0.5, E->D 0.9
//
// The paper pins W(A), W(D), W(A->B), W(C->B), W(E->D) and the derived
// facts (TopK {A,B} covers 77%, greedy picks B with gain 66% then D with
// gain 21.3%, optimum {B,D} covers 87.3%); the remaining weights are free
// as long as those facts hold, and the values above satisfy all of them
// under both variants.
const (
	Fig1CoverBD   = 0.873 // C({B,D}), the optimum for k=2
	Fig1CoverTopK = 0.77  // C({A,B}), the naive top-seller choice
	Fig1GainB     = 0.66  // first greedy gain
	Fig1GainD     = 0.213 // second greedy gain
	Fig1CoverageA = 2.0 / 3.0
	Fig1CoverageE = 0.9
	Fig1K         = 2
)

// Figure1Graph builds the Figure 1 preference graph with labels A-E.
func Figure1Graph() *graph.Graph {
	b := graph.NewBuilder(5, 6)
	b.AddLabeledNode("A", 0.33)
	b.AddLabeledNode("B", 0.22)
	b.AddLabeledNode("C", 0.22)
	b.AddLabeledNode("D", 0.06)
	b.AddLabeledNode("E", 0.17)
	b.AddLabeledEdge("A", "B", 2.0/3.0)
	b.AddLabeledEdge("A", "C", 0.3)
	b.AddLabeledEdge("B", "C", 0.8)
	b.AddLabeledEdge("C", "B", 1.0)
	b.AddLabeledEdge("D", "C", 0.5)
	b.AddLabeledEdge("E", "D", 0.9)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		panic("fixture: figure 1 graph must build: " + err.Error())
	}
	return g
}

// Figure 3 item labels.
const (
	Fig3Silver    = "iphone8-256-silver"
	Fig3Gold      = "iphone8-256-gold"
	Fig3SpaceGray = "iphone8-256-spacegray"
)

// Figure3Sessions reproduces the paper's Figure 3a clickstream: five
// sessions over the three iPhone 8 256GB color variants. The adapted graph
// must have node weights 0.4/0.2/0.4 (Silver/Gold/SpaceGray) and edges
// Silver->Gold 1/2, Silver->SpaceGray 1/2, SpaceGray->Silver 1/2,
// Gold->SpaceGray 1.
func Figure3Sessions() *clickstream.Store {
	return clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: Fig3Silver, Clicks: []string{Fig3Gold}},
		{ID: "s2", Purchase: Fig3Silver, Clicks: []string{Fig3SpaceGray}},
		{ID: "s3", Purchase: Fig3SpaceGray},
		{ID: "s4", Purchase: Fig3SpaceGray, Clicks: []string{Fig3Silver}},
		{ID: "s5", Purchase: Fig3Gold, Clicks: []string{Fig3SpaceGray}},
	})
}
