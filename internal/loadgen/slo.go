package loadgen

// SLO verdicts: a finished run graded against the same objective grammar
// the serving stack's burn-rate monitor consumes (internal/slo). Where
// the monitor watches windows of live traffic, loadgen has the complete
// run — so each objective becomes one exact pass/fail verdict over the
// report's per-endpoint stats, recorded next to the latency numbers in
// BENCH_serving.json. Objectives name the report's logical endpoints
// (solve, graph_get, graph_put, job_submit, job_poll), e.g.
// "avail:solve:99.9,p99:solve:0.25".

import (
	"fmt"

	"prefcover/internal/slo"
)

// SLOVerdict is one objective's outcome for a run.
type SLOVerdict struct {
	// Objective is the canonical spec string (kind:endpoint:target).
	Objective string `json:"objective"`
	// Endpoint is the logical endpoint the objective names.
	Endpoint string `json:"endpoint"`
	// Observed is in the target's own unit: availability percent for
	// avail objectives, seconds for latency quantiles. Zero when NoData.
	Observed float64 `json:"observed"`
	Target   float64 `json:"target"`
	// Pass is the verdict; an objective naming an endpoint the run never
	// exercised fails with NoData set (a gate that silently skips an
	// untested objective is no gate at all).
	Pass   bool `json:"pass"`
	NoData bool `json:"noData,omitempty"`
}

func (v SLOVerdict) String() string {
	if v.NoData {
		return fmt.Sprintf("%s: FAIL (no traffic)", v.Objective)
	}
	verdict := "PASS"
	if !v.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: %s (observed %g, target %g)", v.Objective, verdict, v.Observed, v.Target)
}

// EvaluateSLO grades the report against every objective in spec. The
// verdict order follows the spec.
func EvaluateSLO(spec slo.Spec, r *Report) []SLOVerdict {
	out := make([]SLOVerdict, 0, len(spec.Objectives))
	for _, o := range spec.Objectives {
		v := SLOVerdict{Objective: o.String(), Endpoint: o.Endpoint, Target: o.Target}
		ep := r.Endpoints[o.Endpoint]
		if ep == nil || ep.Sent == 0 {
			v.NoData = true
			out = append(out, v)
			continue
		}
		switch {
		case o.Kind.Latency():
			switch o.Kind {
			case slo.KindP50:
				v.Observed = ep.P50
			case slo.KindP90:
				v.Observed = ep.P90
			default:
				v.Observed = ep.P99
			}
			v.Pass = v.Observed <= o.Target
		default: // availability
			ratio := float64(ep.Errors+ep.Timeouts) / float64(ep.Sent)
			v.Observed = (1 - ratio) * 100
			v.Pass = v.Observed >= o.Target
		}
		out = append(out, v)
	}
	return out
}
