package loadgen

// The capacity model: step the offered rate upward until the server
// violates its p99 SLO or error budget, and report the knee — the last
// rate that still met both. The knee is the number operators size
// -max-concurrent and -job-workers against, and the regression gate the
// sharding/kernel/streaming tiers are measured by: a PR that moves the
// knee down moved real capacity.

import (
	"context"
	"fmt"
	"time"
)

// CapacitySpec configures RunCapacity.
type CapacitySpec struct {
	// StartRPS is the first step's offered rate (must be positive).
	StartRPS float64
	// MaxRPS caps the search (0 = 100x StartRPS).
	MaxRPS float64
	// Factor multiplies the rate between steps (<=1 defaults to 2).
	Factor float64
	// StepDuration is how long each rate is held (0 = 3s).
	StepDuration time.Duration
	// SLOP99 is the p99 latency objective each step must meet
	// (0 = 250ms). Held against the worst per-endpoint p99.
	SLOP99 time.Duration
	// ErrorBudget is the tolerated (errors+timeouts)/sent ratio
	// (0 = 0.01).
	ErrorBudget float64
	// Mix and KMax shape each step's workload like ScheduleSpec.
	Mix  Mix
	KMax int
	// Seed derives each step's schedule seed (seed + step index), so a
	// capacity run is as reproducible as a single run.
	Seed int64
}

func (s *CapacitySpec) normalize() error {
	if s.StartRPS <= 0 {
		return fmt.Errorf("loadgen: capacity StartRPS must be positive, got %g", s.StartRPS)
	}
	if s.MaxRPS <= 0 {
		s.MaxRPS = 100 * s.StartRPS
	}
	if s.Factor <= 1 {
		s.Factor = 2
	}
	if s.StepDuration <= 0 {
		s.StepDuration = 3 * time.Second
	}
	if s.SLOP99 <= 0 {
		s.SLOP99 = 250 * time.Millisecond
	}
	if s.ErrorBudget <= 0 {
		s.ErrorBudget = 0.01
	}
	if err := s.Mix.validate(); err != nil {
		return err
	}
	if s.KMax <= 0 {
		s.KMax = DefaultKMax
	}
	return nil
}

// CapacityStep is one held rate and its verdict.
type CapacityStep struct {
	RPS    float64 `json:"rps"`
	Seed   int64   `json:"seed"`
	Report *Report `json:"report"`
	// P99 is the worst per-endpoint p99 in seconds, the value held
	// against the SLO.
	P99        float64 `json:"p99"`
	ErrorRatio float64 `json:"errorRatio"`
	// Passed reports whether this step met both the SLO and the budget.
	Passed bool `json:"passed"`
	// Violation names what failed ("p99" or "errors"), empty when passed.
	Violation string `json:"violation,omitempty"`
}

// CapacityResult is a full capacity search.
type CapacityResult struct {
	SLOP99      string         `json:"sloP99"`
	ErrorBudget float64        `json:"errorBudget"`
	Steps       []CapacityStep `json:"steps"`
	// KneeRPS is the highest offered rate that met both objectives; 0
	// when even the first step violated them.
	KneeRPS float64 `json:"kneeRPS"`
	// Saturated reports whether the search ended by violation (true) or
	// by running out of rate headroom at MaxRPS (false) — a false here
	// means the knee is a lower bound, not a measurement.
	Saturated bool `json:"saturated"`
}

// RunCapacity steps the offered rate by spec.Factor from StartRPS until a
// step violates the p99 SLO or error budget (or MaxRPS is reached), and
// returns every step plus the knee. Each step replays a fresh schedule
// seeded by spec.Seed + its index against the same target.
func RunCapacity(ctx context.Context, spec CapacitySpec, target Target, opts RunOptions, progress func(CapacityStep)) (*CapacityResult, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	result := &CapacityResult{
		SLOP99:      spec.SLOP99.String(),
		ErrorBudget: spec.ErrorBudget,
	}
	rps := spec.StartRPS
	for step := 0; ; step++ {
		if err := ctx.Err(); err != nil {
			return result, err
		}
		seed := spec.Seed + int64(step)
		sched, err := BuildSchedule(ScheduleSpec{
			Seed:     seed,
			RPS:      rps,
			Duration: spec.StepDuration,
			Mix:      spec.Mix,
			KMax:     spec.KMax,
		})
		if err != nil {
			return result, err
		}
		report, err := Run(ctx, sched, target, opts)
		if err != nil {
			return result, err
		}
		cs := CapacityStep{
			RPS:        rps,
			Seed:       seed,
			Report:     report,
			P99:        report.OverallP99().Seconds(),
			ErrorRatio: report.ErrorRatio,
			Passed:     true,
		}
		if cs.P99 > spec.SLOP99.Seconds() {
			cs.Passed = false
			cs.Violation = "p99"
		} else if cs.ErrorRatio > spec.ErrorBudget {
			cs.Passed = false
			cs.Violation = "errors"
		}
		result.Steps = append(result.Steps, cs)
		if progress != nil {
			progress(cs)
		}
		if !cs.Passed {
			result.Saturated = true
			return result, nil
		}
		result.KneeRPS = rps
		next := rps * spec.Factor
		if next > spec.MaxRPS {
			return result, nil
		}
		rps = next
	}
}
