package loadgen

// The determinism contract: the schedule is a pure function of its spec.
// Byte-identical encoding is the strongest observable form of that — any
// wall-clock read, map iteration, or extra rand draw sneaking into
// BuildSchedule changes the bytes and fails here, mirroring the chaos
// suite's seeding discipline.

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func encodeSchedule(t *testing.T, spec ScheduleSpec) []byte {
	t.Helper()
	s, err := BuildSchedule(spec)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestScheduleDeterministic(t *testing.T) {
	spec := ScheduleSpec{Seed: 1, RPS: 200, Duration: 5 * time.Second, Mix: DefaultMix()}
	first := encodeSchedule(t, spec)
	for i := 0; i < 3; i++ {
		if got := encodeSchedule(t, spec); !bytes.Equal(got, first) {
			t.Fatalf("rebuild %d: schedule bytes differ from first build", i)
		}
	}
	if len(first) == 0 || !bytes.HasPrefix(first, []byte("# loadgen schedule seed=1 ")) {
		t.Fatalf("unexpected encoding header: %.80s", first)
	}
}

func TestScheduleSeedSensitivity(t *testing.T) {
	base := ScheduleSpec{Seed: 1, RPS: 100, Duration: 2 * time.Second, Mix: DefaultMix()}
	other := base
	other.Seed = 2
	if bytes.Equal(encodeSchedule(t, base), encodeSchedule(t, other)) {
		t.Fatal("different seeds produced identical schedules")
	}
	reordered := base
	reordered.Mix = Mix{Solve: 0.15, GraphGet: 0.65, GraphPut: 0.15, Job: 0.05}
	if bytes.Equal(encodeSchedule(t, base), encodeSchedule(t, reordered)) {
		t.Fatal("different mixes produced identical schedules")
	}
}

func TestScheduleShape(t *testing.T) {
	spec := ScheduleSpec{Seed: 7, RPS: 500, Duration: 4 * time.Second, Mix: DefaultMix()}
	s, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := spec.RPS * spec.Duration.Seconds()
	if n := float64(len(s.Requests)); math.Abs(n-want) > 0.2*want {
		t.Fatalf("got %d requests, want ~%g (Poisson at %g rps for %v)", len(s.Requests), want, spec.RPS, spec.Duration)
	}
	last := time.Duration(-1)
	for i, r := range s.Requests {
		if r.At < last {
			t.Fatalf("request %d: arrival %v before predecessor %v", i, r.At, last)
		}
		last = r.At
		if r.At >= spec.Duration {
			t.Fatalf("request %d: arrival %v outside duration %v", i, r.At, spec.Duration)
		}
		switch r.Op {
		case OpSolve, OpJob:
			if r.K < 1 || r.K > DefaultKMax {
				t.Fatalf("request %d: k=%d outside [1,%d]", i, r.K, DefaultKMax)
			}
		case OpGraphGet, OpGraphPut:
			if r.K != 0 {
				t.Fatalf("request %d: %s carries k=%d", i, r.Op, r.K)
			}
		default:
			t.Fatalf("request %d: unknown op %q", i, r.Op)
		}
	}
	counts := s.CountByOp()
	if counts[OpSolve] <= counts[OpGraphPut] {
		t.Fatalf("solve-dominated mix drew solve=%d <= put=%d", counts[OpSolve], counts[OpGraphPut])
	}
}

func TestParseMixRoundTrip(t *testing.T) {
	m, err := ParseMix("solve=0.5,get=0.2,put=0.1,job=0.2")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseMix(m.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", m.String(), err)
	}
	if back != m {
		t.Fatalf("round trip changed mix: %+v -> %+v", m, back)
	}
	if _, err := ParseMix(""); err != nil {
		t.Fatalf("empty mix should be the default: %v", err)
	}
	for _, bad := range []string{"solve", "solve=-1", "frob=0.5", "solve=0,get=0,put=0,job=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted invalid input", bad)
		}
	}
}

func TestBuildScheduleRejectsBadSpecs(t *testing.T) {
	cases := []ScheduleSpec{
		{Seed: 1, RPS: 0, Duration: time.Second, Mix: DefaultMix()},
		{Seed: 1, RPS: 10, Duration: 0, Mix: DefaultMix()},
		{Seed: 1, RPS: 10, Duration: time.Second, Mix: Mix{}},
	}
	for i, spec := range cases {
		if _, err := BuildSchedule(spec); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(sorted, 0.5); got != 5 {
		t.Fatalf("p50 of 1..10 = %g, want 5", got)
	}
	if got := quantile(sorted, 0.99); got != 10 {
		t.Fatalf("p99 of 1..10 = %g, want 10", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("quantile of empty = %g, want 0", got)
	}
	// Monotone across q for an arbitrary sample, the report invariant.
	sample := []float64{0.4, 0.1, 2.5, 0.1, 0.9, 1.7, 0.3}
	s := sortedCopy(sample)
	prev := math.Inf(-1)
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		v := quantile(s, q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
	if got, max := quantile(s, 0.99), s[len(s)-1]; got > max {
		t.Fatalf("p99 %g exceeds max %g", got, max)
	}
}

func TestMixStringCanonical(t *testing.T) {
	m := Mix{Solve: 1, Job: 0.5}
	s := m.String()
	if strings.Contains(s, "get") || strings.Contains(s, "put") {
		t.Fatalf("zero weights not elided: %q", s)
	}
	if s != "solve=1,job=0.5" {
		t.Fatalf("canonical form changed: %q", s)
	}
}
