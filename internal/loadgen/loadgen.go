// Package loadgen is the built-in load generator and capacity model for
// prefcoverd (ROADMAP item 5): it replays a seeded, deterministic mix of
// reference solves, graph reads/uploads and async jobs against a live
// daemon with open-loop arrivals, and reports per-endpoint latency
// quantiles, error budgets, cache behaviour, retry accounting and the
// injected-vs-organic failure split. The schedule half (schedule.go) is
// pure and reproducible; this file is the wall-clock half that fires the
// plan and measures what comes back.
//
// The runner is deliberately open-loop: every request departs at its
// pre-computed offset whether or not earlier requests have returned, and
// latency is measured from the scheduled departure — so a server that
// stalls accumulates outstanding requests and honest tail latency instead
// of quietly slowing the generator down (coordinated omission).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"prefcover/internal/apiclient"
	"prefcover/internal/metrics"
	"prefcover/internal/retry"
)

// Logical endpoint names used in reports.
const (
	endpointSolve     = "solve"
	endpointGraphGet  = "graph_get"
	endpointGraphPut  = "graph_put"
	endpointJobSubmit = "job_submit"
	endpointJobPoll   = "job_poll"
)

// injectedMarker is how an injected fault identifies itself: every error
// the injector produces wraps faults.ErrInjected, whose message lands
// verbatim in the server's JSON error envelope.
const injectedMarker = "injected fault"

// Target names the server under load and the graphs the workload uses.
type Target struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// MainGraph is the registered graph reference solves and reads hit.
	MainGraph string
	// PutGraph is the name re-uploaded by OpGraphPut traffic; kept
	// distinct from MainGraph so uploads do not invalidate the warm solve
	// cache mid-run.
	PutGraph string
	// GraphJSON is the serialized graph body for OpGraphPut uploads.
	GraphJSON []byte
	// Variant is the solve variant query value ("independent" or
	// "normalized").
	Variant string
}

// RunOptions tunes the runner.
type RunOptions struct {
	// Client issues the HTTP traffic; nil builds the shared apiclient
	// with Timeout below.
	Client *http.Client
	// Timeout bounds each logical request (all retry attempts included).
	// 0 = DefaultTimeout.
	Timeout time.Duration
	// MaxAttempts is the retry cap per logical request (1 = never retry,
	// the honest open-loop default; 0 = 1).
	MaxAttempts int
	// RetryBase is the backoff before the first retry (0 = 25ms).
	RetryBase time.Duration
	// PollInterval spaces async-job status polls (0 = 50ms).
	PollInterval time.Duration
	// MaxPolls caps polls per submitted job (0 = 200).
	MaxPolls int
	// FaultSpec, when non-empty, is recorded in the report's fault
	// section (the injector itself is armed by the caller).
	FaultSpec string
}

// DefaultTimeout bounds one logical request end to end.
const DefaultTimeout = 10 * time.Second

func (o *RunOptions) normalize() {
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.MaxPolls <= 0 {
		o.MaxPolls = 200
	}
}

// runner carries the per-run state shared by request goroutines.
type runner struct {
	target   Target
	client   *http.Client
	policy   retry.Policy
	counters *retry.Counters
	opts     RunOptions

	mu     sync.Mutex
	eps    map[string]*epCollector
	hits   int64
	misses int64
}

// epCollector accumulates one endpoint's outcomes.
type epCollector struct {
	lat           []float64
	ok            int64
	errors        int64
	timeouts      int64
	status        map[int]int64
	injected429   int64
	injected503   int64
	injectedOther int64
}

// Run fires the schedule against the target and returns the measured
// report. Cancelling ctx stops dispatching new requests; everything
// already in flight is drained before the (partial) report is built.
func Run(ctx context.Context, sched *Schedule, target Target, opts RunOptions) (*Report, error) {
	opts.normalize()
	if target.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: target BaseURL is empty")
	}
	if target.Variant == "" {
		target.Variant = "independent"
	}
	client := opts.Client
	if client == nil {
		client = apiclient.New(apiclient.Options{Timeout: opts.Timeout})
	}
	counters := retry.NewCounters(metrics.NewRegistry())
	r := &runner{
		target:   target,
		client:   client,
		policy:   apiclient.NewPolicy(opts.MaxAttempts, opts.RetryBase, counters),
		counters: counters,
		opts:     opts,
		eps:      make(map[string]*epCollector),
	}
	start := time.Now()
	var wg sync.WaitGroup
	sent := int64(0)
dispatch:
	for _, req := range sched.Requests {
		if wait := time.Until(start.Add(req.At)); wait > 0 {
			select {
			case <-ctx.Done():
				break dispatch
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		sent++
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			r.issue(ctx, req, start.Add(req.At))
		}(req)
	}
	wg.Wait()
	return r.report(sched, sent), nil
}

// issue runs one scheduled request (and, for job submissions, the poll
// loop it fans into).
func (r *runner) issue(ctx context.Context, req Request, schedAt time.Time) {
	base := strings.TrimRight(r.target.BaseURL, "/")
	switch req.Op {
	case OpSolve:
		body, _ := json.Marshal(map[string]string{"graph_ref": r.target.MainGraph})
		url := fmt.Sprintf("%s/v1/solve?variant=%s&k=%d", base, r.target.Variant, req.K)
		r.call(ctx, endpointSolve, http.MethodPost, url, "application/json", body, schedAt)
	case OpGraphGet:
		r.call(ctx, endpointGraphGet, http.MethodGet, base+"/v1/graphs/"+r.target.MainGraph, "", nil, schedAt)
	case OpGraphPut:
		r.call(ctx, endpointGraphPut, http.MethodPut, base+"/v1/graphs/"+r.target.PutGraph,
			"application/json", r.target.GraphJSON, schedAt)
	case OpJob:
		payload := map[string]any{"graph_ref": r.target.MainGraph, "variant": r.target.Variant, "k": req.K}
		body, _ := json.Marshal(payload)
		res := r.call(ctx, endpointJobSubmit, http.MethodPost, base+"/v1/jobs", "application/json", body, schedAt)
		if res == nil || res.status >= 400 {
			return
		}
		var submitted struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		if json.Unmarshal(res.body, &submitted) != nil || submitted.ID == "" {
			return
		}
		r.pollJob(ctx, base, submitted.ID)
	}
}

// pollJob drives one submitted job to a terminal state, each poll counted
// as its own job_poll request.
func (r *runner) pollJob(ctx context.Context, base, id string) {
	for i := 0; i < r.opts.MaxPolls; i++ {
		select {
		case <-ctx.Done():
			return
		case <-time.After(r.opts.PollInterval):
		}
		res := r.call(ctx, endpointJobPoll, http.MethodGet, base+"/v1/jobs/"+id, "", nil, time.Now())
		if res == nil || res.status >= 400 {
			return
		}
		var snap struct {
			State string `json:"state"`
		}
		if json.Unmarshal(res.body, &snap) != nil {
			return
		}
		switch snap.State {
		case "done", "failed", "canceled":
			return
		}
	}
}

// callResult is the final HTTP response of one logical request, nil when
// every attempt died in transport.
type callResult struct {
	status int
	body   []byte
}

// call issues one logical request through the retry policy, classifying
// the final outcome and recording latency from schedAt. One X-Request-ID
// is minted per call and reused across attempts (client and server logs
// join on it); a fresh unsampled traceparent rides on every attempt so
// the propagation path is exercised without flooding the flight recorder.
func (r *runner) call(ctx context.Context, endpoint, method, url, contentType string, body []byte, schedAt time.Time) *callResult {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	reqID := apiclient.NewRequestID()
	var last *callResult
	err := r.policy.Do(ctx, func(ctx context.Context) error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		apiclient.Decorate(req, reqID, apiclient.NewTraceparent(false))
		last = nil // a fresh attempt invalidates any earlier response
		resp, err := r.client.Do(req)
		if err != nil {
			return retry.TransportError(err)
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		resp.Body.Close()
		if err != nil {
			return retry.TransportError(fmt.Errorf("%s %s: reading body: %w", method, url, err))
		}
		last = &callResult{status: resp.StatusCode, body: data}
		if h := resp.Header.Get("X-Prefcover-Cache"); h != "" {
			r.recordCache(h)
		}
		if resp.StatusCode >= 400 {
			// Attempt-level injected-fault accounting: a retried injected
			// throttle still counts once per injection, which is what lets
			// the chaos test reconcile against the injector's own tally.
			if bytes.Contains(data, []byte(injectedMarker)) {
				r.recordInjected(endpoint, resp.StatusCode)
			}
			err := fmt.Errorf("%s %s: status %d", method, url, resp.StatusCode)
			return retry.HTTPStatusError(resp.StatusCode, resp.Header, err)
		}
		return nil
	})
	lat := time.Since(schedAt).Seconds()
	switch {
	case err == nil:
		r.record(endpoint, lat, last.status, outcomeOK)
	case last != nil && last.status >= 400:
		// The retry loop gave up on (or declined to retry) an HTTP error;
		// the response is still the request's final outcome.
		r.record(endpoint, lat, last.status, outcomeError)
	default:
		r.record(endpoint, lat, 0, outcomeTimeout)
		return nil
	}
	return last
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeError
	outcomeTimeout
)

func (r *runner) ep(endpoint string) *epCollector {
	ep := r.eps[endpoint]
	if ep == nil {
		ep = &epCollector{status: make(map[int]int64)}
		r.eps[endpoint] = ep
	}
	return ep
}

func (r *runner) record(endpoint string, lat float64, status int, oc outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.ep(endpoint)
	ep.lat = append(ep.lat, lat)
	switch oc {
	case outcomeOK:
		ep.ok++
	case outcomeError:
		ep.errors++
	case outcomeTimeout:
		ep.timeouts++
	}
	if status > 0 {
		ep.status[status]++
	}
}

func (r *runner) recordInjected(endpoint string, status int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.ep(endpoint)
	switch status {
	case http.StatusTooManyRequests:
		ep.injected429++
	case http.StatusServiceUnavailable:
		ep.injected503++
	default:
		ep.injectedOther++
	}
}

func (r *runner) recordCache(h string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// "hit" and "coalesced" both did zero solver work.
	if h == "miss" {
		r.misses++
	} else {
		r.hits++
	}
}

// report freezes the collectors into the wire-format Report.
func (r *runner) report(sched *Schedule, dispatched int64) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Seed:      sched.Spec.Seed,
		Mix:       sched.Spec.Mix.String(),
		RPS:       sched.Spec.RPS,
		Duration:  sched.Spec.Duration.String(),
		KMax:      sched.Spec.KMax,
		Scheduled: int64(len(sched.Requests)),
		Endpoints: make(map[string]*EndpointStats, len(r.eps)),
	}
	var sent, errs, timeouts int64
	var inj429, inj503, injOther int64
	for name, ep := range r.eps {
		sorted := sortedCopy(ep.lat)
		st := &EndpointStats{
			Sent:          int64(len(ep.lat)),
			OK:            ep.ok,
			Errors:        ep.errors,
			Timeouts:      ep.timeouts,
			Injected429:   ep.injected429,
			Injected503:   ep.injected503,
			InjectedOther: ep.injectedOther,
			P50:           quantile(sorted, 0.50),
			P90:           quantile(sorted, 0.90),
			P99:           quantile(sorted, 0.99),
		}
		if n := len(sorted); n > 0 {
			st.Max = sorted[n-1]
			st.ErrorRatio = float64(ep.errors+ep.timeouts) / float64(n)
		}
		if len(ep.status) > 0 {
			st.Status = make(map[string]int64, len(ep.status))
			for code, n := range ep.status {
				st.Status[strconv.Itoa(code)] = n
			}
		}
		rep.Endpoints[name] = st
		sent += st.Sent
		errs += ep.errors
		timeouts += ep.timeouts
		inj429 += ep.injected429
		inj503 += ep.injected503
		injOther += ep.injectedOther
	}
	rep.Sent = sent
	if sent > 0 {
		rep.ErrorRatio = float64(errs+timeouts) / float64(sent)
	}
	if total := r.hits + r.misses; total > 0 {
		rep.Cache = CacheStats{Hits: r.hits, Misses: r.misses, HitRatio: float64(r.hits) / float64(total)}
	}
	rep.Retry = RetryStats{
		Attempts:          r.counters.Attempts(),
		Retries:           r.counters.Retries(),
		GiveUps:           r.counters.GiveUps(),
		RetryAfterHonored: r.counters.Honored(),
	}
	if r.opts.FaultSpec != "" || inj429+inj503+injOther > 0 {
		rep.Faults = &FaultStats{
			Spec:          r.opts.FaultSpec,
			Injected429:   inj429,
			Injected503:   inj503,
			InjectedOther: injOther,
		}
	}
	return rep
}

// SetupGraphs uploads the workload's two graphs (main + put target) so a
// run starts from a valid registry state. Shared by the CLI and tests.
func SetupGraphs(ctx context.Context, client *http.Client, target Target) error {
	if client == nil {
		client = apiclient.New(apiclient.Options{Timeout: 30 * time.Second})
	}
	base := strings.TrimRight(target.BaseURL, "/")
	for _, name := range []string{target.MainGraph, target.PutGraph} {
		if name == "" {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut,
			base+"/v1/graphs/"+name, bytes.NewReader(target.GraphJSON))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		apiclient.Decorate(req, apiclient.NewRequestID(), apiclient.NewTraceparent(false))
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("loadgen: uploading graph %s: %w", name, err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			return fmt.Errorf("loadgen: uploading graph %s: status %d: %s", name, resp.StatusCode, bytes.TrimSpace(body))
		}
	}
	return nil
}
