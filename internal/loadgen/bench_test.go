package loadgen

// BENCH_serving.json writer tests: append round-trips, schema drift is
// refused (unknown fields, version mismatch), and invalid reports never
// reach disk.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validEntry() BenchEntry {
	return BenchEntry{
		Generated: "2026-08-08T12:00:00Z",
		GitSHA:    "deadbeef",
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		CPUs:      8,
		Kind:      BenchKindRun,
		Report: &Report{
			Seed: 1, Mix: "solve=1", RPS: 100, Duration: "1s", KMax: 10,
			Scheduled: 100, Sent: 100,
			Endpoints: map[string]*EndpointStats{
				endpointSolve: {Sent: 100, OK: 100, P50: 0.001, P90: 0.002, P99: 0.003, Max: 0.004},
			},
			Cache: CacheStats{Hits: 90, Misses: 10, HitRatio: 0.9},
			Retry: RetryStats{Attempts: 100},
		},
	}
}

func TestAppendBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	if err := AppendBench(path, validEntry()); err != nil {
		t.Fatal(err)
	}
	second := validEntry()
	second.GitSHA = "cafef00d"
	if err := AppendBench(path, second); err != nil {
		t.Fatal(err)
	}
	f, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("schema version %d, want %d", f.SchemaVersion, BenchSchemaVersion)
	}
	if len(f.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(f.Entries))
	}
	if f.Entries[1].GitSHA != "cafef00d" {
		t.Fatalf("second entry SHA %q", f.Entries[1].GitSHA)
	}
	if f.Entries[0].Report == nil || f.Entries[0].Report.Endpoints[endpointSolve].Sent != 100 {
		t.Fatalf("first entry report did not round-trip: %+v", f.Entries[0])
	}
}

func TestAppendBenchRefusesSchemaDrift(t *testing.T) {
	dir := t.TempDir()

	// Version drift: a future (or past) writer's file must not be amended.
	versioned := filepath.Join(dir, "versioned.json")
	if err := os.WriteFile(versioned, []byte(`{"schemaVersion": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendBench(versioned, validEntry()); err == nil {
		t.Fatal("appended to a schemaVersion 99 file")
	}

	// Field drift: an entry shape this binary doesn't know.
	drifted := filepath.Join(dir, "drifted.json")
	blob := `{"schemaVersion": 1, "entries": [], "futureField": true}`
	if err := os.WriteFile(drifted, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendBench(drifted, validEntry()); err == nil {
		t.Fatal("appended despite an unknown top-level field")
	}

	// Corruption.
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"schemaVersion": 1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendBench(corrupt, validEntry()); err == nil {
		t.Fatal("appended to a truncated file")
	}
}

func TestAppendBenchRefusesInvalidEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")

	e := validEntry()
	e.Report.Endpoints[endpointSolve].OK = 1 // sent != ok+errors+timeouts
	if err := AppendBench(path, e); err == nil {
		t.Fatal("recorded a report violating sent == ok+errors+timeouts")
	}

	e = validEntry()
	e.Kind = "frobnicate"
	if err := AppendBench(path, e); err == nil {
		t.Fatal("recorded an unknown entry kind")
	}

	e = validEntry()
	e.Kind = BenchKindCapacity // no Capacity payload
	if err := AppendBench(path, e); err == nil {
		t.Fatal("recorded a capacity entry without a capacity result")
	}

	e = validEntry()
	e.Generated = "yesterday-ish"
	if err := AppendBench(path, e); err == nil {
		t.Fatal("recorded a non-RFC3339 timestamp")
	}

	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("invalid entries must not create the file: %v", err)
	}
}

func TestBenchEntryJSONShape(t *testing.T) {
	// The on-disk field names are the schema; renaming one is drift and
	// must be deliberate (bump BenchSchemaVersion).
	data, err := json.Marshal(validEntry())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"generated"`, `"gitSHA"`, `"goVersion"`, `"kind"`, `"report"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("marshalled entry missing %s: %s", key, data)
		}
	}
}
