package loadgen

// The deterministic half of the load generator: turning (seed, mix, rps,
// duration) into a fixed open-loop request schedule before a single byte
// hits the wire. Open-loop means the arrival times are decided up front
// and never react to response latency — a slow server cannot slow the
// arrival process down, so tail latency is measured honestly instead of
// being hidden by coordinated omission (the classic closed-loop mistake
// where the generator politely waits for the victim to recover).
//
// Everything is drawn from one seeded math/rand stream in generation
// order, with no wall-clock reads and no map iteration, so the same
// (seed, mix, rps, duration, kmax) reproduces a byte-identical schedule —
// the same discipline the chaos suite applies to fault schedules.

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Op is one kind of API traffic in the mix.
type Op string

const (
	// OpSolve is a synchronous reference solve: POST /v1/solve with a
	// {"graph_ref"} body and a varied k, the cache-facing hot path.
	OpSolve Op = "solve"
	// OpGraphGet downloads the main graph: GET /v1/graphs/{name}.
	OpGraphGet Op = "graph_get"
	// OpGraphPut re-uploads a secondary graph: PUT /v1/graphs/{name}. It
	// targets its own name so registry churn does not invalidate the main
	// graph's warm solve cache mid-run.
	OpGraphPut Op = "graph_put"
	// OpJob submits an async solve (POST /v1/jobs) and polls it to a
	// terminal state; the polls are reported as their own endpoint.
	OpJob Op = "job_submit"
)

// mixOrder fixes the draw order of the cumulative distribution; iterating
// a map here would leak map-order nondeterminism into the schedule.
var mixOrder = []Op{OpSolve, OpGraphGet, OpGraphPut, OpJob}

// Mix is the relative weight of each op. Weights need not sum to 1; they
// are normalized at draw time. The zero Mix is invalid (nothing to send).
type Mix struct {
	Solve    float64 `json:"solve"`
	GraphGet float64 `json:"graphGet"`
	GraphPut float64 `json:"graphPut"`
	Job      float64 `json:"job"`
}

// DefaultMix is a serving-shaped blend: solve-dominated with a background
// of reads, occasional uploads, and a slice of async jobs.
func DefaultMix() Mix {
	return Mix{Solve: 0.65, GraphGet: 0.15, GraphPut: 0.05, Job: 0.15}
}

func (m Mix) weight(op Op) float64 {
	switch op {
	case OpSolve:
		return m.Solve
	case OpGraphGet:
		return m.GraphGet
	case OpGraphPut:
		return m.GraphPut
	case OpJob:
		return m.Job
	}
	return 0
}

func (m Mix) total() float64 {
	var sum float64
	for _, op := range mixOrder {
		sum += m.weight(op)
	}
	return sum
}

func (m Mix) validate() error {
	for _, w := range []float64{m.Solve, m.GraphGet, m.GraphPut, m.Job} {
		if w < 0 {
			return fmt.Errorf("loadgen: negative mix weight %g", w)
		}
	}
	if m.total() <= 0 {
		return fmt.Errorf("loadgen: mix has no positive weight")
	}
	return nil
}

// String renders the mix in the grammar ParseMix accepts, tokens in fixed
// order with zero weights elided — the canonical form recorded in reports
// so a benchmark entry names its exact workload.
func (m Mix) String() string {
	var parts []string
	names := map[Op]string{OpSolve: "solve", OpGraphGet: "get", OpGraphPut: "put", OpJob: "job"}
	for _, op := range mixOrder {
		if w := m.weight(op); w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", names[op], w))
		}
	}
	return strings.Join(parts, ",")
}

// ParseMix parses "solve=0.65,get=0.15,put=0.05,job=0.15". Empty text is
// the default mix; unknown keys are errors.
func ParseMix(text string) (Mix, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, tok := range strings.Split(text, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: mix token %q is not key=value", tok)
		}
		var w float64
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%g", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad mix weight %q", val)
		}
		switch strings.TrimSpace(key) {
		case "solve":
			m.Solve = w
		case "get":
			m.GraphGet = w
		case "put":
			m.GraphPut = w
		case "job":
			m.Job = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix key %q (want solve, get, put, job)", key)
		}
	}
	if err := m.validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// Request is one planned request: when it leaves (offset from run start),
// what it is, and its solve budget when the op takes one.
type Request struct {
	At time.Duration
	Op Op
	// K is the solve/job budget, drawn uniformly from [1, KMax]. Varied
	// budgets are what make the prefix cache meaningful: one solve at the
	// largest k warms every smaller budget.
	K int
}

// ScheduleSpec configures BuildSchedule.
type ScheduleSpec struct {
	Seed     int64
	RPS      float64
	Duration time.Duration
	Mix      Mix
	// KMax bounds the drawn budgets (0 = DefaultKMax).
	KMax int
}

// DefaultKMax is the default budget ceiling for drawn solves.
const DefaultKMax = 50

// Schedule is the full fixed request plan plus the inputs that produced
// it, so a report can quote exactly how to reproduce its traffic.
type Schedule struct {
	Spec     ScheduleSpec
	Requests []Request
}

// BuildSchedule derives the open-loop plan: Poisson arrivals at the
// target rate (exponential inter-arrival gaps), op kinds drawn from the
// normalized mix, budgets drawn uniformly — all from one rand stream
// seeded by Spec.Seed.
func BuildSchedule(spec ScheduleSpec) (*Schedule, error) {
	if spec.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: RPS must be positive, got %g", spec.RPS)
	}
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %v", spec.Duration)
	}
	if err := spec.Mix.validate(); err != nil {
		return nil, err
	}
	if spec.KMax <= 0 {
		spec.KMax = DefaultKMax
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	total := spec.Mix.total()
	var reqs []Request
	at := time.Duration(0)
	for {
		// Exponential gap: open-loop Poisson arrivals at the target rate.
		gap := time.Duration(rng.ExpFloat64() / spec.RPS * float64(time.Second))
		at += gap
		if at >= spec.Duration {
			break
		}
		x := rng.Float64() * total
		op := mixOrder[len(mixOrder)-1]
		for _, cand := range mixOrder {
			if w := spec.Mix.weight(cand); x < w {
				op = cand
				break
			} else {
				x -= w
			}
		}
		req := Request{At: at, Op: op}
		if op == OpSolve || op == OpJob {
			req.K = 1 + rng.Intn(spec.KMax)
		}
		reqs = append(reqs, req)
	}
	return &Schedule{Spec: spec, Requests: reqs}, nil
}

// Encode writes the schedule as deterministic text — a header naming the
// inputs, then one "<offset-ns>\t<op>\t<k>" line per request. Two
// schedules built from identical specs encode to identical bytes; the
// determinism test and the CLI's -print-schedule mode both rely on this.
func (s *Schedule) Encode(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# loadgen schedule seed=%d rps=%g duration=%s mix=%s kmax=%d requests=%d\n",
		s.Spec.Seed, s.Spec.RPS, s.Spec.Duration, s.Spec.Mix.String(), s.Spec.KMax, len(s.Requests)); err != nil {
		return err
	}
	for _, r := range s.Requests {
		if _, err := fmt.Fprintf(w, "%d\t%s\t%d\n", r.At.Nanoseconds(), r.Op, r.K); err != nil {
			return err
		}
	}
	return nil
}

// CountByOp tallies the planned requests per op, in fixed op order.
func (s *Schedule) CountByOp() map[Op]int {
	counts := make(map[Op]int, len(mixOrder))
	for _, r := range s.Requests {
		counts[r.Op]++
	}
	return counts
}

// quantile returns the q-quantile of sorted by the nearest-rank method,
// which guarantees monotonicity across quantiles and p_q <= max for any
// q — the invariant the report validator enforces.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
