package loadgen

// The loadgen report: per-endpoint latency quantiles and outcome counts,
// cache behaviour, retry accounting, and the injected-vs-organic failure
// split. Validate is the single source of truth for the report's
// invariants — the end-to-end test asserts them against a live server and
// the BENCH_serving.json writer refuses to record a report that violates
// them, so a broken collector cannot quietly poison the perf trajectory.

import (
	"fmt"
	"time"

	"prefcover/internal/slo"
)

// EndpointStats is the per-endpoint slice of the report. Latencies are
// measured from each request's *scheduled* departure time, not its actual
// send time, so queueing delay inside the generator counts against the
// server — the open-loop, coordinated-omission-free definition.
type EndpointStats struct {
	// Sent is every request issued; Sent == OK + Errors + Timeouts.
	Sent int64 `json:"sent"`
	// OK counts final 2xx/3xx responses (possibly after retries).
	OK int64 `json:"ok"`
	// Errors counts requests whose final outcome was an HTTP >= 400.
	Errors int64 `json:"errors"`
	// Timeouts counts requests that never produced a usable HTTP
	// response: transport failures, client-side deadlines, cancellation.
	Timeouts int64 `json:"timeouts"`
	// Status tallies final HTTP status codes (keyed by decimal string so
	// the JSON stays schema-stable).
	Status map[string]int64 `json:"status,omitempty"`
	// Injected429/Injected503/InjectedOther count fault-injector responses
	// observed at the attempt level (the body carries the injected-fault
	// marker), separated from organic failures so a chaos run can tell
	// deliberate throttling from real breakage.
	Injected429   int64 `json:"injected429,omitempty"`
	Injected503   int64 `json:"injected503,omitempty"`
	InjectedOther int64 `json:"injectedOther,omitempty"`
	// ErrorRatio is (Errors+Timeouts)/Sent.
	ErrorRatio float64 `json:"errorRatio"`
	// Latency quantiles in seconds, nearest-rank over final outcomes.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// CacheStats summarizes the X-Prefcover-Cache headers seen on reference
// solves. Coalesced responses count as hits: they did zero solver work.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HitRatio is Hits/(Hits+Misses), 0 when no header was seen.
	HitRatio float64 `json:"hitRatio"`
}

// RetryStats mirrors internal/retry's counters for the run, so the
// report's failure budget reconciles against the retry layer: every
// transient failure is exactly one Retry or one GiveUp.
type RetryStats struct {
	Attempts          int64 `json:"attempts"`
	Retries           int64 `json:"retries"`
	GiveUps           int64 `json:"giveUps"`
	RetryAfterHonored int64 `json:"retryAfterHonored"`
}

// FaultStats records the chaos context of a run: the active spec and the
// injected failures observed client-side, totalled across endpoints.
type FaultStats struct {
	// Spec is the injector grammar in force during the run.
	Spec string `json:"spec"`
	// Injected429/503/Other total the per-endpoint attempt-level counts.
	Injected429   int64 `json:"injected429"`
	Injected503   int64 `json:"injected503"`
	InjectedOther int64 `json:"injectedOther"`
	// ServerCounts is the injector's own tally by kind when the target
	// exposes it (in-process runs, or /debug/faults under -fault-control);
	// nil when unavailable.
	ServerCounts map[string]int64 `json:"serverCounts,omitempty"`
}

// ReplayStats ties the serving run back to the paper's semantics: a
// Monte Carlo replay (internal/replay) of the solved assortment against
// the same preference graph, compared with the analytic cover the server
// returned.
type ReplayStats struct {
	Requests  int     `json:"requests"`
	Rate      float64 `json:"rate"`
	StdErr    float64 `json:"stdErr"`
	Predicted float64 `json:"predicted"`
}

// Report is one load-generation run.
type Report struct {
	// Workload identity: everything needed to regenerate the exact
	// request schedule.
	//
	// Cluster records the serving topology when the target was a routing
	// gateway rather than a single daemon (e.g. "gateway+3nodes,r=2");
	// empty for single-node runs. Entries with different topologies are
	// not comparable latency-wise — the gateway adds a proxy hop.
	Cluster  string  `json:"cluster,omitempty"`
	Preset   string  `json:"preset,omitempty"`
	Seed     int64   `json:"seed"`
	Mix      string  `json:"mix"`
	RPS      float64 `json:"rps"`
	Duration string  `json:"duration"`
	KMax     int     `json:"kmax"`

	// Scheduled is the planned request count; Sent is how many were
	// actually issued (less than Scheduled only when the run is cut short
	// by cancellation).
	Scheduled int64 `json:"scheduled"`
	Sent      int64 `json:"sent"`
	// Endpoints is keyed by logical endpoint (solve, graph_get,
	// graph_put, job_submit, job_poll).
	Endpoints map[string]*EndpointStats `json:"endpoints"`
	// ErrorRatio is (errors+timeouts)/sent across all endpoints.
	ErrorRatio float64      `json:"errorRatio"`
	Cache      CacheStats   `json:"cache"`
	Retry      RetryStats   `json:"retry"`
	Faults     *FaultStats  `json:"faults,omitempty"`
	Replay     *ReplayStats `json:"replay,omitempty"`

	// SLOSpec and SLO record the run graded against `-slo-spec`
	// objectives (internal/slo grammar over the logical endpoint names);
	// both empty when no spec was given, keeping old entries readable.
	SLOSpec string       `json:"sloSpec,omitempty"`
	SLO     []SLOVerdict `json:"slo,omitempty"`
}

// Validate enforces the report invariants:
//
//   - per endpoint, sent == ok + errors + timeouts
//   - quantiles are monotone: p50 <= p90 <= p99 <= max
//   - cache hit ratio lies in [0,1] and matches its numerator/denominator
//   - totals reconcile: Sent equals the endpoint sum, attempts cover
//     every sent request, and every transient failure is accounted as
//     exactly one retry or give-up
func (r *Report) Validate() error {
	var sent, errs, timeouts int64
	for name, ep := range r.Endpoints {
		if ep.Sent != ep.OK+ep.Errors+ep.Timeouts {
			return fmt.Errorf("loadgen: endpoint %s: sent %d != ok %d + errors %d + timeouts %d",
				name, ep.Sent, ep.OK, ep.Errors, ep.Timeouts)
		}
		if !(ep.P50 <= ep.P90 && ep.P90 <= ep.P99 && ep.P99 <= ep.Max) {
			return fmt.Errorf("loadgen: endpoint %s: quantiles not monotone: p50=%g p90=%g p99=%g max=%g",
				name, ep.P50, ep.P90, ep.P99, ep.Max)
		}
		if ep.P50 < 0 {
			return fmt.Errorf("loadgen: endpoint %s: negative latency p50=%g", name, ep.P50)
		}
		sent += ep.Sent
		errs += ep.Errors
		timeouts += ep.Timeouts
	}
	if sent != r.Sent {
		return fmt.Errorf("loadgen: endpoint sent sum %d != report sent %d", sent, r.Sent)
	}
	if r.Sent > r.Scheduled+r.pollCount() {
		// Polls are issued beyond the schedule (one submit fans into many
		// polls); everything else must come from the plan.
		return fmt.Errorf("loadgen: sent %d exceeds scheduled %d + polls %d",
			r.Sent, r.Scheduled, r.pollCount())
	}
	if r.Cache.HitRatio < 0 || r.Cache.HitRatio > 1 {
		return fmt.Errorf("loadgen: cache hit ratio %g outside [0,1]", r.Cache.HitRatio)
	}
	if total := r.Cache.Hits + r.Cache.Misses; total > 0 {
		want := float64(r.Cache.Hits) / float64(total)
		if diff := r.Cache.HitRatio - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("loadgen: cache hit ratio %g != hits/(hits+misses) %g", r.Cache.HitRatio, want)
		}
	} else if r.Cache.HitRatio != 0 {
		return fmt.Errorf("loadgen: cache hit ratio %g with no cache-tagged responses", r.Cache.HitRatio)
	}
	if r.Retry.Attempts < r.Sent {
		return fmt.Errorf("loadgen: retry attempts %d < sent %d (every request is at least one attempt)",
			r.Retry.Attempts, r.Sent)
	}
	if r.Retry.RetryAfterHonored > r.Retry.Retries {
		return fmt.Errorf("loadgen: honored Retry-After count %d exceeds retries %d",
			r.Retry.RetryAfterHonored, r.Retry.Retries)
	}
	if err := r.validateSLO(); err != nil {
		return err
	}
	return nil
}

// validateSLO keeps the recorded verdicts honest: the spec must parse
// and carry exactly one verdict per objective, in spec order.
func (r *Report) validateSLO() error {
	if r.SLOSpec == "" {
		if len(r.SLO) != 0 {
			return fmt.Errorf("loadgen: %d SLO verdicts recorded without a spec", len(r.SLO))
		}
		return nil
	}
	spec, err := slo.ParseSpec(r.SLOSpec)
	if err != nil {
		return fmt.Errorf("loadgen: recorded SLO spec: %w", err)
	}
	if len(r.SLO) != len(spec.Objectives) {
		return fmt.Errorf("loadgen: %d SLO verdicts for %d objectives", len(r.SLO), len(spec.Objectives))
	}
	for i, o := range spec.Objectives {
		if r.SLO[i].Objective != o.String() {
			return fmt.Errorf("loadgen: SLO verdict %d is %q, spec objective is %q",
				i, r.SLO[i].Objective, o.String())
		}
	}
	return nil
}

// pollCount sums the job_poll endpoint's sent count (polls are the one
// request class not present in the schedule).
func (r *Report) pollCount() int64 {
	if ep, ok := r.Endpoints[endpointJobPoll]; ok {
		return ep.Sent
	}
	return 0
}

// OverallP99 is the p99 across every recorded latency in the run — the
// number the capacity model holds against the SLO.
func (r *Report) OverallP99() time.Duration {
	worst := 0.0
	// The true overall p99 needs the raw samples; the runner records it
	// directly. This accessor is the conservative fallback for reports
	// rebuilt from JSON: the worst per-endpoint p99.
	for _, ep := range r.Endpoints {
		if ep.P99 > worst {
			worst = ep.P99
		}
	}
	return time.Duration(worst * float64(time.Second))
}
