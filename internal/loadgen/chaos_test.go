package loadgen

// Latency under chaos: a small loadgen burst against a server with a
// seeded fault injector (throttle + unavail + latency). The assertions
// are the exact-accounting discipline of internal/chaostest applied to
// the load generator:
//
//   - injected 429/503s are reported separately from organic errors, and
//     the client's attempt-level tally reconciles with the injector's own
//     counts by kind;
//   - every injected transient failure is accounted by internal/retry as
//     exactly one retry or one give-up;
//   - every retry honored the injected Retry-After (the server stamps one
//     on each injected 429/503).
//
// The spec deliberately avoids reset/partial faults: net/http can
// transparently replay an idempotent request on a dead *reused*
// connection, which would consume an injected reset before the retry
// layer could observe it and break the accounting. The connection-level
// kinds are covered by the chaos suite; this test owns the HTTP-status
// kinds.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"prefcover/internal/chaostest"
	"prefcover/internal/faults"
	"prefcover/internal/jobs"
	"prefcover/internal/server"
)

func TestRunUnderChaosReconciles(t *testing.T) {
	baseline := chaostest.GoroutineBaseline()
	// Deferred first, so the leak check runs after server and listener
	// teardown, like the chaos suite does.
	defer chaostest.CheckGoroutines(t, baseline)
	// No concurrency limiter, no solve timeout, deep job queue: any
	// transient failure in this run is injected, never organic, so the
	// reconciliation below can demand exact equality.
	srv, err := server.NewWithConfig(server.Config{
		Jobs: jobs.Options{Workers: 4, QueueDepth: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	target := newTestTarget(ts.URL, testGraphJSON(t))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Arm the injector only after setup, so the uploads don't consume
	// draws from the fault stream the run is accounted against.
	if err := SetupGraphs(ctx, nil, target); err != nil {
		t.Fatal(err)
	}
	const specText = "seed=7,throttle=0.2,unavail=0.1,latency=2ms@0.3,retryafter=1ms"
	spec, err := faults.ParseSpec(specText)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFaults(faults.New(spec))

	sched, err := BuildSchedule(ScheduleSpec{
		Seed: 7, RPS: 250, Duration: 600 * time.Millisecond, Mix: DefaultMix(), KMax: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(ctx, sched, target, RunOptions{
		Timeout:      20 * time.Second,
		MaxAttempts:  3,
		RetryBase:    2 * time.Millisecond,
		PollInterval: 10 * time.Millisecond,
		FaultSpec:    specText,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("report invariants: %v", err)
	}
	if report.Faults == nil {
		t.Fatal("chaos run produced no fault section")
	}
	if report.Faults.Spec != specText {
		t.Fatalf("fault spec not recorded: %q", report.Faults.Spec)
	}

	// Client-side attempt-level tallies must match the injector's own
	// counts exactly: every injected status was observed once.
	counts := srv.Faults().Counts()
	if got, want := report.Faults.Injected429, counts[faults.KindThrottle]; got != want {
		t.Fatalf("client saw %d injected 429s, injector produced %d", got, want)
	}
	if got, want := report.Faults.Injected503, counts[faults.KindUnavail]; got != want {
		t.Fatalf("client saw %d injected 503s, injector produced %d", got, want)
	}
	if report.Faults.InjectedOther != 0 {
		t.Fatalf("spec injects only 429/503, client counted %d other", report.Faults.InjectedOther)
	}
	injected := report.Faults.Injected429 + report.Faults.Injected503
	if injected == 0 {
		t.Fatal("20%+10% fault rates injected nothing across the burst; seed or accounting is broken")
	}

	// Retry-layer reconciliation: with no organic transients, every
	// injected failure is exactly one retry or one give-up, and every
	// retry honored the injected Retry-After.
	if got := report.Retry.Retries + report.Retry.GiveUps; got != injected {
		t.Fatalf("retries %d + giveups %d = %d, want injected count %d",
			report.Retry.Retries, report.Retry.GiveUps, got, injected)
	}
	if report.Retry.RetryAfterHonored != report.Retry.Retries {
		t.Fatalf("honored %d of %d retries; every injected 429/503 carries Retry-After",
			report.Retry.RetryAfterHonored, report.Retry.Retries)
	}

	// Outcome separation: a request only counts as a final error when its
	// retries were exhausted by injected failures — organic errors would
	// show up as error counts exceeding injected give-ups.
	var finalErrors int64
	for _, ep := range report.Endpoints {
		finalErrors += ep.Errors
		if ep.Timeouts != 0 {
			t.Fatalf("status-kind faults cannot produce timeouts, got %d: %+v", ep.Timeouts, ep)
		}
	}
	if finalErrors != report.Retry.GiveUps {
		t.Fatalf("final errors %d != give-ups %d: some failures were organic", finalErrors, report.Retry.GiveUps)
	}
}
