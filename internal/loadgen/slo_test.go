package loadgen

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prefcover/internal/slo"
)

// sloReport builds a minimally valid report with one solve endpoint and
// one untouched endpoint, for verdict grading.
func sloReport() *Report {
	return &Report{
		Seed: 1, Mix: "solve=1", RPS: 100, Duration: "1s",
		Scheduled: 100, Sent: 100,
		Endpoints: map[string]*EndpointStats{
			"solve": {
				Sent: 100, OK: 98, Errors: 1, Timeouts: 1,
				ErrorRatio: 0.02,
				P50:        0.010, P90: 0.050, P99: 0.200, Max: 0.300,
			},
		},
		ErrorRatio: 0.02,
		Retry:      RetryStats{Attempts: 100},
	}
}

func parseSpec(t *testing.T, text string) slo.Spec {
	t.Helper()
	s, err := slo.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvaluateSLOVerdicts(t *testing.T) {
	r := sloReport()
	spec := parseSpec(t, "avail:solve:97,avail:solve:99,p99:solve:0.25,p99:solve:0.1,p50:solve:0.02,avail:graph_get:99")
	got := EvaluateSLO(spec, r)
	if len(got) != 6 {
		t.Fatalf("got %d verdicts, want 6", len(got))
	}
	want := []struct {
		pass   bool
		noData bool
		obs    float64
	}{
		{true, false, 98},     // avail 98% >= 97
		{false, false, 98},    // avail 98% < 99
		{true, false, 0.200},  // p99 200ms <= 250ms
		{false, false, 0.200}, // p99 200ms > 100ms
		{true, false, 0.010},  // p50 10ms <= 20ms
		{false, true, 0},      // graph_get never exercised
	}
	for i, w := range want {
		v := got[i]
		if v.Pass != w.pass || v.NoData != w.noData || v.Observed != w.obs {
			t.Errorf("verdict %d (%s): pass=%v noData=%v observed=%v, want %+v",
				i, v.Objective, v.Pass, v.NoData, v.Observed, w)
		}
		if v.Objective != spec.Objectives[i].String() {
			t.Errorf("verdict %d objective %q != spec %q", i, v.Objective, spec.Objectives[i].String())
		}
	}
	if s := got[5].String(); !strings.Contains(s, "no traffic") {
		t.Errorf("NoData verdict string = %q", s)
	}
	if s := got[0].String(); !strings.Contains(s, "PASS") {
		t.Errorf("pass verdict string = %q", s)
	}
}

// TestReportValidateSLO covers the recorded-verdict invariants: spec and
// verdicts must agree, and verdicts without a spec are rejected.
func TestReportValidateSLO(t *testing.T) {
	r := sloReport()
	spec := parseSpec(t, "avail:solve:99.9")
	r.SLOSpec = spec.String()
	r.SLO = EvaluateSLO(spec, r)
	if err := r.Validate(); err != nil {
		t.Fatalf("valid SLO report rejected: %v", err)
	}

	bad := sloReport()
	bad.SLO = []SLOVerdict{{Objective: "avail:solve:99.9"}}
	if err := bad.Validate(); err == nil {
		t.Error("verdicts without a spec should fail validation")
	}

	bad = sloReport()
	bad.SLOSpec = "avail:solve:99.9"
	if err := bad.Validate(); err == nil {
		t.Error("spec without verdicts should fail validation")
	}

	bad = sloReport()
	bad.SLOSpec = "avail:solve:99.9"
	bad.SLO = []SLOVerdict{{Objective: "p99:solve:0.1"}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched verdict objective should fail validation")
	}

	bad = sloReport()
	bad.SLOSpec = "not a spec"
	bad.SLO = []SLOVerdict{{}}
	if err := bad.Validate(); err == nil {
		t.Error("unparseable recorded spec should fail validation")
	}
}

// TestBenchRoundTripWithSLO appends an entry carrying verdicts and reads
// it back through the schema-drift-refusing decoder.
func TestBenchRoundTripWithSLO(t *testing.T) {
	r := sloReport()
	spec := parseSpec(t, "avail:solve:97,p99:solve:0.25")
	r.SLOSpec = spec.String()
	r.SLO = EvaluateSLO(spec, r)
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	entry := BenchEntry{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GitSHA:    "test", GoVersion: "gotest", GOOS: "linux", GOARCH: "amd64", CPUs: 1,
		Kind:   BenchKindRun,
		Report: r,
	}
	if err := AppendBench(path, entry); err != nil {
		t.Fatal(err)
	}
	f, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 1 {
		t.Fatalf("entries = %d", len(f.Entries))
	}
	back := f.Entries[0].Report
	if back.SLOSpec != r.SLOSpec || len(back.SLO) != 2 {
		t.Fatalf("round-trip lost SLO fields: %+v", back)
	}
	if !back.SLO[0].Pass || !back.SLO[1].Pass {
		t.Errorf("round-trip verdicts = %+v", back.SLO)
	}
}
