package loadgen

// End-to-end runner tests against a real in-process prefcoverd handler
// (full middleware stack: request IDs, limits, cache, async jobs), meant
// to run under -race. The report invariants are asserted through
// Report.Validate — the same check the BENCH writer enforces — plus the
// identification-header regression: every request the generator emits
// must carry an X-Request-ID and a well-formed W3C traceparent.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"prefcover/internal/chaostest"
	"prefcover/internal/graph"
	"prefcover/internal/jobs"
	"prefcover/internal/server"
	"prefcover/internal/synth"
	"prefcover/internal/trace"
)

// testGraphJSON generates a small deterministic preference graph and
// serializes it the way the CLI would.
func testGraphJSON(t testing.TB) []byte {
	t.Helper()
	g, err := synth.GenerateGraph(synth.GraphSpec{Nodes: 250, AvgOutDegree: 4, ZipfS: 1.05, Seed: 42})
	if err != nil {
		t.Fatalf("GenerateGraph: %v", err)
	}
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, g); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// headerRecorder wraps the server handler and checks every inbound
// request's identification headers, tallying violations for the
// regression assertion.
type headerRecorder struct {
	inner http.Handler

	mu             sync.Mutex
	total          int
	missingReqID   int
	badTraceparent []string
}

func (h *headerRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.total++
	if r.Header.Get("X-Request-ID") == "" {
		h.missingReqID++
	}
	tp := r.Header.Get(trace.TraceparentHeader)
	if sc, err := trace.ParseTraceparent(tp); err != nil || sc.Sampled {
		// The generator must send a parseable traceparent with
		// sampled=false (so load tests don't flood the flight recorder).
		h.badTraceparent = append(h.badTraceparent, tp)
	}
	h.mu.Unlock()
	h.inner.ServeHTTP(w, r)
}

func newTestTarget(baseURL string, graphJSON []byte) Target {
	return Target{
		BaseURL:   baseURL,
		MainGraph: "loadgen-main",
		PutGraph:  "loadgen-put",
		GraphJSON: graphJSON,
		Variant:   "independent",
	}
}

func TestRunEndToEnd(t *testing.T) {
	baseline := chaostest.GoroutineBaseline()
	// Deferred first so it runs after the server and test listener close:
	// the leak check must see the settled state, not in-flight teardown.
	defer chaostest.CheckGoroutines(t, baseline)
	srv, err := server.NewWithConfig(server.Config{
		Jobs: jobs.Options{Workers: 4, QueueDepth: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec := &headerRecorder{inner: srv.Handler()}
	ts := httptest.NewServer(rec)
	defer ts.Close()

	target := newTestTarget(ts.URL, testGraphJSON(t))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := SetupGraphs(ctx, nil, target); err != nil {
		t.Fatal(err)
	}

	sched, err := BuildSchedule(ScheduleSpec{
		Seed: 1, RPS: 300, Duration: 600 * time.Millisecond, Mix: DefaultMix(), KMax: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(ctx, sched, target, RunOptions{
		Timeout: 10 * time.Second, PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("report invariants: %v\nreport: %+v", err, report)
	}
	if report.Sent < report.Scheduled {
		t.Fatalf("run was cut short: sent %d of %d scheduled", report.Sent, report.Scheduled)
	}
	if report.ErrorRatio != 0 {
		t.Fatalf("fault-free run reported error ratio %g: %+v", report.ErrorRatio, report.Endpoints)
	}
	for _, ep := range []string{endpointSolve, endpointGraphGet, endpointGraphPut, endpointJobSubmit, endpointJobPoll} {
		st := report.Endpoints[ep]
		if st == nil || st.Sent == 0 {
			t.Fatalf("endpoint %s saw no traffic: %+v", ep, report.Endpoints)
		}
	}
	// Varied-k solves against one graph: after the first largest-k miss the
	// prefix cache must be serving hits.
	if report.Cache.Hits == 0 {
		t.Fatalf("no cache hits recorded: %+v", report.Cache)
	}
	if report.Cache.HitRatio < 0 || report.Cache.HitRatio > 1 {
		t.Fatalf("cache hit ratio %g outside [0,1]", report.Cache.HitRatio)
	}

	rec.mu.Lock()
	total, missing, bad := rec.total, rec.missingReqID, rec.badTraceparent
	rec.mu.Unlock()
	if total == 0 {
		t.Fatal("recorder saw no requests")
	}
	if missing != 0 {
		t.Fatalf("%d of %d requests missing X-Request-ID", missing, total)
	}
	if len(bad) != 0 {
		t.Fatalf("%d of %d requests carried a bad or sampled traceparent, e.g. %q", len(bad), total, bad[0])
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	srv, err := server.NewWithConfig(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	target := newTestTarget(ts.URL, testGraphJSON(t))
	if err := SetupGraphs(context.Background(), nil, target); err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(ScheduleSpec{
		Seed: 3, RPS: 50, Duration: 30 * time.Second, Mix: Mix{Solve: 1}, KMax: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	report, err := Run(ctx, sched, target, RunOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if report.Sent >= report.Scheduled {
		t.Fatalf("cancellation did not cut the run short: sent %d of %d", report.Sent, report.Scheduled)
	}
	// A truncated run must still produce a coherent report.
	if err := report.Validate(); err != nil {
		t.Fatalf("partial report invariants: %v", err)
	}
}

func TestCapacityFindsKnee(t *testing.T) {
	srv, err := server.NewWithConfig(server.Config{
		Jobs: jobs.Options{Workers: 2, QueueDepth: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	target := newTestTarget(ts.URL, testGraphJSON(t))
	ctx := context.Background()
	if err := SetupGraphs(ctx, nil, target); err != nil {
		t.Fatal(err)
	}
	// An absurdly tight SLO forces a violation within a couple of steps, so
	// the test exercises knee detection rather than the server's true limit.
	spec := CapacitySpec{
		StartRPS:     40,
		MaxRPS:       160,
		Factor:       2,
		StepDuration: 300 * time.Millisecond,
		SLOP99:       1 * time.Nanosecond,
		ErrorBudget:  0.5,
		Mix:          Mix{Solve: 1},
		KMax:         10,
		Seed:         9,
	}
	var steps []CapacityStep
	result, err := RunCapacity(ctx, spec, target, RunOptions{Timeout: 5 * time.Second},
		func(s CapacityStep) { steps = append(steps, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Steps) == 0 {
		t.Fatal("capacity run recorded no steps")
	}
	if len(steps) != len(result.Steps) {
		t.Fatalf("progress callback saw %d steps, result has %d", len(steps), len(result.Steps))
	}
	if !result.Saturated {
		t.Fatalf("1ns SLO was never violated: %+v", result)
	}
	last := result.Steps[len(result.Steps)-1]
	if last.Passed || last.Violation != "p99" {
		t.Fatalf("final step should violate p99: %+v", last)
	}
	if result.KneeRPS != 0 {
		t.Fatalf("first step cannot meet a 1ns SLO, knee should be 0, got %g", result.KneeRPS)
	}
	for _, s := range result.Steps {
		if err := s.Report.Validate(); err != nil {
			t.Fatalf("step %g rps report: %v", s.RPS, err)
		}
	}
	// A generous SLO ends the search at MaxRPS with the knee at the top.
	spec.SLOP99 = time.Hour
	spec.Seed = 10
	result, err = RunCapacity(ctx, spec, target, RunOptions{Timeout: 5 * time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if result.Saturated {
		t.Fatalf("1h SLO should never be violated: %+v", result)
	}
	if result.KneeRPS != 160 {
		t.Fatalf("knee should sit at MaxRPS 160, got %g", result.KneeRPS)
	}
	if len(result.Steps) != 3 {
		t.Fatalf("40->80->160 should be 3 steps, got %d", len(result.Steps))
	}
}
