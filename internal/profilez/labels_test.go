package profilez

import (
	"bytes"
	"context"
	"runtime/pprof"
	"testing"
	"time"
)

// spin burns CPU until d elapses so the profiler has samples to attribute.
func spin(d time.Duration) float64 {
	deadline := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 1e4; i++ {
			x = x*1.0000001 + float64(i%3)
		}
	}
	return x
}

// TestProfileLabelsRoundTrip captures a CPU profile around labeled work
// and asserts the decoded profile carries every label pair — the parser
// and the Do wrapper tested against the real runtime encoder.
func TestProfileLabelsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU sampling window too long for -short")
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatal(err)
	}
	Do(context.Background(), SolveLabels{
		Graph:    "yc-test",
		Strategy: "lazy",
		Endpoint: "/v1/solve",
		K:        40,
		Job:      "job-123",
	}, func(ctx context.Context) {
		// Labels must also reach child goroutines (the parallel
		// strategy's stripe workers inherit them this way).
		done := make(chan struct{})
		go func() {
			spin(300 * time.Millisecond)
			close(done)
		}()
		spin(300 * time.Millisecond)
		<-done
	})
	pprof.StopCPUProfile()

	info, err := ReadProfile(&buf)
	if err != nil {
		t.Fatalf("parse profile: %v", err)
	}
	if info.Samples == 0 {
		t.Fatal("no CPU samples collected")
	}
	for key, want := range map[string]string{
		LabelGraph:    "yc-test",
		LabelStrategy: "lazy",
		LabelEndpoint: "/v1/solve",
		LabelKBucket:  "33-64",
		LabelJob:      "job-123",
	} {
		if !info.HasLabel(key, want) {
			t.Errorf("no sample carries %s=%s; labels seen: %v", key, want, info.Labels)
		}
	}
}

// TestDoOmitsEmptyLabels checks "" fields don't become empty label pairs.
func TestDoOmitsEmptyLabels(t *testing.T) {
	Do(context.Background(), SolveLabels{Strategy: "scan"}, func(ctx context.Context) {
		m := map[string]string{}
		pprof.ForLabels(ctx, func(k, v string) bool {
			m[k] = v
			return true
		})
		if _, ok := m[LabelGraph]; ok {
			t.Errorf("empty graph recorded as label: %v", m)
		}
		if _, ok := m[LabelJob]; ok {
			t.Errorf("empty job recorded as label: %v", m)
		}
		if m[LabelStrategy] != "scan" || m[LabelKBucket] != "threshold" {
			t.Errorf("labels = %v", m)
		}
	})
}

// TestReadProfileRejectsGarbage ensures the parser fails loudly rather
// than returning empty results for corrupt input.
func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte{0x1f, 0x8b, 0x00})); err == nil {
		t.Error("truncated gzip accepted")
	}
	// Wire-type-7 tag (invalid) in an uncompressed body.
	if _, err := ReadProfile(bytes.NewReader([]byte{0x0f, 0x01, 0x02})); err == nil {
		t.Error("invalid wire type accepted")
	}
}
