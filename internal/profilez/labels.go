package profilez

import (
	"context"
	"math/bits"
	"runtime/pprof"
	"strconv"
)

// Label keys attached to solver goroutines. Kept as constants so tests,
// the /debug/profilez index and `go tool pprof -tagfocus` invocations in
// the README all agree on spelling.
const (
	LabelGraph    = "graph"
	LabelStrategy = "strategy"
	LabelEndpoint = "endpoint"
	LabelKBucket  = "k_bucket"
	LabelJob      = "job"
)

// SolveLabels describes one solve for profile attribution. Empty fields
// are omitted from the label set rather than recorded as "".
type SolveLabels struct {
	Graph    string // registry name, or "" for inline request bodies
	Strategy string // greedy strategy actually used
	Endpoint string // HTTP route that initiated the solve
	K        int    // requested k; bucketed via KBucket (0 => threshold mode)
	Job      string // async job ID when solved by a jobs worker
}

// Do runs f with the solve's pprof labels applied to the current
// goroutine (and inherited by any goroutines it starts, which is what
// attributes the parallel strategy's stripe workers). When no CPU profile
// is being collected this costs one context allocation and a label-set
// swap — BenchmarkProfileLabelOverhead holds it within noise of a bare
// solve.
func Do(ctx context.Context, l SolveLabels, f func(ctx context.Context)) {
	kv := make([]string, 0, 10)
	if l.Graph != "" {
		kv = append(kv, LabelGraph, l.Graph)
	}
	if l.Strategy != "" {
		kv = append(kv, LabelStrategy, l.Strategy)
	}
	if l.Endpoint != "" {
		kv = append(kv, LabelEndpoint, l.Endpoint)
	}
	kv = append(kv, LabelKBucket, KBucket(l.K))
	if l.Job != "" {
		kv = append(kv, LabelJob, l.Job)
	}
	pprof.Do(ctx, pprof.Labels(kv...), f)
}

// KBucket maps a requested k onto a coarse power-of-two bucket label
// ("1-16", "17-32", "33-64", ...) so the label cardinality stays bounded
// no matter what k values traffic carries. k <= 0 means the solve was
// threshold-driven rather than k-driven.
func KBucket(k int) string {
	if k <= 0 {
		return "threshold"
	}
	if k <= 16 {
		return "1-16"
	}
	// Next power of two at or above k.
	hi := 1 << bits.Len(uint(k-1))
	return strconv.Itoa(hi/2+1) + "-" + strconv.Itoa(hi)
}
