// Package profilez is prefcoverd's continuous-profiling and
// resource-attribution layer, built entirely on the standard library's
// runtime/pprof and runtime/metrics machinery. It answers the question the
// ROADMAP's solver-speed tier depends on — *where* CPU, allocations and GC
// pressure actually go, per graph / strategy / endpoint — before any
// hot-path rewrite is attempted, so the coming speedups are measured
// against attributed baselines instead of guessed.
//
// Four cooperating pieces:
//
//   - pprof profile labels (labels.go): Do wraps the solver hot path so
//     CPU samples carry graph/strategy/endpoint/k_bucket/job label pairs,
//     filterable with `go tool pprof -tagfocus`;
//   - a capture ring (capture.go): periodic and trigger-based snapshots of
//     the cpu/heap/goroutine/mutex/block profiles into a bounded on-disk
//     ring, indexed (HTML + JSON, download links, provenance) at
//     /debug/profilez (handler.go);
//   - per-solve resource accounting (this file): wall/CPU time, allocated
//     bytes/objects and GC-pause deltas sampled via runtime/metrics around
//     each solve, attached to trace spans, job results and /metrics;
//   - a consumer accountant (accountant.go): cumulative per-(graph,
//     strategy) resource totals behind the /debug/statusz "top resource
//     consumers" panel.
package profilez

import (
	"runtime/metrics"
	"time"
)

// runtime/metrics names sampled around each solve. All are cumulative
// counters, so before/after deltas are meaningful.
const (
	metricAllocBytes   = "/gc/heap/allocs:bytes"
	metricAllocObjects = "/gc/heap/allocs:objects"
	metricGCPauses     = "/gc/pauses:seconds" // histogram; see pauseSeconds
)

// Usage is the resource delta observed across one solve. The runtime
// counters behind it are process-global, so under concurrent solves the
// deltas over-attribute (each solve sees its neighbours' allocations too);
// attribution is exact when solves are serialized — which is how the
// benchmark harness and a -max-concurrent 1 daemon run — and a labeled CPU
// profile is the precise instrument when they are not.
type Usage struct {
	// WallNanos is end-to-end wall time of the solve.
	WallNanos int64 `json:"wallNs"`
	// CPUNanos is the process CPU time (user+system) consumed while the
	// solve ran, from the OS's rusage accounting.
	CPUNanos int64 `json:"cpuNs"`
	// AllocBytes / AllocObjects are heap allocation deltas
	// (/gc/heap/allocs).
	AllocBytes   int64 `json:"allocBytes"`
	AllocObjects int64 `json:"allocObjects"`
	// GCPauseNanos is the stop-the-world pause time that elapsed during
	// the solve, approximated from the /gc/pauses:seconds histogram
	// (bucket counts weighted by bucket midpoints).
	GCPauseNanos int64 `json:"gcPauseNs"`
}

// Sample is one instant of the counters a Usage is computed from.
type Sample struct {
	wall         time.Time
	cpuNanos     int64
	allocBytes   uint64
	allocObjects uint64
	gcPauseNanos int64
}

// TakeSample reads the counters now. Cost is a few microseconds — two
// syscall-free runtime/metrics reads plus one getrusage — which is noise
// against even a cache-warm millisecond solve.
func TakeSample() Sample {
	samples := [3]metrics.Sample{
		{Name: metricAllocBytes},
		{Name: metricAllocObjects},
		{Name: metricGCPauses},
	}
	metrics.Read(samples[:])
	s := Sample{wall: time.Now(), cpuNanos: processCPUNanos()}
	if samples[0].Value.Kind() == metrics.KindUint64 {
		s.allocBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		s.allocObjects = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindFloat64Histogram {
		s.gcPauseNanos = pauseNanos(samples[2].Value.Float64Histogram())
	}
	return s
}

// Since returns the resource usage between start and now.
func Since(start Sample) Usage {
	end := TakeSample()
	return Usage{
		WallNanos:    end.wall.Sub(start.wall).Nanoseconds(),
		CPUNanos:     max64(0, end.cpuNanos-start.cpuNanos),
		AllocBytes:   max64(0, int64(end.allocBytes-start.allocBytes)),
		AllocObjects: max64(0, int64(end.allocObjects-start.allocObjects)),
		GCPauseNanos: max64(0, end.gcPauseNanos-start.gcPauseNanos),
	}
}

// pauseNanos estimates cumulative pause time from the pause-duration
// histogram: each bucket's count weighted by the bucket midpoint.
// runtime/metrics exposes pauses only in histogram form; the midpoint
// estimate is exact enough for a delta that answers "did GC stall this
// solve" (bucket bounds grow geometrically, so the estimate is within ~2x
// per bucket and unbiased in aggregate).
func pauseNanos(h *metrics.Float64Histogram) int64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		// The outermost buckets are unbounded; fall back to the finite
		// edge so ±Inf never poisons the sum.
		mid := (lo + hi) / 2
		switch {
		case lo < 0 || lo != lo: // -Inf underflow bucket
			mid = hi
		case hi != hi || hi > 1e12: // +Inf overflow bucket
			mid = lo
		}
		total += float64(count) * mid
	}
	return int64(total * 1e9)
}

func max64(floor, v int64) int64 {
	if v < floor {
		return floor
	}
	return v
}
