package profilez

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// The standard library can *write* pprof profiles but not read them, and
// this repo takes no external deps, so label assertions in tests and
// `make profile` use this deliberately minimal reader: it understands
// just enough of the profile.proto wire format to pull out sample labels
// and sample counts. Field numbers from
// github.com/google/pprof/proto/profile.proto:
//
//	Profile: sample = 2 (message), string_table = 6 (string)
//	Sample:  label = 3 (message)
//	Label:   key = 1 (strtab index), str = 2 (strtab index)

// LabelCount maps label key -> value -> number of samples carrying that
// pair.
type LabelCount map[string]map[string]int

// ProfileInfo is the decoded summary of one pprof profile.
type ProfileInfo struct {
	// Samples is the total number of samples in the profile.
	Samples int
	// Labels counts, per label key and value, how many samples carried
	// that pair.
	Labels LabelCount
}

// HasLabel reports whether at least one sample carries key=value.
func (p *ProfileInfo) HasLabel(key, value string) bool {
	return p.Labels[key][value] > 0
}

// ReadProfile parses a (possibly gzipped) pprof protobuf profile and
// returns its sample/label summary.
func ReadProfile(r io.Reader) (*ProfileInfo, error) {
	br := newPeekReader(r)
	if magic, err := br.peek2(); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("profilez: gunzip profile: %w", err)
		}
		defer gz.Close()
		r = gz
	} else {
		r = br
	}
	raw, err := io.ReadAll(io.LimitReader(r, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("profilez: read profile: %w", err)
	}
	return parseProfile(raw)
}

type labelRef struct{ key, str int64 }

func parseProfile(raw []byte) (*ProfileInfo, error) {
	info := &ProfileInfo{Labels: LabelCount{}}
	var strtab []string
	var sampleLabels [][]labelRef

	err := walkFields(raw, func(field int, wire int, v uint64, chunk []byte) error {
		switch {
		case field == 6 && wire == 2: // string_table
			strtab = append(strtab, string(chunk))
		case field == 2 && wire == 2: // sample
			refs, err := parseSampleLabels(chunk)
			if err != nil {
				return err
			}
			sampleLabels = append(sampleLabels, refs)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	info.Samples = len(sampleLabels)
	str := func(i int64) string {
		if i < 0 || i >= int64(len(strtab)) {
			return ""
		}
		return strtab[i]
	}
	for _, refs := range sampleLabels {
		for _, l := range refs {
			k, v := str(l.key), str(l.str)
			if k == "" || v == "" {
				continue // numeric labels (str==0) are out of scope here
			}
			m := info.Labels[k]
			if m == nil {
				m = map[string]int{}
				info.Labels[k] = m
			}
			m[v]++
		}
	}
	return info, nil
}

func parseSampleLabels(sample []byte) ([]labelRef, error) {
	var refs []labelRef
	err := walkFields(sample, func(field int, wire int, v uint64, chunk []byte) error {
		if field != 3 || wire != 2 { // Sample.label
			return nil
		}
		var l labelRef
		err := walkFields(chunk, func(f int, w int, lv uint64, _ []byte) error {
			if w != 0 {
				return nil
			}
			switch f {
			case 1:
				l.key = int64(lv)
			case 2:
				l.str = int64(lv)
			}
			return nil
		})
		if err != nil {
			return err
		}
		refs = append(refs, l)
		return nil
	})
	return refs, err
}

// walkFields iterates the top-level fields of one protobuf message,
// invoking fn with the field number, wire type, varint value (wire 0)
// or payload bytes (wire 2).
func walkFields(buf []byte, fn func(field, wire int, v uint64, chunk []byte) error) error {
	for len(buf) > 0 {
		tag, n := readVarint(buf)
		if n <= 0 {
			return errors.New("profilez: truncated protobuf tag")
		}
		buf = buf[n:]
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case 0: // varint
			v, n := readVarint(buf)
			if n <= 0 {
				return errors.New("profilez: truncated varint")
			}
			buf = buf[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(buf) < 8 {
				return errors.New("profilez: truncated fixed64")
			}
			buf = buf[8:]
		case 2: // length-delimited
			l, n := readVarint(buf)
			if n <= 0 || uint64(len(buf)-n) < l {
				return errors.New("profilez: truncated length-delimited field")
			}
			chunk := buf[n : n+int(l)]
			buf = buf[n+int(l):]
			if err := fn(field, wire, 0, chunk); err != nil {
				return err
			}
		case 5: // fixed32
			if len(buf) < 4 {
				return errors.New("profilez: truncated fixed32")
			}
			buf = buf[4:]
		default:
			return fmt.Errorf("profilez: unsupported wire type %d", wire)
		}
	}
	return nil
}

func readVarint(buf []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(buf) && i < 10; i++ {
		b := buf[i]
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v, i + 1
		}
	}
	return 0, -1
}

// peekReader lets ReadProfile sniff the gzip magic without losing bytes.
type peekReader struct {
	r      io.Reader
	peeked []byte
}

func newPeekReader(r io.Reader) *peekReader { return &peekReader{r: r} }

func (p *peekReader) peek2() ([2]byte, error) {
	var b [2]byte
	n, err := io.ReadFull(p.r, b[:])
	p.peeked = b[:n]
	if err != nil {
		return b, err
	}
	return b, nil
}

func (p *peekReader) Read(b []byte) (int, error) {
	if len(p.peeked) > 0 {
		n := copy(b, p.peeked)
		p.peeked = p.peeked[n:]
		return n, nil
	}
	return p.r.Read(b)
}
