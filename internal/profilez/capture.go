package profilez

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names one profile the capturer can snapshot. cpu is sampled over a
// window; the others are instantaneous runtime dumps.
type Kind string

const (
	KindCPU       Kind = "cpu"
	KindHeap      Kind = "heap"
	KindGoroutine Kind = "goroutine"
	KindMutex     Kind = "mutex"
	KindBlock     Kind = "block"
)

// Kinds lists every supported profile kind.
func Kinds() []Kind {
	return []Kind{KindCPU, KindHeap, KindGoroutine, KindMutex, KindBlock}
}

// ValidKind reports whether k names a supported profile.
func ValidKind(k Kind) bool {
	switch k {
	case KindCPU, KindHeap, KindGoroutine, KindMutex, KindBlock:
		return true
	}
	return false
}

// ErrCPUBusy is returned when a CPU capture is requested while another is
// already running; the runtime supports only one CPU profile at a time
// process-wide.
var ErrCPUBusy = errors.New("profilez: a CPU profile capture is already in progress")

// Options configures a Capturer. The zero value is usable: captures land
// in an owned temp directory that is removed on Close.
type Options struct {
	// Dir is where profile files are written. Empty means a private
	// temp directory created lazily and removed by Close.
	Dir string
	// MaxFiles bounds the number of retained captures (default 64).
	MaxFiles int
	// MaxBytes bounds the total on-disk size of retained captures
	// (default 64 MiB). Oldest captures are evicted first when either
	// bound is exceeded.
	MaxBytes int64
	// Interval enables the periodic capture loop when > 0: every
	// Interval the capturer snapshots PeriodicKinds.
	Interval time.Duration
	// PeriodicKinds are the profiles the periodic loop captures
	// (default heap+goroutine; cpu is deliberately not periodic —
	// it is exclusive and window-based, so it is trigger/on-demand).
	PeriodicKinds []Kind
	// CPUSeconds is the default CPU capture window (default 5s).
	CPUSeconds float64
	// Cooldown rate-limits trigger-based captures per trigger name
	// (default 1m) so a storm of slow requests yields one snapshot,
	// not hundreds.
	Cooldown time.Duration
	// MutexFraction and BlockRate, when > 0, are installed via
	// runtime.SetMutexProfileFraction / runtime.SetBlockProfileRate at
	// Start so mutex/block captures have data. Both default off: they
	// tax every contended lock operation process-wide.
	MutexFraction int
	BlockRate     int
	// Logger receives capture/eviction events (default slog.Default).
	Logger *slog.Logger
	// OnCapture, when set, observes every completed capture — the
	// server bridges this into /metrics counters and gauges.
	OnCapture func(e Entry)
}

// Entry describes one retained capture.
type Entry struct {
	// ID is the stable handle used by ?download= and eviction; it is
	// also the file's base name.
	ID string `json:"id"`
	// Kind is the profile kind captured.
	Kind Kind `json:"kind"`
	// Trigger records why the capture happened: "periodic", "manual",
	// or a trigger name such as "slow_request" / "job_queue_saturated".
	Trigger string `json:"trigger"`
	// Time is when the capture finished.
	Time time.Time `json:"time"`
	// Seconds is the sampling window for cpu captures, 0 otherwise.
	Seconds float64 `json:"seconds,omitempty"`
	// Bytes is the on-disk size of the profile file.
	Bytes int64 `json:"bytes"`
}

// Capturer owns the on-disk profile ring, the periodic capture loop, and
// trigger-based capture. All methods are safe for concurrent use.
type Capturer struct {
	opts    Options
	log     *slog.Logger
	started time.Time

	mu      sync.Mutex
	dir     string // resolved capture directory ("" until first use)
	ownDir  bool   // dir was created by us -> removed on Close
	entries []Entry
	bytes   int64
	lastTrg map[string]time.Time
	seq     uint64
	closed  bool

	cpuBusy atomic.Bool

	loopCancel context.CancelFunc
	loopDone   chan struct{}

	// triggerWG tracks async Trigger goroutines so Close can wait for
	// them (and tests can assert no leaks).
	triggerWG sync.WaitGroup
}

// New creates a Capturer. Call Start to begin the periodic loop (optional
// — on-demand Capture and Trigger work without it), and Close to stop
// everything and clean owned state.
func New(opts Options) *Capturer {
	if opts.MaxFiles <= 0 {
		opts.MaxFiles = 64
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 64 << 20
	}
	if opts.CPUSeconds <= 0 {
		opts.CPUSeconds = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = time.Minute
	}
	if len(opts.PeriodicKinds) == 0 {
		opts.PeriodicKinds = []Kind{KindHeap, KindGoroutine}
	}
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	return &Capturer{
		opts:    opts,
		log:     log,
		started: time.Now(),
		dir:     opts.Dir,
		lastTrg: map[string]time.Time{},
	}
}

// Start installs mutex/block sampling rates if configured and launches
// the periodic capture loop when Interval > 0.
func (c *Capturer) Start() {
	if c.opts.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(c.opts.MutexFraction)
	}
	if c.opts.BlockRate > 0 {
		runtime.SetBlockProfileRate(c.opts.BlockRate)
	}
	if c.opts.Interval <= 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.loopCancel = cancel
	c.loopDone = make(chan struct{})
	go c.loop(ctx)
}

func (c *Capturer) loop(ctx context.Context) {
	defer close(c.loopDone)
	tick := time.NewTicker(c.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			for _, k := range c.opts.PeriodicKinds {
				if _, err := c.Capture(ctx, k, "periodic", 0); err != nil && ctx.Err() == nil {
					c.log.Warn("profilez periodic capture failed", "kind", k, "error", err)
				}
			}
		}
	}
}

// Close stops the periodic loop, waits for in-flight triggers, and
// removes the capture directory if the capturer created it.
func (c *Capturer) Close() {
	if c.loopCancel != nil {
		c.loopCancel()
		<-c.loopDone
	}
	c.triggerWG.Wait()
	c.mu.Lock()
	c.closed = true
	dir, own := c.dir, c.ownDir
	c.entries = nil
	c.bytes = 0
	c.mu.Unlock()
	if own && dir != "" {
		os.RemoveAll(dir)
	}
}

// Trigger asynchronously captures heap+goroutine snapshots attributed to
// the named trigger, subject to the per-trigger cooldown. It returns
// immediately; it is safe to call from request hot paths.
func (c *Capturer) Trigger(name string) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	now := time.Now()
	if last, ok := c.lastTrg[name]; ok && now.Sub(last) < c.opts.Cooldown {
		c.mu.Unlock()
		return
	}
	c.lastTrg[name] = now
	c.triggerWG.Add(1)
	c.mu.Unlock()

	go func() {
		defer c.triggerWG.Done()
		for _, k := range []Kind{KindHeap, KindGoroutine} {
			if _, err := c.Capture(context.Background(), k, name, 0); err != nil {
				c.log.Warn("profilez trigger capture failed", "trigger", name, "kind", k, "error", err)
			}
		}
	}()
}

// Capture snapshots one profile into the ring and returns its entry.
// For KindCPU, seconds sets the sampling window (<= 0 uses the
// configured default) and the call blocks for that long; concurrent CPU
// captures return ErrCPUBusy because the runtime allows only one.
func (c *Capturer) Capture(ctx context.Context, kind Kind, trigger string, seconds float64) (Entry, error) {
	if !ValidKind(kind) {
		return Entry{}, fmt.Errorf("profilez: unknown profile kind %q", kind)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Entry{}, errors.New("profilez: capturer closed")
	}
	dir, err := c.ensureDirLocked()
	if err != nil {
		c.mu.Unlock()
		return Entry{}, err
	}
	c.seq++
	seq := c.seq
	c.mu.Unlock()

	start := time.Now()
	id := fmt.Sprintf("%s-%s-%06d.pb.gz", start.UTC().Format("20060102T150405"), kind, seq)
	tmp, err := os.CreateTemp(dir, "."+string(kind)+"-*.tmp")
	if err != nil {
		return Entry{}, fmt.Errorf("profilez: create capture file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename

	var window float64
	switch kind {
	case KindCPU:
		window = seconds
		if window <= 0 {
			window = c.opts.CPUSeconds
		}
		err = c.captureCPU(ctx, tmp, window)
	default:
		p := pprof.Lookup(string(kind))
		if p == nil {
			err = fmt.Errorf("profilez: runtime profile %q not found", kind)
		} else {
			err = p.WriteTo(tmp, 0)
		}
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Entry{}, err
	}
	fi, err := os.Stat(tmp.Name())
	if err != nil {
		return Entry{}, err
	}
	final := filepath.Join(dir, id)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return Entry{}, fmt.Errorf("profilez: admit capture: %w", err)
	}

	e := Entry{ID: id, Kind: kind, Trigger: trigger, Time: time.Now(), Seconds: window, Bytes: fi.Size()}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		os.Remove(final)
		return Entry{}, errors.New("profilez: capturer closed")
	}
	c.entries = append(c.entries, e)
	c.bytes += e.Bytes
	evicted := c.evictLocked()
	c.mu.Unlock()

	for _, ev := range evicted {
		os.Remove(filepath.Join(dir, ev.ID))
		c.log.Debug("profilez evicted capture", "id", ev.ID, "bytes", ev.Bytes)
	}
	c.log.Info("profilez capture", "kind", kind, "trigger", trigger, "id", id,
		"bytes", e.Bytes, "elapsed", time.Since(start).Round(time.Millisecond))
	if c.opts.OnCapture != nil {
		c.opts.OnCapture(e)
	}
	return e, nil
}

func (c *Capturer) captureCPU(ctx context.Context, w io.Writer, seconds float64) error {
	if !c.cpuBusy.CompareAndSwap(false, true) {
		return ErrCPUBusy
	}
	defer c.cpuBusy.Store(false)
	if err := pprof.StartCPUProfile(w); err != nil {
		// The runtime also rejects a second concurrent CPU profile (e.g.
		// one started by /debug/pprof/profile outside our gate).
		return fmt.Errorf("%w: %v", ErrCPUBusy, err)
	}
	defer pprof.StopCPUProfile()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Duration(seconds * float64(time.Second))):
		return nil
	}
}

// evictLocked drops oldest entries until both retention bounds hold.
// Files are removed by the caller after the lock is released.
func (c *Capturer) evictLocked() []Entry {
	var evicted []Entry
	for len(c.entries) > 0 &&
		(len(c.entries) > c.opts.MaxFiles || c.bytes > c.opts.MaxBytes) {
		ev := c.entries[0]
		c.entries = c.entries[1:]
		c.bytes -= ev.Bytes
		evicted = append(evicted, ev)
	}
	return evicted
}

func (c *Capturer) ensureDirLocked() (string, error) {
	if c.dir != "" {
		if !c.ownDir {
			if err := os.MkdirAll(c.dir, 0o755); err != nil {
				return "", fmt.Errorf("profilez: create capture dir: %w", err)
			}
			c.ownDir = false
		}
		return c.dir, nil
	}
	dir, err := os.MkdirTemp("", "profilez-")
	if err != nil {
		return "", fmt.Errorf("profilez: create capture dir: %w", err)
	}
	c.dir, c.ownDir = dir, true
	return dir, nil
}

// List returns retained captures, newest first.
func (c *Capturer) List() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, len(c.entries))
	copy(out, c.entries)
	sort.Slice(out, func(i, j int) bool { return out[i].Time.After(out[j].Time) })
	return out
}

// Stats reports current ring occupancy.
func (c *Capturer) Stats() (files int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}

// Open returns a reader over a retained capture by ID.
func (c *Capturer) Open(id string) (io.ReadCloser, Entry, error) {
	c.mu.Lock()
	var found *Entry
	for i := range c.entries {
		if c.entries[i].ID == id {
			found = &c.entries[i]
			break
		}
	}
	if found == nil || c.dir == "" {
		c.mu.Unlock()
		return nil, Entry{}, fmt.Errorf("profilez: no capture %q", id)
	}
	e := *found
	path := filepath.Join(c.dir, filepath.Base(id))
	c.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return nil, Entry{}, err
	}
	return f, e, nil
}

// Uptime is how long the capturer (and in practice the process) has been
// running; shown as provenance on the index page.
func (c *Capturer) Uptime() time.Duration { return time.Since(c.started) }

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return strconv.FormatFloat(float64(n)/(1<<20), 'f', 1, 64) + " MiB"
	case n >= 1<<10:
		return strconv.FormatFloat(float64(n)/(1<<10), 'f', 1, 64) + " KiB"
	default:
		return strconv.FormatInt(n, 10) + " B"
	}
}
