package profilez

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prefcover/internal/chaostest"
)

func newTestCapturer(t *testing.T, opts Options) *Capturer {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	c := New(opts)
	t.Cleanup(c.Close)
	return c
}

func TestCaptureKindsAndList(t *testing.T) {
	c := newTestCapturer(t, Options{})
	for _, k := range []Kind{KindHeap, KindGoroutine, KindMutex, KindBlock} {
		e, err := c.Capture(context.Background(), k, "manual", 0)
		if err != nil {
			t.Fatalf("capture %s: %v", k, err)
		}
		if e.Bytes <= 0 {
			t.Errorf("capture %s: zero-byte profile", k)
		}
		rc, got, err := c.Open(e.ID)
		if err != nil {
			t.Fatalf("open %s: %v", e.ID, err)
		}
		info, err := ReadProfile(rc)
		rc.Close()
		if err != nil {
			t.Fatalf("parse %s profile: %v", k, err)
		}
		_ = info // mutex/block may be empty; parsing must still succeed
		if got.Kind != k || got.Trigger != "manual" {
			t.Errorf("entry mismatch: %+v", got)
		}
	}
	if got := len(c.List()); got != 4 {
		t.Fatalf("List: got %d entries, want 4", got)
	}
	if _, _, err := c.Open("no-such-capture"); err == nil {
		t.Fatal("Open of unknown ID succeeded")
	}
}

func TestCaptureCPUHasSamplesAndIsExclusive(t *testing.T) {
	c := newTestCapturer(t, Options{})

	// Busy goroutine so the 250ms window has something to sample.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		x := 1.0
		for {
			select {
			case <-stop:
				return
			default:
				x = x*1.0000001 + 1
			}
		}
	}()

	done := make(chan error, 1)
	go func() {
		_, err := c.Capture(context.Background(), KindCPU, "manual", 0.25)
		done <- err
	}()
	// The second CPU capture must be rejected while the first runs.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Capture(context.Background(), KindCPU, "manual", 0.25); err != ErrCPUBusy {
		if !strings.Contains(err.Error(), ErrCPUBusy.Error()) {
			t.Errorf("concurrent CPU capture: got %v, want ErrCPUBusy", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("CPU capture: %v", err)
	}

	entries := c.List()
	if len(entries) != 1 || entries[0].Kind != KindCPU {
		t.Fatalf("entries = %+v, want one cpu capture", entries)
	}
	if entries[0].Seconds != 0.25 {
		t.Errorf("Seconds = %v, want 0.25", entries[0].Seconds)
	}
	rc, _, err := c.Open(entries[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := ReadProfile(rc); err != nil {
		t.Fatalf("parse cpu profile: %v", err)
	}
}

func TestCaptureCPUCancel(t *testing.T) {
	c := newTestCapturer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := c.Capture(ctx, KindCPU, "manual", 30); err != context.Canceled {
		t.Fatalf("canceled capture: got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel did not interrupt the window (took %v)", elapsed)
	}
}

func TestRingEvictionBounds(t *testing.T) {
	dir := t.TempDir()
	c := newTestCapturer(t, Options{Dir: dir, MaxFiles: 3})
	for i := 0; i < 8; i++ {
		if _, err := c.Capture(context.Background(), KindGoroutine, "manual", 0); err != nil {
			t.Fatal(err)
		}
	}
	files, bytes := c.Stats()
	if files != 3 {
		t.Fatalf("files = %d, want 3 after eviction", files)
	}
	if bytes <= 0 {
		t.Fatalf("bytes = %d, want > 0", bytes)
	}
	onDisk, err := filepath.Glob(filepath.Join(dir, "*.pb.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 3 {
		t.Fatalf("on-disk files = %d, want 3 (evicted files must be deleted)", len(onDisk))
	}
	// Every retained entry must still be openable.
	for _, e := range c.List() {
		rc, _, err := c.Open(e.ID)
		if err != nil {
			t.Fatalf("open retained %s: %v", e.ID, err)
		}
		rc.Close()
	}
}

func TestRingEvictionByBytes(t *testing.T) {
	c := newTestCapturer(t, Options{MaxBytes: 1}) // every capture exceeds 1 byte
	if _, err := c.Capture(context.Background(), KindGoroutine, "manual", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Capture(context.Background(), KindGoroutine, "manual", 0); err != nil {
		t.Fatal(err)
	}
	files, _ := c.Stats()
	// The newest capture may itself exceed the bound; eviction keeps
	// dropping oldest-first until the bound holds or the ring is empty.
	if files > 1 {
		t.Fatalf("files = %d, want <= 1 under a 1-byte bound", files)
	}
}

// TestConcurrentTriggersHonorRetention is the acceptance-criteria race
// test: many concurrent triggers and captures must leave the ring within
// its bounds, with no goroutine leaks.
func TestConcurrentTriggersHonorRetention(t *testing.T) {
	baseline := chaostest.GoroutineBaseline()
	dir := t.TempDir()
	c := New(Options{Dir: dir, MaxFiles: 4, Cooldown: time.Nanosecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				switch j % 3 {
				case 0:
					c.Trigger("slow_request")
				case 1:
					if _, err := c.Capture(context.Background(), KindHeap, "manual", 0); err != nil {
						t.Error(err)
					}
				default:
					c.List()
					c.Stats()
				}
			}
		}(i)
	}
	wg.Wait()
	c.Close() // waits for async trigger goroutines

	files, _ := c.Stats()
	if files != 0 {
		t.Fatalf("Stats after Close: %d files, want 0", files)
	}
	onDisk, err := filepath.Glob(filepath.Join(dir, "*.pb.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) > 4 {
		t.Fatalf("on-disk files = %d, want <= MaxFiles 4", len(onDisk))
	}
	chaostest.CheckGoroutines(t, baseline)
}

func TestTriggerCooldown(t *testing.T) {
	c := newTestCapturer(t, Options{Cooldown: time.Hour})
	c.Trigger("slow_request")
	c.Trigger("slow_request") // within cooldown: dropped
	c.Trigger("other")        // distinct trigger: captured
	c.triggerWG.Wait()
	byTrigger := map[string]int{}
	for _, e := range c.List() {
		byTrigger[e.Trigger]++
	}
	// Each trigger captures heap + goroutine.
	if byTrigger["slow_request"] != 2 || byTrigger["other"] != 2 {
		t.Fatalf("captures by trigger = %v, want slow_request:2 other:2", byTrigger)
	}
}

func TestPeriodicLoop(t *testing.T) {
	baseline := chaostest.GoroutineBaseline()
	c := New(Options{Dir: t.TempDir(), Interval: 20 * time.Millisecond})
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries := c.List()
		if len(entries) >= 2 {
			for _, e := range entries {
				if e.Trigger != "periodic" {
					t.Fatalf("unexpected trigger %q", e.Trigger)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic loop produced no captures in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	chaostest.CheckGoroutines(t, baseline)
}

func TestOwnedTempDirRemovedOnClose(t *testing.T) {
	c := New(Options{})
	if _, err := c.Capture(context.Background(), KindGoroutine, "manual", 0); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		t.Fatal("no owned dir created")
	}
	c.Close()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("owned dir %s not removed on Close (err=%v)", dir, err)
	}
}

func TestHandlerIndexCaptureDownload(t *testing.T) {
	c := newTestCapturer(t, Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// On-demand capture via POST.
	resp, err := http.Post(srv.URL+"?capture=goroutine", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var e Entry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || e.Kind != KindGoroutine || e.Trigger != "manual" {
		t.Fatalf("capture: status=%d entry=%+v", resp.StatusCode, e)
	}

	// JSON index lists it with provenance.
	resp, err = http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var idx indexPayload
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if idx.Files != 1 || len(idx.Captures) != 1 || idx.Captures[0].ID != e.ID {
		t.Fatalf("index = %+v, want the one capture", idx)
	}
	if idx.GitSHA == "" || idx.GoVersion == "" || idx.UptimeSeconds < 0 {
		t.Fatalf("index provenance missing: %+v", idx)
	}

	// HTML index mentions the capture and label keys.
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	html, _ := readAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{e.ID, "strategy", "tagfocus"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML index missing %q", want)
		}
	}

	// Download round-trips a parseable profile.
	resp, err = http.Get(srv.URL + "?download=" + e.ID)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ReadProfile(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("parse downloaded profile: %v", err)
	}
	if info.Samples == 0 {
		t.Error("downloaded goroutine profile has no samples")
	}

	// Error paths.
	for _, tc := range []struct {
		method, query string
		status        int
	}{
		{http.MethodPost, "?capture=bogus", http.StatusBadRequest},
		{http.MethodPost, "", http.StatusBadRequest},
		{http.MethodPost, "?capture=cpu&seconds=9999", http.StatusBadRequest},
		{http.MethodGet, "?download=missing", http.StatusNotFound},
		{http.MethodDelete, "", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.query, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %q: status %d, want %d", tc.method, tc.query, resp.StatusCode, tc.status)
		}
	}
}

func TestKBucket(t *testing.T) {
	cases := map[int]string{
		-1: "threshold", 0: "threshold",
		1: "1-16", 16: "1-16",
		17: "17-32", 32: "17-32",
		33: "33-64", 64: "33-64", 65: "65-128",
		1000: "513-1024",
	}
	for k, want := range cases {
		if got := KBucket(k); got != want {
			t.Errorf("KBucket(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestUsageSinceMonotone(t *testing.T) {
	start := TakeSample()
	// Allocate measurably.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	u := Since(start)
	if u.WallNanos <= 0 {
		t.Errorf("WallNanos = %d, want > 0", u.WallNanos)
	}
	if u.AllocBytes < 64*4096 {
		t.Errorf("AllocBytes = %d, want >= %d", u.AllocBytes, 64*4096)
	}
	if u.AllocObjects < 64 {
		t.Errorf("AllocObjects = %d, want >= 64", u.AllocObjects)
	}
	if u.CPUNanos < 0 || u.GCPauseNanos < 0 {
		t.Errorf("negative usage: %+v", u)
	}
}

func TestAccountantTopAndOverflow(t *testing.T) {
	a := NewAccountant()
	a.Record("g1", "lazy", Usage{WallNanos: 10, CPUNanos: 100, AllocBytes: 1})
	a.Record("g1", "lazy", Usage{WallNanos: 10, CPUNanos: 100, AllocBytes: 1})
	a.Record("g2", "scan", Usage{WallNanos: 99, CPUNanos: 50})
	a.Record("", "lazy", Usage{CPUNanos: 1})

	top := a.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2) = %d rows", len(top))
	}
	if top[0].Graph != "g1" || top[0].CPUNanos != 200 || top[0].Solves != 2 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Graph != "g2" {
		t.Fatalf("top[1] = %+v", top[1])
	}
	found := false
	for _, row := range a.Top(0) {
		if row.Graph == "(inline)" {
			found = true
		}
	}
	if !found {
		t.Error("empty graph not folded into (inline)")
	}

	// Cardinality bound: distinct keys beyond the cap fold into "other".
	b := NewAccountant()
	for i := 0; i < maxAccountKeys+50; i++ {
		b.Record("graph-"+strings.Repeat("x", i%7)+string(rune('a'+i%26))+itoa(i), "lazy", Usage{CPUNanos: 1})
	}
	rows := b.Top(0)
	if len(rows) > maxAccountKeys {
		t.Fatalf("accountant grew to %d keys, cap is %d", len(rows), maxAccountKeys)
	}
	var other int64
	for _, r := range rows {
		if r.ConsumerKey == overflowKey {
			other = r.Solves
		}
	}
	if other < 50 {
		t.Fatalf("overflow row has %d solves, want >= 50", other)
	}
}

func itoa(i int) string {
	return string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func readAll(r io.Reader) (string, error) {
	b, err := io.ReadAll(r)
	return string(b), err
}
