//go:build !unix

package profilez

// processCPUNanos has no portable fallback off unix; CPUNanos reads as 0
// there and the rest of the Usage fields still work.
func processCPUNanos() int64 { return 0 }
