package profilez

import (
	"sort"
	"sync"
)

// maxAccountKeys bounds the accountant's memory: beyond this many
// distinct (graph, strategy) pairs, new keys fold into the "other" row
// so a graph-name churn workload cannot grow the map without bound.
const maxAccountKeys = 256

// overflowKey collects usage for keys beyond the cardinality bound.
var overflowKey = ConsumerKey{Graph: "other", Strategy: "other"}

// ConsumerKey identifies one resource-consumer aggregate.
type ConsumerKey struct {
	Graph    string `json:"graph"`
	Strategy string `json:"strategy"`
}

// ConsumerTotals is the cumulative resource usage attributed to one key.
type ConsumerTotals struct {
	Solves       int64 `json:"solves"`
	WallNanos    int64 `json:"wallNs"`
	CPUNanos     int64 `json:"cpuNs"`
	AllocBytes   int64 `json:"allocBytes"`
	AllocObjects int64 `json:"allocObjects"`
	GCPauseNanos int64 `json:"gcPauseNs"`
}

// Consumer is one row of the top-consumers report.
type Consumer struct {
	ConsumerKey
	ConsumerTotals
}

// Accountant aggregates per-solve Usage by (graph, strategy) for the
// /debug/statusz "top resource consumers" panel. Safe for concurrent use.
type Accountant struct {
	mu     sync.Mutex
	totals map[ConsumerKey]*ConsumerTotals
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{totals: map[ConsumerKey]*ConsumerTotals{}}
}

// Record attributes one solve's usage to (graph, strategy). An empty
// graph (inline request bodies) is recorded as "(inline)".
func (a *Accountant) Record(graph, strategy string, u Usage) {
	if graph == "" {
		graph = "(inline)"
	}
	key := ConsumerKey{Graph: graph, Strategy: strategy}
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.totals[key]
	if t == nil {
		// One slot is reserved for the overflow row so the map never
		// exceeds maxAccountKeys even when "other" is itself new.
		if len(a.totals) >= maxAccountKeys-1 && key != overflowKey {
			key = overflowKey
			t = a.totals[key]
		}
		if t == nil {
			t = &ConsumerTotals{}
			a.totals[key] = t
		}
	}
	t.Solves++
	t.WallNanos += u.WallNanos
	t.CPUNanos += u.CPUNanos
	t.AllocBytes += u.AllocBytes
	t.AllocObjects += u.AllocObjects
	t.GCPauseNanos += u.GCPauseNanos
}

// Top returns up to n consumers ordered by CPU time, breaking ties by
// wall time then alloc bytes (CPU is the scarce resource the ROADMAP's
// perf tier optimizes; wall covers I/O-bound outliers).
func (a *Accountant) Top(n int) []Consumer {
	a.mu.Lock()
	out := make([]Consumer, 0, len(a.totals))
	for k, t := range a.totals {
		out = append(out, Consumer{ConsumerKey: k, ConsumerTotals: *t})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPUNanos != out[j].CPUNanos {
			return out[i].CPUNanos > out[j].CPUNanos
		}
		if out[i].WallNanos != out[j].WallNanos {
			return out[i].WallNanos > out[j].WallNanos
		}
		if out[i].AllocBytes != out[j].AllocBytes {
			return out[i].AllocBytes > out[j].AllocBytes
		}
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Strategy < out[j].Strategy
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
