//go:build unix

package profilez

import "syscall"

// processCPUNanos returns cumulative process CPU time (user + system)
// from getrusage. Per-process rather than per-goroutine, so per-solve
// deltas are exact only when solves are serialized; see Usage.
func processCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvNanos(ru.Utime) + tvNanos(ru.Stime)
}

func tvNanos(tv syscall.Timeval) int64 {
	return int64(tv.Sec)*1e9 + int64(tv.Usec)*1e3
}
