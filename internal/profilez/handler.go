package profilez

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"prefcover/internal/version"
)

// maxCaptureSeconds caps on-demand CPU windows so a typo'd request can't
// pin the (process-exclusive) CPU profiler for an hour.
const maxCaptureSeconds = 120

// indexPayload is the JSON shape of GET /debug/profilez?format=json.
type indexPayload struct {
	GitSHA        string  `json:"gitSHA"`
	GoVersion     string  `json:"goVersion"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Files         int     `json:"files"`
	Bytes         int64   `json:"bytes"`
	MaxFiles      int     `json:"maxFiles"`
	MaxBytes      int64   `json:"maxBytes"`
	Captures      []Entry `json:"captures"`
}

// Handler serves the /debug/profilez index:
//
//	GET  /debug/profilez                  HTML index (or JSON via
//	                                      ?format=json / Accept: application/json)
//	GET  /debug/profilez?download=<id>    one retained capture, gzipped pprof
//	POST /debug/profilez?capture=<kind>[&seconds=N]
//	                                      on-demand capture; blocks for the
//	                                      window on cpu, returns the Entry JSON
func (c *Capturer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			if id := r.URL.Query().Get("download"); id != "" {
				c.serveDownload(w, r, id)
				return
			}
			c.serveIndex(w, r)
		case http.MethodPost:
			c.serveCapture(w, r)
		default:
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func (c *Capturer) serveDownload(w http.ResponseWriter, r *http.Request, id string) {
	rc, e, err := c.Open(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+e.ID+`"`)
	w.Header().Set("Content-Length", strconv.FormatInt(e.Bytes, 10))
	io.Copy(w, rc)
}

func (c *Capturer) serveCapture(w http.ResponseWriter, r *http.Request) {
	kind := Kind(r.URL.Query().Get("capture"))
	if kind == "" {
		http.Error(w, "missing ?capture=<kind>", http.StatusBadRequest)
		return
	}
	if !ValidKind(kind) {
		http.Error(w, fmt.Sprintf("unknown profile kind %q", kind), http.StatusBadRequest)
		return
	}
	var seconds float64
	if s := r.URL.Query().Get("seconds"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v > maxCaptureSeconds {
			http.Error(w, fmt.Sprintf("seconds must be in (0, %d]", maxCaptureSeconds), http.StatusBadRequest)
			return
		}
		seconds = v
	}
	e, err := c.Capture(r.Context(), kind, "manual", seconds)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrCPUBusy) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(e)
}

func (c *Capturer) indexPayload() indexPayload {
	files, bytes := c.Stats()
	return indexPayload{
		GitSHA:        version.Get().Revision,
		GoVersion:     runtime.Version(),
		UptimeSeconds: c.Uptime().Seconds(),
		Files:         files,
		Bytes:         bytes,
		MaxFiles:      c.opts.MaxFiles,
		MaxBytes:      c.opts.MaxBytes,
		Captures:      c.List(),
	}
}

func (c *Capturer) serveIndex(w http.ResponseWriter, r *http.Request) {
	p := c.indexPayload()
	if r.URL.Query().Get("format") == "json" || acceptsJSON(r) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	indexTmpl.Execute(w, indexView{
		indexPayload: p,
		Uptime:       c.Uptime().Round(time.Second).String(),
	})
}

func acceptsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	// Cheap negotiation: prefer JSON only when asked for explicitly and
	// HTML is not; browsers send both with text/html ranked.
	return accept == "application/json"
}

type indexView struct {
	indexPayload
	Uptime string
}

var indexFuncs = template.FuncMap{
	"bytes": fmtBytes,
	"ts":    func(t time.Time) string { return t.UTC().Format("2006-01-02 15:04:05Z") },
	"secs": func(v float64) string {
		if v <= 0 {
			return "–"
		}
		return strconv.FormatFloat(v, 'f', -1, 64) + "s"
	},
}

var indexTmpl = template.Must(template.New("profilez").Funcs(indexFuncs).Parse(`<!doctype html>
<html><head><title>prefcoverd profilez</title><style>
body{font-family:system-ui,sans-serif;margin:1.5rem;color:#111}
table{border-collapse:collapse;margin:0.75rem 0}
th,td{border:1px solid #ccc;padding:0.3rem 0.6rem;text-align:left;font-size:0.9rem}
th{background:#f3f3f3}
code{background:#f5f5f5;padding:0 0.2rem}
.meta{color:#555;font-size:0.9rem}
form{display:inline}
</style></head><body>
<h1>/debug/profilez</h1>
<p class="meta">git <code>{{.GitSHA}}</code> · {{.GoVersion}} · up {{.Uptime}} ·
ring {{.Files}}/{{.MaxFiles}} files, {{bytes .Bytes}} of {{bytes .MaxBytes}}</p>
<p>On-demand capture:
{{range $k := .Kinds}}<form method="POST" action="?capture={{$k}}"><button>{{$k}}</button></form> {{end}}
(cpu blocks for its sampling window; add <code>&amp;seconds=N</code>)</p>
<table>
<tr><th>time (UTC)</th><th>kind</th><th>trigger</th><th>window</th><th>size</th><th></th></tr>
{{range .Captures}}<tr>
<td>{{ts .Time}}</td><td>{{.Kind}}</td><td>{{.Trigger}}</td>
<td>{{secs .Seconds}}</td><td>{{bytes .Bytes}}</td>
<td><a href="?download={{.ID}}">download</a></td>
</tr>{{else}}<tr><td colspan="6"><em>no captures yet</em></td></tr>{{end}}
</table>
<p class="meta">Profiles are gzipped pprof protobufs: <code>go tool pprof &lt;file&gt;</code>.
CPU samples carry <code>graph</code>/<code>strategy</code>/<code>endpoint</code>/<code>k_bucket</code>/<code>job</code>
labels — filter with <code>-tagfocus graph=...</code>. JSON index at <code>?format=json</code>.</p>
</body></html>
`))

// Kinds is exposed to the template for the capture buttons.
func (indexView) Kinds() []Kind { return Kinds() }
