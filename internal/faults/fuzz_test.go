package faults

import "testing"

// FuzzFaultSpec feeds arbitrary text through the spec grammar: parsing
// must never panic, an accepted spec must respect the documented
// invariants (probabilities in range, non-negative durations), and its
// canonical String form must reparse to the identical spec — the
// round-trip property that keeps /debug/faults' echo authoritative.
func FuzzFaultSpec(f *testing.F) {
	f.Add("")
	f.Add("seed=42")
	f.Add("seed=7,error=0.1,throttle=0.05,unavail=0.05,reset=0.02,partial=0.03")
	f.Add("latency=5ms@0.3,retryafter=1s")
	f.Add("error=1.5")
	f.Add("latency=5ms@0")
	f.Add("error=0.6,throttle=0.6")
	f.Add("seed=-9223372036854775808")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseSpec(text)
		if err != nil {
			return
		}
		for name, p := range map[string]float64{
			"error": spec.Error, "throttle": spec.Throttle, "unavail": spec.Unavail,
			"reset": spec.Reset, "partial": spec.Partial, "latencyP": spec.LatencyP,
		} {
			if p < 0 || p > 1 {
				t.Fatalf("%q: accepted %s=%g outside [0,1]", text, name, p)
			}
		}
		if spec.faultSum() > 1 {
			t.Fatalf("%q: accepted fault sum %g > 1", text, spec.faultSum())
		}
		if spec.Latency < 0 || spec.RetryAfter < 0 {
			t.Fatalf("%q: accepted negative duration %+v", text, spec)
		}
		canon := spec.String()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("%q: canonical form %q does not reparse: %v", text, canon, err)
		}
		if back != spec {
			t.Fatalf("%q: round trip %q -> %+v != %+v", text, canon, back, spec)
		}
		// Drawing from an accepted spec must not panic either.
		in := New(spec)
		for i := 0; i < 8; i++ {
			in.NextOp()
		}
	})
}
