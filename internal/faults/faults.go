// Package faults is a deterministic, seedable fault injector for the
// serving stack: it decides, per operation, whether to inject an error,
// a throttle (429 + Retry-After), an unavailability (503 + Retry-After),
// a connection reset, a partial (truncated) write, or extra latency —
// each with an independent configured probability, all drawn from one
// seeded stream so a failing chaos run reproduces exactly from its seed.
//
// The injector is wired in two places: internal/server mounts it as
// opt-in middleware over the /v1/* endpoints (prefcoverd -fault-spec,
// swappable at runtime through /debug/faults when fault control is
// enabled), and internal/store threads it through the disk persistence
// path so snapshot writes can fail or truncate on command. Both sides
// count every injected fault by kind; the chaos harness closes the loop
// by asserting the client-side retry counters account for exactly the
// faults injected.
//
// Spec grammar (comma-separated key=value tokens, all optional):
//
//	seed=42          stream seed (default 1)
//	error=0.1        P(injected internal error)         -> HTTP 500 / disk write error
//	throttle=0.05    P(injected throttle)               -> HTTP 429 + Retry-After
//	unavail=0.05     P(injected unavailability)         -> HTTP 503 + Retry-After
//	reset=0.02       P(connection reset mid-response)
//	partial=0.02     P(truncated response/write)
//	latency=5ms      injected delay (all ops unless @p given)
//	latency=5ms@0.3  injected delay on 30% of ops
//	retryafter=1s    Retry-After advertised by throttle/unavail (default 1s)
//
// The five fault probabilities must sum to at most 1: at most one fault
// is injected per operation, which is what makes "injected == observed"
// accounting exact.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so layers
// above can tell deliberate chaos from organic failure (the server maps
// injected store errors to 500, not 400).
var ErrInjected = errors.New("injected fault")

// Kind enumerates the injectable faults.
type Kind string

const (
	KindNone     Kind = "none"
	KindError    Kind = "error"
	KindThrottle Kind = "throttle"
	KindUnavail  Kind = "unavail"
	KindReset    Kind = "reset"
	KindPartial  Kind = "partial"
	// KindLatency is counted separately: latency composes with a fault
	// decision rather than replacing it.
	KindLatency Kind = "latency"
)

// Spec is a parsed fault specification. The zero Spec injects nothing.
type Spec struct {
	Seed       int64
	Error      float64
	Throttle   float64
	Unavail    float64
	Reset      float64
	Partial    float64
	Latency    time.Duration
	LatencyP   float64 // probability of the latency applying; 0 with Latency>0 means always
	RetryAfter time.Duration
}

// DefaultRetryAfter is advertised on injected 429/503 when the spec does
// not set one.
const DefaultRetryAfter = time.Second

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.Error > 0 || s.Throttle > 0 || s.Unavail > 0 || s.Reset > 0 ||
		s.Partial > 0 || s.Latency > 0
}

// faultSum is the total fault probability (excluding latency).
func (s Spec) faultSum() float64 {
	return s.Error + s.Throttle + s.Unavail + s.Reset + s.Partial
}

// ParseSpec parses the grammar documented on the package. An empty or
// all-whitespace string is the zero (inject-nothing) spec.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, tok := range strings.Split(text, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: token %q is not key=value", tok)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: bad seed %q", val)
			}
			s.Seed = n
		case "error", "throttle", "unavail", "reset", "partial":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: bad %s probability %q", key, val)
			}
			switch key {
			case "error":
				s.Error = p
			case "throttle":
				s.Throttle = p
			case "unavail":
				s.Unavail = p
			case "reset":
				s.Reset = p
			case "partial":
				s.Partial = p
			}
		case "latency":
			durText, probText, hasProb := strings.Cut(val, "@")
			d, err := time.ParseDuration(durText)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("faults: bad latency %q", val)
			}
			s.Latency = d
			s.LatencyP = 0
			if hasProb {
				p, err := parseProb(probText)
				if err != nil {
					return Spec{}, fmt.Errorf("faults: bad latency probability %q", probText)
				}
				s.LatencyP = p
				// An explicit @0 means "never": drop the latency outright so
				// the spec normalizes (String round-trips exactly).
				if p == 0 {
					s.Latency = 0
				}
			}
			// A zero duration injects nothing regardless of probability.
			if s.Latency == 0 {
				s.LatencyP = 0
			}
		case "retryafter":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("faults: bad retryafter %q", val)
			}
			s.RetryAfter = d
		default:
			return Spec{}, fmt.Errorf("faults: unknown key %q (want seed, error, throttle, unavail, reset, partial, latency, retryafter)", key)
		}
	}
	if sum := s.faultSum(); sum > 1 {
		return Spec{}, fmt.Errorf("faults: fault probabilities sum to %g > 1", sum)
	}
	return s, nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %q outside [0,1]", val)
	}
	return p, nil
}

// String renders the spec in the grammar ParseSpec accepts, with tokens in
// a fixed order and zero-valued knobs elided — ParseSpec(s.String())
// reproduces s exactly (the fuzz target's round-trip invariant).
func (s Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	prob := func(key string, p float64) {
		if p > 0 {
			parts = append(parts, key+"="+strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	prob("error", s.Error)
	prob("throttle", s.Throttle)
	prob("unavail", s.Unavail)
	prob("reset", s.Reset)
	prob("partial", s.Partial)
	if s.Latency > 0 {
		tok := "latency=" + s.Latency.String()
		if s.LatencyP > 0 {
			tok += "@" + strconv.FormatFloat(s.LatencyP, 'g', -1, 64)
		}
		parts = append(parts, tok)
	}
	if s.RetryAfter > 0 {
		parts = append(parts, "retryafter="+s.RetryAfter.String())
	}
	return strings.Join(parts, ",")
}

// Injector draws fault decisions from one seeded stream. Safe for
// concurrent use; with concurrent callers the per-call interleaving is
// scheduling-dependent but the decision *multiset* for N calls is fixed
// by the seed, and single-threaded drivers replay exactly.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	spec   Spec
	counts map[Kind]int64
}

// New returns an Injector for spec. Seed 0 is normalized to 1 so the
// zero-valued spec still has a defined stream.
func New(spec Spec) *Injector {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		spec:   spec,
		counts: make(map[Kind]int64),
	}
}

// Spec returns the injector's configuration.
func (in *Injector) Spec() Spec {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.spec
}

// RetryAfter is the delay injected throttle/unavail responses advertise.
func (in *Injector) RetryAfter() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.spec.RetryAfter > 0 {
		return in.spec.RetryAfter
	}
	return DefaultRetryAfter
}

// NextOp draws the decision for one operation: the fault to inject (or
// KindNone) and any latency to add first. Every non-none fault and every
// latency hit is counted.
func (in *Injector) NextOp() (Kind, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	var delay time.Duration
	if in.spec.Latency > 0 {
		if in.spec.LatencyP <= 0 || in.rng.Float64() < in.spec.LatencyP {
			delay = in.spec.Latency
			in.counts[KindLatency]++
		}
	}
	kind := KindNone
	if sum := in.spec.faultSum(); sum > 0 {
		// One draw partitioned across the cumulative fault probabilities,
		// so at most one fault fires per op.
		x := in.rng.Float64()
		switch {
		case x < in.spec.Error:
			kind = KindError
		case x < in.spec.Error+in.spec.Throttle:
			kind = KindThrottle
		case x < in.spec.Error+in.spec.Throttle+in.spec.Unavail:
			kind = KindUnavail
		case x < in.spec.Error+in.spec.Throttle+in.spec.Unavail+in.spec.Reset:
			kind = KindReset
		case x < sum:
			kind = KindPartial
		}
	}
	if kind != KindNone {
		in.counts[kind]++
	}
	return kind, delay
}

// Counts snapshots the injected-fault tally by kind.
func (in *Injector) Counts() map[Kind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// TotalFaults is the number of injected faults (latency excluded).
func (in *Injector) TotalFaults() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var sum int64
	for k, v := range in.counts {
		if k != KindLatency {
			sum += v
		}
	}
	return sum
}

// CountsString renders the tally deterministically for logs and
// /debug/faults.
func (in *Injector) CountsString() string {
	counts := in.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[Kind(k)])
	}
	return strings.Join(parts, ",")
}

// PartialLimit draws the byte allowance for one partial-write fault from
// the seeded stream: the point at which a truncated response or torn disk
// write cuts off.
func (in *Injector) PartialLimit() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return 1 + in.rng.Intn(4096)
}

// DiskOp draws the decision for one disk write: a nil error and possibly
// wrapped writer on success paths, or an injected error. Partial faults
// return a writer that fails after a seed-determined number of bytes —
// the moral equivalent of a torn write — and the HTTP-only kinds
// (throttle, unavail, reset) degrade to plain errors, since a disk has no
// Retry-After to send. Latency sleeps inline.
func (in *Injector) DiskOp(w io.Writer) (io.Writer, error) {
	kind, delay := in.NextOp()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch kind {
	case KindNone:
		return w, nil
	case KindPartial:
		return &truncWriter{w: w, remaining: in.PartialLimit()}, nil
	default:
		return nil, fmt.Errorf("disk %s: %w", kind, ErrInjected)
	}
}

// truncWriter forwards writes until its byte allowance runs out, then
// fails — simulating a write cut short by a full disk or a crash.
type truncWriter struct {
	w         io.Writer
	remaining int
}

func (t *truncWriter) Write(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, fmt.Errorf("partial write: %w", ErrInjected)
	}
	if len(p) <= t.remaining {
		n, err := t.w.Write(p)
		t.remaining -= n
		return n, err
	}
	n, err := t.w.Write(p[:t.remaining])
	t.remaining -= n
	if err != nil {
		return n, err
	}
	return n, fmt.Errorf("partial write: %w", ErrInjected)
}
