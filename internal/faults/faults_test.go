package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"   ", Spec{}},
		{"seed=42", Spec{Seed: 42}},
		{"error=0.25", Spec{Error: 0.25}},
		{"seed=7,error=0.1,throttle=0.05,unavail=0.05,reset=0.02,partial=0.03",
			Spec{Seed: 7, Error: 0.1, Throttle: 0.05, Unavail: 0.05, Reset: 0.02, Partial: 0.03}},
		{"latency=5ms", Spec{Latency: 5 * time.Millisecond}},
		{"latency=5ms@0.3", Spec{Latency: 5 * time.Millisecond, LatencyP: 0.3}},
		{"latency=5ms@0", Spec{}}, // explicit never normalizes away
		{"latency=0s@0.5", Spec{}},
		{"retryafter=250ms", Spec{RetryAfter: 250 * time.Millisecond}},
		{" error=0.1 , seed=3 ", Spec{Seed: 3, Error: 0.1}},
		{"error=0.1,,seed=3", Spec{Seed: 3, Error: 0.1}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"nonsense",
		"error",
		"error=1.5",
		"error=-0.1",
		"error=x",
		"seed=notanumber",
		"latency=xyz",
		"latency=-5ms",
		"latency=5ms@2",
		"retryafter=-1s",
		"retryafter=zzz",
		"unknownkey=1",
		"error=0.6,throttle=0.6", // sums past 1
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) should fail", in)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"seed=42",
		"seed=7,error=0.1,throttle=0.05,unavail=0.05,reset=0.02,partial=0.03,latency=5ms@0.3,retryafter=1s",
		"error=0.5,latency=1ms",
		"retryafter=750ms",
	}
	for _, in := range specs {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Errorf("reparse of %q (from %q): %v", s.String(), in, err)
			continue
		}
		if back != s {
			t.Errorf("round trip %q -> %q -> %+v != %+v", in, s.String(), back, s)
		}
	}
}

func TestInjectorDeterministicFromSeed(t *testing.T) {
	spec := Spec{Seed: 99, Error: 0.2, Throttle: 0.1, Reset: 0.1, Latency: time.Nanosecond, LatencyP: 0.5}
	draw := func() []Kind {
		in := New(spec)
		out := make([]Kind, 200)
		for i := range out {
			out[i], _ = in.NextOp()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %s vs %s (same seed must replay)", i, a[i], b[i])
		}
	}
}

func TestInjectorCountsMatchDraws(t *testing.T) {
	in := New(Spec{Seed: 5, Error: 0.3, Partial: 0.2})
	var drawn int64
	for i := 0; i < 500; i++ {
		kind, _ := in.NextOp()
		if kind != KindNone {
			drawn++
		}
	}
	if got := in.TotalFaults(); got != drawn {
		t.Fatalf("TotalFaults = %d, observed %d", got, drawn)
	}
	counts := in.Counts()
	if counts[KindError] == 0 || counts[KindPartial] == 0 {
		t.Fatalf("expected both kinds to fire over 500 draws: %v", counts)
	}
	if counts[KindError]+counts[KindPartial] != drawn {
		t.Fatalf("counts %v do not sum to %d", counts, drawn)
	}
	// Loose rate sanity: 30% ± 15 points over 500 draws.
	rate := float64(counts[KindError]) / 500
	if rate < 0.15 || rate > 0.45 {
		t.Errorf("error rate %.2f wildly off the configured 0.3", rate)
	}
	if s := in.CountsString(); !strings.Contains(s, "error=") || !strings.Contains(s, "partial=") {
		t.Errorf("CountsString = %q missing kinds", s)
	}
}

func TestInjectorZeroSpecInjectsNothing(t *testing.T) {
	in := New(Spec{})
	for i := 0; i < 100; i++ {
		kind, delay := in.NextOp()
		if kind != KindNone || delay != 0 {
			t.Fatalf("zero spec injected %s/%v", kind, delay)
		}
	}
	if in.TotalFaults() != 0 {
		t.Fatal("zero spec counted faults")
	}
}

func TestRetryAfterDefault(t *testing.T) {
	if got := New(Spec{}).RetryAfter(); got != DefaultRetryAfter {
		t.Errorf("default RetryAfter = %v, want %v", got, DefaultRetryAfter)
	}
	if got := New(Spec{RetryAfter: 3 * time.Second}).RetryAfter(); got != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s", got)
	}
}

func TestDiskOpErrorAndPartial(t *testing.T) {
	// error=1 always fails with the sentinel.
	in := New(Spec{Seed: 1, Error: 1})
	if _, err := in.DiskOp(&bytes.Buffer{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("DiskOp with error=1 = %v, want ErrInjected", err)
	}
	// partial=1 returns a writer that fails partway through a big write.
	in = New(Spec{Seed: 1, Partial: 1})
	var buf bytes.Buffer
	w, err := in.DiskOp(&buf)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1<<20)
	n, werr := w.Write(big)
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("partial write err = %v, want ErrInjected", werr)
	}
	if n <= 0 || n >= len(big) {
		t.Fatalf("partial write wrote %d of %d, want a strict prefix", n, len(big))
	}
	if buf.Len() != n {
		t.Fatalf("underlying writer saw %d bytes, reported %d", buf.Len(), n)
	}
	// Subsequent writes keep failing.
	if _, werr := w.Write([]byte("x")); !errors.Is(werr, ErrInjected) {
		t.Fatalf("write after truncation = %v, want ErrInjected", werr)
	}
	// A clean injector passes the writer through untouched.
	in = New(Spec{})
	w, err = in.DiskOp(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.(*bytes.Buffer); !ok {
		t.Fatal("no-fault DiskOp should return the writer unwrapped")
	}
}

func TestSpecEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Error("zero spec reports enabled")
	}
	for _, s := range []Spec{
		{Error: 0.1}, {Throttle: 0.1}, {Unavail: 0.1},
		{Reset: 0.1}, {Partial: 0.1}, {Latency: time.Millisecond},
	} {
		if !s.Enabled() {
			t.Errorf("%+v should report enabled", s)
		}
	}
}
