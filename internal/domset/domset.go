// Package domset implements the directed Max Dominating Set problem (DS_k,
// paper Definition 2.7) and the Theorem 4.1 reduction DS_k -> IPC_k that
// establishes the (1 - 1/e) inapproximability of the Independent variant.
// A vertex is dominated by S if it is in S or has an incoming edge from a
// node in S.
package domset

import (
	"errors"
	"fmt"
	"sort"

	"prefcover/internal/graph"
)

// Instance is an unweighted directed graph given as adjacency lists:
// Out[v] lists the nodes v points to.
type Instance struct {
	Out [][]int32
}

// N returns the number of vertices.
func (in *Instance) N() int { return len(in.Out) }

// Validate checks edge endpoints.
func (in *Instance) Validate() error {
	n := int32(in.N())
	if n == 0 {
		return errors.New("domset: empty instance")
	}
	for v, outs := range in.Out {
		for _, u := range outs {
			if u < 0 || u >= n {
				return fmt.Errorf("domset: edge (%d,%d) out of range", v, u)
			}
		}
	}
	return nil
}

// Dominated returns how many vertices the set dominates.
func (in *Instance) Dominated(set []int32) int {
	dom := make([]bool, in.N())
	for _, v := range set {
		dom[v] = true
		for _, u := range in.Out[v] {
			dom[u] = true
		}
	}
	count := 0
	for _, d := range dom {
		if d {
			count++
		}
	}
	return count
}

// Greedy selects k vertices maximizing newly dominated vertices at each
// step (ties toward the smaller id) and returns the set (sorted) and the
// total dominated count. The (1-1/e) guarantee follows from submodularity
// of the domination count.
func Greedy(in *Instance, k int) ([]int32, int, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	n := in.N()
	if k <= 0 || k > n {
		return nil, 0, fmt.Errorf("domset: k=%d outside [1,%d]", k, n)
	}
	// Dedupe adjacency so duplicate edges cannot inflate gains.
	out := make([][]int32, n)
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	for v, outs := range in.Out {
		for _, u := range outs {
			if seen[u] != int32(v) {
				seen[u] = int32(v)
				out[v] = append(out[v], u)
			}
		}
	}
	dom := make([]bool, n)
	selected := make([]bool, n)
	gain := func(v int32) int {
		g := 0
		if !dom[v] {
			g++
		}
		for _, u := range out[v] {
			if !dom[u] && u != v {
				g++
			}
		}
		return g
	}
	var set []int32
	total := 0
	for step := 0; step < k; step++ {
		best, bestGain := int32(-1), -1
		for v := int32(0); v < int32(n); v++ {
			if selected[v] {
				continue
			}
			if g := gain(v); g > bestGain {
				best, bestGain = v, g
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		dom[best] = true
		for _, u := range out[best] {
			dom[u] = true
		}
		total += bestGain
		set = append(set, best)
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set, total, nil
}

// ToIPC reduces a DS_k instance to an IPC_k preference graph (Theorem 4.1):
// same nodes, every edge reversed, all edge weights 1, all node weights
// 1/n. For every set S: Dominated(S) == n * C(S) in the produced graph.
// Duplicate edges in the instance are collapsed (they do not affect
// domination).
func ToIPC(in *Instance) (*graph.Graph, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.N()
	b := graph.NewBuilder(n, 0)
	for v := 0; v < n; v++ {
		b.AddNode(1 / float64(n))
	}
	for v, outs := range in.Out {
		for _, u := range outs {
			if u == int32(v) {
				// A self edge dominates only its own node, which membership
				// in S already achieves; IPC has no self edges.
				continue
			}
			b.AddEdge(u, int32(v), 1) // reversed orientation
		}
	}
	return b.Build(graph.BuildOptions{Duplicates: graph.DupKeepMax})
}
