package domset_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prefcover/internal/cover"
	. "prefcover/internal/domset"
	"prefcover/internal/graph"
	"prefcover/internal/greedy"
)

const tol = 1e-9

func TestValidate(t *testing.T) {
	ok := &Instance{Out: [][]int32{{1}, {0}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	if err := (&Instance{}).Validate(); err == nil {
		t.Error("empty instance should fail")
	}
	bad := &Instance{Out: [][]int32{{5}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge should fail")
	}
}

func TestDominated(t *testing.T) {
	// 0 -> 1, 0 -> 2, 3 isolated.
	in := &Instance{Out: [][]int32{{1, 2}, nil, nil, nil}}
	if d := in.Dominated([]int32{0}); d != 3 {
		t.Errorf("Dominated({0}) = %d, want 3", d)
	}
	if d := in.Dominated([]int32{3}); d != 1 {
		t.Errorf("Dominated({3}) = %d, want 1", d)
	}
	if d := in.Dominated(nil); d != 0 {
		t.Errorf("Dominated({}) = %d", d)
	}
}

func TestGreedyStar(t *testing.T) {
	in := &Instance{Out: [][]int32{{1, 2, 3}, nil, nil, nil, nil}}
	set, total, err := Greedy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 0 || total != 4 {
		t.Fatalf("set=%v total=%d", set, total)
	}
}

func TestGreedyValidation(t *testing.T) {
	in := &Instance{Out: [][]int32{{1}, nil}}
	if _, _, err := Greedy(in, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := Greedy(in, 3); err == nil {
		t.Error("k>n should fail")
	}
}

// TestToIPCEquivalence is the Theorem 4.1 identity: for every S,
// Dominated_{DS}(S) == n * C_{IPC}(S) on the reduced graph.
func TestToIPCEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		in := randomInstance(rng, n)
		g, err := ToIPC(in)
		if err != nil {
			return false
		}
		if err := g.Validate(graph.ValidateOptions{RequireSimplex: true}); err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			set := randomSet(rng, n)
			c, err := cover.EvaluateSet(g, graph.Independent, set)
			if err != nil {
				return false
			}
			if math.Abs(float64(in.Dominated(set))-float64(n)*c) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGreedyDSMatchesGreedyIPC: running DS greedy directly and running the
// IPC greedy solver on the reduced graph must dominate the same number of
// vertices (the selections may differ on ties, the objective values not).
func TestGreedyDSMatchesGreedyIPC(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		in := randomInstance(rng, n)
		k := 1 + rng.Intn(n)
		_, dsTotal, err := Greedy(in, k)
		if err != nil {
			return false
		}
		g, err := ToIPC(in)
		if err != nil {
			return false
		}
		sol, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k})
		if err != nil {
			return false
		}
		return math.Abs(float64(dsTotal)-float64(n)*sol.Cover) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestToIPCDropsSelfAndDuplicateEdges(t *testing.T) {
	in := &Instance{Out: [][]int32{{0, 1, 1}, nil}}
	g, err := ToIPC(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (self dropped, duplicate collapsed)", g.NumEdges())
	}
	// Equivalence still holds.
	for _, set := range [][]int32{{0}, {1}, {0, 1}, {}} {
		c, _ := cover.EvaluateSet(g, graph.Independent, set)
		if math.Abs(float64(in.Dominated(set))-2*c) > tol {
			t.Errorf("set %v: dominated=%d cover=%g", set, in.Dominated(set), c)
		}
	}
}

func randomInstance(rng *rand.Rand, n int) *Instance {
	in := &Instance{Out: make([][]int32, n)}
	for v := 0; v < n; v++ {
		deg := rng.Intn(4)
		for e := 0; e < deg; e++ {
			in.Out[v] = append(in.Out[v], int32(rng.Intn(n)))
		}
	}
	return in
}

func randomSet(rng *rand.Rand, n int) []int32 {
	perm := rng.Perm(n)
	k := rng.Intn(n + 1)
	set := make([]int32, k)
	for i := 0; i < k; i++ {
		set[i] = int32(perm[i])
	}
	return set
}
