package approx_test

import (
	"math"
	"testing"
	"testing/quick"

	. "prefcover/internal/approx"
)

func TestGreedyRatioVC(t *testing.T) {
	e := 1 - 1/math.E
	if got := GreedyRatioVC(0); math.Abs(got-e) > 1e-12 {
		t.Errorf("ratio(0) = %g, want %g", got, e)
	}
	// Below the crossover the constant dominates.
	if got := GreedyRatioVC(0.2); got != e {
		t.Errorf("ratio(0.2) = %g, want 1-1/e", got)
	}
	// Above the crossover the quadratic takes over.
	if got := GreedyRatioVC(0.74); got <= 0.93 {
		t.Errorf("ratio(0.74) = %g, want > 0.93 (paper: exceeds 0.93 for k >= 0.74n)", got)
	}
	if got := GreedyRatioVC(1); got != 1 {
		t.Errorf("ratio(1) = %g, want 1", got)
	}
}

func TestCrossoverFraction(t *testing.T) {
	x := CrossoverFraction()
	if math.Abs(x-0.3935) > 0.001 {
		t.Errorf("crossover = %g, want ~0.3935 (the ~0.39 in Table 1)", x)
	}
	// At the crossover the two terms coincide.
	quad := 1 - (1-x)*(1-x)
	if math.Abs(quad-(1-1/math.E)) > 1e-12 {
		t.Errorf("terms differ at crossover: %g vs %g", quad, 1-1/math.E)
	}
}

func TestGreedyRatioMonotoneProperty(t *testing.T) {
	prop := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 1))
		y := math.Abs(math.Mod(b, 1))
		if x > y {
			x, y = y, x
		}
		return GreedyRatioVC(x) <= GreedyRatioVC(y)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGreedyRatioBounds(t *testing.T) {
	prop := func(a float64) bool {
		x := math.Abs(math.Mod(a, 1))
		r := GreedyRatioVC(x)
		return r >= 1-1/math.E-1e-12 && r <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGreedyRatioPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for k/n > 1")
		}
	}()
	GreedyRatioVC(1.5)
}

func TestGreedyRatioIPC(t *testing.T) {
	if got := GreedyRatioIPC(); math.Abs(got-(1-1/math.E)) > 1e-12 {
		t.Errorf("IPC ratio = %g", got)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// First two ranges quote the constant; last three the quadratic.
	for i, row := range rows {
		if row.GreedyAt < 1-1/math.E-1e-12 || row.GreedyAt > 1 {
			t.Errorf("row %d greedy ratio %g out of range", i, row.GreedyAt)
		}
		if row.Range == "" || row.BestKnown == "" || row.Greedy == "" {
			t.Errorf("row %d has empty fields: %+v", i, row)
		}
	}
	// The [0.74, 1] row is where greedy IS the best known.
	last := rows[len(rows)-1]
	if last.GreedyAt <= 0.93 {
		t.Errorf("last row greedy %g should exceed 0.93", last.GreedyAt)
	}
}
