// Package approx collects the approximation-ratio formulas behind the
// paper's Table 1: the guarantee of the greedy algorithm for VC_k / NPC_k
// as a function of k/n, the best known polynomial guarantees per range, and
// the (1 - 1/e) bound that is tight for the Independent variant.
package approx

import (
	"fmt"
	"math"
)

// OneMinusInvE is 1 - 1/e, the optimal polynomial approximation factor for
// IPC_k (Theorem 4.1) and for monotone submodular maximization in general.
var OneMinusInvE = 1 - 1/math.E

// GreedyRatioVC returns the greedy algorithm's guarantee for VC_k/NPC_k at
// budget fraction k/n: max{1 - 1/e, 1 - (1 - k/n)^2} (Feige & Langberg).
// It panics on a fraction outside [0,1] — callers pass k<=n by construction.
func GreedyRatioVC(kOverN float64) float64 {
	if kOverN < 0 || kOverN > 1 {
		panic(fmt.Sprintf("approx: k/n=%g outside [0,1]", kOverN))
	}
	quad := 1 - (1-kOverN)*(1-kOverN)
	if quad > OneMinusInvE {
		return quad
	}
	return OneMinusInvE
}

// GreedyRatioIPC returns the greedy guarantee for IPC_k, which is the
// budget-independent (1 - 1/e) (tight by Theorem 4.1).
func GreedyRatioIPC() float64 { return OneMinusInvE }

// CrossoverFraction is the k/n value above which the quadratic term
// dominates 1 - 1/e: solving 1-(1-x)^2 = 1-1/e gives x = 1 - 1/sqrt(e)
// (~0.3935), the ~0.39 boundary in Table 1.
func CrossoverFraction() float64 { return 1 - 1/math.Sqrt(math.E) }

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Range     string  // k/n range, paper notation
	Greedy    string  // greedy guarantee formula
	GreedyAt  float64 // greedy guarantee evaluated at the range's midpoint
	BestKnown string  // best known polynomial guarantee and technique
}

// Table1 reproduces the paper's Table 1. The Greedy column is computed from
// GreedyRatioVC at each range's representative midpoint; the BestKnown
// column cites the SDP/LP results (which are exactly the constants the
// paper quotes — they are literature values, not something the greedy
// implementation can produce).
func Table1() []Table1Row {
	mid := func(lo, hi float64) float64 { return (lo + hi) / 2 }
	x := CrossoverFraction()
	return []Table1Row{
		{Range: "o(1)", Greedy: "(1 - 1/e)", GreedyAt: GreedyRatioVC(0), BestKnown: "0.75 + eps (SDP) [11]"},
		{Range: fmt.Sprintf("Theta(1), [0, ~%.2f)", x), Greedy: "(1 - 1/e)", GreedyAt: GreedyRatioVC(mid(0, x)), BestKnown: "0.92 (SDP) [19]"},
		{Range: fmt.Sprintf("(~%.2f, ~0.72)", x), Greedy: "(1 - (1-k/n)^2)", GreedyAt: GreedyRatioVC(mid(x, 0.72)), BestKnown: "0.92 (SDP) [19]"},
		{Range: "(~0.72, 0.74)", Greedy: "(1 - (1-k/n)^2)", GreedyAt: GreedyRatioVC(mid(0.72, 0.74)), BestKnown: "~0.93 (SDP) [17]"},
		{Range: "[0.74, 1]", Greedy: "(1 - (1-k/n)^2)", GreedyAt: GreedyRatioVC(mid(0.74, 1)), BestKnown: "(1 - (1-k/n)^2) [11]"},
	}
}
