package vcover_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prefcover/internal/cover"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	. "prefcover/internal/vcover"
)

const tol = 1e-9

func TestInstanceValidate(t *testing.T) {
	ok := &Instance{N: 2, Edges: []WEdge{{0, 1, 0.5}, {1, 1, 0.2}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	for name, in := range map[string]*Instance{
		"empty":           {N: 0},
		"bad endpoint":    {N: 2, Edges: []WEdge{{0, 5, 0.5}}},
		"negative weight": {N: 2, Edges: []WEdge{{0, 1, -0.5}}},
		"zero weight":     {N: 2, Edges: []WEdge{{0, 1, 0}}},
	} {
		if err := in.Validate(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestCoverWeight(t *testing.T) {
	in := &Instance{N: 3, Edges: []WEdge{{0, 1, 1}, {1, 2, 2}, {2, 2, 4}}}
	if w := in.CoverWeight([]int32{1}); w != 3 {
		t.Errorf("CoverWeight({1}) = %g, want 3", w)
	}
	if w := in.CoverWeight([]int32{2}); w != 6 {
		t.Errorf("CoverWeight({2}) = %g, want 6 (incl self edge)", w)
	}
	if w := in.CoverWeight(nil); w != 0 {
		t.Errorf("CoverWeight({}) = %g", w)
	}
	if w := in.CoverWeight([]int32{0, 1, 2}); w != 7 {
		t.Errorf("CoverWeight(all) = %g, want 7", w)
	}
}

func TestGreedySimple(t *testing.T) {
	// Star: center 0 touches 1,2,3 with weight 1 each; greedy k=1 must
	// take the center.
	in := &Instance{N: 4, Edges: []WEdge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}}
	set, total, err := Greedy(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 0 || total != 3 {
		t.Fatalf("set=%v total=%g", set, total)
	}
}

func TestGreedyValidation(t *testing.T) {
	in := &Instance{N: 2, Edges: []WEdge{{0, 1, 1}}}
	if _, _, err := Greedy(in, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := Greedy(in, 5); err == nil {
		t.Error("k>n should fail")
	}
}

// TestFromNPCPreservesCover is the first direction of Theorem 3.1: for any
// set S, CoverWeight_{G'}(S) == C_{NPC}(S).
func TestFromNPCPreservesCover(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 2+rng.Intn(25), 4, graph.Normalized)
		in, err := FromNPC(g)
		if err != nil {
			return false
		}
		if in.Validate() != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			set := graphtest.RandomSet(rng, g, rng.Intn(g.NumNodes()+1))
			want, err := cover.EvaluateSet(g, graph.Normalized, set)
			if err != nil {
				return false
			}
			if math.Abs(in.CoverWeight(set)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFromNPCRejectsNonNormalized(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddNode(0.5)
	b.AddNode(0.5)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 0, 0.9)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Out sums are fine here (0.9 <= 1); craft a violating one instead.
	b2 := graph.NewBuilder(3, 2)
	b2.AddNode(0.4)
	b2.AddNode(0.3)
	b2.AddNode(0.3)
	b2.AddEdge(0, 1, 0.8)
	b2.AddEdge(0, 2, 0.8)
	bad, err := b2.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNPC(bad); err == nil {
		t.Error("out-sum violation should be rejected")
	}
	if _, err := FromNPC(g); err != nil {
		t.Errorf("valid NPC graph rejected: %v", err)
	}
}

// TestToNPCPreservesCover is the second direction of Theorem 3.1: for any
// set S, CoverWeight_{G'}(S) == Nsum * C_{NPC}(S).
func TestToNPCPreservesCover(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		in := randomInstance(rng, n)
		g, nsum, err := ToNPC(in)
		if err != nil {
			return false
		}
		if err := g.Validate(graph.ValidateOptions{Variant: graph.Normalized, RequireSimplex: true}); err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			set := graphtest.RandomSet(rng, g, rng.Intn(n+1))
			c, err := cover.EvaluateSet(g, graph.Normalized, set)
			if err != nil {
				return false
			}
			if math.Abs(in.CoverWeight(set)-nsum*c) > 1e-9*math.Max(1, nsum) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripReduction: reducing a VC instance to NPC and back (paper's
// closing argument in Theorem 3.1) must preserve cover weights of all sets.
func TestRoundTripReduction(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 2+rng.Intn(15))
		g, nsum, err := ToNPC(in)
		if err != nil {
			return false
		}
		back, err := FromNPC(g)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			set := graphtest.RandomSet(rng, g, rng.Intn(g.NumNodes()+1))
			a := in.CoverWeight(set)
			b := back.CoverWeight(set) * nsum
			if math.Abs(a-b) > 1e-9*math.Max(1, nsum) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestToNPCDegenerate(t *testing.T) {
	if _, _, err := ToNPC(&Instance{N: 2}); err == nil {
		t.Error("edgeless instance should fail (no weight to normalize)")
	}
}

func randomInstance(rng *rand.Rand, n int) *Instance {
	in := &Instance{N: n}
	m := 1 + rng.Intn(3*n)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n)) // may equal u: self edges are legal
		in.Edges = append(in.Edges, WEdge{U: u, V: v, W: 0.05 + rng.Float64()})
	}
	return in
}

// TestGreedyRatioAgainstExhaustive: greedy VC_k achieves >= (1 - 1/e) of
// the optimum on small instances.
func TestGreedyRatioAgainstExhaustive(t *testing.T) {
	ratio := 1 - 1/math.E
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		in := randomInstance(rng, n)
		k := 1 + rng.Intn(3)
		_, got, err := Greedy(in, k)
		if err != nil {
			t.Fatal(err)
		}
		best := exhaustiveVC(in, k)
		if got < ratio*best-tol {
			t.Errorf("seed %d: greedy %g < %g of optimum %g", seed, got, ratio, best)
		}
	}
}

func exhaustiveVC(in *Instance, k int) float64 {
	best := 0.0
	set := make([]int32, 0, k)
	var rec func(start int32)
	rec = func(start int32) {
		if len(set) == k {
			if w := in.CoverWeight(set); w > best {
				best = w
			}
			return
		}
		for v := start; v < int32(in.N); v++ {
			set = append(set, v)
			rec(v + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return best
}
