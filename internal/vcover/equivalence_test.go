package vcover_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/greedy"
	. "prefcover/internal/vcover"
)

// TestGreedyNPCEqualsGreedyVC verifies the paper's remark in Section 3.2:
// running the greedy directly on the preference graph and running the
// VC_k greedy on the Theorem 3.1 reduction "would have resulted in
// choosing the same nodes" — both use max-gain/min-id selection and the
// reduction preserves marginal gains exactly.
func TestGreedyNPCEqualsGreedyVC(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 3+rng.Intn(20), 4, graph.Normalized)
		k := 1 + rng.Intn(g.NumNodes())
		sol, err := greedy.Solve(g, greedy.Options{Variant: graph.Normalized, K: k})
		if err != nil {
			return false
		}
		in, err := FromNPC(g)
		if err != nil {
			return false
		}
		vcSet, vcTotal, err := Greedy(in, k)
		if err != nil {
			return false
		}
		// Same objective value...
		if math.Abs(vcTotal-sol.Cover) > 1e-9 {
			return false
		}
		// ...and the same selected nodes.
		want := map[int32]bool{}
		for _, v := range sol.Order {
			want[v] = true
		}
		if len(vcSet) != len(sol.Order) {
			return false
		}
		for _, v := range vcSet {
			if !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
