// Package vcover implements the weighted Max Vertex Cover problem (VC_k,
// paper Definition 2.8) and the two approximation-preserving reductions of
// Theorem 3.1 between VC_k and the Normalized Preference Cover problem
// (NPC_k). The reductions are used to test the main solver's equivalence
// claims and to expose the theoretical machinery behind the Normalized
// variant's approximation guarantee.
package vcover

import (
	"errors"
	"fmt"
	"sort"

	"prefcover/internal/graph"
)

// Instance is an undirected multigraph with positive edge weights; self
// edges are allowed (and are produced by the NPC_k reduction, where a self
// edge carries the request mass no alternative can cover).
type Instance struct {
	N     int
	Edges []WEdge
}

// WEdge is an undirected weighted edge; U == V encodes a self edge.
type WEdge struct {
	U, V int32
	W    float64
}

// Validate checks endpoints and weights.
func (in *Instance) Validate() error {
	if in.N <= 0 {
		return errors.New("vcover: empty instance")
	}
	for i, e := range in.Edges {
		if e.U < 0 || int(e.U) >= in.N || e.V < 0 || int(e.V) >= in.N {
			return fmt.Errorf("vcover: edge %d endpoints (%d,%d) out of range", i, e.U, e.V)
		}
		if e.W <= 0 {
			return fmt.Errorf("vcover: edge %d has non-positive weight %g", i, e.W)
		}
	}
	return nil
}

// CoverWeight returns the total weight of edges incident to the set.
func (in *Instance) CoverWeight(set []int32) float64 {
	inSet := make([]bool, in.N)
	for _, v := range set {
		inSet[v] = true
	}
	var total float64
	for _, e := range in.Edges {
		if inSet[e.U] || inSet[e.V] {
			total += e.W
		}
	}
	return total
}

// Greedy is the classical greedy algorithm for VC_k ([16], analyzed in [11]
// to have ratio max{1-1/e, 1-(1-k/n)^2}): repeatedly select the vertex
// covering the most yet-uncovered edge weight. Ties break toward the
// smaller vertex id. The incremental bookkeeping keeps it O((n+m) log n)
// using a lazy priority queue.
func Greedy(in *Instance, k int) ([]int32, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	if k <= 0 || k > in.N {
		return nil, 0, fmt.Errorf("vcover: k=%d outside [1,%d]", k, in.N)
	}
	// Adjacency: for every vertex the incident edge indices.
	adj := make([][]int32, in.N)
	for i, e := range in.Edges {
		adj[e.U] = append(adj[e.U], int32(i))
		if e.V != e.U {
			adj[e.V] = append(adj[e.V], int32(i))
		}
	}
	covered := make([]bool, len(in.Edges))
	selected := make([]bool, in.N)
	gain := func(v int32) float64 {
		var g float64
		for _, ei := range adj[v] {
			if !covered[ei] {
				g += in.Edges[ei].W
			}
		}
		return g
	}
	var set []int32
	var total float64
	for step := 0; step < k; step++ {
		best, bestGain := int32(-1), -1.0
		for v := int32(0); v < int32(in.N); v++ {
			if selected[v] {
				continue
			}
			if g := gain(v); g > bestGain {
				best, bestGain = v, g
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		for _, ei := range adj[best] {
			covered[ei] = true
		}
		total += bestGain
		set = append(set, best)
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set, total, nil
}

// FromNPC reduces an NPC_k preference graph to a VC_k instance (Theorem
// 3.1, first direction): every node whose outgoing weights sum to s < 1
// gains a self edge of weight (1-s) (the uncoverable request mass), and
// every edge (v,u) becomes an undirected edge of weight W(v)*W(v,u). For
// every set S the VC_k cover weight of S equals C(S) in the original NPC_k
// instance.
func FromNPC(g *graph.Graph) (*Instance, error) {
	if err := g.Validate(graph.ValidateOptions{Variant: graph.Normalized}); err != nil {
		return nil, fmt.Errorf("vcover: input is not a valid NPC graph: %w", err)
	}
	in := &Instance{N: g.NumNodes()}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		wv := g.NodeWeight(v)
		dsts, ws := g.OutEdges(v)
		var outSum float64
		for i, u := range dsts {
			outSum += ws[i]
			if w := wv * ws[i]; w > 0 {
				in.Edges = append(in.Edges, WEdge{U: v, V: u, W: w})
			}
		}
		if slack := 1 - outSum; slack > graph.Eps && wv > 0 {
			in.Edges = append(in.Edges, WEdge{U: v, V: v, W: wv * slack})
		}
	}
	return in, nil
}

// ToNPC reduces a VC_k instance to an NPC_k preference graph (Theorem 3.1,
// second direction): orientations are chosen from the smaller to the larger
// endpoint (arbitrary per the proof; self edges stay self-referential and
// are dropped as they contribute to every solution containing the node
// only), node weights become the normalized incident edge mass, and edge
// weights are rescaled so each node's outgoing sum is 1.
//
// It returns the graph plus the normalization constant Nsum such that for
// every set S: CoverWeight(S) == Nsum * C(S).
func ToNPC(in *Instance) (*graph.Graph, float64, error) {
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	// Orient edges; accumulate per-node outgoing mass M_v.
	type oedge struct {
		src, dst int32
		w        float64
	}
	oriented := make([]oedge, 0, len(in.Edges))
	m := make([]float64, in.N)
	for _, e := range in.Edges {
		src, dst := e.U, e.V
		if src > dst {
			src, dst = dst, src
		}
		oriented = append(oriented, oedge{src: src, dst: dst, w: e.W})
		m[src] += e.W
	}
	var nsum float64
	for _, x := range m {
		nsum += x
	}
	if nsum <= 0 {
		return nil, 0, errors.New("vcover: instance has no edge weight")
	}
	b := graph.NewBuilder(in.N, len(oriented))
	for v := 0; v < in.N; v++ {
		b.AddNode(m[v] / nsum) // W(v) = M_v, normalized by N so weights sum to 1
	}
	for _, e := range oriented {
		if e.src == e.dst {
			// A self edge in VC_k corresponds to request mass for the node
			// itself with no alternative: in NPC it is simply node weight
			// with outgoing slack, so no preference edge is emitted.
			continue
		}
		b.AddEdge(e.src, e.dst, e.w/m[e.src])
	}
	g, err := b.Build(graph.BuildOptions{Duplicates: graph.DupSum})
	if err != nil {
		return nil, 0, err
	}
	return g, nsum, nil
}
