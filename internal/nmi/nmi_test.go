package nmi_test

import (
	"math"
	"testing"
	"testing/quick"

	. "prefcover/internal/nmi"
)

const tol = 1e-9

func TestValidate(t *testing.T) {
	if err := (BinaryJoint{N11: 1}).Validate(); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	if err := (BinaryJoint{}).Validate(); err == nil {
		t.Error("empty table should fail")
	}
	if err := (BinaryJoint{N11: -1, N00: 5}).Validate(); err == nil {
		t.Error("negative cell should fail")
	}
}

func TestIndependentVariablesHaveZeroMI(t *testing.T) {
	// P(X)=1/2, P(Y)=1/2, independent: all four cells equal.
	j := BinaryJoint{N11: 25, N10: 25, N01: 25, N00: 25}
	mi, err := MutualInformation(j)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi) > tol {
		t.Errorf("MI = %g, want 0", mi)
	}
	v, err := Normalized(j)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v) > tol {
		t.Errorf("NMI = %g, want 0", v)
	}
}

func TestIdenticalVariablesHaveNMIOne(t *testing.T) {
	j := BinaryJoint{N11: 30, N00: 70}
	v, err := Normalized(j)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > tol {
		t.Errorf("NMI = %g, want 1", v)
	}
	mi, _ := MutualInformation(j)
	// I(X;X) = H(X) = H(0.3).
	want := -(0.3*math.Log2(0.3) + 0.7*math.Log2(0.7))
	if math.Abs(mi-want) > tol {
		t.Errorf("MI = %g, want %g", mi, want)
	}
}

func TestComplementaryVariablesHaveNMIOne(t *testing.T) {
	// Y = NOT X is total dependence too.
	j := BinaryJoint{N10: 40, N01: 60}
	v, err := Normalized(j)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > tol {
		t.Errorf("NMI = %g, want 1", v)
	}
}

func TestConstantVariableConvention(t *testing.T) {
	// X always 1: no entropy, NMI defined as 0.
	j := BinaryJoint{N11: 3, N10: 7}
	v, err := Normalized(j)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("NMI with constant marginal = %g, want 0", v)
	}
}

func TestNMIBoundsProperty(t *testing.T) {
	prop := func(a, b, c, d uint8) bool {
		j := BinaryJoint{N11: float64(a), N10: float64(b), N01: float64(c), N00: float64(d)}
		if j.Total() == 0 {
			return true
		}
		v, err := Normalized(j)
		if err != nil {
			return false
		}
		return v >= 0 && v <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMINonnegativeProperty(t *testing.T) {
	prop := func(a, b, c, d uint8) bool {
		j := BinaryJoint{N11: float64(a), N10: float64(b), N01: float64(c), N00: float64(d)}
		if j.Total() == 0 {
			return true
		}
		mi, err := MutualInformation(j)
		return err == nil && mi >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMISymmetryProperty(t *testing.T) {
	// Swapping the roles of X and Y (transposing the table) preserves MI.
	prop := func(a, b, c, d uint8) bool {
		j := BinaryJoint{N11: float64(a), N10: float64(b), N01: float64(c), N00: float64(d)}
		jt := BinaryJoint{N11: j.N11, N10: j.N01, N01: j.N10, N00: j.N00}
		if j.Total() == 0 {
			return true
		}
		m1, err1 := MutualInformation(j)
		m2, err2 := MutualInformation(jt)
		return err1 == nil && err2 == nil && math.Abs(m1-m2) < tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedMean(t *testing.T) {
	var m WeightedMean
	if m.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	m.Add(1.0, 3)
	m.Add(0.0, 1)
	if math.Abs(m.Mean()-0.75) > tol {
		t.Errorf("mean = %g, want 0.75", m.Mean())
	}
	if m.Weight() != 4 {
		t.Errorf("weight = %g", m.Weight())
	}
	m.Add(0.5, 0)  // zero weight ignored
	m.Add(0.5, -1) // negative weight ignored
	if math.Abs(m.Mean()-0.75) > tol {
		t.Errorf("mean after ignored adds = %g", m.Mean())
	}
}
