// Package nmi computes normalized mutual information between binary events,
// the statistic the paper (Section 5.2) uses to decide whether the
// Independent variant fits a dataset: for every purchased item it averages
// the pairwise NMI between "alternative u1 was clicked" and "alternative u2
// was clicked" across that item's sessions, then takes the node-weighted
// mean over items; a value below 0.1 recommends the Independent variant.
//
// The normalization is the geometric-mean form of Strehl & Ghosh (2002):
// NMI(X;Y) = I(X;Y) / sqrt(H(X) * H(Y)), which lies in [0, 1], with 0 for
// independent variables and 1 for identical (or complementary) ones.
package nmi

import (
	"fmt"
	"math"
)

// BinaryJoint is the joint contingency table of two binary events over N
// observations: N11 observations where both occurred, N10 only the first,
// N01 only the second, N00 neither.
type BinaryJoint struct {
	N11, N10, N01, N00 float64
}

// Total returns the number of observations.
func (j BinaryJoint) Total() float64 { return j.N11 + j.N10 + j.N01 + j.N00 }

// Validate rejects negative cells and empty tables.
func (j BinaryJoint) Validate() error {
	if j.N11 < 0 || j.N10 < 0 || j.N01 < 0 || j.N00 < 0 {
		return fmt.Errorf("nmi: negative cell in %+v", j)
	}
	if j.Total() <= 0 {
		return fmt.Errorf("nmi: empty contingency table")
	}
	return nil
}

// plogp returns p*log2(p), with the 0*log(0)=0 convention.
func plogp(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return p * math.Log2(p)
}

// entropy of a Bernoulli(p) variable in bits.
func entropy(p float64) float64 { return -plogp(p) - plogp(1-p) }

// MutualInformation returns I(X;Y) in bits for the joint table.
func MutualInformation(j BinaryJoint) (float64, error) {
	if err := j.Validate(); err != nil {
		return 0, err
	}
	n := j.Total()
	p11, p10, p01, p00 := j.N11/n, j.N10/n, j.N01/n, j.N00/n
	px := p11 + p10 // P(X=1)
	py := p11 + p01 // P(Y=1)
	mi := 0.0
	add := func(pxy, pxm, pym float64) {
		if pxy > 0 && pxm > 0 && pym > 0 {
			mi += pxy * math.Log2(pxy/(pxm*pym))
		}
	}
	add(p11, px, py)
	add(p10, px, 1-py)
	add(p01, 1-px, py)
	add(p00, 1-px, 1-py)
	if mi < 0 { // guard against float noise; MI is nonnegative
		mi = 0
	}
	return mi, nil
}

// Normalized returns NMI(X;Y) = I(X;Y)/sqrt(H(X)H(Y)) in [0,1]. When either
// variable is constant (entropy 0) the table carries no dependence signal
// and 0 is returned, matching the convention used in clustering literature.
func Normalized(j BinaryJoint) (float64, error) {
	mi, err := MutualInformation(j)
	if err != nil {
		return 0, err
	}
	n := j.Total()
	hx := entropy((j.N11 + j.N10) / n)
	hy := entropy((j.N11 + j.N01) / n)
	if hx == 0 || hy == 0 {
		return 0, nil
	}
	v := mi / math.Sqrt(hx*hy)
	if v > 1 { // float noise
		v = 1
	}
	return v, nil
}

// WeightedMean accumulates a weighted running mean; used for the paper's
// node-weighted average of per-item NMI values "such that the average is
// not skewed by rarely purchased items".
type WeightedMean struct {
	sum, weight float64
}

// Add records value with the given nonnegative weight.
func (m *WeightedMean) Add(value, weight float64) {
	if weight <= 0 {
		return
	}
	m.sum += value * weight
	m.weight += weight
}

// Mean returns the weighted mean, or 0 if nothing was added.
func (m *WeightedMean) Mean() float64 {
	if m.weight == 0 {
		return 0
	}
	return m.sum / m.weight
}

// Weight returns the total weight accumulated.
func (m *WeightedMean) Weight() float64 { return m.weight }
