package store

// Disk persistence: one <name>.pcg file per entry holding the graph's
// versioned binary encoding (internal/graph's "PCG1" codec), nothing else.
// The filename is the registry name — safe because ValidateName forbids
// separators and leading dots — so the directory doubles as a
// human-browsable catalog and needs no manifest to stay consistent.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"prefcover/internal/graph"
)

// snapshotExt marks registry snapshots; anything else in the directory is
// ignored on load.
const snapshotExt = ".pcg"

// persist encodes g (hashing as it goes) and, when persistence is on,
// writes the snapshot atomically: encode to <name>.pcg.tmp, fsync, rename
// over the final path. A crash mid-write leaves at worst a .tmp file the
// next load ignores.
func (r *Registry) persist(name string, g *graph.Graph) (hash string, size int64, err error) {
	if r.opts.Dir == "" {
		return encode(g, nil)
	}
	final := filepath.Join(r.opts.Dir, name+snapshotExt)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", 0, fmt.Errorf("store: creating snapshot: %w", err)
	}
	// With a fault injector configured, the snapshot sink may error
	// outright or truncate partway — either way the write below fails, the
	// tmp file is removed, and no entry is installed, exactly as if the
	// disk itself had misbehaved.
	var sink io.Writer = f
	if r.opts.Faults != nil {
		sink, err = r.opts.Faults.DiskOp(f)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return "", 0, fmt.Errorf("store: persisting graph %q: %w", name, err)
		}
	}
	hash, size, err = encode(g, sink)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		os.Remove(tmp)
		return "", 0, fmt.Errorf("store: persisting graph %q: %w", name, err)
	}
	return hash, size, nil
}

// removeFile unlinks name's snapshot, if persistence is on. Removal
// failures are logged, not returned: the in-memory registry is the source
// of truth, and a leftover file only costs disk until the next Put.
func (r *Registry) removeFile(name string) {
	if r.opts.Dir == "" {
		return
	}
	path := filepath.Join(r.opts.Dir, name+snapshotExt)
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		r.logWarn("store: removing snapshot failed", "path", path, "error", err)
	}
}

// loadDir reloads every snapshot at startup. Files that fail to parse —
// truncated by a crash, corrupted on disk, or simply not a graph — are
// skipped with a warning so one bad file cannot block serving the rest.
func (r *Registry) loadDir() error {
	if err := os.MkdirAll(r.opts.Dir, 0o755); err != nil {
		return fmt.Errorf("store: creating persistence dir: %w", err)
	}
	dirents, err := os.ReadDir(r.opts.Dir)
	if err != nil {
		return fmt.Errorf("store: listing persistence dir: %w", err)
	}
	for _, de := range dirents {
		fname := de.Name()
		if de.IsDir() || !strings.HasSuffix(fname, snapshotExt) {
			continue
		}
		name := strings.TrimSuffix(fname, snapshotExt)
		if err := ValidateName(name); err != nil {
			r.logWarn("store: skipping snapshot with invalid name", "file", fname, "error", err)
			continue
		}
		path := filepath.Join(r.opts.Dir, fname)
		e, err := loadSnapshot(name, path)
		if err != nil {
			r.logWarn("store: skipping corrupt snapshot", "file", fname, "error", err)
			continue
		}
		r.mu.Lock()
		r.entries[name] = e
		r.bytes += e.Bytes
		r.touch(name)
		evicted := r.evictLocked(name)
		r.mu.Unlock()
		// Over-bound directories trim down to the configured budget; the
		// evicted snapshots are deleted so the trim sticks across restarts.
		for _, v := range evicted {
			r.removeFile(v.Name)
			r.invalidate(v.Name, v.Hash)
		}
	}
	return nil
}

// loadSnapshot parses one snapshot file and re-derives the canonical
// content hash by re-encoding the parsed graph — the exact computation Put
// performs — so a reloaded entry carries the same Hash (and therefore the
// same ETag and solve-cache identity) across restarts even if the on-disk
// bytes were produced by an older encoder or carry trailing junk.
func loadSnapshot(name, path string) (*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	hash, size, err := encode(g, nil)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return &Entry{
		Name:    name,
		Graph:   g,
		Hash:    hash,
		Bytes:   size,
		Created: info.ModTime(),
	}, nil
}
