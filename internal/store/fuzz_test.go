package store

import (
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzValidateName asserts the safety contract behind using registry names
// verbatim as URL path segments, metric label values, and filenames: any
// name ValidateName accepts must survive all three contexts unmangled.
func FuzzValidateName(f *testing.F) {
	for _, seed := range []string{"", "a", "catalog-v2", ".hidden", "-k", "a/b", "a\\b",
		"a b", "über", "..", "a\x00", strings.Repeat("n", MaxNameLen+1)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		if err := ValidateName(name); err != nil {
			return
		}
		// Accepted names are bounded and printable ASCII.
		if len(name) == 0 || len(name) > MaxNameLen {
			t.Fatalf("accepted name with bad length %d", len(name))
		}
		if !utf8.ValidString(name) {
			t.Fatalf("accepted non-UTF8 name %q", name)
		}
		for i := 0; i < len(name); i++ {
			if name[i] <= ' ' || name[i] > '~' {
				t.Fatalf("accepted name with byte %#x", name[i])
			}
		}
		// Filename safety: the name is exactly one path element, cleans to
		// itself, and cannot escape the persistence dir or hide as a
		// dotfile.
		if filepath.Base(name) != name || filepath.Clean(name) != name {
			t.Fatalf("accepted path-unsafe name %q", name)
		}
		if strings.ContainsAny(name, `/\`) || name[0] == '.' || name[0] == '-' {
			t.Fatalf("accepted unsafe name %q", name)
		}
		// Metric/JSON safety: no quotes, backslashes or control bytes.
		if strings.ContainsAny(name, "\"\\\n\r\t") {
			t.Fatalf("accepted label-unsafe name %q", name)
		}
	})
}
