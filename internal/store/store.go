// Package store is the named graph registry behind prefcoverd's
// /v1/graphs API: it turns the daemon from a stateless transcoder (every
// request re-uploads and re-parses its graph) into a stateful serving
// system where a catalog is pushed once and then referenced by name.
//
// Each entry is content-addressed: Put serializes the graph once through
// the versioned binary codec, and the SHA-256 of those bytes becomes the
// entry's Hash — the ETag clients revalidate against and the key the solve
// cache partitions by, so replacing a graph under the same name
// automatically orphans every cached result computed from the old
// content. The registry is bounded (count and total encoded bytes) with
// least-recently-used eviction, where Get and RecordSolve count as use.
//
// With Options.Dir set, entries persist across restarts: Put writes the
// binary encoding to <dir>/<name>.pcg via temp-file + rename (crash-atomic
// on POSIX), Delete and eviction unlink it, and New reloads every *.pcg at
// startup — skipping and logging corrupt files instead of refusing to
// start, because one bad snapshot must not take down serving for every
// other catalog.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"prefcover/internal/faults"
	"prefcover/internal/graph"
)

// MaxNameLen bounds registry names; long names bloat metrics labels and
// file paths without serving any naming need.
const MaxNameLen = 128

// ValidateName reports whether name is acceptable as a registry key. The
// grammar is deliberately narrow — it must be safe verbatim inside a URL
// path segment, a Prometheus label value, and a filename on every
// platform: 1..MaxNameLen characters from [a-zA-Z0-9._-], starting with a
// letter or digit (so names cannot masquerade as dotfiles or flags).
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty graph name")
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("store: graph name longer than %d bytes", MaxNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if i == 0 && !alnum {
			return fmt.Errorf("store: graph name must start with a letter or digit")
		}
		if !alnum && c != '.' && c != '_' && c != '-' {
			return fmt.Errorf("store: graph name contains %q (allowed: letters, digits, '.', '_', '-')", c)
		}
	}
	return nil
}

// Options configures a Registry.
type Options struct {
	// MaxGraphs bounds how many graphs are retained (0 = DefaultMaxGraphs).
	MaxGraphs int
	// MaxBytes bounds the sum of encoded graph sizes (0 = DefaultMaxBytes).
	MaxBytes int64
	// Dir, when non-empty, enables disk persistence: snapshots live as
	// <Dir>/<name>.pcg and are reloaded by New.
	Dir string
	// Logger receives load-skip and persistence warnings; nil discards.
	Logger *slog.Logger
	// OnInvalidate, when non-nil, fires whenever a content hash stops
	// being current for a name — on Delete, on eviction, and on Put over
	// an existing name with different content. The solve cache hangs its
	// invalidation here.
	OnInvalidate func(name, hash string)
	// Faults, when non-nil, injects failures into the disk persistence
	// path (prefcoverd -fault-spec-disk): snapshot writes can error or
	// truncate on a seeded schedule. No-op unless Dir is set.
	Faults *faults.Injector
}

// Default bounds: generous for a serving box, small enough that a runaway
// uploader cannot OOM the process.
const (
	DefaultMaxGraphs = 64
	DefaultMaxBytes  = 4 << 30
)

// Entry is one registered graph. Immutable after insertion; replacing a
// name installs a fresh Entry.
type Entry struct {
	Name string
	// Graph is the parsed, ready-to-solve graph.
	Graph *graph.Graph
	// Hash is the lowercase hex SHA-256 of the canonical binary encoding —
	// the version identity served as ETag and used as the solve-cache key.
	Hash string
	// Bytes is the size of the binary encoding (the LRU budget unit).
	Bytes int64
	// Created is when this content was installed under this name.
	Created time.Time

	// solves counts solver runs served from this entry (atomic not needed:
	// guarded by the registry mutex via RecordSolve).
	solves int64
}

// Info is the snapshot of an Entry served by List and /v1/graphs.
type Info struct {
	Name    string    `json:"name"`
	Hash    string    `json:"hash"`
	Nodes   int       `json:"nodes"`
	Edges   int       `json:"edges"`
	Bytes   int64     `json:"bytes"`
	Created time.Time `json:"created"`
	Solves  int64     `json:"solves"`
}

// Registry is the bounded, optionally persistent name → graph map.
type Registry struct {
	opts Options

	mu      sync.Mutex
	entries map[string]*Entry
	// lruSeq orders use recency: bumped on Put/Get/RecordSolve, smallest
	// value is the eviction victim. A counter avoids list plumbing and
	// keeps eviction O(n) on the rare Put that overflows, not on every Get.
	lruSeq  uint64
	lastUse map[string]uint64
	bytes   int64
}

// New returns a Registry and, when Options.Dir is set, reloads every
// persisted snapshot in it (creating the directory if needed). Corrupt or
// unreadable snapshots are skipped with a warning — startup only fails if
// the directory itself cannot be created or listed.
func New(opts Options) (*Registry, error) {
	if opts.MaxGraphs <= 0 {
		opts.MaxGraphs = DefaultMaxGraphs
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	r := &Registry{
		opts:    opts,
		entries: make(map[string]*Entry),
		lastUse: make(map[string]uint64),
	}
	if opts.Dir != "" {
		if err := r.loadDir(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// encode serializes g through the binary codec while hashing, returning
// the encoded bytes (for persistence; nil when sink is nil means the
// caller only wanted hash+size), the content hash, and the size.
func encode(g *graph.Graph, sink io.Writer) (hash string, size int64, err error) {
	h := sha256.New()
	cw := &countWriter{}
	w := io.MultiWriter(h, cw)
	if sink != nil {
		w = io.MultiWriter(h, cw, sink)
	}
	if err := graph.WriteBinary(w, g); err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), cw.n, nil
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

// Put installs g under name, replacing any previous content. It returns
// the new entry and whether the name already existed. Entries too large
// for the registry's byte budget are rejected outright rather than
// evicting everything else.
func (r *Registry) Put(name string, g *graph.Graph) (*Entry, bool, error) {
	if err := ValidateName(name); err != nil {
		return nil, false, err
	}
	hash, size, err := r.persist(name, g)
	if err != nil {
		return nil, false, err
	}
	if size > r.opts.MaxBytes {
		r.removeFile(name)
		return nil, false, fmt.Errorf("store: graph %q encodes to %d bytes, exceeding the registry budget %d", name, size, r.opts.MaxBytes)
	}
	e := &Entry{Name: name, Graph: g, Hash: hash, Bytes: size, Created: time.Now()}

	r.mu.Lock()
	prev, replaced := r.entries[name]
	if replaced {
		r.bytes -= prev.Bytes
	}
	r.entries[name] = e
	r.bytes += size
	r.touch(name)
	evicted := r.evictLocked(name)
	r.mu.Unlock()

	if replaced && prev.Hash != hash {
		r.invalidate(name, prev.Hash)
	}
	for _, v := range evicted {
		r.removeFile(v.Name)
		r.invalidate(v.Name, v.Hash)
	}
	return e, replaced, nil
}

// Get returns the entry for name and bumps its recency.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if ok {
		r.touch(name)
	}
	return e, ok
}

// Delete removes name, unlinks its snapshot, and fires invalidation.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	e, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
		delete(r.lastUse, name)
		r.bytes -= e.Bytes
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	r.removeFile(name)
	r.invalidate(name, e.Hash)
	return true
}

// RecordSolve counts one solver run against name (per-graph statistics on
// /metrics) and bumps recency — a graph being solved is a graph in use.
func (r *Registry) RecordSolve(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		e.solves++
		r.touch(name)
	}
}

// infoLocked snapshots one entry. Callers hold r.mu (solves is guarded by
// it).
func infoLocked(e *Entry) Info {
	return Info{
		Name: e.Name, Hash: e.Hash,
		Nodes: e.Graph.NumNodes(), Edges: e.Graph.NumEdges(),
		Bytes: e.Bytes, Created: e.Created, Solves: e.solves,
	}
}

// Info snapshots the named entry's statistics.
func (r *Registry) Info(name string) (Info, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return Info{}, false
	}
	return infoLocked(e), true
}

// List snapshots all entries, sorted by name for deterministic output.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, infoLocked(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// TotalBytes returns the summed encoded size of all entries.
func (r *Registry) TotalBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// touch bumps name's recency. Callers hold r.mu.
func (r *Registry) touch(name string) {
	r.lruSeq++
	r.lastUse[name] = r.lruSeq
}

// evictLocked enforces the count and byte bounds, never evicting keep
// (the entry just inserted). Callers hold r.mu; the evicted entries are
// returned so file removal and invalidation run outside the lock.
func (r *Registry) evictLocked(keep string) []*Entry {
	var out []*Entry
	for len(r.entries) > r.opts.MaxGraphs || r.bytes > r.opts.MaxBytes {
		victim := ""
		var oldest uint64
		for name := range r.entries {
			if name == keep {
				continue
			}
			if seq := r.lastUse[name]; victim == "" || seq < oldest {
				victim, oldest = name, seq
			}
		}
		if victim == "" {
			break
		}
		e := r.entries[victim]
		delete(r.entries, victim)
		delete(r.lastUse, victim)
		r.bytes -= e.Bytes
		out = append(out, e)
	}
	return out
}

func (r *Registry) invalidate(name, hash string) {
	if r.opts.OnInvalidate != nil {
		r.opts.OnInvalidate(name, hash)
	}
}

// logWarn emits a persistence warning; a nil logger discards, matching the
// server convention.
func (r *Registry) logWarn(msg string, args ...any) {
	if r.opts.Logger != nil {
		r.opts.Logger.Warn(msg, args...)
	}
}
