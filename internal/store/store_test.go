package store

import (
	"bytes"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
)

func testGraph(t *testing.T, seed int64, n int) *graph.Graph {
	t.Helper()
	return graphtest.Random(rand.New(rand.NewSource(seed)), n, 4, graph.Independent)
}

func TestValidateName(t *testing.T) {
	ok := []string{"a", "catalog", "yc-2015.v2", "A_b-c.d", strings.Repeat("x", MaxNameLen)}
	for _, name := range ok {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	bad := []string{"", ".hidden", "-flag", "_x", "a/b", "a\\b", "a b", "a\nb", "..", "a\x00b",
		strings.Repeat("x", MaxNameLen+1), "über"}
	for _, name := range bad {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", name)
		}
	}
}

func TestPutGetDelete(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 1, 30)
	e, replaced, err := r.Put("cat", g)
	if err != nil || replaced {
		t.Fatalf("Put = %v replaced=%v", err, replaced)
	}
	if e.Hash == "" || len(e.Hash) != 64 || e.Bytes <= 0 {
		t.Fatalf("entry = %+v", e)
	}
	got, ok := r.Get("cat")
	if !ok || got.Hash != e.Hash || got.Graph != g {
		t.Fatalf("Get = %+v ok=%v", got, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get(nope) hit")
	}
	if !r.Delete("cat") || r.Delete("cat") {
		t.Fatal("Delete semantics wrong")
	}
	if _, ok := r.Get("cat"); ok {
		t.Fatal("deleted entry still present")
	}
}

func TestHashIsContentAddressed(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	gA := testGraph(t, 7, 25)
	gB := testGraph(t, 8, 25)
	eA, _, _ := r.Put("a", gA)
	eA2, _, _ := r.Put("a2", testGraph(t, 7, 25)) // same seed → same content
	eB, _, _ := r.Put("b", gB)
	if eA.Hash != eA2.Hash {
		t.Errorf("identical graphs hash differently: %s vs %s", eA.Hash, eA2.Hash)
	}
	if eA.Hash == eB.Hash {
		t.Errorf("different graphs collide: %s", eA.Hash)
	}
}

func TestReplaceFiresInvalidation(t *testing.T) {
	var events []string
	r, err := New(Options{OnInvalidate: func(name, hash string) {
		events = append(events, name+":"+hash[:8])
	}})
	if err != nil {
		t.Fatal(err)
	}
	e1, _, _ := r.Put("g", testGraph(t, 1, 20))
	// Same content again: no invalidation (the hash is still current).
	r.Put("g", testGraph(t, 1, 20))
	if len(events) != 0 {
		t.Fatalf("replace with identical content invalidated: %v", events)
	}
	e2, replaced, _ := r.Put("g", testGraph(t, 2, 20))
	if !replaced || len(events) != 1 || events[0] != "g:"+e1.Hash[:8] {
		t.Fatalf("replace invalidation = %v (replaced=%v)", events, replaced)
	}
	r.Delete("g")
	if len(events) != 2 || events[1] != "g:"+e2.Hash[:8] {
		t.Fatalf("delete invalidation = %v", events)
	}
}

func TestLRUEvictionByCount(t *testing.T) {
	var evicted []string
	r, err := New(Options{MaxGraphs: 2, OnInvalidate: func(name, _ string) {
		evicted = append(evicted, name)
	}})
	if err != nil {
		t.Fatal(err)
	}
	r.Put("a", testGraph(t, 1, 20))
	r.Put("b", testGraph(t, 2, 20))
	r.Get("a") // b is now least recently used
	r.Put("c", testGraph(t, 3, 20))
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if _, ok := r.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := r.Get("c"); !ok {
		t.Error("just-inserted entry evicted")
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	g := testGraph(t, 1, 40)
	_, size, err := encode(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	var evicted []string
	r, err := New(Options{MaxBytes: 2*size + size/2, OnInvalidate: func(name, _ string) {
		evicted = append(evicted, name)
	}})
	if err != nil {
		t.Fatal(err)
	}
	r.Put("a", testGraph(t, 1, 40))
	r.Put("b", testGraph(t, 1, 40))
	if len(evicted) != 0 {
		t.Fatalf("premature eviction: %v", evicted)
	}
	r.Put("c", testGraph(t, 1, 40))
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted = %v, want [a]", evicted)
	}
	if got := r.TotalBytes(); got > 2*size+size/2 {
		t.Errorf("TotalBytes = %d exceeds budget", got)
	}
}

func TestOversizedGraphRejected(t *testing.T) {
	r, err := New(Options{MaxBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Put("big", testGraph(t, 1, 50)); err == nil {
		t.Fatal("oversized Put accepted")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after rejected Put", r.Len())
	}
}

func TestListAndSolveStats(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Put("b", testGraph(t, 2, 20))
	r.Put("a", testGraph(t, 1, 20))
	r.RecordSolve("a")
	r.RecordSolve("a")
	r.RecordSolve("missing") // must not panic
	infos := r.List()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Solves != 2 || infos[1].Solves != 0 {
		t.Errorf("solve stats = %d/%d, want 2/0", infos[0].Solves, infos[1].Solves)
	}
	if infos[0].Nodes != 20 {
		t.Errorf("Nodes = %d", infos[0].Nodes)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	gs := map[string]*graph.Graph{
		"alpha": testGraph(t, 1, 30),
		"beta":  testGraph(t, 2, 45),
	}
	hashes := map[string]string{}
	for name, g := range gs {
		e, _, err := r.Put(name, g)
		if err != nil {
			t.Fatal(err)
		}
		hashes[name] = e.Hash
	}
	// The snapshots exist and are the binary codec.
	for name := range gs {
		path := filepath.Join(dir, name+snapshotExt)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("snapshot missing: %v", err)
		}
		if _, err := graph.ReadBinary(bytes.NewReader(data)); err != nil {
			t.Fatalf("snapshot %s not a valid graph: %v", name, err)
		}
	}

	// A fresh registry over the same dir reloads everything with identical
	// hashes and topology.
	r2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != len(gs) {
		t.Fatalf("reloaded Len = %d, want %d", r2.Len(), len(gs))
	}
	for name, g := range gs {
		e, ok := r2.Get(name)
		if !ok {
			t.Fatalf("reloaded registry missing %q", name)
		}
		if e.Hash != hashes[name] {
			t.Errorf("%s: hash changed across restart: %s vs %s", name, e.Hash, hashes[name])
		}
		if e.Graph.NumNodes() != g.NumNodes() || e.Graph.NumEdges() != g.NumEdges() {
			t.Errorf("%s: shape changed across restart", name)
		}
	}

	// Delete unlinks the snapshot.
	r2.Delete("alpha")
	if _, err := os.Stat(filepath.Join(dir, "alpha"+snapshotExt)); !os.IsNotExist(err) {
		t.Errorf("deleted snapshot still on disk (err=%v)", err)
	}
}

func TestCorruptSnapshotsSkippedOnLoad(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := r.Put("good", testGraph(t, 3, 30))
	if err != nil {
		t.Fatal(err)
	}
	// Three flavors of damage: pure garbage, a truncated valid snapshot,
	// and a leftover temp file from a crashed write.
	if err := os.WriteFile(filepath.Join(dir, "garbage"+snapshotExt), []byte("not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(filepath.Join(dir, "good"+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "truncated"+snapshotExt), goodBytes[:len(goodBytes)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "crashed"+snapshotExt+".tmp"), goodBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	r2, err := New(Options{Dir: dir, Logger: logger})
	if err != nil {
		t.Fatalf("startup failed on corrupt dir: %v", err)
	}
	if r2.Len() != 1 {
		t.Fatalf("reloaded Len = %d, want 1 (only the good snapshot)", r2.Len())
	}
	got, ok := r2.Get("good")
	if !ok || got.Hash != e.Hash {
		t.Fatalf("good snapshot lost: ok=%v", ok)
	}
	if !strings.Contains(logBuf.String(), "skipping corrupt snapshot") {
		t.Errorf("corrupt skips not logged:\n%s", logBuf.String())
	}
}

func TestEvictionRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Options{Dir: dir, MaxGraphs: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Put("a", testGraph(t, 1, 20))
	r.Put("b", testGraph(t, 2, 20))
	if _, err := os.Stat(filepath.Join(dir, "a"+snapshotExt)); !os.IsNotExist(err) {
		t.Errorf("evicted snapshot still on disk (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b"+snapshotExt)); err != nil {
		t.Errorf("surviving snapshot missing: %v", err)
	}
}
