// Package chaostest is the shared toolkit for the serving stack's chaos
// suite (internal/server's chaos test): a retrying HTTP client whose
// observations are counted through internal/retry's metrics, response
// validation that holds every error to the JSON-envelope contract, and a
// goroutine-leak check. The suite's core claim is quantitative — the
// server-side fault injector's counts must exactly equal the client-side
// transient observations (retries + give-ups) — so the client here retries
// *every* call: an unretried request that swallows an injected fault would
// break the accounting identity. The goroutine-leak check is also reused
// by internal/loadgen's end-to-end and chaos tests, which hold their
// fire-and-forget request goroutines to the same zero-leak standard.
package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"prefcover/internal/metrics"
	"prefcover/internal/retry"
)

// Result is one completed HTTP exchange (possibly after retries).
type Result struct {
	Status int
	Header http.Header
	Body   []byte
}

// Client is the chaos workload's HTTP client: seeded retry jitter, counted
// observations, per-response envelope validation.
type Client struct {
	// Counters receives every attempt/retry/give-up; the chaos test
	// reconciles them against the injector's fault counts.
	Counters *retry.Counters

	http   *http.Client
	policy retry.Policy

	mu sync.Mutex
	// violations records responses that broke the error-envelope contract.
	violations []string
}

// NewClient builds a chaos client. The retry schedule is aggressive and
// fast (millisecond backoff) because the suite injects sub-second
// Retry-After values; seed fixes the jitter stream so a failing run
// replays.
func NewClient(seed int64, reg *metrics.Registry) *Client {
	c := &Client{
		Counters: retry.NewCounters(reg),
		// A private transport, with keep-alives off: on a *reused*
		// connection net/http transparently replays a replayable request
		// whose connection died before any response bytes, which would
		// swallow injected reset faults before the retry layer could count
		// them. Fresh connections are never transparently retried, so every
		// injected fault surfaces as exactly one observation.
		http: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	}
	c.policy = retry.Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Jitter:      0.5,
		Rand:        rand.New(rand.NewSource(seed)),
		Observer:    c.Counters,
	}
	return c
}

// Do issues one API call with retries on every transient failure. The
// returned Result is the final response (which may itself be an HTTP
// error the retry loop gave up on, or a non-transient 4xx); a nil Result
// means every attempt died in transport. Error responses are checked
// against the JSON-envelope contract as a side effect.
func (c *Client) Do(ctx context.Context, method, url, contentType string, body []byte, extra http.Header) (*Result, error) {
	var last *Result
	err := c.policy.Do(ctx, func(ctx context.Context) error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range extra {
			req.Header[k] = vs
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return retry.TransportError(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			// Mid-body death (reset or truncation): no usable response.
			return retry.TransportError(fmt.Errorf("%s %s: reading body: %w", method, url, err))
		}
		last = &Result{Status: resp.StatusCode, Header: resp.Header, Body: data}
		if resp.StatusCode >= 400 {
			c.checkEnvelope(method, url, last)
			err := fmt.Errorf("%s %s: %s", method, url, resp.Status)
			return retry.HTTPStatusError(resp.StatusCode, resp.Header, err)
		}
		return nil
	})
	if err != nil && last != nil {
		// The loop gave up on an HTTP error: the response is still the
		// caller's to inspect — a final 404 or 429 is a legitimate outcome
		// under chaos, not a test failure.
		return last, nil
	}
	return last, err
}

// checkEnvelope enforces the error contract: every >= 400 response must be
// the JSON envelope {"error": "...", "requestId": "..."} with a non-empty
// error and the request ID echoed in the header.
func (c *Client) checkEnvelope(method, url string, r *Result) {
	var envelope struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	switch {
	case json.Unmarshal(r.Body, &envelope) != nil:
		c.violate("%s %s -> %d: body is not JSON: %.120q", method, url, r.Status, r.Body)
	case envelope.Error == "":
		c.violate("%s %s -> %d: envelope has empty error: %.120q", method, url, r.Status, r.Body)
	case r.Header.Get("X-Request-ID") == "":
		c.violate("%s %s -> %d: missing X-Request-ID header", method, url, r.Status)
	}
}

func (c *Client) violate(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// Violations returns every envelope-contract breach observed so far.
func (c *Client) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...)
}

// CloseIdle tears down pooled connections (call before the leak check).
func (c *Client) CloseIdle() {
	if tr, ok := c.http.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// GoroutineBaseline samples the current goroutine count after a settling
// GC, for a later CheckGoroutines.
func GoroutineBaseline() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// CheckGoroutines fails the test if the goroutine count does not return to
// the baseline (within a small scheduler slack) inside the deadline; the
// failure includes a full stack dump so the leaked goroutines are named.
func CheckGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d goroutines, baseline %d (+%d slack)\n%s",
				n, baseline, slack, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
