package chaostest

// Cluster harness: boot K in-process HTTP nodes behind a gateway and
// address them by index. The harness is deliberately generic — it takes
// handler factories, not server or gateway types — because this package
// is imported by internal/server's own in-package chaos test; importing
// internal/server (or internal/cluster, which imports it) back from here
// would be an import cycle. The cluster chaos test in internal/cluster
// supplies the concrete prefcoverd handlers and gateway.

import (
	"net/http/httptest"
)

// ClusterNode is one booted backend: its test server and base URL.
type ClusterNode struct {
	Server *httptest.Server
	URL    string
}

// ClusterHarness is K in-process nodes plus, once installed, a gateway in
// front of them. Close tears everything down gateway-first (so no new
// traffic reaches nodes mid-shutdown).
type ClusterHarness struct {
	Nodes   []ClusterNode
	Gateway *httptest.Server
}

// NewClusterHarness boots K nodes, each serving the handler built by
// factory(i). Handlers typically wrap a fully-configured prefcoverd
// server; the factory index lets the caller arm a fault injector on a
// chosen node.
func NewClusterHarness(k int, factory func(i int) ClusterNode) *ClusterHarness {
	h := &ClusterHarness{Nodes: make([]ClusterNode, k)}
	for i := 0; i < k; i++ {
		h.Nodes[i] = factory(i)
	}
	return h
}

// NodeURLs lists the backend base URLs in boot order (the gateway's
// -nodes argument).
func (h *ClusterHarness) NodeURLs() []string {
	urls := make([]string, len(h.Nodes))
	for i, n := range h.Nodes {
		urls[i] = n.URL
	}
	return urls
}

// SetGateway installs the gateway's test server in front of the nodes.
func (h *ClusterHarness) SetGateway(gw *httptest.Server) {
	h.Gateway = gw
}

// GatewayURL returns the gateway's base URL ("" before SetGateway).
func (h *ClusterHarness) GatewayURL() string {
	if h.Gateway == nil {
		return ""
	}
	return h.Gateway.URL
}

// KillNode abruptly stops node i (connection-refused territory, a hard
// partition from the gateway's point of view). Safe to call once.
func (h *ClusterHarness) KillNode(i int) {
	if i >= 0 && i < len(h.Nodes) && h.Nodes[i].Server != nil {
		h.Nodes[i].Server.CloseClientConnections()
		h.Nodes[i].Server.Close()
		h.Nodes[i].Server = nil
	}
}

// Close shuts the gateway down first, then every surviving node.
func (h *ClusterHarness) Close() {
	if h.Gateway != nil {
		h.Gateway.Close()
		h.Gateway = nil
	}
	for i := range h.Nodes {
		if h.Nodes[i].Server != nil {
			h.Nodes[i].Server.Close()
			h.Nodes[i].Server = nil
		}
	}
}
