package trace

// Cross-process trace propagation in the W3C Trace Context format
// (https://www.w3.org/TR/trace-context/). A SpanContext is the portable
// identity of a position in a trace — 16-byte trace ID, 8-byte span ID,
// sampled flag — rendered as the `traceparent` HTTP header:
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             └┬┘ └──────────┬───────────────┘ └──────┬───────┘ └┬┘
//	           version       trace-id                parent-id    flags
//
// `prefcover remote` originates a context and injects it on every HTTP
// attempt; prefcoverd's middleware extracts it into the request's root
// span; the async job queue persists it across the queue boundary so
// worker-side solver spans join the submitter's trace. Everything stays
// stdlib-only: parsing is strict on the fields we consume and
// version-tolerant per the spec (a future version with trailing fields
// still yields the four we understand).

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	mrand "math/rand/v2"
)

// SpanContext is the portable identity of a span: who the trace is
// (TraceID), who the caller was (SpanID), and whether the trace is being
// recorded (Sampled). The zero value is invalid and propagates nothing.
type SpanContext struct {
	// TraceID is 32 lowercase hex digits, non-zero.
	TraceID string
	// SpanID is 16 lowercase hex digits, non-zero: the span the next hop
	// should parent to.
	SpanID string
	// Sampled mirrors the trace-flags sampled bit: the originator is
	// recording this trace and downstream hops should too.
	Sampled bool
}

// Valid reports whether sc carries a well-formed, non-zero trace and span
// ID — the precondition for injecting it anywhere.
func (sc SpanContext) Valid() bool {
	return isLowerHex(sc.TraceID, 32) && !allZero(sc.TraceID) &&
		isLowerHex(sc.SpanID, 16) && !allZero(sc.SpanID)
}

// Traceparent renders sc as the traceparent header value (version 00).
// Invalid contexts render "" so callers can Set the result unconditionally.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-" + flags
}

// TraceparentHeader is the canonical header name (lowercase per W3C; Go's
// http.Header canonicalizes on Set/Get either way).
const TraceparentHeader = "traceparent"

// ParseTraceparent parses a traceparent header value. It accepts any
// version except the reserved ff, requires the four version-00 fields,
// and tolerates additional future-version fields after the flags. The
// returned context is always Valid when err is nil.
func ParseTraceparent(s string) (SpanContext, error) {
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2) [ '-' ... ]
	const minLen = 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(s) < minLen {
		return SpanContext{}, fmt.Errorf("traceparent: too short (%d bytes)", len(s))
	}
	version := s[0:2]
	if !isLowerHex(version, 2) {
		return SpanContext{}, fmt.Errorf("traceparent: bad version %q", version)
	}
	if version == "ff" {
		return SpanContext{}, fmt.Errorf("traceparent: reserved version ff")
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, fmt.Errorf("traceparent: bad field separators")
	}
	if len(s) > minLen {
		// Version 00 defines exactly four fields; later versions may append
		// more, but only after another separator.
		if version == "00" {
			return SpanContext{}, fmt.Errorf("traceparent: trailing data after flags")
		}
		if s[minLen] != '-' {
			return SpanContext{}, fmt.Errorf("traceparent: bad field separators")
		}
	}
	sc := SpanContext{TraceID: s[3:35], SpanID: s[36:52]}
	if !isLowerHex(sc.TraceID, 32) || allZero(sc.TraceID) {
		return SpanContext{}, fmt.Errorf("traceparent: bad trace-id %q", sc.TraceID)
	}
	if !isLowerHex(sc.SpanID, 16) || allZero(sc.SpanID) {
		return SpanContext{}, fmt.Errorf("traceparent: bad parent-id %q", sc.SpanID)
	}
	flags := s[53:55]
	if !isLowerHex(flags, 2) {
		return SpanContext{}, fmt.Errorf("traceparent: bad flags %q", flags)
	}
	sc.Sampled = (hexVal(flags[1]) & 0x1) != 0
	return sc, nil
}

// NewSpanContext originates a trace: fresh random trace ID, no parent
// span yet (the first span minted under it becomes the parent of the next
// hop), sampled on.
func NewSpanContext() SpanContext {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degrade to the non-cryptographic source; trace IDs need
		// uniqueness, not unpredictability.
		for i := range b {
			b[i] = byte(mrand.Uint32())
		}
	}
	return SpanContext{TraceID: hex.EncodeToString(b[:]), Sampled: true}
}

// newSpanID mints a span ID. Uniqueness only matters within one trace, so
// the fast non-cryptographic source is fine even on hot solver paths.
func newSpanID() string {
	for {
		v := mrand.Uint64()
		if v != 0 {
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (56 - 8*i))
			}
			return hex.EncodeToString(b[:])
		}
	}
}

func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

func hexVal(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// scKey is the context key carrying an extracted SpanContext when no
// local span exists yet (the middleware installs the span itself, so this
// is mainly for tests and embedders).
type scKey struct{}

// ContextWithSpanContext returns ctx carrying sc.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, scKey{}, sc)
}

// SpanContextFromContext returns the propagated SpanContext: the current
// span's own context when a distributed span is installed, otherwise any
// raw SpanContext stored by ContextWithSpanContext.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if s := FromContext(ctx); s != nil {
		if sc := s.Context(); sc.Valid() {
			return sc
		}
	}
	sc, _ := ctx.Value(scKey{}).(SpanContext)
	return sc
}
