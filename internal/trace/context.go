package trace

import "context"

// ctxKey is the context key carrying the current span.
type ctxKey struct{}

// NewContext returns ctx carrying s as the current span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when the context carries
// none — the nil span is safe to use directly.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and installs it as
// the new current span. When the context carries no span it returns the
// context unchanged and a nil (no-op) span, so call sites need no tracing
// branch:
//
//	ctx, sp := trace.StartSpan(ctx, "adapt")
//	defer sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.Child(name)
	return NewContext(ctx, s), s
}
