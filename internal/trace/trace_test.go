package trace

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/greedy"
)

// testGraph builds a seeded random preference graph for recorder tests.
func testGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	return graphtest.Random(rand.New(rand.NewSource(7)), n, 4, graph.Independent)
}

// TestSpanTreeConcurrent exercises the documented thread-safety contract:
// children and attributes created from many goroutines land exactly once,
// with unique IDs, while the parent is concurrently queried. Run with
// -race (make test-race) to validate the locking.
func TestSpanTreeConcurrent(t *testing.T) {
	tr := New(4)
	root := tr.Root("request", "req-1")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := root.Child(fmt.Sprintf("child-%d-%d", w, i))
				c.SetAttr("worker", w)
				g := c.Child("grandchild")
				g.End()
				c.End()
			}
		}(w)
	}
	// Concurrent readers must not race with the writers.
	for i := 0; i < 100; i++ {
		_ = root.Children()
		_ = root.Attrs()
	}
	wg.Wait()
	root.End()

	kids := root.Children()
	if len(kids) != workers*perWorker {
		t.Fatalf("%d children, want %d", len(kids), workers*perWorker)
	}
	ids := map[int64]bool{root.id: true}
	for _, c := range kids {
		if ids[c.id] {
			t.Fatalf("duplicate span id %d", c.id)
		}
		ids[c.id] = true
		if got := len(c.Children()); got != 1 {
			t.Fatalf("child has %d grandchildren, want 1", got)
		}
		if c.TraceID() != "req-1" {
			t.Fatalf("child traceID %q", c.TraceID())
		}
	}
	if want := 1 + 2*workers*perWorker; root.NumSpans() != want {
		t.Errorf("NumSpans = %d, want %d", root.NumSpans(), want)
	}
}

// TestRingEviction pins the flight-recorder bound: the ring never holds
// more than capacity root traces, evicts oldest-first, and counts drops.
func TestRingEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		root := tr.Root(fmt.Sprintf("r%d", i), "")
		root.End()
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	for i, want := range []string{"r7", "r8", "r9"} {
		if snap[i].Name() != want {
			t.Errorf("ring[%d] = %q, want %q", i, snap[i].Name(), want)
		}
	}
	if tr.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", tr.Dropped())
	}
}

// TestRingEvictionConcurrent hammers record from many goroutines and
// checks the bound still holds (run under -race).
func TestRingEvictionConcurrent(t *testing.T) {
	tr := New(5)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Root("r", "").End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Snapshot()); got != 5 {
		t.Fatalf("ring holds %d, want 5", got)
	}
	if tr.Dropped() != 8*100-5 {
		t.Errorf("Dropped = %d, want %d", tr.Dropped(), 8*100-5)
	}
}

// TestNilSpanSafety: the whole Span API must be a no-op on nil so
// untraced code paths need no branches.
func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.End()
	s.EndAt(time.Now())
	if c := s.Child("x"); c != nil {
		t.Error("nil.Child != nil")
	}
	if s.Name() != "" || s.TraceID() != "" || s.Ended() || s.Duration() != 0 ||
		s.Children() != nil || s.Attrs() != nil || s.Attr("k") != nil || s.NumSpans() != 0 {
		t.Error("nil accessors not zero-valued")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("bare context has a span")
	}
	// Without a span installed, StartSpan is a transparent no-op.
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan on bare context should be a no-op")
	}
	tr := New(0)
	root := tr.Root("root", "id-1")
	ctx = NewContext(ctx, root)
	ctx, child := StartSpan(ctx, "phase")
	if child == nil || FromContext(ctx) != child {
		t.Fatal("StartSpan did not install the child")
	}
	if kids := root.Children(); len(kids) != 1 || kids[0] != child {
		t.Fatal("child not attached to root")
	}
}

func TestEndIdempotentAndRecordOnce(t *testing.T) {
	tr := New(0)
	root := tr.Root("r", "")
	end1 := time.Now()
	root.EndAt(end1)
	root.EndAt(end1.Add(time.Hour)) // ignored
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("recorded %d times, want 1", got)
	}
	if root.effectiveEnd() != end1 {
		t.Error("second End overwrote the first")
	}
}

// TestIterationRecorder feeds a real solve's ProgressEvent stream through
// the bridge and checks span-per-iteration with matching work counters —
// the contract the CLI's -trace and the server's flight recorder rely on.
func TestIterationRecorder(t *testing.T) {
	g := testGraph(t, 40)
	tr := New(0)
	root := tr.Root("solve-run", "")
	solveSpan := root.Child("solve")
	record := IterationRecorder(solveSpan)
	var events []greedy.ProgressEvent
	sol, err := greedy.Solve(g, greedy.Options{
		K: 10, Lazy: true,
		Progress: func(ev greedy.ProgressEvent) {
			events = append(events, ev)
			record(ev)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	solveSpan.End()
	root.End()

	iters := solveSpan.Children()
	if len(iters) != len(sol.Order) || len(iters) != len(events) {
		t.Fatalf("%d iteration spans, %d selections, %d events", len(iters), len(sol.Order), len(events))
	}
	var spanEvals, spanReevals int64
	for i, sp := range iters {
		if want := fmt.Sprintf("iteration %d", i+1); sp.Name() != want {
			t.Errorf("span %d named %q, want %q", i, sp.Name(), want)
		}
		if got := sp.Attr("node"); got != int64(events[i].Node) {
			t.Errorf("span %d node = %v, want %d", i, got, events[i].Node)
		}
		spanEvals += sp.Attr("evaluated").(int64)
		spanReevals += sp.Attr("reevaluated").(int64)
		if !sp.Ended() {
			t.Errorf("span %d not ended", i)
		}
	}
	// The per-span counters must sum to the run's totals (the lazy heap
	// build is charged to TotalEvals, not any iteration — mirror that).
	var evEvals, evReevals int64
	for _, ev := range events {
		evEvals += ev.Evaluated
		evReevals += ev.Reevaluated
	}
	if spanEvals != evEvals || spanReevals != evReevals {
		t.Errorf("span totals evals=%d reevals=%d, events evals=%d reevals=%d",
			spanEvals, spanReevals, evEvals, evReevals)
	}
	if last := iters[len(iters)-1].Attr("totalEvals"); last != sol.GainEvals {
		t.Errorf("last totalEvals attr = %v, want %d", last, sol.GainEvals)
	}
}

func TestIterationRecorderNil(t *testing.T) {
	record := IterationRecorder(nil)
	record(greedy.ProgressEvent{Step: 1}) // must not panic
}
