package trace

// Tests for the W3C traceparent codec and the span-lineage plumbing the
// distributed tracing layer is built on: strict parsing, render/parse
// round trips, RootContext parent links, and context propagation.

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if sc.TraceID == "" || !sc.Sampled {
		t.Fatalf("NewSpanContext() = %+v", sc)
	}
	if sc.Valid() {
		t.Fatalf("originating context has no span ID yet, must not be Valid: %+v", sc)
	}
	// The first span minted under the context supplies the span ID that
	// makes it injectable.
	tr := New(4)
	root := tr.RootContext("origin", sc)
	osc := root.Context()
	if !osc.Valid() {
		t.Fatalf("span context invalid: %+v", osc)
	}
	if osc.TraceID != sc.TraceID {
		t.Errorf("span trace ID %q, want originator's %q", osc.TraceID, sc.TraceID)
	}
	header := osc.Traceparent()
	parsed, err := ParseTraceparent(header)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", header, err)
	}
	if parsed != osc {
		t.Errorf("round trip %+v, want %+v", parsed, osc)
	}
}

func TestParseTraceparentValid(t *testing.T) {
	const trID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const spID = "00f067aa0ba902b7"
	cases := []struct {
		name    string
		header  string
		sampled bool
	}{
		{"spec example", "00-" + trID + "-" + spID + "-01", true},
		{"not sampled", "00-" + trID + "-" + spID + "-00", false},
		{"other flag bits", "00-" + trID + "-" + spID + "-03", true},
		{"future version", "cc-" + trID + "-" + spID + "-01", true},
		{"future version, extra fields", "cc-" + trID + "-" + spID + "-01-extra-stuff", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := ParseTraceparent(tc.header)
			if err != nil {
				t.Fatalf("ParseTraceparent(%q): %v", tc.header, err)
			}
			if !sc.Valid() {
				t.Errorf("parsed context invalid: %+v", sc)
			}
			if sc.TraceID != trID || sc.SpanID != spID || sc.Sampled != tc.sampled {
				t.Errorf("parsed %+v, want {%s %s %v}", sc, trID, spID, tc.sampled)
			}
		})
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	const trID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const spID = "00f067aa0ba902b7"
	cases := []struct {
		name   string
		header string
	}{
		{"empty", ""},
		{"too short", "00-" + trID + "-" + spID + "-0"},
		{"reserved version ff", "ff-" + trID + "-" + spID + "-01"},
		{"uppercase version", "0A-" + trID + "-" + spID + "-01"},
		{"uppercase trace id", "00-" + strings.ToUpper(trID) + "-" + spID + "-01"},
		{"zero trace id", "00-" + strings.Repeat("0", 32) + "-" + spID + "-01"},
		{"zero span id", "00-" + trID + "-" + strings.Repeat("0", 16) + "-01"},
		{"bad separators", "00_" + trID + "_" + spID + "_01"},
		{"non-hex flags", "00-" + trID + "-" + spID + "-zz"},
		{"v00 trailing data", "00-" + trID + "-" + spID + "-01-extra"},
		{"future version, no separator before extra", "cc-" + trID + "-" + spID + "-01extra"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if sc, err := ParseTraceparent(tc.header); err == nil {
				t.Errorf("ParseTraceparent(%q) = %+v, want error", tc.header, sc)
			}
		})
	}
}

// TestRootContextLineage checks the parent links a remote hop depends on:
// a RootContext span is parented to the caller's span ID, and its children
// inherit the trace with fresh span IDs.
func TestRootContextLineage(t *testing.T) {
	caller := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8), Sampled: true}
	tr := New(4)
	root := tr.RootContext("request", caller)
	if root.TraceID() != caller.TraceID {
		t.Errorf("root trace ID %q, want %q", root.TraceID(), caller.TraceID)
	}
	if root.ParentSpanID() != caller.SpanID {
		t.Errorf("root parent span ID %q, want caller's %q", root.ParentSpanID(), caller.SpanID)
	}
	if root.SpanID() == "" || root.SpanID() == caller.SpanID {
		t.Errorf("root span ID %q must be fresh", root.SpanID())
	}
	child := root.Child("inner")
	if child.ParentSpanID() != root.SpanID() {
		t.Errorf("child parent %q, want root's span ID %q", child.ParentSpanID(), root.SpanID())
	}
	if child.Context().TraceID != caller.TraceID {
		t.Errorf("child trace ID %q, want %q", child.Context().TraceID, caller.TraceID)
	}
	if child.SpanID() == root.SpanID() {
		t.Error("child span ID equals parent's")
	}
}

func TestSpanContextFromContext(t *testing.T) {
	if sc := SpanContextFromContext(context.Background()); sc.Valid() {
		t.Errorf("empty context yielded %+v", sc)
	}
	// A raw SpanContext stored on the context is returned as-is.
	raw := SpanContext{TraceID: strings.Repeat("12", 16), SpanID: strings.Repeat("34", 8), Sampled: true}
	ctx := ContextWithSpanContext(context.Background(), raw)
	if got := SpanContextFromContext(ctx); got != raw {
		t.Errorf("raw context %+v, want %+v", got, raw)
	}
	// An installed distributed span wins: the next hop should parent to the
	// innermost live span, not the original extraction.
	tr := New(4)
	span := tr.RootContext("request", raw)
	ctx = NewContext(ctx, span)
	got := SpanContextFromContext(ctx)
	if got.SpanID != span.SpanID() || got.TraceID != raw.TraceID {
		t.Errorf("installed span context %+v, want span ID %q", got, span.SpanID())
	}
	// Spans without distributed identity (plain Root) fall back to the raw
	// stored context rather than yielding an invalid one.
	legacy := tr.Root("request", "req-1")
	ctx = NewContext(ContextWithSpanContext(context.Background(), raw), legacy)
	if got := SpanContextFromContext(ctx); got != raw {
		t.Errorf("legacy span context %+v, want raw %+v", got, raw)
	}
}

// FuzzTraceparent hammers the header parser: it must never panic, every
// accepted header must yield a Valid context, and rendering that context
// must re-parse to the same identity (flags normalize to version 00 with
// only the sampled bit, so only the consumed fields are compared).
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01")
	f.Add("")
	f.Add("hello")
	f.Fuzz(func(t *testing.T, header string) {
		sc, err := ParseTraceparent(header)
		if err != nil {
			if sc != (SpanContext{}) {
				t.Fatalf("error with non-zero context %+v", sc)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted header %q yields invalid context %+v", header, sc)
		}
		rendered := sc.Traceparent()
		if rendered == "" {
			t.Fatalf("valid context %+v renders empty", sc)
		}
		again, err := ParseTraceparent(rendered)
		if err != nil {
			t.Fatalf("re-parsing rendered %q: %v", rendered, err)
		}
		if again != sc {
			t.Fatalf("round trip %+v, want %+v (header %q)", again, sc, header)
		}
	})
}
