package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fixedTrace builds a deterministic two-root trace for the exporter
// goldens: every timestamp is pinned, so output must match byte-for-byte.
func fixedTrace() *Tracer {
	tr := New(8)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	r1 := tr.RootAt("request /v1/solve", "req-1", base)
	r1.SetAttr("method", "POST")
	parse := r1.ChildAt("parse", base.Add(10*time.Microsecond))
	parse.SetAttr("nodes", 100)
	parse.EndAt(base.Add(250 * time.Microsecond))
	solve := r1.ChildAt("solve", base.Add(300*time.Microsecond))
	it := solve.ChildAt("iteration 1", base.Add(310*time.Microsecond))
	it.SetAttr("gain", 0.25)
	it.SetAttr("evaluated", int64(100))
	it.EndAt(base.Add(500 * time.Microsecond))
	solve.EndAt(base.Add(510 * time.Microsecond))
	r1.SetAttr("status", 200)
	r1.EndAt(base.Add(600 * time.Microsecond))

	r2 := tr.RootAt("request /v1/stats", "req-2", base.Add(time.Millisecond))
	r2.EndAt(base.Add(time.Millisecond + 50*time.Microsecond))
	return tr
}

const wantChrome = `[{"name":"request /v1/solve","cat":"prefcover","ph":"X","ts":0,"dur":600,"pid":1,"tid":1,"args":{"method":"POST","status":200,"traceID":"req-1"}},
{"name":"parse","cat":"prefcover","ph":"X","ts":10,"dur":240,"pid":1,"tid":1,"args":{"nodes":100,"traceID":"req-1"}},
{"name":"solve","cat":"prefcover","ph":"X","ts":300,"dur":210,"pid":1,"tid":1,"args":{"traceID":"req-1"}},
{"name":"iteration 1","cat":"prefcover","ph":"X","ts":310,"dur":190,"pid":1,"tid":1,"args":{"evaluated":100,"gain":0.25,"traceID":"req-1"}},
{"name":"request /v1/stats","cat":"prefcover","ph":"X","ts":1000,"dur":50,"pid":1,"tid":2,"args":{"traceID":"req-2"}}]
`

// TestWriteChromeGolden pins the exact Chrome trace-event JSON emitted
// for a fixed span tree — the format chrome://tracing and Perfetto load.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != wantChrome {
		t.Errorf("chrome export mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), wantChrome)
	}
	// The golden must itself be valid JSON of the documented shape.
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for i, ev := range events {
		for _, key := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing %q", i, key)
			}
		}
		if ev["ph"] != "X" {
			t.Errorf("event %d ph = %v, want X", i, ev["ph"])
		}
	}
}

const wantTree = `request /v1/solve [req-1] 600µs method=POST status=200
  parse 240µs nodes=100
  solve 210µs
    iteration 1 190µs gain=0.25 evaluated=100
request /v1/stats [req-2] 50µs
`

func TestWriteTreeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedTrace().WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != wantTree {
		t.Errorf("tree export mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), wantTree)
	}
}

// TestWriteChromeEmpty: an empty ring must still be a loadable document.
func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New(1).WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty export = %q, want []", buf.String())
	}
	var events []interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
}

// TestUnfinishedSpans: a child left open at export time inherits its
// subtree's latest end and is flagged, instead of corrupting the timeline
// with a zero end.
func TestUnfinishedSpans(t *testing.T) {
	tr := New(1)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	root := tr.RootAt("r", "", base)
	open := root.ChildAt("open", base.Add(10*time.Microsecond))
	inner := open.ChildAt("inner", base.Add(20*time.Microsecond))
	inner.EndAt(base.Add(90 * time.Microsecond))
	// open is never ended.
	root.EndAt(base.Add(100 * time.Microsecond))

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"unfinished":true`) {
		t.Errorf("open span not flagged:\n%s", out)
	}
	if !strings.Contains(out, `"name":"open","cat":"prefcover","ph":"X","ts":10,"dur":80`) {
		t.Errorf("open span did not inherit its subtree end:\n%s", out)
	}
}

func TestWriteChromeSpanNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeSpan(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("nil span export = %q", buf.String())
	}
}
