package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// ChromeEvent is one Chrome trace-event: "ph":"X" complete events for
// spans, "ph":"i" instant events for span annotations. Times are
// microseconds relative to an epoch — by default the earliest root span,
// which is what the chrome://tracing and Perfetto loaders expect; the
// distributed-trace merge path uses an explicit epoch so events from two
// processes land on one timeline.
type ChromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat"`
	Ph    string                 `json:"ph"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// WriteChrome renders the completed traces in Chrome trace-event JSON
// (array form), one event per line. Load the output in chrome://tracing
// or https://ui.perfetto.dev. Each root trace gets its own tid so
// concurrent requests render as separate tracks.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return writeChromeSpans(w, t.Snapshot(), time.Time{})
}

// WriteChromeSpan renders a single trace tree (CLI one-shot dumps).
func WriteChromeSpan(w io.Writer, root *Span) error {
	if root == nil {
		return writeChromeSpans(w, nil, time.Time{})
	}
	return writeChromeSpans(w, []*Span{root}, time.Time{})
}

// ChromeEvents flattens the trace trees into events with timestamps
// relative to epoch. A zero epoch means the earliest root start (the
// WriteChrome default); time.Unix(0, 0) yields absolute Unix-epoch
// microseconds, which is what lets a client rebase server-side events
// onto its own timeline.
func ChromeEvents(roots []*Span, epoch time.Time) []ChromeEvent {
	if epoch.IsZero() {
		for _, r := range roots {
			if epoch.IsZero() || r.Start().Before(epoch) {
				epoch = r.Start()
			}
		}
	}
	var events []ChromeEvent
	for i, r := range roots {
		events = appendChrome(events, r, epoch, i+1)
	}
	return events
}

// WriteChromeEvents renders pre-built events as the array-form JSON
// document, one event per line.
func WriteChromeEvents(w io.Writer, events []ChromeEvent) error {
	if _, err := io.WriteString(w, "["); err != nil {
		return err
	}
	for i, ev := range events {
		sep := ",\n"
		if i == 0 {
			sep = ""
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s", sep, b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

func writeChromeSpans(w io.Writer, roots []*Span, epoch time.Time) error {
	return WriteChromeEvents(w, ChromeEvents(roots, epoch))
}

// effectiveEnd returns the span end, falling back to the latest child end
// (then the start) for spans still open at export time.
func (s *Span) effectiveEnd() time.Time {
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if !end.IsZero() {
		return end
	}
	end = s.start
	for _, c := range s.Children() {
		if ce := c.effectiveEnd(); ce.After(end) {
			end = ce
		}
	}
	return end
}

func appendChrome(events []ChromeEvent, s *Span, epoch time.Time, tid int) []ChromeEvent {
	args := make(map[string]interface{})
	if id := s.TraceID(); id != "" {
		args["traceID"] = id
	}
	// Distributed-trace lineage rides along only when present, so purely
	// local traces export byte-identically to the pre-propagation format.
	if id := s.SpanID(); id != "" {
		args["spanId"] = id
	}
	if id := s.ParentSpanID(); id != "" {
		args["parentSpanId"] = id
	}
	for _, a := range s.Attrs() {
		args[a.Key] = a.Value
	}
	if !s.Ended() {
		args["unfinished"] = true
	}
	if len(args) == 0 {
		args = nil
	}
	events = append(events, ChromeEvent{
		Name: s.Name(),
		Cat:  "prefcover",
		Ph:   "X",
		TS:   micros(s.Start().Sub(epoch)),
		Dur:  micros(s.effectiveEnd().Sub(s.Start())),
		PID:  1,
		TID:  tid,
		Args: args,
	})
	for _, ev := range s.Events() {
		events = append(events, ChromeEvent{
			Name:  ev.Name,
			Cat:   "prefcover",
			Ph:    "i",
			TS:    micros(ev.Time.Sub(epoch)),
			PID:   1,
			TID:   tid,
			Scope: "t",
		})
	}
	for _, c := range s.Children() {
		events = appendChrome(events, c, epoch, tid)
	}
	return events
}

func micros(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return float64(d.Nanoseconds()) / 1e3
}

// WriteTree renders every completed trace as an indented human-readable
// summary, newest last.
func (t *Tracer) WriteTree(w io.Writer) error {
	for _, r := range t.Snapshot() {
		if err := WriteTreeSpan(w, r); err != nil {
			return err
		}
	}
	return nil
}

// WriteTreeSpan renders one trace tree.
func WriteTreeSpan(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	return writeTree(w, root, 0)
}

func writeTree(w io.Writer, s *Span, depth int) error {
	var sb strings.Builder
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(s.Name())
	if depth == 0 && s.TraceID() != "" {
		fmt.Fprintf(&sb, " [%s]", s.TraceID())
	}
	fmt.Fprintf(&sb, " %s", s.effectiveEnd().Sub(s.Start()))
	for _, a := range s.Attrs() {
		fmt.Fprintf(&sb, " %s=%s", a.Key, a.render())
	}
	sb.WriteByte('\n')
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := writeTree(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
