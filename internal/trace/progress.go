package trace

import (
	"fmt"
	"time"

	"prefcover/internal/greedy"
)

// IterationRecorder adapts the solver's existing ProgressEvent stream into
// per-iteration child spans of solveSpan, so strategies need no tracing
// plumbing of their own. Each event closes a span covering the time since
// the previous event (or since solveSpan started, for the first pick),
// carrying the Section 5.4 cost accounting as attributes: candidates
// evaluated this iteration and lazy-heap re-evaluations.
//
// The returned hook must be called from a single goroutine, which matches
// the Options.Progress contract (the solver notifies synchronously from
// its own goroutine). A nil solveSpan yields a no-op hook.
func IterationRecorder(solveSpan *Span) func(greedy.ProgressEvent) {
	if solveSpan == nil {
		return func(greedy.ProgressEvent) {}
	}
	last := solveSpan.Start()
	return func(ev greedy.ProgressEvent) {
		now := time.Now()
		sp := solveSpan.ChildAt(fmt.Sprintf("iteration %d", ev.Step), last)
		sp.SetAttr("step", ev.Step)
		sp.SetAttr("node", int64(ev.Node))
		sp.SetAttr("strategy", ev.Strategy)
		sp.SetAttr("gain", ev.Gain)
		sp.SetAttr("cover", ev.Cover)
		sp.SetAttr("evaluated", ev.Evaluated)
		sp.SetAttr("reevaluated", ev.Reevaluated)
		sp.SetAttr("totalEvals", ev.TotalEvals)
		sp.EndAt(now)
		last = now
	}
}
