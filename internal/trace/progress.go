package trace

import (
	"fmt"
	"time"

	"prefcover/internal/greedy"
)

// IterationRecorder adapts the solver's existing ProgressEvent stream into
// per-iteration child spans of solveSpan, so strategies need no tracing
// plumbing of their own. Each event closes a span covering the time since
// the previous event (or since solveSpan started, for the first pick),
// carrying the Section 5.4 cost accounting as attributes: candidates
// evaluated this iteration and lazy-heap re-evaluations.
//
// The returned hook must be called from a single goroutine, which matches
// the Options.Progress contract (the solver notifies synchronously from
// its own goroutine). A nil solveSpan yields a no-op hook.
func IterationRecorder(solveSpan *Span) func(greedy.ProgressEvent) {
	return IterationRecorderStages(solveSpan, nil)
}

// SolveStage* name the per-iteration solver stages observed by
// IterationRecorderStages — the label values of the server's
// prefcover_solve_stage_seconds histogram.
const (
	SolveStageGainEval         = "gain_eval"
	SolveStageNodeCommit       = "node_commit"
	SolveStageProgressCallback = "progress_callback"
)

// IterationRecorderStages is IterationRecorder with a per-stage duration
// observer: observe (when non-nil) receives the gain-evaluation and
// node-commit wall time reported by the solver for each iteration, plus
// the time this hook itself spends recording (the progress-callback
// overhead) — so metrics can show where solver wall time goes without
// parsing traces. A nil solveSpan with a non-nil observe still observes
// stage durations; both nil yields a no-op hook.
func IterationRecorderStages(solveSpan *Span, observe func(stage string, seconds float64)) func(greedy.ProgressEvent) {
	if solveSpan == nil && observe == nil {
		return func(greedy.ProgressEvent) {}
	}
	last := solveSpan.Start()
	return func(ev greedy.ProgressEvent) {
		now := time.Now()
		if solveSpan != nil {
			if last.IsZero() {
				last = now
			}
			sp := solveSpan.ChildAt(fmt.Sprintf("iteration %d", ev.Step), last)
			sp.SetAttr("step", ev.Step)
			sp.SetAttr("node", int64(ev.Node))
			sp.SetAttr("strategy", ev.Strategy)
			sp.SetAttr("gain", ev.Gain)
			sp.SetAttr("cover", ev.Cover)
			sp.SetAttr("evaluated", ev.Evaluated)
			sp.SetAttr("reevaluated", ev.Reevaluated)
			sp.SetAttr("totalEvals", ev.TotalEvals)
			if ev.EvalTime > 0 {
				sp.SetAttr("evalSeconds", ev.EvalTime.Seconds())
			}
			if ev.CommitTime > 0 {
				sp.SetAttr("commitSeconds", ev.CommitTime.Seconds())
			}
			if ev.MaxRemainingGain >= 0 {
				sp.SetAttr("maxRemainingGain", ev.MaxRemainingGain)
			}
			sp.EndAt(now)
			last = now
		}
		if observe != nil {
			observe(SolveStageGainEval, ev.EvalTime.Seconds())
			observe(SolveStageNodeCommit, ev.CommitTime.Seconds())
			observe(SolveStageProgressCallback, time.Since(now).Seconds())
		}
	}
}
