// Package trace is a zero-dependency solve-trace flight recorder: a span
// recorder in the Dapper tradition, sized for a single process. A Tracer
// hands out root spans (one per request or per CLI run); spans nest, carry
// ordered key/value attributes, and are safe to create and end from
// concurrent goroutines. Completed root spans land in a bounded ring, so
// always-on recording in a long-lived daemon costs a fixed amount of
// memory — when the ring is full the oldest trace is evicted and counted
// in Dropped.
//
// Two exporters read the ring: WriteChrome emits Chrome trace-event JSON
// (the "ph":"X" complete-event form), loadable in chrome://tracing and
// Perfetto, and WriteTree prints an indented human-readable summary.
//
// The package is nil-tolerant by design: every Span method is a no-op on a
// nil receiver and FromContext returns nil when no span was installed, so
// instrumented code paths need no "is tracing on?" branches.
package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records completed root spans into a bounded ring.
type Tracer struct {
	capacity int
	ids      atomic.Int64

	mu      sync.Mutex
	roots   []*Span // completed root spans, oldest first
	dropped int64
}

// DefaultCapacity is the ring size used when New is given a non-positive
// capacity.
const DefaultCapacity = 64

// New returns a Tracer retaining at most capacity completed root spans.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{capacity: capacity}
}

// Root starts a root span. traceID tags the whole tree (the server uses
// the request ID); empty means untagged. The trace is recorded into the
// ring when End is called on the returned span.
func (t *Tracer) Root(name, traceID string) *Span {
	return t.RootAt(name, traceID, time.Now())
}

// RootAt is Root with an explicit start time (exporters and tests).
func (t *Tracer) RootAt(name, traceID string, start time.Time) *Span {
	return &Span{tracer: t, id: t.ids.Add(1), name: name, traceID: traceID, start: start}
}

// RootContext starts a root span that continues a distributed trace: the
// span is tagged with sc.TraceID, parented (across the process or queue
// boundary) to sc.SpanID when one is set, and minted its own span ID so
// the trace can be propagated onward. Use NewSpanContext() to originate a
// fresh trace. The trace is recorded into the ring when End is called.
func (t *Tracer) RootContext(name string, sc SpanContext) *Span {
	return t.RootContextAt(name, sc, time.Now())
}

// RootContextAt is RootContext with an explicit start time.
func (t *Tracer) RootContextAt(name string, sc SpanContext, start time.Time) *Span {
	return &Span{
		tracer: t, id: t.ids.Add(1), name: name,
		traceID: sc.TraceID, spanID: newSpanID(), parentSpanID: sc.SpanID,
		start: start,
	}
}

// record admits a completed root trace, evicting the oldest beyond
// capacity.
func (t *Tracer) record(root *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots = append(t.roots, root)
	if over := len(t.roots) - t.capacity; over > 0 {
		t.dropped += int64(over)
		t.roots = t.roots[:copy(t.roots, t.roots[over:])]
	}
}

// Snapshot returns the completed root spans, oldest first.
func (t *Tracer) Snapshot() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// Dropped counts root traces evicted from the ring so far.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Attr is one span attribute. Value is a string, bool, int64 or float64
// (SetAttr normalizes the smaller integer kinds).
type Attr struct {
	Key   string
	Value interface{}
}

// render formats an attribute value for the tree exporter.
func (a Attr) render() string {
	switch v := a.Value.(type) {
	case string:
		return v
	case float64:
		return strconv.FormatFloat(v, 'g', 6, 64)
	default:
		return fmt.Sprint(v)
	}
}

// Span is one timed operation. Create children with Child/ChildAt, attach
// attributes with SetAttr, and call End exactly once (later Ends are
// ignored). All methods are safe for concurrent use and no-ops on a nil
// receiver.
type Span struct {
	tracer  *Tracer
	id      int64
	name    string
	traceID string
	// spanID and parentSpanID are W3C-format identifiers, set only on
	// spans belonging to a distributed trace (RootContext and its
	// descendants); purely local traces leave them empty and export
	// exactly as before.
	spanID       string
	parentSpanID string
	start        time.Time
	parent       *Span

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	events   []Event
	children []*Span
}

// Event is a timestamped point annotation on a span — cache hits,
// coalesced waits, retry give-ups — exported as Chrome instant events.
type Event struct {
	Name string
	Time time.Time
}

// Child starts a sub-span beginning now.
func (s *Span) Child(name string) *Span {
	return s.ChildAt(name, time.Now())
}

// ChildAt starts a sub-span with an explicit start time, letting callers
// that observe an operation only at its end (the solver's progress stream)
// backfill the span boundary.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, name: name, traceID: s.traceID, start: start, parent: s}
	if s.spanID != "" {
		// Distributed trace: every span carries its own ID and a parent
		// link, so cross-process merges can reconstruct the tree.
		c.spanID = newSpanID()
		c.parentSpanID = s.spanID
	}
	if s.tracer != nil {
		c.id = s.tracer.ids.Add(1)
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr attaches (or appends; keys are not deduplicated) an attribute.
// Integer kinds are widened to int64 so exporters see a closed value set.
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	switch v := value.(type) {
	case int:
		value = int64(v)
	case int32:
		value = int64(v)
	case uint:
		value = int64(v)
	case uint32:
		value = int64(v)
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span at time.Now. Ending a root span records its tree in
// the tracer ring; ending twice is a no-op.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt is End with an explicit end time.
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = t
	s.mu.Unlock()
	if s.parent == nil && s.tracer != nil {
		s.tracer.record(s)
	}
}

// AddEvent attaches a timestamped point annotation.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, Event{Name: name, Time: time.Now()})
	s.mu.Unlock()
}

// Events returns a copy of the point annotations in insertion order.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Context returns the span's propagation identity: its trace ID and its
// own span ID, sampled. Only spans of a distributed trace (RootContext
// lineage) have one; everything else returns the invalid zero value,
// which injects nothing.
func (s *Span) Context() SpanContext {
	if s == nil || s.spanID == "" {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID, Sampled: true}
}

// SpanID returns the span's W3C span ID ("" for purely local spans).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// ParentSpanID returns the W3C span ID this span is parented to — for a
// RootContext span that is the remote caller's span, for descendants the
// in-process parent ("" for purely local spans and originating roots).
func (s *Span) ParentSpanID() string {
	if s == nil {
		return ""
	}
	return s.parentSpanID
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the trace tag inherited from the root span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// Start returns the span start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Ended reports whether End was called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// Duration returns end - start, or 0 while the span is still open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Children returns a copy of the direct sub-spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Attrs returns a copy of the attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Attr returns the value of the first attribute with the key, or nil.
func (s *Span) Attr(key string) interface{} {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// NumSpans counts the span and all descendants.
func (s *Span) NumSpans() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children() {
		n += c.NumSpans()
	}
	return n
}
