// Package cover implements the cover function C(S) of the Preference Cover
// problem for both variants (paper Definitions 2.1 and 2.2), together with
// the incremental marginal-gain machinery of the paper's Algorithms 2-5.
//
// An Engine maintains the retained set S and the array I (one entry per
// node) where I[v] is the probability that v is both requested and matched
// by S; sum(I) == C(S). Gain(v) returns the marginal increase of C(S) from
// retaining v in O(d_in(v)), and Add(v) commits it, updating I and C(S) —
// exactly the Gain/AddNode procedures of the paper, with the Independent
// variant's O(1)-per-neighbor update W(u,v)*(W(u)-I[u]).
package cover

import (
	"fmt"
	"math"

	"prefcover/internal/graph"
)

// Engine tracks C(S) incrementally for one variant. Engines are not safe
// for concurrent mutation, but Gain is read-only and may be called from
// multiple goroutines between Add calls — this is what makes the paper's
// parallel argmax possible.
type Engine struct {
	g        *graph.Graph
	variant  graph.Variant
	retained []bool
	covered  []float64 // the paper's I array
	total    float64   // C(S)
	size     int       // |S|
}

// NewEngine returns an engine with S = {} for the given variant.
func NewEngine(g *graph.Graph, variant graph.Variant) *Engine {
	return &Engine{
		g:        g,
		variant:  variant,
		retained: make([]bool, g.NumNodes()),
		covered:  make([]float64, g.NumNodes()),
	}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Variant returns the engine's variant.
func (e *Engine) Variant() graph.Variant { return e.variant }

// Cover returns C(S) for the current retained set.
func (e *Engine) Cover() float64 { return e.total }

// Size returns |S|.
func (e *Engine) Size() int { return e.size }

// Retained reports whether v is in S.
func (e *Engine) Retained(v int32) bool { return e.retained[v] }

// CoveredWeight returns I[v]: the probability v is requested and matched.
func (e *Engine) CoveredWeight(v int32) float64 { return e.covered[v] }

// I returns a copy of the I array (paper Section 3.2, "Additional
// Advantages": I[u]/W(u) is the per-item coverage report).
func (e *Engine) I() []float64 {
	out := make([]float64, len(e.covered))
	copy(out, e.covered)
	return out
}

// ItemCoverage returns I[v]/W(v), the probability a request for v is
// matched; 1 for retained items, and defined as 1 for zero-weight items
// (there is nothing to cover).
func (e *Engine) ItemCoverage(v int32) float64 {
	w := e.g.NodeWeight(v)
	if w == 0 {
		return 1
	}
	return ClampCoverage(e.covered[v] / w)
}

// ClampCoverage snaps a coverage ratio into [0,1]. Incremental float noise
// can push I[v] a hair past W(v) (clamped to 1), and near-zero or poisoned
// weights can make the ratio Inf, negative, or NaN — a NaN ratio carries no
// coverage evidence, so it clamps to 0 rather than leaking into reports
// where it would poison C(S) aggregates.
func ClampCoverage(cov float64) float64 {
	switch {
	case math.IsNaN(cov):
		return 0
	case cov > 1: // includes +Inf
		return 1
	case cov < 0: // includes -Inf
		return 0
	}
	return cov
}

// Reset restores S = {}.
func (e *Engine) Reset() {
	for i := range e.retained {
		e.retained[i] = false
		e.covered[i] = 0
	}
	e.total = 0
	e.size = 0
}

// Gain returns the marginal gain of adding v to S (Algorithms 2 and 4).
// Calling Gain on a retained node returns 0.
func (e *Engine) Gain(v int32) float64 {
	if e.retained[v] {
		return 0
	}
	// Retaining v covers the remainder of its own weight...
	g := e.g.NodeWeight(v) - e.covered[v]
	// ...plus, for every non-retained in-neighbor u, the increase of u's
	// cover. The two variants differ only in this per-neighbor term.
	srcs, ws := e.g.InEdges(v)
	switch e.variant {
	case graph.Normalized:
		for i, u := range srcs {
			if e.retained[u] || u == v {
				continue
			}
			g += e.g.NodeWeight(u) * ws[i]
		}
	default: // graph.Independent
		for i, u := range srcs {
			if e.retained[u] || u == v {
				continue
			}
			// I_{S∪v}[u] - I_S[u] simplifies to W(u,v)*(W(u)-I_S[u]):
			// the still-uncovered probability mass of u, matched by v
			// independently with probability W(u,v).
			g += ws[i] * (e.g.NodeWeight(u) - e.covered[u])
		}
	}
	return g
}

// Add commits v into S (Algorithms 3 and 5) and returns the realized gain.
// Adding an already-retained node is a no-op returning 0.
func (e *Engine) Add(v int32) float64 {
	if e.retained[v] {
		return 0
	}
	e.retained[v] = true
	e.size++
	delta := e.g.NodeWeight(v) - e.covered[v]
	e.covered[v] = e.g.NodeWeight(v)
	srcs, ws := e.g.InEdges(v)
	switch e.variant {
	case graph.Normalized:
		for i, u := range srcs {
			if e.retained[u] || u == v {
				continue
			}
			d := e.g.NodeWeight(u) * ws[i]
			e.covered[u] += d
			delta += d
		}
	default: // graph.Independent
		for i, u := range srcs {
			if e.retained[u] || u == v {
				continue
			}
			d := ws[i] * (e.g.NodeWeight(u) - e.covered[u])
			e.covered[u] += d
			delta += d
		}
	}
	e.total += delta
	return delta
}

// Evaluate computes C(S) from scratch (no incremental state), directly from
// the formulas of Definitions 2.1/2.2. It is the oracle the incremental
// engine is tested against, and what the brute-force baseline uses.
func Evaluate(g *graph.Graph, variant graph.Variant, retained []bool) float64 {
	var total float64
	n := int32(g.NumNodes())
	for v := int32(0); v < n; v++ {
		total += coverOf(g, variant, retained, v)
	}
	return total
}

// EvaluateSet is Evaluate for a set given as a node list.
func EvaluateSet(g *graph.Graph, variant graph.Variant, set []int32) (float64, error) {
	retained := make([]bool, g.NumNodes())
	for _, v := range set {
		if v < 0 || int(v) >= g.NumNodes() {
			return 0, fmt.Errorf("cover: set references unknown node %d", v)
		}
		retained[v] = true
	}
	return Evaluate(g, variant, retained), nil
}

// coverOf returns W(v) * P(request for v is matched by S).
func coverOf(g *graph.Graph, variant graph.Variant, retained []bool, v int32) float64 {
	w := g.NodeWeight(v)
	if retained[v] {
		return w
	}
	if w == 0 {
		return 0
	}
	dsts, ws := g.OutEdges(v)
	switch variant {
	case graph.Normalized:
		var p float64
		for i, u := range dsts {
			if retained[u] {
				p += ws[i]
			}
		}
		if p > 1 {
			p = 1
		}
		return w * p
	default: // graph.Independent
		miss := 1.0
		for i, u := range dsts {
			if retained[u] {
				miss *= 1 - ws[i]
			}
		}
		return w * (1 - miss)
	}
}

// PerItemCoverage returns, for every node, the probability its requests are
// matched by the given set (1 for retained or zero-weight nodes). This is
// the metadata column of the paper's Figure 2 output.
func PerItemCoverage(g *graph.Graph, variant graph.Variant, set []int32) ([]float64, error) {
	retained := make([]bool, g.NumNodes())
	for _, v := range set {
		if v < 0 || int(v) >= g.NumNodes() {
			return nil, fmt.Errorf("cover: set references unknown node %d", v)
		}
		retained[v] = true
	}
	out := make([]float64, g.NumNodes())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		w := g.NodeWeight(v)
		if retained[v] || w == 0 {
			out[v] = 1
			continue
		}
		out[v] = coverOf(g, variant, retained, v) / w
	}
	return out, nil
}

// CheckConsistency verifies that the engine's incremental state matches a
// from-scratch evaluation within tolerance; used by tests and available for
// long-running callers that want a self-check.
func (e *Engine) CheckConsistency(tol float64) error {
	fresh := Evaluate(e.g, e.variant, e.retained)
	if math.Abs(fresh-e.total) > tol {
		return fmt.Errorf("cover: incremental C(S)=%.12f but fresh evaluation=%.12f", e.total, fresh)
	}
	var isum float64
	for _, x := range e.covered {
		isum += x
	}
	if math.Abs(isum-e.total) > tol {
		return fmt.Errorf("cover: sum(I)=%.12f but C(S)=%.12f", isum, e.total)
	}
	return nil
}
