package cover_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	. "prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
)

const tol = 1e-9

func bothVariants(t *testing.T, f func(t *testing.T, variant graph.Variant)) {
	t.Run("independent", func(t *testing.T) { f(t, graph.Independent) })
	t.Run("normalized", func(t *testing.T) { f(t, graph.Normalized) })
}

func TestEmptySetCoversNothing(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		g := fixture.Figure1Graph()
		e := NewEngine(g, variant)
		if e.Cover() != 0 {
			t.Errorf("empty cover = %g", e.Cover())
		}
		if e.Size() != 0 {
			t.Errorf("empty size = %d", e.Size())
		}
	})
}

func TestFullSetCoversEverything(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		g := fixture.Figure1Graph()
		e := NewEngine(g, variant)
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			e.Add(v)
		}
		if math.Abs(e.Cover()-1) > tol {
			t.Errorf("C(V) = %g, want 1", e.Cover())
		}
	})
}

// TestExample11Covers verifies the worked numbers of the paper's Example
// 1.1 on the Figure 1 graph: {A,B} covers 77%, {B,D} covers 87.3%.
func TestExample11Covers(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		g := fixture.Figure1Graph()
		idx := func(label string) int32 {
			v, ok := g.Lookup(label)
			if !ok {
				t.Fatalf("missing label %s", label)
			}
			return v
		}
		ab, err := EvaluateSet(g, variant, []int32{idx("A"), idx("B")})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ab-fixture.Fig1CoverTopK) > tol {
			t.Errorf("C({A,B}) = %g, want %g", ab, fixture.Fig1CoverTopK)
		}
		bd, err := EvaluateSet(g, variant, []int32{idx("B"), idx("D")})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bd-fixture.Fig1CoverBD) > tol {
			t.Errorf("C({B,D}) = %g, want %g", bd, fixture.Fig1CoverBD)
		}
	})
}

// TestExample32Gains verifies the greedy gains of paper Example 3.2: first
// B with gain 0.66, then D with gain 0.213.
func TestExample32Gains(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		g := fixture.Figure1Graph()
		e := NewEngine(g, variant)
		b, _ := g.Lookup("B")
		d, _ := g.Lookup("D")
		if gain := e.Gain(b); math.Abs(gain-fixture.Fig1GainB) > tol {
			t.Errorf("Gain(B) = %g, want %g", gain, fixture.Fig1GainB)
		}
		e.Add(b)
		if gain := e.Gain(d); math.Abs(gain-fixture.Fig1GainD) > tol {
			t.Errorf("Gain(D) after B = %g, want %g", gain, fixture.Fig1GainD)
		}
		// After B, D must be the argmax among remaining nodes.
		bestV, bestG := int32(-1), -1.0
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if e.Retained(v) {
				continue
			}
			if gv := e.Gain(v); gv > bestG {
				bestV, bestG = v, gv
			}
		}
		if bestV != d {
			t.Errorf("argmax after B = %s, want D", g.Label(bestV))
		}
	})
}

// TestFigure2Coverages verifies the per-item coverages quoted for the
// system architecture figure: with {B,D} retained, C is covered 100%, A
// 67%, E 90%.
func TestFigure2Coverages(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		g := fixture.Figure1Graph()
		b, _ := g.Lookup("B")
		d, _ := g.Lookup("D")
		cov, err := PerItemCoverage(g, variant, []int32{b, d})
		if err != nil {
			t.Fatal(err)
		}
		expect := map[string]float64{
			"A": fixture.Fig1CoverageA, // 2/3 via A->B
			"B": 1,
			"C": 1, // fully covered by B
			"D": 1,
			"E": fixture.Fig1CoverageE, // 0.9 via E->D
		}
		for label, want := range expect {
			v, _ := g.Lookup(label)
			if got := cov[v]; math.Abs(got-want) > tol {
				t.Errorf("coverage(%s) = %g, want %g", label, got, want)
			}
		}
	})
}

func TestGainMatchesAddDelta(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 2+rng.Intn(30), 4, variant)
			e := NewEngine(g, variant)
			order := rng.Perm(g.NumNodes())
			for _, vi := range order {
				v := int32(vi)
				gain := e.Gain(v)
				delta := e.Add(v)
				if math.Abs(gain-delta) > tol {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})
}

func TestIncrementalMatchesEvaluate(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 2+rng.Intn(30), 4, variant)
			e := NewEngine(g, variant)
			for _, vi := range rng.Perm(g.NumNodes())[:1+rng.Intn(g.NumNodes())] {
				e.Add(int32(vi))
			}
			return e.CheckConsistency(1e-9) == nil
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})
}

func TestMonotonicityProperty(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 2+rng.Intn(25), 4, variant)
			e := NewEngine(g, variant)
			prev := 0.0
			for _, vi := range rng.Perm(g.NumNodes()) {
				e.Add(int32(vi))
				if e.Cover() < prev-tol {
					return false
				}
				prev = e.Cover()
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})
}

// TestSubmodularityProperty checks f(S+v)-f(S) >= f(T+v)-f(T) for random
// nested S subset T and v outside T, for both variants (the Independent
// proof is Theorem 4.1; Normalized is linear hence modular, a special
// case).
func TestSubmodularityProperty(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 3+rng.Intn(25), 4, variant)
			n := g.NumNodes()
			perm := rng.Perm(n)
			sSize := rng.Intn(n - 1)
			tSize := sSize + rng.Intn(n-sSize-1)
			v := int32(perm[n-1])
			retainedS := make([]bool, n)
			retainedT := make([]bool, n)
			for i := 0; i < tSize; i++ {
				retainedT[perm[i]] = true
				if i < sSize {
					retainedS[perm[i]] = true
				}
			}
			fS := Evaluate(g, variant, retainedS)
			fT := Evaluate(g, variant, retainedT)
			retainedS[v] = true
			retainedT[v] = true
			gainS := Evaluate(g, variant, retainedS) - fS
			gainT := Evaluate(g, variant, retainedT) - fT
			return gainS >= gainT-tol
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Error(err)
		}
	})
}

func TestNonnegativityProperty(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 2+rng.Intn(25), 4, variant)
			set := graphtest.RandomSet(rng, g, rng.Intn(g.NumNodes()+1))
			c, err := EvaluateSet(g, variant, set)
			return err == nil && c >= 0 && c <= 1+tol
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})
}

// TestNormalizedLowerThanIndependentNever: for identical graphs the
// Independent cover is >= the Normalized cover (OR of independent events
// vs disjoint sum of the same probabilities... actually the independent
// noisy-OR is <= the sum). Verify the known inequality direction:
// 1 - prod(1-w_i) <= sum(w_i).
func TestVariantInequalityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 2+rng.Intn(25), 4, graph.Normalized)
		set := graphtest.RandomSet(rng, g, rng.Intn(g.NumNodes()+1))
		ind, err1 := EvaluateSet(g, graph.Independent, set)
		nor, err2 := EvaluateSet(g, graph.Normalized, set)
		return err1 == nil && err2 == nil && ind <= nor+tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAddIdempotent(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		g := fixture.Figure1Graph()
		e := NewEngine(g, variant)
		b, _ := g.Lookup("B")
		first := e.Add(b)
		if first <= 0 {
			t.Fatalf("first add gain = %g", first)
		}
		if second := e.Add(b); second != 0 {
			t.Errorf("second add gain = %g, want 0", second)
		}
		if g := e.Gain(b); g != 0 {
			t.Errorf("gain of retained = %g, want 0", g)
		}
		if e.Size() != 1 {
			t.Errorf("size = %d", e.Size())
		}
	})
}

func TestReset(t *testing.T) {
	g := fixture.Figure1Graph()
	e := NewEngine(g, graph.Independent)
	e.Add(0)
	e.Add(3)
	e.Reset()
	if e.Cover() != 0 || e.Size() != 0 {
		t.Fatalf("after reset: cover=%g size=%d", e.Cover(), e.Size())
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if e.Retained(v) || e.CoveredWeight(v) != 0 {
			t.Fatalf("node %d not reset", v)
		}
	}
}

func TestEvaluateSetErrors(t *testing.T) {
	g := fixture.Figure1Graph()
	if _, err := EvaluateSet(g, graph.Independent, []int32{99}); err == nil {
		t.Error("want unknown-node error")
	}
	if _, err := PerItemCoverage(g, graph.Independent, []int32{-1}); err == nil {
		t.Error("want unknown-node error")
	}
}

func TestItemCoverageZeroWeightNode(t *testing.T) {
	b := graph.NewBuilder(2, 1)
	b.AddNode(1.0)
	b.AddNode(0.0)
	b.AddEdge(0, 1, 0.5)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, graph.Independent)
	if got := e.ItemCoverage(1); got != 1 {
		t.Errorf("zero-weight item coverage = %g, want 1", got)
	}
}

func TestIndependentMultipleAlternativesCompose(t *testing.T) {
	// v has two retained alternatives with w=0.5 each: Independent cover
	// of v is 1-(0.5)^2 = 0.75; Normalized is 1.0 (0.5+0.5).
	b := graph.NewBuilder(3, 2)
	b.AddNode(0.5)
	b.AddNode(0.25)
	b.AddNode(0.25)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.5)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ind, _ := EvaluateSet(g, graph.Independent, []int32{1, 2})
	want := 0.25 + 0.25 + 0.5*0.75
	if math.Abs(ind-want) > tol {
		t.Errorf("independent = %g, want %g", ind, want)
	}
	nor, _ := EvaluateSet(g, graph.Normalized, []int32{1, 2})
	if math.Abs(nor-1.0) > tol {
		t.Errorf("normalized = %g, want 1", nor)
	}
}

func TestSelfLoopIgnoredByEngine(t *testing.T) {
	// Self edges arise in VC_k-reduced instances; the engine must treat
	// them as inert (a retained node already covers itself fully).
	b := graph.NewBuilder(2, 2)
	b.AddNode(0.6)
	b.AddNode(0.4)
	b.AddEdge(0, 0, 0.5)
	b.AddEdge(0, 1, 0.5)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		e := NewEngine(g, variant)
		if gain := e.Gain(0); math.Abs(gain-0.6) > tol {
			t.Errorf("variant %v: Gain(0) = %g, want 0.6 (self loop inert)", variant, gain)
		}
		e.Add(0)
		if math.Abs(e.Cover()-0.6) > tol {
			t.Errorf("variant %v: cover = %g", variant, e.Cover())
		}
		if err := e.CheckConsistency(1e-9); err != nil {
			t.Errorf("variant %v: %v", variant, err)
		}
	}
}

func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	g := fixture.Figure1Graph()
	e := NewEngine(g, graph.Independent)
	b, _ := g.Lookup("B")
	e.Add(b)
	if err := e.CheckConsistency(1e-9); err != nil {
		t.Fatalf("healthy engine flagged: %v", err)
	}
}

func TestEngineAccessors(t *testing.T) {
	g := fixture.Figure1Graph()
	e := NewEngine(g, graph.Normalized)
	if e.Graph() != g {
		t.Error("Graph() identity")
	}
	if e.Variant() != graph.Normalized {
		t.Error("Variant()")
	}
	b, _ := g.Lookup("B")
	e.Add(b)
	i := e.I()
	var sum float64
	for _, x := range i {
		sum += x
	}
	if math.Abs(sum-e.Cover()) > tol {
		t.Errorf("sum(I) = %g != C(S) = %g", sum, e.Cover())
	}
	// Mutating the copy must not affect the engine.
	i[0] = 42
	if e.CoveredWeight(0) == 42 {
		t.Error("I() aliases engine state")
	}
}
