package clickstream_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	. "prefcover/internal/clickstream"
)

func sampleSessions() []Session {
	return []Session{
		{ID: "s1", Purchase: "a", Clicks: []string{"b", "c"}},
		{ID: "s2", Purchase: "b", Clicks: []string{"a"}},
		{ID: "s3", Purchase: "a", Clicks: nil},
		{ID: "s4", Clicks: []string{"a", "d"}}, // browse-only
		{ID: "s5", Purchase: "c", Clicks: []string{"c", "b", "b"}},
	}
}

func TestAlternativeClicks(t *testing.T) {
	s := Session{Purchase: "x", Clicks: []string{"x", "y", "y", "z", ""}}
	alts := s.AlternativeClicks(nil)
	if len(alts) != 2 || alts[0] != "y" || alts[1] != "z" {
		t.Fatalf("alts = %v", alts)
	}
	// Scratch reuse keeps the same backing array.
	alts2 := s.AlternativeClicks(alts)
	if len(alts2) != 2 {
		t.Fatalf("reused alts = %v", alts2)
	}
}

func TestSessionValidate(t *testing.T) {
	good := Session{ID: "s", Clicks: []string{"a"}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid session rejected: %v", err)
	}
	bad := Session{ID: "s", Clicks: []string{""}}
	if err := bad.Validate(); err == nil {
		t.Error("empty click should fail")
	}
}

func TestStoreIteration(t *testing.T) {
	st := NewStore(sampleSessions())
	if st.Len() != 5 {
		t.Fatalf("Len = %d", st.Len())
	}
	count := 0
	for {
		_, err := st.Next()
		if err == ErrEOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 5 {
		t.Fatalf("iterated %d", count)
	}
	// Exhausted until Reset.
	if _, err := st.Next(); err != ErrEOF {
		t.Fatal("want ErrEOF after exhaustion")
	}
	st.Reset()
	if _, err := st.Next(); err != nil {
		t.Fatal("reset should rewind")
	}
}

func TestFilterPurchases(t *testing.T) {
	st := NewStore(sampleSessions())
	p := st.FilterPurchases()
	if p.Len() != 4 {
		t.Fatalf("purchases = %d, want 4", p.Len())
	}
	for _, s := range p.Sessions() {
		if !s.HasPurchase() {
			t.Fatal("browse-only session leaked")
		}
	}
}

func TestCollectStats(t *testing.T) {
	st := NewStore(sampleSessions())
	stats, err := CollectStats(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 5 || stats.Purchases != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	// Items: a,b,c,d.
	if stats.Items != 4 {
		t.Errorf("Items = %d, want 4", stats.Items)
	}
	if stats.Clicks != 8 {
		t.Errorf("Clicks = %d, want 8", stats.Clicks)
	}
	// Alternatives per purchase session: s1 has 2 (b,c); s2 has 1; s3 has
	// 0; s5 has 1 (b; c==purchase). So 3/4 have <= 1.
	if stats.MaxAlternatives != 2 {
		t.Errorf("MaxAlternatives = %d", stats.MaxAlternatives)
	}
	if math.Abs(stats.SingleAlternativeShare-0.75) > 1e-12 {
		t.Errorf("SingleAlternativeShare = %g, want 0.75", stats.SingleAlternativeShare)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	st := NewStore(sampleSessions())
	if err := WriteAll(st, w.Write); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(NewJSONLReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSessions(t, st.Sessions(), back.Sessions())
}

func TestJSONLSkipsBlankLines(t *testing.T) {
	input := "\n{\"id\":\"s1\",\"purchase\":\"a\"}\n\n{\"id\":\"s2\"}\n"
	st, err := ReadAll(NewJSONLReader(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestJSONLErrors(t *testing.T) {
	if _, err := ReadAll(NewJSONLReader(strings.NewReader("{bad json"))); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := ReadAll(NewJSONLReader(strings.NewReader(`{"clicks":[""]}`))); err == nil {
		t.Error("invalid session should fail")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTSVWriter(&buf)
	st := NewStore(sampleSessions())
	if err := WriteAll(st, w.Write); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(NewTSVReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	assertSameSessions(t, st.Sessions(), back.Sessions())
}

func TestTSVErrors(t *testing.T) {
	if _, err := ReadAll(NewTSVReader(strings.NewReader("only\ttwo\n"))); err == nil {
		t.Error("wrong field count should fail")
	}
	w := NewTSVWriter(&bytes.Buffer{})
	if err := w.Write(&Session{ID: "s", Purchase: "has,comma"}); err == nil {
		t.Error("comma in purchase should fail")
	}
	if err := w.Write(&Session{ID: "s", Clicks: []string{"has\ttab"}}); err == nil {
		t.Error("tab in click should fail")
	}
}

func TestTSVSkipsComments(t *testing.T) {
	input := "# comment\ns1\ta\tb,c\n\ns2\t\t\n"
	st, err := ReadAll(NewTSVReader(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
	if st.Sessions()[0].Purchase != "a" || len(st.Sessions()[0].Clicks) != 2 {
		t.Errorf("first session = %+v", st.Sessions()[0])
	}
	if st.Sessions()[1].HasPurchase() || st.Sessions()[1].Clicks != nil {
		t.Errorf("second session = %+v", st.Sessions()[1])
	}
}

func assertSameSessions(t *testing.T, want, got []Session) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("count: want %d got %d", len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Purchase != got[i].Purchase {
			t.Fatalf("session %d differs: %+v vs %+v", i, want[i], got[i])
		}
		if len(want[i].Clicks) != len(got[i].Clicks) {
			t.Fatalf("session %d clicks differ: %v vs %v", i, want[i].Clicks, got[i].Clicks)
		}
		for j := range want[i].Clicks {
			if want[i].Clicks[j] != got[i].Clicks[j] {
				t.Fatalf("session %d click %d differs", i, j)
			}
		}
	}
}
