package clickstream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Two streaming codecs are provided:
//
//   - JSONL: one JSON-encoded Session per line; self-describing, good for
//     interchange with real platform exports.
//   - TSV:   "id <TAB> purchase <TAB> click1,click2,..." — compact, fast,
//     diffable; purchase and clicks columns may be empty.
//
// Both readers implement Source and return ErrEOF at end of stream.

// JSONLReader streams sessions from JSON-lines input.
type JSONLReader struct {
	sc   *bufio.Scanner
	line int
	cur  Session
}

// NewJSONLReader wraps r.
func NewJSONLReader(r io.Reader) *JSONLReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &JSONLReader{sc: sc}
}

// Next implements Source.
func (jr *JSONLReader) Next() (*Session, error) {
	for jr.sc.Scan() {
		jr.line++
		text := strings.TrimSpace(jr.sc.Text())
		if text == "" {
			continue
		}
		jr.cur = Session{}
		if err := json.Unmarshal([]byte(text), &jr.cur); err != nil {
			return nil, fmt.Errorf("clickstream: jsonl line %d: %w", jr.line, err)
		}
		if err := jr.cur.Validate(); err != nil {
			return nil, fmt.Errorf("clickstream: jsonl line %d: %w", jr.line, err)
		}
		return &jr.cur, nil
	}
	if err := jr.sc.Err(); err != nil {
		return nil, err
	}
	return nil, ErrEOF
}

// JSONLWriter streams sessions as JSON lines.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one session.
func (jw *JSONLWriter) Write(s *Session) error { return jw.enc.Encode(s) }

// Flush flushes buffered output; call once after the last Write.
func (jw *JSONLWriter) Flush() error { return jw.bw.Flush() }

// TSVReader streams sessions from the TSV format.
type TSVReader struct {
	sc   *bufio.Scanner
	line int
	cur  Session
}

// NewTSVReader wraps r.
func NewTSVReader(r io.Reader) *TSVReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &TSVReader{sc: sc}
}

// Next implements Source.
func (tr *TSVReader) Next() (*Session, error) {
	for tr.sc.Scan() {
		tr.line++
		text := tr.sc.Text()
		if strings.TrimSpace(text) == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("clickstream: tsv line %d: want 3 fields, got %d", tr.line, len(fields))
		}
		if strings.Contains(fields[1], ",") {
			// Commas delimit the click list; a purchase label containing
			// one could never be re-serialized, so reject it up front.
			return nil, fmt.Errorf("clickstream: tsv line %d: purchase label contains a comma", tr.line)
		}
		tr.cur = Session{ID: fields[0], Purchase: fields[1]}
		if fields[2] == "" {
			tr.cur.Clicks = nil
		} else {
			tr.cur.Clicks = strings.Split(fields[2], ",")
		}
		if err := tr.cur.Validate(); err != nil {
			return nil, fmt.Errorf("clickstream: tsv line %d: %w", tr.line, err)
		}
		return &tr.cur, nil
	}
	if err := tr.sc.Err(); err != nil {
		return nil, err
	}
	return nil, ErrEOF
}

// TSVWriter streams sessions in the TSV format.
type TSVWriter struct {
	bw *bufio.Writer
}

// NewTSVWriter wraps w.
func NewTSVWriter(w io.Writer) *TSVWriter {
	return &TSVWriter{bw: bufio.NewWriter(w)}
}

// Write appends one session. Labels must not contain tabs or commas.
func (tw *TSVWriter) Write(s *Session) error {
	for _, c := range s.Clicks {
		if strings.ContainsAny(c, "\t,") {
			return fmt.Errorf("clickstream: label %q not representable in tsv", c)
		}
	}
	if strings.ContainsAny(s.Purchase, "\t,") || strings.Contains(s.ID, "\t") {
		return fmt.Errorf("clickstream: session %q not representable in tsv", s.ID)
	}
	_, err := fmt.Fprintf(tw.bw, "%s\t%s\t%s\n", s.ID, s.Purchase, strings.Join(s.Clicks, ","))
	return err
}

// Flush flushes buffered output; call once after the last Write.
func (tw *TSVWriter) Flush() error { return tw.bw.Flush() }

// ReadAll drains a source into a Store.
func ReadAll(src Source) (*Store, error) {
	st := NewStore(nil)
	for {
		s, err := src.Next()
		if err != nil {
			if err == ErrEOF {
				return st, nil
			}
			return nil, err
		}
		cp := *s
		cp.Clicks = append([]string(nil), s.Clicks...)
		st.Append(cp)
	}
}

// WriteAll writes every session of the store with the given writer function.
func WriteAll(st *Store, write func(*Session) error) error {
	for i := range st.sessions {
		if err := write(&st.sessions[i]); err != nil {
			return fmt.Errorf("clickstream: writing session %d: %w", i, err)
		}
	}
	return nil
}
