package clickstream_test

import (
	"bytes"
	"strings"
	"testing"

	. "prefcover/internal/clickstream"
)

// FuzzTSVReader ensures the TSV session codec never panics and that
// accepted streams round-trip.
func FuzzTSVReader(f *testing.F) {
	f.Add("s1\ta\tb,c\n")
	f.Add("s1\t\t\n# comment\n")
	f.Add("s1\ta\t\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		store, err := ReadAll(NewTSVReader(strings.NewReader(input)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewTSVWriter(&buf)
		for i := range store.Sessions() {
			if err := w.Write(&store.Sessions()[i]); err != nil {
				// Labels containing commas etc. are representable on read
				// (a click list never contains commas after split) — any
				// write failure means an invariant broke.
				t.Fatalf("accepted session failed to serialize: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(NewTSVReader(&buf))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.Len() != store.Len() {
			t.Fatal("round trip changed session count")
		}
	})
}

// FuzzClickstreamParse is the end-to-end parser target for the JSONL
// session reader: arbitrary input must either be rejected with an error or
// produce a store of valid sessions that survives a JSONL round trip
// unchanged — never a panic, never a silently corrupt session.
func FuzzClickstreamParse(f *testing.F) {
	f.Add(`{"id":"s1","purchase":"a","clicks":["b","c"]}` + "\n")
	f.Add(`{"id":"s2"}` + "\n" + `{"id":"s3","clicks":["x"]}` + "\n")
	f.Add("\n\n" + `{"id":"s4","purchase":"p"}` + "\n")
	f.Add(`{"id":"_","purchase":"\t","clicks":[""]}` + "\n")
	f.Add(`{"id":1e309}`)
	f.Fuzz(func(t *testing.T, input string) {
		store, err := ReadAll(NewJSONLReader(strings.NewReader(input)))
		if err != nil {
			return // rejected input is fine; panics are the bug
		}
		for i := range store.Sessions() {
			if err := store.Sessions()[i].Validate(); err != nil {
				t.Fatalf("reader accepted invalid session %d: %v", i, err)
			}
		}
		var buf bytes.Buffer
		w := NewJSONLWriter(&buf)
		for i := range store.Sessions() {
			if err := w.Write(&store.Sessions()[i]); err != nil {
				t.Fatalf("accepted session %d failed to serialize: %v", i, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(NewJSONLReader(&buf))
		if err != nil {
			t.Fatalf("round trip rejected own output: %v", err)
		}
		if back.Len() != store.Len() {
			t.Fatalf("round trip changed session count %d -> %d", store.Len(), back.Len())
		}
		for i := range store.Sessions() {
			a, b := &store.Sessions()[i], &back.Sessions()[i]
			if a.ID != b.ID || a.Purchase != b.Purchase || len(a.Clicks) != len(b.Clicks) {
				t.Fatalf("session %d changed in round trip: %+v -> %+v", i, a, b)
			}
			for j := range a.Clicks {
				if a.Clicks[j] != b.Clicks[j] {
					t.Fatalf("session %d click %d changed: %q -> %q", i, j, a.Clicks[j], b.Clicks[j])
				}
			}
		}
	})
}

// FuzzJSONLReader ensures the JSONL session codec never panics on hostile
// input.
func FuzzJSONLReader(f *testing.F) {
	f.Add(`{"id":"s1","purchase":"a","clicks":["b"]}` + "\n")
	f.Add("{}\n{}\n")
	f.Add(`{"clicks":[1]}` + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		store, err := ReadAll(NewJSONLReader(strings.NewReader(input)))
		if err != nil {
			return
		}
		for _, s := range store.Sessions() {
			if err := s.Validate(); err != nil {
				t.Fatalf("reader accepted invalid session: %v", err)
			}
		}
	})
}
