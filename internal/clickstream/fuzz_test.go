package clickstream_test

import (
	"bytes"
	"strings"
	"testing"

	. "prefcover/internal/clickstream"
)

// FuzzTSVReader ensures the TSV session codec never panics and that
// accepted streams round-trip.
func FuzzTSVReader(f *testing.F) {
	f.Add("s1\ta\tb,c\n")
	f.Add("s1\t\t\n# comment\n")
	f.Add("s1\ta\t\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		store, err := ReadAll(NewTSVReader(strings.NewReader(input)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewTSVWriter(&buf)
		for i := range store.Sessions() {
			if err := w.Write(&store.Sessions()[i]); err != nil {
				// Labels containing commas etc. are representable on read
				// (a click list never contains commas after split) — any
				// write failure means an invariant broke.
				t.Fatalf("accepted session failed to serialize: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(NewTSVReader(&buf))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if back.Len() != store.Len() {
			t.Fatal("round trip changed session count")
		}
	})
}

// FuzzJSONLReader ensures the JSONL session codec never panics on hostile
// input.
func FuzzJSONLReader(f *testing.F) {
	f.Add(`{"id":"s1","purchase":"a","clicks":["b"]}` + "\n")
	f.Add("{}\n{}\n")
	f.Add(`{"clicks":[1]}` + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		store, err := ReadAll(NewJSONLReader(strings.NewReader(input)))
		if err != nil {
			return
		}
		for _, s := range store.Sessions() {
			if err := s.Validate(); err != nil {
				t.Fatalf("reader accepted invalid session: %v", err)
			}
		}
	})
}
