// Package clickstream provides the raw-data substrate of the paper's Data
// Adaptation Engine (Section 5.2): browsing sessions with clicks and at most
// one purchase each, streaming codecs for them, and aggregate statistics.
//
// The paper assumes only minimal tracking information — "clicks and
// purchases grouped by sessions" — which is exactly what Session captures.
// Sessions in which several items are bought are modeled upstream as
// separate sessions (paper Section 2.1).
package clickstream

import (
	"errors"
	"fmt"
)

// Session is one consumer browsing session. Purchase is the label of the
// purchased item ("" for browse-only sessions, which carry no purchase
// intent signal and are ignored by the adaptation engine, paper footnote 5).
// Clicks are labels of other items viewed during the session; a click equal
// to the purchased item is redundant and dropped during adaptation.
type Session struct {
	ID       string   `json:"id,omitempty"`
	Purchase string   `json:"purchase,omitempty"`
	Clicks   []string `json:"clicks,omitempty"`
}

// HasPurchase reports whether the session ended in a purchase.
func (s *Session) HasPurchase() bool { return s.Purchase != "" }

// AlternativeClicks returns the clicks that can be interpreted as
// alternatives: distinct clicked labels different from the purchased item,
// in first-seen order. The scratch slice, if non-nil, is reused.
func (s *Session) AlternativeClicks(scratch []string) []string {
	out := scratch[:0]
	for _, c := range s.Clicks {
		if c == "" || c == s.Purchase {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks structural sanity (non-empty clicked labels).
func (s *Session) Validate() error {
	for i, c := range s.Clicks {
		if c == "" {
			return fmt.Errorf("clickstream: session %q: empty click label at index %d", s.ID, i)
		}
	}
	return nil
}

// ErrStop can be returned by a visitor passed to an iteration helper to end
// iteration early without error.
var ErrStop = errors.New("clickstream: stop iteration")

// Source yields sessions one at a time; implemented by Store and the
// streaming readers. Next returns io.EOF (wrapped by the codec) when
// exhausted.
type Source interface {
	Next() (*Session, error)
}

// Stats summarizes a clickstream; Sessions/Purchases/Items are the columns
// of the paper's Table 2 (the edge count is a property of the adapted
// graph, reported by the adaptation engine).
type Stats struct {
	Sessions         int
	Purchases        int
	Items            int // distinct labels appearing as purchase or click
	Clicks           int // total click events
	PurchaseSessions int // sessions with a purchase (== Purchases: one per session)
	// MaxAlternatives is the largest number of distinct alternative clicks
	// in any purchase session.
	MaxAlternatives int
	// SingleAlternativeShare is the fraction of purchase sessions with at
	// most one alternative click: the paper's >= 90% rule decides whether
	// the Normalized variant fits the data.
	SingleAlternativeShare float64
}

// CollectStats drains src and accumulates Stats.
func CollectStats(src Source) (Stats, error) {
	var st Stats
	items := make(map[string]struct{})
	singleAlt := 0
	var scratch []string
	for {
		s, err := src.Next()
		if err != nil {
			if errors.Is(err, ErrEOF) {
				break
			}
			return Stats{}, err
		}
		st.Sessions++
		st.Clicks += len(s.Clicks)
		for _, c := range s.Clicks {
			items[c] = struct{}{}
		}
		if s.HasPurchase() {
			st.Purchases++
			st.PurchaseSessions++
			items[s.Purchase] = struct{}{}
			scratch = s.AlternativeClicks(scratch)
			if len(scratch) > st.MaxAlternatives {
				st.MaxAlternatives = len(scratch)
			}
			if len(scratch) <= 1 {
				singleAlt++
			}
		}
	}
	st.Items = len(items)
	if st.PurchaseSessions > 0 {
		st.SingleAlternativeShare = float64(singleAlt) / float64(st.PurchaseSessions)
	}
	return st, nil
}

// ErrEOF is returned by Source.Next when the stream is exhausted.
var ErrEOF = errors.New("clickstream: end of stream")

// Store is an in-memory clickstream.
type Store struct {
	sessions []Session
	pos      int
}

// NewStore wraps the given sessions (taking ownership of the slice).
func NewStore(sessions []Session) *Store { return &Store{sessions: sessions} }

// Append adds a session to the store.
func (st *Store) Append(s Session) { st.sessions = append(st.sessions, s) }

// Len returns the number of sessions.
func (st *Store) Len() int { return len(st.sessions) }

// Sessions exposes the backing slice (read-only by convention).
func (st *Store) Sessions() []Session { return st.sessions }

// Next implements Source. Iteration state is internal; call Reset to rewind.
func (st *Store) Next() (*Session, error) {
	if st.pos >= len(st.sessions) {
		return nil, ErrEOF
	}
	s := &st.sessions[st.pos]
	st.pos++
	return s, nil
}

// Reset rewinds the store's iteration cursor.
func (st *Store) Reset() { st.pos = 0 }

// FilterPurchases returns a new Store containing only purchase sessions.
func (st *Store) FilterPurchases() *Store {
	out := make([]Session, 0, len(st.sessions))
	for _, s := range st.sessions {
		if s.HasPurchase() {
			out = append(out, s)
		}
	}
	return NewStore(out)
}
