package synth

import (
	"fmt"
	"math"
	"math/rand"

	"prefcover/internal/graph"
)

// GraphSpec configures GenerateGraph, the direct preference-graph generator
// used by the scalability experiments (Figures 4d/4e), where graphs of up
// to millions of nodes are needed and simulating the corresponding tens of
// millions of sessions would dominate the measurement.
type GraphSpec struct {
	// Nodes is the item count.
	Nodes int
	// AvgOutDegree is the expected number of alternatives per item;
	// per-node degrees are Poisson distributed around it (clamped to the
	// community size).
	AvgOutDegree float64
	// CommunitySize groups nodes into blocks; edges stay within a block,
	// mirroring the category-local substitution structure of real
	// catalogs. Default 64.
	CommunitySize int
	// ZipfS, ZipfV shape node popularity (see ZipfWeights).
	ZipfS, ZipfV float64
	// Variant: Normalized rescales each node's outgoing weights to sum to
	// at most MaxOutSum; Independent leaves raw weights.
	Variant graph.Variant
	// EdgeWeightAlpha, EdgeWeightBeta parameterize the Beta(a,b)
	// distribution edge weights are drawn from. Defaults (2,2) give a
	// symmetric hump around 0.5, matching click-through-derived
	// probabilities.
	EdgeWeightAlpha, EdgeWeightBeta float64
	// MaxOutSum caps each node's outgoing weight sum under Normalized.
	// Default 0.95 (real data always leaves some uncoverable mass).
	MaxOutSum float64
	// Seed drives all sampling.
	Seed int64
}

func (s *GraphSpec) normalize() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("synth: need Nodes > 0, got %d", s.Nodes)
	}
	if s.AvgOutDegree < 0 {
		return fmt.Errorf("synth: negative AvgOutDegree %g", s.AvgOutDegree)
	}
	if s.AvgOutDegree == 0 {
		s.AvgOutDegree = 4.8 // PE's edges/items ratio
	}
	if s.CommunitySize <= 1 {
		s.CommunitySize = 64
	}
	if s.CommunitySize > s.Nodes {
		s.CommunitySize = s.Nodes
	}
	if s.ZipfS <= 0 {
		s.ZipfS = 1.05
	}
	if s.ZipfV <= 0 {
		s.ZipfV = 2.7
	}
	if s.EdgeWeightAlpha <= 0 {
		s.EdgeWeightAlpha = 2
	}
	if s.EdgeWeightBeta <= 0 {
		s.EdgeWeightBeta = 2
	}
	if s.MaxOutSum <= 0 || s.MaxOutSum > 1 {
		s.MaxOutSum = 0.95
	}
	return nil
}

// GenerateGraph produces a preference graph with Zipf node popularity,
// Poisson out-degrees, community-local destinations biased toward popular
// nodes, and Beta-distributed edge weights; under Normalized the per-node
// outgoing sums are capped.
func GenerateGraph(spec GraphSpec) (*graph.Graph, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.Nodes

	zipf := ZipfWeights(n, spec.ZipfS, spec.ZipfV)
	var sum float64
	for _, w := range zipf {
		sum += w
	}
	perm := rng.Perm(n)
	weights := make([]float64, n)
	for rank, node := range perm {
		weights[node] = zipf[rank] / sum
	}

	b := graph.NewBuilder(n, int(float64(n)*spec.AvgOutDegree))
	for _, w := range weights {
		b.AddNode(w)
	}

	block := spec.CommunitySize
	dsts := make([]int32, 0, 32)
	ws := make([]float64, 0, 32)
	for v := 0; v < n; v++ {
		lo := (v / block) * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		maxDeg := hi - lo - 1
		if maxDeg <= 0 {
			continue
		}
		deg := poisson(rng, spec.AvgOutDegree)
		if deg > maxDeg {
			deg = maxDeg
		}
		if deg == 0 {
			continue
		}
		dsts = sampleDistinct(rng, int32(lo), int32(hi), int32(v), deg, dsts[:0])
		ws = ws[:0]
		var outSum float64
		for range dsts {
			w := betaSample(rng, spec.EdgeWeightAlpha, spec.EdgeWeightBeta)
			// Clamp away from 0 so edge weights stay in (0,1].
			if w < 1e-6 {
				w = 1e-6
			}
			ws = append(ws, w)
			outSum += w
		}
		if spec.Variant == graph.Normalized && outSum > spec.MaxOutSum {
			scale := spec.MaxOutSum / outSum
			for i := range ws {
				ws[i] *= scale
			}
		}
		for i, d := range dsts {
			b.AddEdge(int32(v), d, ws[i])
		}
	}
	return b.Build(graph.BuildOptions{})
}

// poisson draws from Poisson(lambda) via Knuth's method for small lambda
// and a normal approximation above 30 (degree distributions here are
// small, the approximation branch is a safety hatch).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		k := int(math.Round(rng.NormFloat64()*math.Sqrt(lambda) + lambda))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// betaSample draws from Beta(a,b) using the ratio of gamma variates.
func betaSample(rng *rand.Rand, a, b float64) float64 {
	x := gammaSample(rng, a)
	y := gammaSample(rng, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia-Tsang, with the
// standard boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sampleDistinct draws deg distinct values from [lo,hi) excluding self,
// appending to out. For small windows it uses a partial Fisher-Yates over
// the window; deg is already capped at the window size minus one.
func sampleDistinct(rng *rand.Rand, lo, hi, self int32, deg int, out []int32) []int32 {
	window := make([]int32, 0, hi-lo-1)
	for v := lo; v < hi; v++ {
		if v != self {
			window = append(window, v)
		}
	}
	for i := 0; i < deg; i++ {
		j := i + rng.Intn(len(window)-i)
		window[i], window[j] = window[j], window[i]
		out = append(out, window[i])
	}
	return out
}
