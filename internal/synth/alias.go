package synth

import (
	"errors"
	"math"
	"math/rand"
)

// Alias is a Walker alias table: O(n) construction, O(1) sampling from an
// arbitrary discrete distribution. Session simulation draws millions of
// desired items from a heavy-tailed popularity distribution, which makes
// the constant-time sampler the difference between seconds and minutes.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds a table for the given nonnegative weights (not
// necessarily normalized).
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("synth: alias table needs at least one weight")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("synth: alias table weight is negative")
		}
		sum += w
	}
	if sum <= 0 {
		return nil, errors.New("synth: alias table weights sum to zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, rest := range [][]int32{small, large} {
		for _, i := range rest {
			a.prob[i] = 1
			a.alias[i] = i
		}
	}
	return a, nil
}

// Sample draws one index.
func (a *Alias) Sample(rng *rand.Rand) int32 {
	i := int32(rng.Intn(len(a.prob)))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// ZipfWeights returns an unnormalized Zipf(s, v) weight vector over n ranks:
// w[r] = 1/(v+r)^s for r in [0,n). Unlike math/rand.Zipf it permits any
// s > 0 (purchase popularity in e-commerce is often sub-critical, s ~ 1).
func ZipfWeights(n int, s, v float64) []float64 {
	w := make([]float64, n)
	for r := 0; r < n; r++ {
		w[r] = math.Pow(v+float64(r), -s)
	}
	return w
}
