// Package synth generates the synthetic workloads that stand in for the
// paper's private eBay clickstream (PE/PF/PM) and the YooChoose dataset
// (YC) — see DESIGN.md for the substitution rationale. It provides:
//
//   - a category/brand/price-tier structured item catalog with Zipf
//     purchase popularity (catalog.go);
//   - a session simulator producing clickstreams under either dependency
//     regime — independent alternative clicks or at-most-one-alternative —
//     that are then fed through the same adaptation engine as real data
//     (sessions.go);
//   - a direct preference-graph generator for scalability experiments
//     where simulating tens of millions of sessions would only add noise
//     (graphgen.go);
//   - presets that match the shape of the paper's Table 2 datasets
//     (presets.go).
//
// All generators are fully deterministic given their seed.
package synth

import (
	"fmt"
	"math/rand"
)

// CatalogSpec configures NewCatalog.
type CatalogSpec struct {
	// Items is the catalog size.
	Items int
	// Categories partitions items; alternatives only arise within a
	// category (nobody substitutes a TV with a sneaker).
	Categories int
	// BrandsPerCategory controls brand diversity; same-brand items are
	// stronger alternatives.
	BrandsPerCategory int
	// PriceTiers stratifies each category by price; alternative
	// suitability decays with tier distance ("one-step upgrade" behavior
	// from the paper's Example 1.1).
	PriceTiers int
	// ZipfS and ZipfV shape the popularity distribution 1/(v+rank)^s.
	ZipfS, ZipfV float64
	// Seed drives the popularity-rank permutation.
	Seed int64
}

func (s *CatalogSpec) normalize() error {
	if s.Items <= 0 {
		return fmt.Errorf("synth: catalog needs Items > 0, got %d", s.Items)
	}
	if s.Categories <= 0 {
		s.Categories = 1 + s.Items/50
	}
	if s.Categories > s.Items {
		s.Categories = s.Items
	}
	if s.BrandsPerCategory <= 0 {
		s.BrandsPerCategory = 5
	}
	if s.PriceTiers <= 0 {
		s.PriceTiers = 8
	}
	if s.ZipfS <= 0 {
		s.ZipfS = 1.05
	}
	if s.ZipfV <= 0 {
		s.ZipfV = 2.7
	}
	return nil
}

// Item is one catalog entry.
type Item struct {
	Label    string
	Category int32
	Brand    int32 // brand id within the category
	Tier     int32 // price tier within the category
}

// Catalog is an immutable synthetic item catalog with popularity weights.
type Catalog struct {
	spec       CatalogSpec
	items      []Item
	popularity []float64 // normalized, sums to 1
	byCategory [][]int32 // item ids per category, ordered by (tier, id)
	sampler    *Alias
}

// NewCatalog builds a catalog. Items are assigned round-robin to
// categories, then uniformly to brands and tiers; popularity ranks are a
// seeded permutation so popularity is independent of catalog position.
func NewCatalog(spec CatalogSpec) (*Catalog, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	c := &Catalog{
		spec:       spec,
		items:      make([]Item, spec.Items),
		popularity: make([]float64, spec.Items),
		byCategory: make([][]int32, spec.Categories),
	}
	for i := range c.items {
		cat := int32(i % spec.Categories)
		c.items[i] = Item{
			Label:    fmt.Sprintf("item-%07d", i),
			Category: cat,
			Brand:    int32(rng.Intn(spec.BrandsPerCategory)),
			Tier:     int32(rng.Intn(spec.PriceTiers)),
		}
		c.byCategory[cat] = append(c.byCategory[cat], int32(i))
	}
	// Order within category by (tier, id) so tier-neighborhoods are
	// contiguous and alternative candidates are a cheap window scan.
	for _, ids := range c.byCategory {
		sortByTier(c, ids)
	}
	zipf := ZipfWeights(spec.Items, spec.ZipfS, spec.ZipfV)
	var sum float64
	for _, w := range zipf {
		sum += w
	}
	perm := rng.Perm(spec.Items)
	for rank, item := range perm {
		c.popularity[item] = zipf[rank] / sum
	}
	var err error
	c.sampler, err = NewAlias(c.popularity)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func sortByTier(c *Catalog, ids []int32) {
	// Insertion-free sort via sort.Slice would be fine; a simple
	// stable-by-construction counting pass keeps this O(n) per category.
	buckets := make([][]int32, c.spec.PriceTiers)
	for _, id := range ids {
		t := c.items[id].Tier
		buckets[t] = append(buckets[t], id)
	}
	pos := 0
	for _, b := range buckets {
		pos += copy(ids[pos:], b)
	}
}

// Len returns the catalog size.
func (c *Catalog) Len() int { return len(c.items) }

// Item returns the item with the given id.
func (c *Catalog) Item(id int32) Item { return c.items[id] }

// Popularity returns the normalized purchase probability of an item.
func (c *Catalog) Popularity(id int32) float64 { return c.popularity[id] }

// SamplePurchase draws an item id from the popularity distribution.
func (c *Catalog) SamplePurchase(rng *rand.Rand) int32 { return c.sampler.Sample(rng) }

// CategoryMembers returns the item ids of a category ordered by price tier.
// The returned slice is owned by the catalog; treat as read-only.
func (c *Catalog) CategoryMembers(cat int32) []int32 { return c.byCategory[cat] }

// ItemText renders an item's attributes as a short textual description,
// the kind of title/attribute bag a similarity index consumes. Same
// category/brand/tier items share tokens proportionally to their
// ground-truth affinity.
func (c *Catalog) ItemText(id int32) string {
	it := c.items[id]
	// The coarse tier bucket makes adjacent price tiers share a token, the
	// way real titles share quality/price descriptors ("premium", "budget").
	return fmt.Sprintf("category%d brand%d tier%d bucket%d product %s",
		it.Category, it.Brand, it.Tier, it.Tier/2, it.Label)
}

// Affinity returns the suitability of item b as an alternative to item a,
// in [0,1]: zero across categories, otherwise base decayed by tier distance
// and a penalty for brand mismatch. This is the ground-truth preference
// signal the session simulator expresses through clicks.
func (c *Catalog) Affinity(a, b int32, base, tierDecay, brandPenalty float64) float64 {
	ia, ib := c.items[a], c.items[b]
	if a == b || ia.Category != ib.Category {
		return 0
	}
	p := base
	dt := int(ia.Tier - ib.Tier)
	if dt < 0 {
		dt = -dt
	}
	for i := 0; i < dt; i++ {
		p *= tierDecay
	}
	if ia.Brand != ib.Brand {
		p *= brandPenalty
	}
	return p
}
