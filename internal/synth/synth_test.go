package synth_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prefcover/internal/adapt"
	"prefcover/internal/clickstream"
	"prefcover/internal/graph"
	. "prefcover/internal/synth"
)

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10.0
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: freq %g, want %g", i, got, want)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights should fail")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestAliasDegenerateSingle(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if a.Sample(rng) != 0 {
			t.Fatal("single-element alias must always return 0")
		}
	}
}

func TestZipfWeightsShape(t *testing.T) {
	w := ZipfWeights(100, 1.0, 1.0)
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatal("zipf weights must be nonincreasing in rank")
		}
	}
	if math.Abs(w[0]/w[1]-2.0) > 1e-9 { // w0/w1 = ((v+1)/v)^s = 2 at v=1, s=1
		t.Errorf("zipf head ratio = %g, want 2", w[0]/w[1])
	}
}

func TestCatalogBasics(t *testing.T) {
	cat, err := NewCatalog(CatalogSpec{Items: 500, Categories: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 500 {
		t.Fatalf("Len = %d", cat.Len())
	}
	var sum float64
	seenLabels := map[string]bool{}
	for i := int32(0); i < 500; i++ {
		sum += cat.Popularity(i)
		item := cat.Item(i)
		if seenLabels[item.Label] {
			t.Fatalf("duplicate label %s", item.Label)
		}
		seenLabels[item.Label] = true
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("popularity sum = %g", sum)
	}
	// Category members are tier-sorted.
	for c := int32(0); c < 10; c++ {
		members := cat.CategoryMembers(c)
		for i := 1; i < len(members); i++ {
			if cat.Item(members[i]).Tier < cat.Item(members[i-1]).Tier {
				t.Fatalf("category %d not tier-sorted", c)
			}
		}
	}
}

func TestCatalogDeterminism(t *testing.T) {
	a, _ := NewCatalog(CatalogSpec{Items: 100, Seed: 3})
	b, _ := NewCatalog(CatalogSpec{Items: 100, Seed: 3})
	for i := int32(0); i < 100; i++ {
		if a.Popularity(i) != b.Popularity(i) || a.Item(i) != b.Item(i) {
			t.Fatal("same seed must give identical catalogs")
		}
	}
	c, _ := NewCatalog(CatalogSpec{Items: 100, Seed: 4})
	same := true
	for i := int32(0); i < 100; i++ {
		if a.Popularity(i) != c.Popularity(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(CatalogSpec{Items: 0}); err == nil {
		t.Error("zero items should fail")
	}
}

func TestAffinity(t *testing.T) {
	cat, _ := NewCatalog(CatalogSpec{Items: 100, Categories: 5, Seed: 1})
	// Cross-category affinity is zero.
	var a, b int32 = -1, -1
	for i := int32(0); i < 100 && (a < 0 || b < 0); i++ {
		if cat.Item(i).Category == 0 && a < 0 {
			a = i
		}
		if cat.Item(i).Category == 1 && b < 0 {
			b = i
		}
	}
	if got := cat.Affinity(a, b, 0.5, 0.5, 0.5); got != 0 {
		t.Errorf("cross-category affinity = %g", got)
	}
	if got := cat.Affinity(a, a, 0.5, 0.5, 0.5); got != 0 {
		t.Errorf("self affinity = %g", got)
	}
	// Same-category affinity bounded by base.
	members := cat.CategoryMembers(0)
	if len(members) >= 2 {
		got := cat.Affinity(members[0], members[1], 0.5, 0.5, 0.5)
		if got <= 0 || got > 0.5 {
			t.Errorf("same-category affinity = %g", got)
		}
	}
}

func TestGenerateSessionsPurchaseRate(t *testing.T) {
	cat, _ := NewCatalog(CatalogSpec{Items: 300, Seed: 2})
	st, err := GenerateSessions(cat, SessionSpec{Sessions: 4000, PurchaseRate: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := clickstream.CollectStats(st)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(stats.PurchaseSessions) / float64(stats.Sessions)
	if math.Abs(rate-0.25) > 0.03 {
		t.Errorf("purchase rate = %g, want ~0.25", rate)
	}
	if stats.Sessions != 4000 {
		t.Errorf("sessions = %d", stats.Sessions)
	}
}

func TestGenerateSessionsRegimes(t *testing.T) {
	cat, _ := NewCatalog(CatalogSpec{Items: 400, Seed: 3})
	single, err := GenerateSessions(cat, SessionSpec{
		Sessions: 3000, PurchaseRate: 1, Regime: RegimeSingleAlternative,
		Contamination: 0.07, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sStats, _ := clickstream.CollectStats(single)
	if sStats.SingleAlternativeShare < 0.90 {
		t.Errorf("single-alternative share = %g, want >= 0.90", sStats.SingleAlternativeShare)
	}
	single.Reset()
	_, rep, err := adapt.BuildGraph(single, adapt.Options{Variant: graph.Normalized, ComputeFitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := rep.RecommendVariant(); !ok || v != graph.Normalized {
		t.Errorf("single-alt data recommendation = %v,%v", v, ok)
	}

	indep, err := GenerateSessions(cat, SessionSpec{
		Sessions: 3000, PurchaseRate: 1, Regime: RegimeIndependent, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err = adapt.BuildGraph(indep, adapt.Options{Variant: graph.Independent, ComputeFitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanPairwiseNMI >= 0.1 {
		t.Errorf("independent regime NMI = %g, want < 0.1", rep.MeanPairwiseNMI)
	}
}

func TestGenerateSessionsAdaptsToValidGraph(t *testing.T) {
	cat, _ := NewCatalog(CatalogSpec{Items: 200, Seed: 11})
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		regime := RegimeIndependent
		if variant == graph.Normalized {
			regime = RegimeSingleAlternative
		}
		st, err := GenerateSessions(cat, SessionSpec{Sessions: 2000, PurchaseRate: 1, Regime: regime, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := adapt.BuildGraph(st, adapt.Options{Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(graph.ValidateOptions{Variant: variant, RequireSimplex: true}); err != nil {
			t.Errorf("variant %v: adapted graph invalid: %v", variant, err)
		}
	}
}

func TestGenerateSessionsValidation(t *testing.T) {
	cat, _ := NewCatalog(CatalogSpec{Items: 10, Seed: 1})
	if _, err := GenerateSessions(cat, SessionSpec{Sessions: 0}); err == nil {
		t.Error("zero sessions should fail")
	}
	if _, err := GenerateSessions(cat, SessionSpec{Sessions: 5, PurchaseRate: 2}); err == nil {
		t.Error("rate > 1 should fail")
	}
}

func TestGenerateGraphShape(t *testing.T) {
	g, err := GenerateGraph(GraphSpec{Nodes: 5000, AvgOutDegree: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	avg := float64(g.NumEdges()) / 5000
	if avg < 3 || avg > 5 {
		t.Errorf("avg degree = %g, want ~4", avg)
	}
	if err := g.Validate(graph.ValidateOptions{RequireSimplex: true}); err != nil {
		t.Errorf("generated graph invalid: %v", err)
	}
}

func TestGenerateGraphNormalizedInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := GenerateGraph(GraphSpec{
			Nodes: 300, AvgOutDegree: 6, Variant: graph.Normalized, Seed: seed,
		})
		if err != nil {
			return false
		}
		return g.Validate(graph.ValidateOptions{Variant: graph.Normalized, RequireSimplex: true}) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestGenerateGraphDeterminism(t *testing.T) {
	a, _ := GenerateGraph(GraphSpec{Nodes: 500, Seed: 33})
	b, _ := GenerateGraph(GraphSpec{Nodes: 500, Seed: 33})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for v := int32(0); v < 500; v++ {
		if a.NodeWeight(v) != b.NodeWeight(v) {
			t.Fatal("same seed, different weights")
		}
	}
}

func TestGenerateGraphValidation(t *testing.T) {
	if _, err := GenerateGraph(GraphSpec{Nodes: 0}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := GenerateGraph(GraphSpec{Nodes: 10, AvgOutDegree: -1}); err == nil {
		t.Error("negative degree should fail")
	}
}

func TestPresets(t *testing.T) {
	for _, p := range Presets() {
		catSpec, sesSpec, err := PresetSpecs(p, 0.001, 42)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if catSpec.Items <= 0 || sesSpec.Sessions <= 0 {
			t.Fatalf("%s: degenerate specs %+v %+v", p, catSpec, sesSpec)
		}
		gs, err := PresetGraphSpec(p, 0.001, 42)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if gs.Nodes <= 0 {
			t.Fatalf("%s: degenerate graph spec", p)
		}
	}
	if _, _, err := PresetSpecs("NOPE", 0.5, 1); err == nil {
		t.Error("unknown preset should fail")
	}
	if _, _, err := PresetSpecs(YC, 0, 1); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := PresetGraphSpec("NOPE", 0.5, 1); err == nil {
		t.Error("unknown preset should fail")
	}
	if _, err := PresetGraphSpec(YC, 2, 1); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestPresetPMIsNormalized(t *testing.T) {
	_, ses, err := PresetSpecs(PM, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ses.Regime != RegimeSingleAlternative {
		t.Error("PM should use the single-alternative regime")
	}
	gs, _ := PresetGraphSpec(PM, 0.001, 1)
	if gs.Variant != graph.Normalized {
		t.Error("PM graph spec should be Normalized")
	}
}

func TestPresetYCPurchaseRate(t *testing.T) {
	_, ses, err := PresetSpecs(YC, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ses.PurchaseRate > 0.05 || ses.PurchaseRate < 0.02 {
		t.Errorf("YC purchase rate = %g, want ~0.028", ses.PurchaseRate)
	}
}
