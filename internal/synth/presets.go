package synth

import (
	"fmt"
	"math"
	"strings"

	"prefcover/internal/graph"
)

// Preset names the four datasets of the paper's Table 2. PE/PF/PM mirror
// the private e-commerce domains (Electronics, Fashion, Motors); YC mirrors
// the public YooChoose RecSys-2015 clickstream.
type Preset string

const (
	PE Preset = "PE" // Electronics: largest, Independent-fitting
	PF Preset = "PF" // Fashion: Independent-fitting
	PM Preset = "PM" // Motors: parts & accessories, Normalized-fitting
	YC Preset = "YC" // YooChoose: small catalog, ~2.8% purchase rate, Independent
)

// Presets lists all presets in Table 2 order.
func Presets() []Preset { return []Preset{PE, PF, PM, YC} }

// ParsePreset resolves a preset name case-insensitively ("yc" and "YC"
// both name YooChoose), so CLI flags don't force the paper's
// capitalization on users.
func ParsePreset(name string) (Preset, error) {
	for _, p := range Presets() {
		if strings.EqualFold(name, string(p)) {
			return p, nil
		}
	}
	return "", fmt.Errorf("synth: unknown preset %q (want PE, PF, PM, or YC)", name)
}

// presetShape captures the full-scale Table 2 numbers.
type presetShape struct {
	items    int
	sessions int
	// purchaseRate is purchases/sessions (the private datasets were
	// requested as purchase-only).
	purchaseRate float64
	regime       Regime
	// zipfS tunes popularity skew per domain: fashion flatter, motors
	// spikier.
	zipfS float64
}

var presetShapes = map[Preset]presetShape{
	PE: {items: 1921701, sessions: 10782918, purchaseRate: 1.0, regime: RegimeIndependent, zipfS: 1.05},
	PF: {items: 1681625, sessions: 8630541, purchaseRate: 1.0, regime: RegimeIndependent, zipfS: 0.95},
	PM: {items: 1396674, sessions: 8154160, purchaseRate: 1.0, regime: RegimeSingleAlternative, zipfS: 1.1},
	YC: {items: 52739, sessions: 9249729, purchaseRate: 259579.0 / 9249729.0, regime: RegimeIndependent, zipfS: 1.05},
}

// PresetSpecs returns the catalog and session specs for a preset at the
// given scale factor in (0, 1]: item and session counts are multiplied by
// scale (floored, with small minimums so tiny scales stay usable). The
// full-scale paper shape is scale == 1.
func PresetSpecs(p Preset, scale float64, seed int64) (CatalogSpec, SessionSpec, error) {
	shape, ok := presetShapes[p]
	if !ok {
		return CatalogSpec{}, SessionSpec{}, fmt.Errorf("synth: unknown preset %q", p)
	}
	if scale <= 0 || scale > 1 {
		return CatalogSpec{}, SessionSpec{}, fmt.Errorf("synth: scale %g outside (0,1]", scale)
	}
	items := scaledCount(shape.items, scale, 200)
	sessions := scaledCount(shape.sessions, scale, 2000)
	cat := CatalogSpec{
		Items:             items,
		Categories:        1 + items/40, // ~40 items per substitution neighborhood
		BrandsPerCategory: 6,
		PriceTiers:        8,
		ZipfS:             shape.zipfS,
		Seed:              seed,
	}
	ses := SessionSpec{
		Sessions:     sessions,
		PurchaseRate: shape.purchaseRate,
		Regime:       shape.regime,
		Seed:         seed + 1,
	}
	if shape.regime == RegimeSingleAlternative {
		// Keep the single-alternative share just above the paper's 90%
		// bar.
		ses.Contamination = 0.07
	}
	return cat, ses, nil
}

func scaledCount(full int, scale float64, min int) int {
	n := int(math.Floor(float64(full) * scale))
	if n < min {
		n = min
	}
	return n
}

// PresetGraphSpec returns a direct-graph generation spec whose node count
// and degree structure match the preset at the given scale; used by the
// scalability experiments which need graphs, not sessions.
func PresetGraphSpec(p Preset, scale float64, seed int64) (GraphSpec, error) {
	shape, ok := presetShapes[p]
	if !ok {
		return GraphSpec{}, fmt.Errorf("synth: unknown preset %q", p)
	}
	if scale <= 0 || scale > 1 {
		return GraphSpec{}, fmt.Errorf("synth: scale %g outside (0,1]", scale)
	}
	spec := GraphSpec{
		Nodes:        scaledCount(shape.items, scale, 200),
		AvgOutDegree: 4.8, // Table 2: edges/items is 4.2-4.8 across datasets
		ZipfS:        shape.zipfS,
		Seed:         seed,
	}
	if shape.regime == RegimeSingleAlternative {
		spec.Variant = graph.Normalized
	}
	return spec, nil
}
