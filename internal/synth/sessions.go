package synth

import (
	"fmt"
	"math/rand"

	"prefcover/internal/clickstream"
)

// Regime selects the ground-truth dependency structure between alternative
// clicks in simulated sessions; it corresponds to which Preference Cover
// variant will fit the resulting data (paper Section 5.2).
type Regime uint8

const (
	// RegimeIndependent clicks each candidate alternative independently
	// with its affinity probability; the resulting clickstream passes the
	// paper's NMI < 0.1 independence test.
	RegimeIndependent Regime = iota
	// RegimeSingleAlternative clicks at most one alternative per session
	// (chosen with probability proportional to affinity); with the default
	// contamination it satisfies the paper's >= 90% single-alternative
	// rule that recommends the Normalized variant.
	RegimeSingleAlternative
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeIndependent:
		return "independent"
	case RegimeSingleAlternative:
		return "single-alternative"
	default:
		return fmt.Sprintf("regime(%d)", uint8(r))
	}
}

// SessionSpec configures GenerateSessions.
type SessionSpec struct {
	// Sessions is the total session count, purchase and browse-only
	// combined.
	Sessions int
	// PurchaseRate is the fraction of sessions ending in a purchase
	// (1.0 for the paper's private datasets, ~0.028 for YC).
	PurchaseRate float64
	// Regime selects the dependency structure.
	Regime Regime
	// CandidateWindow bounds how many tier-adjacent items in the purchased
	// item's category are considered clickable alternatives.
	CandidateWindow int
	// ClickBase, TierDecay, BrandPenalty parameterize Catalog.Affinity.
	ClickBase, TierDecay, BrandPenalty float64
	// Contamination is the probability that a single-alternative session
	// nevertheless clicks one extra alternative, mimicking the ~10% of
	// real sessions that violate the Normalized assumption.
	Contamination float64
	// BrowseClicks is the expected click count of browse-only sessions.
	BrowseClicks int
	// Seed drives all sampling.
	Seed int64
}

func (s *SessionSpec) normalize() error {
	if s.Sessions <= 0 {
		return fmt.Errorf("synth: need Sessions > 0, got %d", s.Sessions)
	}
	if s.PurchaseRate <= 0 || s.PurchaseRate > 1 {
		return fmt.Errorf("synth: PurchaseRate %g outside (0,1]", s.PurchaseRate)
	}
	if s.CandidateWindow <= 0 {
		s.CandidateWindow = 12
	}
	if s.ClickBase <= 0 {
		s.ClickBase = 0.55
	}
	if s.TierDecay <= 0 {
		s.TierDecay = 0.55
	}
	if s.BrandPenalty <= 0 {
		s.BrandPenalty = 0.7
	}
	if s.Contamination < 0 {
		s.Contamination = 0
	}
	if s.BrowseClicks <= 0 {
		s.BrowseClicks = 3
	}
	return nil
}

// GenerateSessions simulates a clickstream over the catalog. Purchase
// sessions draw the purchased item from the popularity distribution and
// click alternatives from the item's category neighborhood according to
// the regime; browse-only sessions click a few neighbors and buy nothing.
func GenerateSessions(cat *Catalog, spec SessionSpec) (*clickstream.Store, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	store := clickstream.NewStore(make([]clickstream.Session, 0, spec.Sessions))
	candidates := make([]int32, 0, 2*spec.CandidateWindow)
	affinities := make([]float64, 0, 2*spec.CandidateWindow)
	for i := 0; i < spec.Sessions; i++ {
		id := fmt.Sprintf("s%08d", i)
		anchor := cat.SamplePurchase(rng)
		candidates, affinities = alternativeCandidates(cat, anchor, spec, candidates, affinities)
		if rng.Float64() >= spec.PurchaseRate {
			// Browse-only session: a few clicks around a popular anchor,
			// no purchase. These sessions are ignored by the adaptation
			// engine but inflate the Sessions column exactly like YC.
			store.Append(clickstream.Session{
				ID:     id,
				Clicks: browseClicks(rng, anchor, candidates, spec.BrowseClicks, cat),
			})
			continue
		}
		var clicks []string
		switch spec.Regime {
		case RegimeSingleAlternative:
			clicks = singleAltClicks(rng, cat, candidates, affinities, spec.Contamination)
		default:
			clicks = independentClicks(rng, cat, candidates, affinities)
		}
		store.Append(clickstream.Session{
			ID:       id,
			Purchase: cat.Item(anchor).Label,
			Clicks:   clicks,
		})
	}
	return store, nil
}

// alternativeCandidates returns the clickable alternatives of anchor: a
// window of tier-adjacent items in its category, with their affinities.
func alternativeCandidates(cat *Catalog, anchor int32, spec SessionSpec, ids []int32, affs []float64) ([]int32, []float64) {
	ids, affs = ids[:0], affs[:0]
	members := cat.CategoryMembers(cat.Item(anchor).Category)
	// Locate anchor inside the tier-ordered member list.
	pos := -1
	for i, m := range members {
		if m == anchor {
			pos = i
			break
		}
	}
	lo := pos - spec.CandidateWindow
	if lo < 0 {
		lo = 0
	}
	hi := pos + spec.CandidateWindow + 1
	if hi > len(members) {
		hi = len(members)
	}
	for i := lo; i < hi; i++ {
		m := members[i]
		if m == anchor {
			continue
		}
		a := cat.Affinity(anchor, m, spec.ClickBase, spec.TierDecay, spec.BrandPenalty)
		if a > 0 {
			ids = append(ids, m)
			affs = append(affs, a)
		}
	}
	return ids, affs
}

func independentClicks(rng *rand.Rand, cat *Catalog, ids []int32, affs []float64) []string {
	var clicks []string
	for i, id := range ids {
		if rng.Float64() < affs[i] {
			clicks = append(clicks, cat.Item(id).Label)
		}
	}
	return clicks
}

func singleAltClicks(rng *rand.Rand, cat *Catalog, ids []int32, affs []float64, contamination float64) []string {
	if len(ids) == 0 {
		return nil
	}
	var total float64
	for _, a := range affs {
		total += a
	}
	// "No alternative considered" keeps mass proportional to the slack of
	// the strongest affinity, so popular dense neighborhoods almost always
	// produce a click while sparse ones often do not.
	noAlt := 1.0
	x := rng.Float64() * (total + noAlt)
	if x >= total {
		return nil
	}
	var clicks []string
	pick := -1
	for i, a := range affs {
		if x < a {
			pick = i
			break
		}
		x -= a
	}
	if pick < 0 {
		pick = len(ids) - 1
	}
	clicks = append(clicks, cat.Item(ids[pick]).Label)
	if contamination > 0 && len(ids) > 1 && rng.Float64() < contamination {
		// Violate the single-alternative rule occasionally.
		extra := rng.Intn(len(ids) - 1)
		if extra >= pick {
			extra++
		}
		clicks = append(clicks, cat.Item(ids[extra]).Label)
	}
	return clicks
}

func browseClicks(rng *rand.Rand, anchor int32, candidates []int32, expected int, cat *Catalog) []string {
	clicks := []string{cat.Item(anchor).Label}
	for i := 0; i < expected && len(candidates) > 0; i++ {
		clicks = append(clicks, cat.Item(candidates[rng.Intn(len(candidates))]).Label)
	}
	return clicks
}
