package jobs

// Request is the /v1/jobs submission payload: a solve described by
// reference — the graph lives in the registry under GraphRef — plus the
// same knobs the synchronous solve endpoint takes. Parsing is strict
// (unknown fields are rejected) because a job is fire-and-forget: a typoed
// "treshold" in a synchronous request fails visibly, in an async one it
// would silently solve the wrong problem minutes later.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"prefcover/internal/graph"
	"prefcover/internal/greedy"
)

// Request describes one async solve.
type Request struct {
	// GraphRef names a graph in the registry.
	GraphRef string `json:"graph_ref"`
	// Variant is the cover semantics ("independent"/"i" or
	// "normalized"/"n").
	Variant string `json:"variant"`
	// K is the retained-set budget; Threshold switches to minimization
	// (both set: K caps the minimization). Exactly as greedy.Options.
	K         int     `json:"k,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Lazy selects CELF evaluation (default true, like /v1/solve).
	Lazy *bool `json:"lazy,omitempty"`
	// Workers selects the parallel scan when > 1.
	Workers int `json:"workers,omitempty"`
	// Strategy, when non-empty, selects the execution strategy explicitly
	// (scan, parallel, lazy, lazyflat, sketch), superseding Lazy/Workers —
	// exactly as greedy.Options.Strategy.
	Strategy string `json:"strategy,omitempty"`
	// Pins lists must-stock item labels retained before the greedy fill.
	Pins []string `json:"pins,omitempty"`
}

// LazyEnabled resolves the Lazy default.
func (r *Request) LazyEnabled() bool { return r.Lazy == nil || *r.Lazy }

// ParseVariant resolves the variant string.
func (r *Request) ParseVariant() (graph.Variant, error) {
	return graph.ParseVariant(r.Variant)
}

// maxRequestBytes bounds job-request documents; a solve description is a
// few hundred bytes plus pin labels, never megabytes.
const maxRequestBytes = 1 << 20

// ParseRequest decodes and validates a job submission.
func ParseRequest(data []byte) (Request, error) {
	var req Request
	if len(data) > maxRequestBytes {
		return req, fmt.Errorf("jobs: request body exceeds %d bytes", maxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("jobs: parsing request: %w", err)
	}
	// Trailing garbage after the document is a malformed request, not an
	// extra document to ignore.
	if dec.More() {
		return req, fmt.Errorf("jobs: trailing data after request document")
	}
	return req, req.Validate()
}

// Validate checks the request's self-consistency (graph existence and pin
// resolution need the registry and happen at submit time in the server).
func (r *Request) Validate() error {
	if r.GraphRef == "" {
		return fmt.Errorf("jobs: need graph_ref")
	}
	if _, err := r.ParseVariant(); err != nil {
		return err
	}
	if r.K < 0 {
		return fmt.Errorf("jobs: negative k %d", r.K)
	}
	if r.K == 0 && r.Threshold == 0 {
		return fmt.Errorf("jobs: need k or threshold")
	}
	if r.Threshold < 0 || r.Threshold > 1 {
		return fmt.Errorf("jobs: threshold %g outside (0,1]", r.Threshold)
	}
	if r.Workers < 0 {
		return fmt.Errorf("jobs: negative workers %d", r.Workers)
	}
	if _, err := greedy.ParseStrategy(r.Strategy); err != nil {
		return err
	}
	if r.K > 0 && len(r.Pins) > r.K {
		return fmt.Errorf("jobs: %d pins exceed k=%d", len(r.Pins), r.K)
	}
	return nil
}
