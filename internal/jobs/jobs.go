// Package jobs is prefcoverd's async solve queue. Synchronous /v1/solve
// holds an HTTP connection for the whole solve, which breaks down exactly
// where the ROADMAP points — large catalogs where a greedy run takes
// minutes. A job instead references a registered graph by name, enters a
// bounded queue (full queue = immediate 429-style rejection, the same
// load-shedding philosophy as the synchronous limiter), runs on a bounded
// worker pool that shares the server's concurrency budget, streams
// per-iteration progress from the solver's Options.Progress events, and
// can be canceled at any point in its lifecycle. Results are whatever the
// submitted task returns — the server lands them in the solve cache so a
// finished job warms every subsequent prefix query.
//
// The package is solver-agnostic: Submit takes a Task closure, and the
// manager owns only lifecycle — queueing, worker dispatch, cancellation,
// progress snapshots, and bounded retention of finished jobs.
package jobs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"prefcover/internal/trace"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is the latest solver position, fed by the task via its update
// callback (one call per greedy iteration).
type Progress struct {
	// Step is the number of items selected so far.
	Step int `json:"step"`
	// Target is the requested budget (0 in pure threshold mode).
	Target int `json:"target,omitempty"`
	// Cover is C(S) after Step selections.
	Cover float64 `json:"cover"`
}

// Task is the work a job performs. It must honor ctx (cancellation) and
// may call update from the solver's progress hook; the returned value is
// exposed as the job's Result.
type Task func(ctx context.Context, update func(Progress)) (any, error)

// Snapshot is an immutable copy of a job's externally visible state.
type Snapshot struct {
	ID       string
	State    State
	Progress Progress
	// Result is the task's return value; non-nil only when State is done.
	Result any
	// Err is the task failure; non-nil only for failed/canceled.
	Err      error
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Trace is the submitter's distributed trace position, persisted across
	// the queue boundary; the zero value means the submission carried none.
	Trace trace.SpanContext
}

// Errors returned by Submit.
var (
	// ErrQueueFull: the bounded queue is at capacity — shed load, retry
	// later.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed: the manager is shutting down.
	ErrClosed = errors.New("jobs: manager closed")
)

// Options configures a Manager.
type Options struct {
	// Workers is the worker-pool width (0 = 1).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (0 = DefaultQueueDepth).
	QueueDepth int
	// MaxFinished bounds retained terminal jobs; the oldest are forgotten
	// first (0 = DefaultMaxFinished).
	MaxFinished int
	// Gate, when non-nil, is the server's shared concurrency limiter: a
	// worker holds one slot for the duration of each task, so async jobs
	// and synchronous /v1/* requests compete for the same solve budget
	// instead of oversubscribing the machine.
	Gate chan struct{}
	// OnFinish, when non-nil, is called once per job reaching a terminal
	// state (metrics).
	OnFinish func(State)
}

const (
	DefaultQueueDepth  = 64
	DefaultMaxFinished = 256
)

// job is the internal mutable record; all fields are guarded by
// Manager.mu.
type job struct {
	id string
	// key is the idempotency key the job was submitted under ("" = none);
	// kept so forgetting the job also clears its dedup mapping.
	key      string
	state    State
	progress Progress
	result   any
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	task     Task
	cancel   context.CancelFunc
	ctx      context.Context
	// tc is the submitter's trace position; see Snapshot.Trace.
	tc trace.SpanContext
}

// Manager owns the queue, the worker pool, and the job table.
type Manager struct {
	opts Options

	mu       sync.Mutex
	jobs     map[string]*job
	doneFIFO []string // terminal job ids, oldest first, for bounded retention
	// byKey maps idempotency keys to job ids, so a retried submission
	// (client resent after a transport failure or injected fault) lands on
	// the already-enqueued job instead of double-enqueueing.
	byKey   map[string]string
	queued  int
	running int
	closed  bool

	queue chan *job
	wg    sync.WaitGroup
	// base is canceled by Close to tear down queued and running jobs.
	base     context.Context
	baseStop context.CancelFunc
}

// New starts the worker pool.
func New(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxFinished <= 0 {
		opts.MaxFinished = DefaultMaxFinished
	}
	base, stop := context.WithCancel(context.Background())
	m := &Manager{
		opts:     opts,
		jobs:     make(map[string]*job),
		byKey:    make(map[string]string),
		queue:    make(chan *job, opts.QueueDepth),
		base:     base,
		baseStop: stop,
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit enqueues a task and returns its queued snapshot, or ErrQueueFull
// / ErrClosed without side effects.
func (m *Manager) Submit(task Task) (Snapshot, error) {
	snap, _, err := m.SubmitIdempotent("", trace.SpanContext{}, task)
	return snap, err
}

// SubmitIdempotent enqueues a task under an idempotency key. When the key
// has been seen before and its job is still retained, the existing job's
// snapshot is returned with replayed=true and no new job is created — a
// client that resends POST /v1/jobs after a transport failure cannot
// double-enqueue. An empty key disables deduplication. A valid tc is
// persisted with the job (visible in snapshots) and installed in the
// task's context, so worker-side spans join the submitter's trace across
// the queue boundary; the zero value disables propagation.
func (m *Manager) SubmitIdempotent(key string, tc trace.SpanContext, task Task) (snap Snapshot, replayed bool, err error) {
	ctx, cancel := context.WithCancel(m.base)
	j := &job{
		id:      newID(),
		key:     key,
		state:   StateQueued,
		created: time.Now(),
		task:    task,
		ctx:     ctx,
		cancel:  cancel,
		tc:      tc,
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return Snapshot{}, false, ErrClosed
	}
	if key != "" {
		if id, ok := m.byKey[key]; ok {
			if prev, live := m.jobs[id]; live {
				snap := prev.snapshotLocked()
				m.mu.Unlock()
				cancel()
				return snap, true, nil
			}
			// The job was forgotten (retention trim or Remove); the key is
			// free again and this submission counts as new work.
			delete(m.byKey, key)
		}
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		return Snapshot{}, false, ErrQueueFull
	}
	m.jobs[j.id] = j
	if key != "" {
		m.byKey[key] = j.id
	}
	m.queued++
	snap = j.snapshotLocked()
	m.mu.Unlock()
	return snap, false, nil
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshotLocked(), true
}

// List snapshots every retained job, newest first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshotLocked())
	}
	// Newest first; ties broken by id for determinism.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && newerFirst(out[k], out[k-1]); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

func newerFirst(a, b Snapshot) bool {
	if !a.Created.Equal(b.Created) {
		return a.Created.After(b.Created)
	}
	return a.ID < b.ID
}

// Cancel requests cancellation. Queued jobs transition to canceled
// immediately (the worker discards them on dequeue); running jobs get
// their context canceled and transition when the task returns. Canceling
// a terminal or unknown job is a no-op returning false.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.state.Terminal() {
		m.mu.Unlock()
		return false
	}
	if j.state == StateQueued {
		m.finishLocked(j, StateCanceled, nil, context.Canceled)
		m.queued--
		m.mu.Unlock()
		j.cancel()
		return true
	}
	m.mu.Unlock()
	j.cancel() // running: the task observes ctx and returns
	return true
}

// Remove forgets a terminal job (DELETE on a finished job). Non-terminal
// jobs are not removable — cancel first.
func (m *Manager) Remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || !j.state.Terminal() {
		return false
	}
	delete(m.jobs, id)
	m.forgetKeyLocked(j)
	return true
}

// forgetKeyLocked clears j's idempotency mapping, but only while it still
// points at j — a later submission may have legitimately reused the key.
// Callers hold m.mu.
func (m *Manager) forgetKeyLocked(j *job) {
	if j.key != "" && m.byKey[j.key] == j.id {
		delete(m.byKey, j.key)
	}
}

// Depth returns how many jobs are queued but not yet running.
func (m *Manager) Depth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued
}

// Running returns how many jobs are executing right now.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Cap returns the configured queue depth bound — the denominator for
// readiness checks (Depth()/Cap() is queue saturation).
func (m *Manager) Cap() int {
	return m.opts.QueueDepth
}

// Close stops intake, cancels every queued and running job, and waits for
// the workers to drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.baseStop() // cancels every job context, queued and running
	close(m.queue)
	m.wg.Wait()
}

// worker drains the queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runOne(j)
	}
}

// runOne executes a single job end to end.
func (m *Manager) runOne(j *job) {
	m.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued; already terminal.
		m.mu.Unlock()
		return
	}
	// Admission: hold a slot of the shared limiter before flipping to
	// running, so "running" always means "occupying a solve slot".
	if m.opts.Gate != nil {
		m.mu.Unlock()
		select {
		case m.opts.Gate <- struct{}{}:
			defer func() { <-m.opts.Gate }()
		case <-j.ctx.Done():
			m.mu.Lock()
			if j.state == StateQueued {
				m.finishLocked(j, StateCanceled, nil, j.ctx.Err())
				m.queued--
			}
			m.mu.Unlock()
			return
		}
		m.mu.Lock()
		if j.state != StateQueued {
			m.mu.Unlock()
			return
		}
	}
	j.state = StateRunning
	j.started = time.Now()
	m.queued--
	m.running++
	m.mu.Unlock()

	update := func(p Progress) {
		m.mu.Lock()
		j.progress = p
		m.mu.Unlock()
	}
	// The task context carries the job's identity and, when the submission
	// was part of a distributed trace, the submitter's span context.
	tctx := withID(j.ctx, j.id)
	if j.tc.Valid() {
		tctx = trace.ContextWithSpanContext(tctx, j.tc)
	}
	result, err := j.task(tctx, update)

	m.mu.Lock()
	m.running--
	switch {
	case err == nil:
		m.finishLocked(j, StateDone, result, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.finishLocked(j, StateCanceled, nil, err)
	default:
		m.finishLocked(j, StateFailed, nil, err)
	}
	m.mu.Unlock()
	j.cancel() // release the context's resources
}

// finishLocked moves j to a terminal state and enforces the finished-job
// retention bound. Callers hold m.mu.
func (m *Manager) finishLocked(j *job, state State, result any, err error) {
	j.state = state
	j.result = result
	j.err = err
	j.finished = time.Now()
	m.doneFIFO = append(m.doneFIFO, j.id)
	for len(m.doneFIFO) > m.opts.MaxFinished {
		oldest := m.doneFIFO[0]
		m.doneFIFO = m.doneFIFO[1:]
		// Remove may already have forgotten it; delete is idempotent.
		if old, ok := m.jobs[oldest]; ok && old.state.Terminal() {
			delete(m.jobs, oldest)
			m.forgetKeyLocked(old)
		}
	}
	if m.opts.OnFinish != nil {
		// Fire outside the lock? The hook is metrics-increment cheap by
		// contract; keep it inline for ordering guarantees.
		m.opts.OnFinish(state)
	}
}

func (j *job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:       j.id,
		State:    j.state,
		Progress: j.progress,
		Result:   j.result,
		Err:      j.err,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Trace:    j.tc,
	}
}

// idKey carries a job's id in its task context.
type idKey struct{}

func withID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, idKey{}, id)
}

// IDFrom returns the id of the job whose task owns ctx ("" outside a job).
func IDFrom(ctx context.Context) string {
	id, _ := ctx.Value(idKey{}).(string)
	return id
}

// newID returns a 16-hex-digit random job id.
func newID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to time-based uniqueness; crypto/rand failing means
		// the host is in much deeper trouble than job-id collisions.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}
