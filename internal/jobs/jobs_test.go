package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while waiting for %s", id, want)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached terminal %s (err=%v), want %s", id, snap.State, snap.Err, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func TestLifecycleDone(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	snap, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
		for step := 1; step <= 3; step++ {
			update(Progress{Step: step, Target: 3, Cover: float64(step) / 3})
		}
		return "payload", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued || snap.ID == "" {
		t.Fatalf("submit snapshot = %+v", snap)
	}
	final := waitState(t, m, snap.ID, StateDone)
	if final.Result != "payload" || final.Err != nil {
		t.Fatalf("final = %+v", final)
	}
	if final.Progress.Step != 3 || final.Progress.Cover != 1 {
		t.Fatalf("progress = %+v", final.Progress)
	}
	if final.Finished.Before(final.Started) || final.Started.Before(final.Created) {
		t.Fatalf("timestamps out of order: %+v", final)
	}
}

func TestLifecycleFailed(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	boom := errors.New("boom")
	snap, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, snap.ID, StateFailed)
	if !errors.Is(final.Err, boom) || final.Result != nil {
		t.Fatalf("final = %+v", final)
	}
}

func TestCancelRunning(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	started := make(chan struct{})
	snap, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !m.Cancel(snap.ID) {
		t.Fatal("Cancel(running) = false")
	}
	final := waitState(t, m, snap.ID, StateCanceled)
	if !errors.Is(final.Err, context.Canceled) {
		t.Fatalf("err = %v", final.Err)
	}
	// Canceling again is a no-op.
	if m.Cancel(snap.ID) {
		t.Fatal("Cancel(terminal) = true")
	}
}

func TestCancelQueued(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	blocker, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queued, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
		return nil, fmt.Errorf("must never run")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(queued.ID) {
		t.Fatal("Cancel(queued) = false")
	}
	if snap, _ := m.Get(queued.ID); snap.State != StateCanceled {
		t.Fatalf("state = %s immediately after queued cancel", snap.State)
	}
	close(release)
	waitState(t, m, blocker.ID, StateDone)
	// The worker must have discarded the canceled job, not run it.
	if snap, _ := m.Get(queued.ID); snap.State != StateCanceled || snap.Err == nil {
		t.Fatalf("discarded job = %+v", snap)
	}
}

func TestQueueFull(t *testing.T) {
	m := New(Options{Workers: 1, QueueDepth: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, update func(Progress)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	running, err := m.Submit(block)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	if _, err := m.Submit(block); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := m.Submit(block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Submit err = %v, want ErrQueueFull", err)
	}
	if got := m.Depth(); got != 1 {
		t.Fatalf("Depth = %d", got)
	}
}

func TestGateSharing(t *testing.T) {
	gate := make(chan struct{}, 1)
	m := New(Options{Workers: 2, Gate: gate})
	defer m.Close()
	// Occupy the only slot, as a synchronous request would.
	gate <- struct{}{}
	snap, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The job cannot start while the slot is held.
	time.Sleep(20 * time.Millisecond)
	if got, _ := m.Get(snap.ID); got.State != StateQueued {
		t.Fatalf("state = %s while gate held, want queued", got.State)
	}
	<-gate // release the synchronous slot
	final := waitState(t, m, snap.ID, StateDone)
	if final.Result != 42 {
		t.Fatalf("result = %v", final.Result)
	}
}

func TestCancelWhileWaitingForGate(t *testing.T) {
	gate := make(chan struct{}, 1)
	gate <- struct{}{} // never released
	m := New(Options{Workers: 1, Gate: gate})
	defer m.Close()
	snap, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
		return nil, fmt.Errorf("must never run")
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if !m.Cancel(snap.ID) {
		t.Fatal("Cancel = false")
	}
	final := waitState(t, m, snap.ID, StateCanceled)
	if final.Result != nil {
		t.Fatalf("result = %v", final.Result)
	}
}

func TestRemove(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	running := make(chan struct{})
	release := make(chan struct{})
	snap, _ := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
		close(running)
		<-release
		return nil, nil
	})
	<-running
	if m.Remove(snap.ID) {
		t.Fatal("Remove(running) = true")
	}
	close(release)
	waitState(t, m, snap.ID, StateDone)
	if !m.Remove(snap.ID) {
		t.Fatal("Remove(done) = false")
	}
	if _, ok := m.Get(snap.ID); ok {
		t.Fatal("removed job still visible")
	}
	if m.Remove(snap.ID) {
		t.Fatal("second Remove = true")
	}
}

func TestFinishedRetentionBound(t *testing.T) {
	m := New(Options{Workers: 1, MaxFinished: 3})
	defer m.Close()
	var ids []string
	for i := 0; i < 6; i++ {
		snap, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
		waitState(t, m, snap.ID, StateDone)
	}
	var retained int
	for _, id := range ids {
		if _, ok := m.Get(id); ok {
			retained++
		}
	}
	if retained != 3 {
		t.Fatalf("retained %d finished jobs, want 3", retained)
	}
	// The newest ones survive.
	for _, id := range ids[3:] {
		if _, ok := m.Get(id); !ok {
			t.Errorf("recent job %s evicted", id)
		}
	}
}

func TestOnFinishHook(t *testing.T) {
	var mu sync.Mutex
	counts := map[State]int{}
	m := New(Options{Workers: 2, OnFinish: func(s State) {
		mu.Lock()
		counts[s]++
		mu.Unlock()
	}})
	defer m.Close()
	ok, _ := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) { return nil, nil })
	bad, _ := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) { return nil, errors.New("x") })
	waitState(t, m, ok.ID, StateDone)
	waitState(t, m, bad.ID, StateFailed)
	mu.Lock()
	defer mu.Unlock()
	if counts[StateDone] != 1 || counts[StateFailed] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	m := New(Options{Workers: 2})
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	<-started
	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain")
	}
	if _, err := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v", err)
	}
}

func TestListNewestFirst(t *testing.T) {
	m := New(Options{Workers: 1})
	defer m.Close()
	for i := 0; i < 3; i++ {
		snap, _ := m.Submit(func(ctx context.Context, update func(Progress)) (any, error) { return nil, nil })
		waitState(t, m, snap.ID, StateDone)
		time.Sleep(time.Millisecond)
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("List len = %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Created.After(list[i-1].Created) {
			t.Fatalf("List not newest-first: %v", list)
		}
	}
}
