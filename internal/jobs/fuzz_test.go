package jobs

import (
	"testing"
)

// FuzzJobRequestJSON feeds arbitrary bytes to ParseRequest: it must never
// panic, and any request it accepts must re-validate cleanly and carry a
// parseable variant.
func FuzzJobRequestJSON(f *testing.F) {
	f.Add([]byte(`{"graph_ref":"yc","variant":"independent","k":10}`))
	f.Add([]byte(`{"graph_ref":"yc","variant":"n","threshold":0.9}`))
	f.Add([]byte(`{"graph_ref":"yc","variant":"i","k":5,"lazy":false,"workers":4,"pins":["a","b"]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"graph_ref":"x","variant":"i","k":1}{"extra":1}`))
	f.Add([]byte(`{"graph_ref":"x","variant":"i","k":-1}`))
	f.Add([]byte(`{"graph_ref":"x","variant":"i","threshold":1.5}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		if verr := req.Validate(); verr != nil {
			t.Fatalf("accepted request fails re-validation: %v (input %q)", verr, data)
		}
		if _, verr := req.ParseVariant(); verr != nil {
			t.Fatalf("accepted request has unparseable variant %q", req.Variant)
		}
		if req.GraphRef == "" {
			t.Fatalf("accepted request with empty graph_ref (input %q)", data)
		}
	})
}
