package budgeted_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	. "prefcover/internal/budgeted"
	"prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/greedy"
)

const tol = 1e-9

func TestUnitCostMatchesPlainGreedy(t *testing.T) {
	// With unit costs and unit revenue, budget B equals cardinality k, and
	// the benefit pass is exactly the paper's greedy.
	g := fixture.Figure1Graph()
	res, err := Solve(g, Spec{Variant: graph.Independent, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Revenue-plain.Cover) > tol {
		t.Errorf("budgeted %g != plain %g", res.Revenue, plain.Cover)
	}
	if len(res.Order) != 2 || res.Order[0] != plain.Order[0] || res.Order[1] != plain.Order[1] {
		t.Errorf("order = %v, want %v", res.Order, plain.Order)
	}
	if res.CostUsed != 2 {
		t.Errorf("cost used = %g", res.CostUsed)
	}
}

func TestValidation(t *testing.T) {
	g := fixture.Figure1Graph()
	cases := map[string]Spec{
		"zero budget":      {Variant: graph.Independent},
		"revenue len":      {Variant: graph.Independent, Budget: 1, Revenue: []float64{1}},
		"cost len":         {Variant: graph.Independent, Budget: 1, Cost: []float64{1}},
		"negative revenue": {Variant: graph.Independent, Budget: 1, Revenue: []float64{1, 1, -1, 1, 1}},
		"zero cost":        {Variant: graph.Independent, Budget: 1, Cost: []float64{1, 0, 1, 1, 1}},
	}
	for name, spec := range cases {
		if _, err := Solve(g, spec); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestRevenueScalingChangesSelection(t *testing.T) {
	// Make item E's revenue enormous: retaining D (which covers E at 0.9)
	// or E itself must become the first pick.
	g := fixture.Figure1Graph()
	e, _ := g.Lookup("E")
	d, _ := g.Lookup("D")
	revenue := []float64{1, 1, 1, 1, 1}
	revenue[e] = 50
	res, err := Solve(g, Spec{Variant: graph.Independent, Budget: 1, Revenue: revenue})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 1 || (res.Order[0] != e && res.Order[0] != d) {
		t.Errorf("first pick = %v, want E or D", res.Order)
	}
	// E itself (full revenue) beats D (0.9 of it plus D's own).
	wantE := 50 * g.NodeWeight(e)
	wantD := 0.9*50*g.NodeWeight(e) + g.NodeWeight(d)
	wantBest := math.Max(wantE, wantD)
	if math.Abs(res.Revenue-wantBest) > tol {
		t.Errorf("revenue = %g, want %g", res.Revenue, wantBest)
	}
}

func TestCostsForceCheapSubstitutes(t *testing.T) {
	// B is the strongest item but exorbitantly expensive; the budget only
	// fits the cheap ones, so the solution must avoid B entirely.
	g := fixture.Figure1Graph()
	b, _ := g.Lookup("B")
	cost := []float64{1, 1, 1, 1, 1}
	cost[b] = 100
	res, err := Solve(g, Spec{Variant: graph.Independent, Budget: 2, Cost: cost})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Order {
		if v == b {
			t.Fatal("unaffordable item selected")
		}
	}
	if res.CostUsed > 2+tol {
		t.Errorf("cost used %g exceeds budget", res.CostUsed)
	}
}

func TestRatioPassWinsWhenCheapItemsCoverMore(t *testing.T) {
	// Two clusters: one high-gain expensive item vs several cheap items
	// whose total gain under the same budget is larger. The ratio pass
	// must find the cheap plan.
	bld := graph.NewBuilder(4, 0)
	bld.AddNode(0.4) // expensive hub, cost 10
	bld.AddNode(0.2) // cheap, cost 1
	bld.AddNode(0.2) // cheap, cost 1
	bld.AddNode(0.2) // cheap, cost 1
	g, err := bld.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Spec{
		Variant: graph.Independent,
		Budget:  10,
		Cost:    []float64{10, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Benefit pass grabs node 0 (gain 0.4, cost 10) and exhausts the
	// budget for 0.4; the cheap trio yields 0.6.
	if math.Abs(res.Revenue-0.6) > tol {
		t.Errorf("revenue = %g, want 0.6 (strategy %s)", res.Revenue, res.Strategy)
	}
	if res.Strategy != "ratio" {
		t.Errorf("strategy = %s, want ratio", res.Strategy)
	}
}

func TestSingleStrategyWhenBudgetTiny(t *testing.T) {
	// Budget fits exactly one specific expensive item whose gain exceeds
	// anything the cheap items can assemble.
	bld := graph.NewBuilder(3, 0)
	bld.AddNode(0.9)
	bld.AddNode(0.05)
	bld.AddNode(0.05)
	g, err := bld.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, Spec{
		Variant: graph.Independent,
		Budget:  3,
		Cost:    []float64{3, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Revenue-0.9) > tol {
		t.Errorf("revenue = %g, want 0.9", res.Revenue)
	}
	if len(res.Order) != 1 || res.Order[0] != 0 {
		t.Errorf("order = %v", res.Order)
	}
}

func TestNothingAffordable(t *testing.T) {
	g := fixture.Figure1Graph()
	res, err := Solve(g, Spec{
		Variant: graph.Independent,
		Budget:  0.5,
		Cost:    []float64{1, 1, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 0 || res.Revenue != 0 {
		t.Errorf("unaffordable instance returned %+v", res)
	}
}

// TestBudgetedInvariants: the solution respects the budget, its revenue
// matches a from-scratch evaluation on the revenue-scaled graph, and it is
// at least as good as the best single affordable item (the (1-1/e)/2
// scheme's floor).
func TestBudgetedInvariants(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 3+rng.Intn(20), 4, variant)
			n := g.NumNodes()
			revenue := make([]float64, n)
			costs := make([]float64, n)
			for i := range revenue {
				revenue[i] = rng.Float64() * 3
				costs[i] = 0.1 + rng.Float64()*2
			}
			budget := 0.5 + rng.Float64()*3
			res, err := Solve(g, Spec{Variant: variant, Revenue: revenue, Cost: costs, Budget: budget})
			if err != nil {
				return false
			}
			if res.CostUsed > budget+tol {
				return false
			}
			// Objective matches a from-scratch evaluation on the scaled
			// graph.
			bld := graph.NewBuilder(n, g.NumEdges())
			for v := int32(0); v < int32(n); v++ {
				bld.AddNode(g.NodeWeight(v) * revenue[v])
			}
			for _, e := range g.Edges() {
				bld.AddEdge(e.Src, e.Dst, e.W)
			}
			scaled, err := bld.Build(graph.BuildOptions{})
			if err != nil {
				return false
			}
			fresh, err := cover.EvaluateSet(scaled, variant, res.Order)
			if err != nil {
				return false
			}
			if math.Abs(fresh-res.Revenue) > 1e-9 {
				return false
			}
			// At least the best affordable single item.
			bestSingle := 0.0
			for v := int32(0); v < int32(n); v++ {
				if costs[v] > budget {
					continue
				}
				single, err := cover.EvaluateSet(scaled, variant, []int32{v})
				if err != nil {
					return false
				}
				if single > bestSingle {
					bestSingle = single
				}
			}
			return res.Revenue >= bestSingle-tol
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("variant %v: %v", variant, err)
		}
	}
}

// TestBudgetedNearExhaustive compares against exhaustive search on tiny
// instances; the scheme must stay within its (1-1/e)/2 guarantee (and in
// practice does far better).
func TestBudgetedNearExhaustive(t *testing.T) {
	floor := (1 - 1/math.E) / 2
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 4+rng.Intn(5), 3, graph.Independent)
		n := g.NumNodes()
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 0.5 + rng.Float64()
		}
		budget := 1.0 + rng.Float64()*2
		res, err := Solve(g, Spec{Variant: graph.Independent, Cost: costs, Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		opt := exhaustiveBudgeted(g, costs, budget)
		if res.Revenue < floor*opt-tol {
			t.Errorf("seed %d: budgeted %g < %g * optimum %g", seed, res.Revenue, floor, opt)
		}
		if res.Revenue > opt+tol {
			t.Errorf("seed %d: budgeted %g exceeds optimum %g", seed, res.Revenue, opt)
		}
	}
}

func exhaustiveBudgeted(g *graph.Graph, costs []float64, budget float64) float64 {
	n := g.NumNodes()
	best := 0.0
	retained := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		var cost float64
		for v := 0; v < n; v++ {
			retained[v] = mask&(1<<v) != 0
			if retained[v] {
				cost += costs[v]
			}
		}
		if cost > budget {
			continue
		}
		if c := cover.Evaluate(g, graph.Independent, retained); c > best {
			best = c
		}
	}
	return best
}
