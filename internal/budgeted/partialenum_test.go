package budgeted_test

import (
	"math"
	"math/rand"
	"testing"

	. "prefcover/internal/budgeted"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
)

func TestPartialEnumNeverWorseThanGreedy(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 5+rng.Intn(5), 3, graph.Independent)
		n := g.NumNodes()
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 0.5 + rng.Float64()
		}
		spec := Spec{Variant: graph.Independent, Cost: costs, Budget: 1 + 2*rng.Float64()}
		base, err := Solve(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		enum, err := SolvePartialEnum(g, spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		if enum.Revenue < base.Revenue-1e-9 {
			t.Errorf("seed %d: enum %g < greedy %g", seed, enum.Revenue, base.Revenue)
		}
		if enum.CostUsed > spec.Budget+1e-9 {
			t.Errorf("seed %d: budget violated", seed)
		}
	}
}

// TestPartialEnumMeetsOneMinusInvE: against exhaustive search the
// enumeration variant must reach the (1-1/e) factor.
func TestPartialEnumMeetsOneMinusInvE(t *testing.T) {
	ratio := 1 - 1/math.E
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 4+rng.Intn(5), 3, graph.Independent)
		n := g.NumNodes()
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = 0.5 + rng.Float64()
		}
		budget := 1.0 + rng.Float64()*2
		spec := Spec{Variant: graph.Independent, Cost: costs, Budget: budget}
		res, err := SolvePartialEnum(g, spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt := exhaustiveBudgeted(g, costs, budget)
		if res.Revenue < ratio*opt-1e-9 {
			t.Errorf("seed %d: enum %g < %g * optimum %g", seed, res.Revenue, ratio, opt)
		}
	}
}

func TestPartialEnumSeedBudgetGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graphtest.Random(rng, 30, 3, graph.Independent)
	if _, err := SolvePartialEnum(g, Spec{Variant: graph.Independent, Budget: 3}, 100); err == nil {
		t.Fatal("seed budget should trip")
	}
}

// TestPartialEnumBeatsGreedyOnHardInstance constructs the classic trap:
// greedy-by-ratio grabs a cheap high-ratio item that blocks the optimal
// expensive pair.
func TestPartialEnumBeatsGreedyOnHardInstance(t *testing.T) {
	b := graph.NewBuilder(3, 0)
	b.AddNode(0.34) // cheap decoy
	b.AddNode(0.33)
	b.AddNode(0.33)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Variant: graph.Independent,
		Cost:    []float64{1, 2, 2},
		Budget:  4,
	}
	// Ratio pass picks the decoy (0.34) then can afford only one of the
	// others: 0.67. Benefit pass picks 0.34 first too. Optimal: both
	// expensive items, 0.66... which loses to 0.67 here; make the decoy
	// cheaper in value instead.
	spec.Revenue = []float64{1, 2, 2} // expensive items worth double
	enum, err := SolvePartialEnum(g, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if enum.Revenue < base.Revenue {
		t.Fatalf("enum %g < greedy %g", enum.Revenue, base.Revenue)
	}
	// The optimum is the two expensive items: 2*(0.33+0.33) = 1.32.
	if math.Abs(enum.Revenue-1.32) > 1e-9 {
		t.Errorf("enum revenue = %g, want 1.32", enum.Revenue)
	}
}
