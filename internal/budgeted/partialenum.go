package budgeted

import (
	"fmt"

	"prefcover/internal/cover"
	"prefcover/internal/graph"
)

// SolvePartialEnum runs the partial-enumeration variant of the budgeted
// greedy (Khuller, Moss & Naor 1999 for coverage; Sviridenko 2004 for
// general monotone submodular): every feasible seed set of size up to 3 is
// completed by the cost-ratio greedy, and the best completion is returned.
// This lifts the approximation guarantee from (1-1/e)/2 to (1-1/e) at
// O(n^3) greedy completions, so it is only practical for small catalogs —
// the maxSeeds budget guards against accidental huge runs (0 means no
// guard).
//
// Seed sets of size 1 and 2 are also enumerated (they are the size-3
// prefix cases with fewer elements); the plain Solve result is the
// starting candidate so SolvePartialEnum never returns something worse.
func SolvePartialEnum(g *graph.Graph, spec Spec, maxSeeds int64) (*Result, error) {
	n := g.NumNodes()
	base, err := Solve(g, spec)
	if err != nil {
		return nil, err
	}
	revenue := spec.Revenue
	if revenue == nil {
		revenue = ones(n)
	}
	cost := spec.Cost
	if cost == nil {
		cost = ones(n)
	}
	scaled, err := scaleByRevenue(g, revenue)
	if err != nil {
		return nil, err
	}
	// Seed count: n + C(n,2) + C(n,3).
	nn := int64(n)
	total := nn + nn*(nn-1)/2 + nn*(nn-1)*(nn-2)/6
	if maxSeeds > 0 && total > maxSeeds {
		return nil, fmt.Errorf("budgeted: partial enumeration needs %d seed completions, over the budget %d", total, maxSeeds)
	}
	best := base
	best.Strategy = base.Strategy + "+enum"
	trySeed := func(seed []int32) error {
		var seedCost float64
		for _, v := range seed {
			seedCost += cost[v]
		}
		if seedCost > spec.Budget {
			return nil
		}
		res := completeGreedy(scaled, spec.Variant, cost, spec.Budget, seed)
		if res.Revenue > best.Revenue {
			res.Strategy = "enum"
			best = res
		}
		return nil
	}
	for a := int32(0); a < int32(n); a++ {
		if err := trySeed([]int32{a}); err != nil {
			return nil, err
		}
		for b := a + 1; b < int32(n); b++ {
			if err := trySeed([]int32{a, b}); err != nil {
				return nil, err
			}
			for c := b + 1; c < int32(n); c++ {
				if err := trySeed([]int32{a, b, c}); err != nil {
					return nil, err
				}
			}
		}
	}
	return best, nil
}

// completeGreedy seeds the engine with the given set and completes it with
// the cost-ratio greedy under the remaining budget.
func completeGreedy(scaled *graph.Graph, variant graph.Variant, cost []float64, budget float64, seed []int32) *Result {
	eng := cover.NewEngine(scaled, variant)
	res := &Result{}
	for _, v := range seed {
		gain := eng.Add(v)
		res.Order = append(res.Order, v)
		res.Gains = append(res.Gains, gain)
		res.CostUsed += cost[v]
	}
	remaining := budget - res.CostUsed
	for {
		best := int32(-1)
		bestRatio := 0.0
		var bestGain float64
		for v := int32(0); v < int32(scaled.NumNodes()); v++ {
			if eng.Retained(v) || cost[v] > remaining {
				continue
			}
			g := eng.Gain(v)
			if g <= 0 {
				continue
			}
			ratio := g / cost[v]
			if ratio > bestRatio || (ratio == bestRatio && best >= 0 && v < best) {
				best, bestRatio, bestGain = v, ratio, g
			}
		}
		if best < 0 {
			break
		}
		eng.Add(best)
		res.Order = append(res.Order, best)
		res.Gains = append(res.Gains, bestGain)
		res.CostUsed += cost[best]
		remaining -= cost[best]
	}
	res.Revenue = sum(res.Gains)
	return res
}
