// Package budgeted extends the Preference Cover problem with the two
// generalizations the paper's conclusion poses as future work: varying
// per-item revenues and storage (cost/capacity) considerations.
//
// The objective becomes expected covered revenue
//
//	F(S) = sum_v Revenue(v) * W(v) * P(request for v matched by S)
//
// subject to sum_{v in S} Cost(v) <= Budget. Because F is the plain cover
// function of a graph whose node weights are scaled by revenue, F inherits
// monotone submodularity, and the classic result for budgeted submodular
// maximization applies: taking the better of (a) plain-gain greedy and
// (b) gain/cost-ratio greedy, each truncated to the budget, and (c) the
// best single affordable item, guarantees at least (1 - 1/e)/2 of the
// optimum (Leskovec et al. 2007; Khuller-Moss-Naor for coverage). All
// passes use lazy evaluation.
package budgeted

import (
	"container/heap"
	"errors"
	"fmt"

	"prefcover/internal/cover"
	"prefcover/internal/graph"
)

// Spec configures Solve.
type Spec struct {
	// Variant selects the cover semantics.
	Variant graph.Variant
	// Revenue is the per-item revenue multiplier (commission); nil means
	// all 1 (the paper's fixed-commission setting). Values must be >= 0.
	Revenue []float64
	// Cost is the per-item storage cost; nil means all 1, making Budget a
	// plain cardinality bound. Values must be > 0.
	Cost []float64
	// Budget is the total cost capacity; must be > 0.
	Budget float64
}

// Result is the budgeted solution.
type Result struct {
	// Order lists retained items in selection order of the winning pass.
	Order []int32
	// Gains are the marginal revenue gains realized per selection.
	Gains []float64
	// Revenue is F(S), the expected covered revenue.
	Revenue float64
	// CostUsed is the total cost of the retained set.
	CostUsed float64
	// Strategy records which candidate won: "benefit", "ratio" or
	// "single".
	Strategy string
}

// Solve runs the budgeted greedy scheme.
func Solve(g *graph.Graph, spec Spec) (*Result, error) {
	n := g.NumNodes()
	if spec.Budget <= 0 {
		return nil, errors.New("budgeted: budget must be positive")
	}
	revenue := spec.Revenue
	if revenue == nil {
		revenue = ones(n)
	} else if len(revenue) != n {
		return nil, fmt.Errorf("budgeted: revenue has %d entries for %d items", len(revenue), n)
	}
	cost := spec.Cost
	if cost == nil {
		cost = ones(n)
	} else if len(cost) != n {
		return nil, fmt.Errorf("budgeted: cost has %d entries for %d items", len(cost), n)
	}
	for v := 0; v < n; v++ {
		if revenue[v] < 0 {
			return nil, fmt.Errorf("budgeted: negative revenue for item %d", v)
		}
		if cost[v] <= 0 {
			return nil, fmt.Errorf("budgeted: non-positive cost for item %d", v)
		}
	}
	scaled, err := scaleByRevenue(g, revenue)
	if err != nil {
		return nil, err
	}

	benefit := greedyPass(scaled, spec.Variant, cost, spec.Budget, false)
	benefit.Strategy = "benefit"
	ratio := greedyPass(scaled, spec.Variant, cost, spec.Budget, true)
	ratio.Strategy = "ratio"
	single := bestSingle(scaled, spec.Variant, cost, spec.Budget)

	best := benefit
	if ratio.Revenue > best.Revenue {
		best = ratio
	}
	if single != nil && single.Revenue > best.Revenue {
		best = single
	}
	return best, nil
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// scaleByRevenue rebuilds g with node weights multiplied by revenue; the
// cover of the scaled graph is exactly the expected covered revenue.
func scaleByRevenue(g *graph.Graph, revenue []float64) (*graph.Graph, error) {
	allOne := true
	for _, r := range revenue {
		if r != 1 {
			allOne = false
			break
		}
	}
	if allOne {
		return g, nil
	}
	b := graph.NewBuilder(g.NumNodes(), g.NumEdges())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if g.Labeled() {
			b.AddLabeledNode(g.Label(v), g.NodeWeight(v)*revenue[v])
		} else {
			b.AddNode(g.NodeWeight(v) * revenue[v])
		}
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			b.AddEdge(v, u, ws[i])
		}
	}
	return b.Build(graph.BuildOptions{})
}

// budgetEntry is a lazy-heap candidate; priority is gain (benefit pass) or
// gain/cost (ratio pass).
type budgetEntry struct {
	v        int32
	priority float64
	round    int
}

type budgetHeap []budgetEntry

func (h budgetHeap) Len() int { return len(h) }
func (h budgetHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].v < h[j].v
}
func (h budgetHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *budgetHeap) Push(x interface{}) { *h = append(*h, x.(budgetEntry)) }
func (h *budgetHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// greedyPass runs a lazy greedy under the budget. Items whose cost exceeds
// the remaining budget are skipped for the round but stay in the heap
// (their affordability can only... never return; remaining budget only
// shrinks, so they are dropped permanently).
func greedyPass(g *graph.Graph, variant graph.Variant, cost []float64, budget float64, byRatio bool) *Result {
	eng := cover.NewEngine(g, variant)
	n := g.NumNodes()
	h := make(budgetHeap, 0, n)
	prio := func(v int32, gain float64) float64 {
		if byRatio {
			return gain / cost[v]
		}
		return gain
	}
	for v := int32(0); v < int32(n); v++ {
		h = append(h, budgetEntry{v: v, priority: prio(v, eng.Gain(v)), round: 0})
	}
	heap.Init(&h)
	res := &Result{}
	remaining := budget
	round := 0
	for h.Len() > 0 {
		top := h[0]
		if cost[top.v] > remaining {
			// Permanently unaffordable: the remaining budget never grows.
			heap.Pop(&h)
			continue
		}
		if top.round != round {
			h[0].priority = prio(top.v, eng.Gain(top.v))
			h[0].round = round
			heap.Fix(&h, 0)
			continue
		}
		heap.Pop(&h)
		gain := eng.Add(top.v)
		if gain <= 0 {
			// The fresh top priority is nonpositive and every other
			// entry's stale bound is below it, so no candidate can still
			// contribute; stop instead of filling the budget with
			// useless items.
			break
		}
		res.Order = append(res.Order, top.v)
		res.Gains = append(res.Gains, gain)
		res.CostUsed += cost[top.v]
		remaining -= cost[top.v]
		round++
	}
	res.Revenue = sum(res.Gains)
	return res
}

// bestSingle returns the highest-revenue single affordable item, or nil
// when nothing is affordable.
func bestSingle(g *graph.Graph, variant graph.Variant, cost []float64, budget float64) *Result {
	eng := cover.NewEngine(g, variant)
	best := int32(-1)
	bestGain := -1.0
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if cost[v] > budget {
			continue
		}
		if gain := eng.Gain(v); gain > bestGain {
			best, bestGain = v, gain
		}
	}
	if best < 0 {
		return nil
	}
	return &Result{
		Order:    []int32{best},
		Gains:    []float64{bestGain},
		Revenue:  bestGain,
		CostUsed: cost[best],
		Strategy: "single",
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
