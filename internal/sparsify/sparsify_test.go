package sparsify_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	. "prefcover/internal/sparsify"
)

func TestValidation(t *testing.T) {
	g := fixture.Figure1Graph()
	if _, err := Prune(g, Options{}); err == nil {
		t.Error("empty options should fail")
	}
	if _, err := Prune(g, Options{MinWeight: 1.5}); err == nil {
		t.Error("MinWeight > 1 should fail")
	}
}

func TestWeightThreshold(t *testing.T) {
	g := fixture.Figure1Graph()
	// Edges below 0.5: A->C (0.3). 6 edges -> 5.
	res, err := Prune(g, Options{MinWeight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesBefore != 6 || res.EdgesAfter != 5 {
		t.Fatalf("edges %d -> %d", res.EdgesBefore, res.EdgesAfter)
	}
	want := 0.33 * 0.3
	if math.Abs(res.RemovedWeight-want) > 1e-12 {
		t.Errorf("removed weight = %g, want %g", res.RemovedWeight, want)
	}
	a, _ := res.Graph.Lookup("A")
	c, _ := res.Graph.Lookup("C")
	if _, ok := res.Graph.EdgeWeight(a, c); ok {
		t.Error("A->C should be pruned")
	}
	// Labels and node weights survive.
	if res.Graph.NodeWeight(a) != 0.33 {
		t.Error("node weight changed")
	}
}

func TestTopDegree(t *testing.T) {
	g := fixture.Figure1Graph()
	// A has two out-edges (0.667 and 0.3): keep the heaviest one.
	res, err := Prune(g, Options{MaxOutDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Graph.Lookup("A")
	if res.Graph.OutDegree(a) != 1 {
		t.Fatalf("A out-degree = %d", res.Graph.OutDegree(a))
	}
	b, _ := res.Graph.Lookup("B")
	if _, ok := res.Graph.EdgeWeight(a, b); !ok {
		t.Error("the heavier edge A->B should survive")
	}
}

// TestLossBoundSound: for random graphs, sets and prunes, the cover drop
// never exceeds the reported bound (both variants).
func TestLossBoundSound(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		variant := variant
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 4+rng.Intn(25), 5, variant)
			opts := Options{}
			if rng.Intn(2) == 0 {
				opts.MinWeight = rng.Float64() * 0.5
			}
			if opts.MinWeight == 0 || rng.Intn(2) == 0 {
				opts.MaxOutDegree = 1 + rng.Intn(3)
			}
			res, err := Prune(g, opts)
			if err != nil {
				return false
			}
			for trial := 0; trial < 5; trial++ {
				set := graphtest.RandomSet(rng, g, rng.Intn(g.NumNodes()+1))
				before, err1 := cover.EvaluateSet(g, variant, set)
				after, err2 := cover.EvaluateSet(res.Graph, variant, set)
				if err1 != nil || err2 != nil {
					return false
				}
				if before-after > res.LossBound+1e-9 {
					return false
				}
				if after > before+1e-9 {
					return false // pruning can never increase cover
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("variant %v: %v", variant, err)
		}
	}
}

func TestNoOpPruneKeepsEverything(t *testing.T) {
	g := fixture.Figure1Graph()
	res, err := Prune(g, Options{MinWeight: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesAfter != g.NumEdges() || res.RemovedWeight != 0 {
		t.Errorf("no-op prune removed something: %+v", res)
	}
}
