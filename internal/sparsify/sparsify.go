// Package sparsify prunes preference graphs before solving. Clickstream
// adaptation at e-commerce scale produces tens of millions of edges, many
// carrying tiny probabilities that cannot influence which items are worth
// retaining but dominate memory and the O(nkD) greedy cost. Two
// complementary prunes are provided, each with an explicit upper bound on
// how much cover any retained set can lose:
//
//   - weight threshold: drop every edge with W(v,u) < tau;
//   - top-degree: keep only each node's d heaviest outgoing edges.
//
// For any set S, dropping edge (v,u) can reduce C(S) by at most
// W(v)*W(v,u) (exactly that under Normalized when u in S; at most that
// under Independent since 1-prod is 1-Lipschitz in each edge term), so the
// per-node and total LossBound reported here are sound for both variants.
package sparsify

import (
	"errors"
	"fmt"
	"sort"

	"prefcover/internal/graph"
)

// Options selects the prune. At least one of MinWeight and MaxOutDegree
// must be set.
type Options struct {
	// MinWeight drops edges with weight strictly below it.
	MinWeight float64
	// MaxOutDegree keeps only this many heaviest outgoing edges per node
	// (ties toward the smaller destination id). 0 means unlimited.
	MaxOutDegree int
}

// Result reports what the prune removed.
type Result struct {
	Graph         *graph.Graph
	EdgesBefore   int
	EdgesAfter    int
	RemovedWeight float64 // sum over removed edges of W(v)*W(v,u)
	// LossBound is an upper bound on C_orig(S) - C_pruned(S) for every
	// retained set S; equal to RemovedWeight.
	LossBound float64
}

// Prune applies the configured prunes and rebuilds the graph.
func Prune(g *graph.Graph, opts Options) (*Result, error) {
	if opts.MinWeight <= 0 && opts.MaxOutDegree <= 0 {
		return nil, errors.New("sparsify: nothing to prune (set MinWeight and/or MaxOutDegree)")
	}
	if opts.MinWeight < 0 || opts.MinWeight > 1 {
		return nil, fmt.Errorf("sparsify: MinWeight %g outside [0,1]", opts.MinWeight)
	}
	res := &Result{EdgesBefore: g.NumEdges()}
	b := graph.NewBuilder(g.NumNodes(), g.NumEdges())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if g.Labeled() {
			b.AddLabeledNode(g.Label(v), g.NodeWeight(v))
		} else {
			b.AddNode(g.NodeWeight(v))
		}
	}
	type oe struct {
		dst int32
		w   float64
	}
	kept := make([]oe, 0, 64)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		dsts, ws := g.OutEdges(v)
		kept = kept[:0]
		for i, u := range dsts {
			if ws[i] < opts.MinWeight {
				res.RemovedWeight += g.NodeWeight(v) * ws[i]
				continue
			}
			kept = append(kept, oe{dst: u, w: ws[i]})
		}
		if opts.MaxOutDegree > 0 && len(kept) > opts.MaxOutDegree {
			sort.Slice(kept, func(i, j int) bool {
				if kept[i].w != kept[j].w {
					return kept[i].w > kept[j].w
				}
				return kept[i].dst < kept[j].dst
			})
			for _, e := range kept[opts.MaxOutDegree:] {
				res.RemovedWeight += g.NodeWeight(v) * e.w
			}
			kept = kept[:opts.MaxOutDegree]
		}
		for _, e := range kept {
			b.AddEdge(v, e.dst, e.w)
		}
	}
	pruned, err := b.Build(graph.BuildOptions{})
	if err != nil {
		return nil, err
	}
	res.Graph = pruned
	res.EdgesAfter = pruned.NumEdges()
	res.LossBound = res.RemovedWeight
	return res, nil
}
