package tsdb

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"prefcover/internal/metrics"
	"prefcover/internal/promtext"
)

// fakeClock steps time deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }
func mustParse(t *testing.T, s string) *promtext.Metrics {
	t.Helper()
	m, err := promtext.Parse(strings.NewReader(s))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// scrape renders a live registry and parses it back — the same path the
// monitor's self-scrape takes.
func scrape(t *testing.T, reg *metrics.Registry) *promtext.Metrics {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return mustParse(t, buf.String())
}

func TestRateOverWindow(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Capacity: 64, Now: clk.Now})
	reg := metrics.NewRegistry()
	reqs := reg.NewCounter("prefcover_http_requests_total", "h", "endpoint", "code")

	// 10 req/s on /v1/solve for 30 seconds, snapshot every 5s.
	for i := 0; i <= 6; i++ {
		db.Append(scrape(t, reg))
		reqs.With("/v1/solve", "200").Add(50)
		clk.Advance(5 * time.Second)
	}
	rate, ok := db.RateSum("prefcover_http_requests_total", map[string]string{"endpoint": "/v1/solve"}, 30*time.Second)
	if !ok {
		t.Fatal("RateSum not ok")
	}
	if math.Abs(rate-10) > 1e-9 {
		t.Fatalf("rate = %g, want 10", rate)
	}
	// A narrower window uses a nearer baseline but the same steady rate.
	rate, ok = db.RateSum("prefcover_http_requests_total", nil, 10*time.Second)
	if !ok || math.Abs(rate-10) > 1e-9 {
		t.Fatalf("10s-window rate = %g (ok=%v), want 10", rate, ok)
	}
}

func TestIncreaseCounterResetAndNewSeries(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Now: clk.Now})
	db.AppendAt(clk.Now(), mustParse(t, "c{e=\"a\"} 100\n"))
	clk.Advance(time.Minute)
	// Series a reset (process restart) to 5; series b is brand new at 7.
	db.AppendAt(clk.Now(), mustParse(t, "c{e=\"a\"} 5\nc{e=\"b\"} 7\n"))
	sum, elapsed, ok := db.IncreaseSum("c", nil, time.Hour)
	if !ok {
		t.Fatal("not ok")
	}
	if sum != 12 { // 5 (post-reset lower bound) + 7 (new series)
		t.Fatalf("reset-corrected increase = %g, want 12", sum)
	}
	if elapsed != time.Minute {
		t.Fatalf("elapsed = %v, want 1m", elapsed)
	}
}

func TestWindowBaselineSelection(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Now: clk.Now})
	for i := 0; i < 5; i++ {
		db.AppendAt(clk.Now(), mustParse(t, fmt.Sprintf("c %d\n", i*10)))
		clk.Advance(time.Minute)
	}
	// Newest is at t+4m value 40. A 2m window should anchor at t+2m (20).
	sum, elapsed, ok := db.IncreaseSum("c", nil, 2*time.Minute)
	if !ok || sum != 20 || elapsed != 2*time.Minute {
		t.Fatalf("2m window: sum=%g elapsed=%v ok=%v, want 20/2m", sum, elapsed, ok)
	}
	// A window longer than history clamps to the oldest snapshot.
	sum, elapsed, ok = db.IncreaseSum("c", nil, time.Hour)
	if !ok || sum != 40 || elapsed != 4*time.Minute {
		t.Fatalf("1h window: sum=%g elapsed=%v ok=%v, want 40/4m", sum, elapsed, ok)
	}
}

func TestRingEviction(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Capacity: 4, Now: clk.Now})
	for i := 0; i < 10; i++ {
		db.AppendAt(clk.Now(), mustParse(t, fmt.Sprintf("c %d\n", i)))
		clk.Advance(time.Second)
	}
	if db.Len() != 4 {
		t.Fatalf("Len = %d, want 4", db.Len())
	}
	oldest, newest, ok := db.Span()
	if !ok || newest.Sub(oldest) != 3*time.Second {
		t.Fatalf("span = %v..%v, want 3s apart", oldest, newest)
	}
	// Only snapshots 6..9 remain: max increase is 9-6=3.
	sum, _, ok := db.IncreaseSum("c", nil, time.Hour)
	if !ok || sum != 3 {
		t.Fatalf("post-eviction increase = %g, want 3", sum)
	}
}

func TestOutOfOrderAppendDropped(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Now: clk.Now})
	db.AppendAt(clk.Now(), mustParse(t, "c 1\n"))
	db.AppendAt(clk.Now().Add(-time.Minute), mustParse(t, "c 99\n"))
	if db.Len() != 1 {
		t.Fatalf("out-of-order append retained; Len = %d", db.Len())
	}
}

func TestGaugeQueries(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Now: clk.Now})
	for _, v := range []int{5, 9, 2, 7} {
		db.AppendAt(clk.Now(), mustParse(t, fmt.Sprintf("g{n=\"a\"} %d\ng{n=\"b\"} 1\n", v)))
		clk.Advance(10 * time.Second)
	}
	last, ok := db.GaugeLast("g", map[string]string{"n": "a"})
	if !ok || last != 7 {
		t.Fatalf("GaugeLast = %g, want 7", last)
	}
	// Sums across series: 7+1.
	last, ok = db.GaugeLast("g", nil)
	if !ok || last != 8 {
		t.Fatalf("GaugeLast(all) = %g, want 8", last)
	}
	min, max, ok := db.GaugeMinMax("g", map[string]string{"n": "a"}, time.Hour)
	if !ok || min != 2 || max != 9 {
		t.Fatalf("GaugeMinMax = %g/%g, want 2/9", min, max)
	}
	if _, ok := db.GaugeLast("missing", nil); ok {
		t.Fatal("GaugeLast on a missing series should not be ok")
	}
}

func TestHistogramDeltaQuantile(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Now: clk.Now})
	reg := metrics.NewRegistry()
	h := reg.NewHistogram("lat", "h", []float64{0.1, 0.2, 0.4}, "endpoint")

	// Baseline: 100 fast old observations that must NOT pollute the window.
	for i := 0; i < 100; i++ {
		h.With("/v1/solve").Observe(0.05)
	}
	db.Append(scrape(t, reg))
	clk.Advance(time.Minute)
	// Window contents: 10 observations in (0.1, 0.2], 10 in (0.2, 0.4].
	for i := 0; i < 10; i++ {
		h.With("/v1/solve").Observe(0.15)
		h.With("/v1/solve").Observe(0.3)
	}
	db.Append(scrape(t, reg))

	q, ok := db.Quantile("lat", map[string]string{"endpoint": "/v1/solve"}, 0.5, time.Hour)
	if !ok {
		t.Fatal("Quantile not ok")
	}
	// Median of the delta: rank 10 of 20 lands exactly at the top of the
	// 0.1..0.2 bucket.
	if math.Abs(q-0.2) > 1e-9 {
		t.Fatalf("p50 = %g, want 0.2", q)
	}
	q, _ = db.Quantile("lat", map[string]string{"endpoint": "/v1/solve"}, 0.99, time.Hour)
	if q <= 0.2 || q > 0.4 {
		t.Fatalf("p99 = %g, want in (0.2, 0.4]", q)
	}
	// The whole-history quantile (baseline included) is dominated by the
	// fast observations — confirms windowing changes the answer.
	full := h.With("/v1/solve").Quantile(0.5)
	if full >= 0.1 {
		t.Fatalf("sanity: cumulative p50 = %g, expected < 0.1", full)
	}
	// Empty window (no increases): not ok.
	clk.Advance(time.Minute)
	db.Append(scrape(t, reg))
	if _, ok := db.Quantile("lat", nil, 0.5, 30*time.Second); ok {
		t.Fatal("quantile over an empty delta should not be ok")
	}
}

func TestQuantileOverflowClamp(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Now: clk.Now})
	db.AppendAt(clk.Now(), mustParse(t, "# TYPE h histogram\nh_bucket{le=\"0.1\"} 0\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n"))
	clk.Advance(time.Minute)
	// All observations land in the overflow bucket.
	db.AppendAt(clk.Now(), mustParse(t, "# TYPE h histogram\nh_bucket{le=\"0.1\"} 0\nh_bucket{le=\"+Inf\"} 5\nh_sum 10\nh_count 5\n"))
	q, ok := db.Quantile("h", nil, 0.5, time.Hour)
	if !ok || q != 0.1 {
		t.Fatalf("overflow clamp = %g (ok=%v), want 0.1", q, ok)
	}
}

func TestPointsAndRatePoints(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Now: clk.Now})
	for i, v := range []int{0, 10, 30, 25} { // 25 < 30: counter reset
		db.AppendAt(clk.Now(), mustParse(t, fmt.Sprintf("c %d\n", v)))
		clk.Advance(10 * time.Second)
		_ = i
	}
	pts := db.Points("c", nil, time.Hour)
	if len(pts) != 4 || pts[0].Value != 0 || pts[3].Value != 25 {
		t.Fatalf("Points = %+v", pts)
	}
	rates := db.RatePoints("c", nil, time.Hour)
	if len(rates) != 3 {
		t.Fatalf("RatePoints = %+v", rates)
	}
	if rates[0].Value != 1 || rates[1].Value != 2 || rates[2].Value != 2.5 {
		t.Fatalf("RatePoints values = %g,%g,%g, want 1,2,2.5 (reset-corrected)", rates[0].Value, rates[1].Value, rates[2].Value)
	}
}

func TestSpark(t *testing.T) {
	if s := Spark(nil); s != "" {
		t.Fatalf("empty spark = %q", s)
	}
	s := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("spark rune count = %d", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Fatalf("spark = %q, want ▁..█ ramp", s)
	}
	if flat := Spark([]float64{5, 5, 5}); flat != "▁▁▁" {
		t.Fatalf("flat spark = %q", flat)
	}
}

func TestNotEnoughHistory(t *testing.T) {
	clk := newFakeClock()
	db := New(Options{Now: clk.Now})
	if _, _, ok := db.IncreaseSum("c", nil, time.Minute); ok {
		t.Fatal("empty db should not answer")
	}
	db.Append(mustParse(t, "c 5\n"))
	if _, _, ok := db.IncreaseSum("c", nil, time.Minute); ok {
		t.Fatal("single snapshot cannot produce a delta")
	}
}
