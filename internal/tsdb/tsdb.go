// Package tsdb is a bounded in-memory time-series ring over periodic
// metrics snapshots. Each Append stores one parsed scrape (a
// *promtext.Metrics) with its capture time; windowed queries — counter
// increases and rates, histogram-delta quantiles, gauge last/min/max —
// are computed on demand by diffing the newest snapshot against the
// newest snapshot at or before the window start. Nothing is
// pre-aggregated: the ring holds raw scrapes, so any query the exposition
// format can answer works retroactively over the retained window.
//
// The clock is injectable (Options.Now) so the SLO alert lifecycle tests
// can drive hours of burn deterministically in microseconds.
package tsdb

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"prefcover/internal/promtext"
)

// Options configures a DB.
type Options struct {
	// Capacity bounds the snapshot ring; once full the oldest snapshot is
	// overwritten. 0 means DefaultCapacity.
	Capacity int
	// Now supplies the clock for Append and window anchoring; nil means
	// time.Now.
	Now func() time.Time
}

// DefaultCapacity retains ~85 minutes of history at a 10s scrape cadence
// — comfortably more than the 1h slow burn window the SLO evaluator
// needs, at a few MB for a typical registry.
const DefaultCapacity = 512

// snapshot is one retained scrape.
type snapshot struct {
	at time.Time
	m  *promtext.Metrics
}

// DB is the snapshot ring. All methods are safe for concurrent use.
type DB struct {
	now func() time.Time

	mu   sync.RWMutex
	ring []snapshot
	head int // next write position
	size int
}

// New returns an empty DB.
func New(opts Options) *DB {
	cap := opts.Capacity
	if cap <= 0 {
		cap = DefaultCapacity
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &DB{now: now, ring: make([]snapshot, cap)}
}

// Append stores a snapshot stamped with the DB clock.
func (db *DB) Append(m *promtext.Metrics) { db.AppendAt(db.now(), m) }

// AppendAt stores a snapshot with an explicit capture time. Snapshots
// must be appended in non-decreasing time order; an out-of-order append
// is dropped (a scrape that raced a clock step is worthless for deltas).
func (db *DB) AppendAt(at time.Time, m *promtext.Metrics) {
	if m == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.size > 0 {
		newest := db.ring[(db.head+len(db.ring)-1)%len(db.ring)]
		if at.Before(newest.at) {
			return
		}
	}
	db.ring[db.head] = snapshot{at: at, m: m}
	db.head = (db.head + 1) % len(db.ring)
	if db.size < len(db.ring) {
		db.size++
	}
}

// Len reports the number of retained snapshots.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.size
}

// Span reports the capture times of the oldest and newest snapshots.
func (db *DB) Span() (oldest, newest time.Time, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.size == 0 {
		return time.Time{}, time.Time{}, false
	}
	return db.at(0), db.at(db.size - 1), true
}

// at returns the i-th snapshot's time in oldest-first order; caller holds
// the lock.
func (db *DB) at(i int) time.Time { return db.nth(i).at }

// nth returns the i-th snapshot in oldest-first order; caller holds the
// lock.
func (db *DB) nth(i int) snapshot {
	if db.size < len(db.ring) {
		return db.ring[i]
	}
	return db.ring[(db.head+i)%len(db.ring)]
}

// bounds picks the (older, newer) snapshot pair bracketing a lookback
// window ending at the newest snapshot: newer is the newest snapshot,
// older is the newest snapshot at or before newer.at−window (the oldest
// retained snapshot when history is shorter than the window). Needs at
// least two snapshots.
func (db *DB) bounds(window time.Duration) (older, newer snapshot, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.size < 2 {
		return snapshot{}, snapshot{}, false
	}
	newer = db.nth(db.size - 1)
	cutoff := newer.at.Add(-window)
	older = db.nth(0)
	// Binary search for the last snapshot with at <= cutoff.
	lo, hi := 0, db.size-2 // exclude newest
	for lo <= hi {
		mid := (lo + hi) / 2
		if !db.nth(mid).at.After(cutoff) {
			older = db.nth(mid)
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return older, newer, true
}

// SeriesDelta is one series' increase over a window.
type SeriesDelta struct {
	Labels   promtext.Labels
	Increase float64 // counter increase, reset-corrected
	Last     float64 // value in the newest snapshot
}

// key returns the comparable identity of a label set.
func labelsKey(ls promtext.Labels) string { return ls.Key() }

// Increases computes the reset-corrected increase of every series of the
// named sample (matching the label filter) over the window. A series
// absent from the older snapshot counts its full newest value (a new
// series starts from zero by counter contract). elapsed is the actual
// time between the two snapshots used — shorter than window when history
// is thin, longer when scrapes are sparse.
func (db *DB) Increases(name string, match map[string]string, window time.Duration) (deltas []SeriesDelta, elapsed time.Duration, ok bool) {
	older, newer, ok := db.bounds(window)
	if !ok {
		return nil, 0, false
	}
	base := make(map[string]float64)
	for _, s := range older.m.Samples(name) {
		if s.Labels.Matches(match) {
			base[labelsKey(s.Labels)] = s.Value
		}
	}
	for _, s := range newer.m.Samples(name) {
		if !s.Labels.Matches(match) {
			continue
		}
		inc := s.Value
		if old, had := base[labelsKey(s.Labels)]; had && s.Value >= old {
			inc = s.Value - old
		}
		// A newest value below the baseline means the counter reset
		// (process restart): the post-reset value is the best lower bound
		// on the true increase.
		deltas = append(deltas, SeriesDelta{Labels: s.Labels, Increase: inc, Last: s.Value})
	}
	return deltas, newer.at.Sub(older.at), true
}

// IncreaseSum sums Increases over all matching series.
func (db *DB) IncreaseSum(name string, match map[string]string, window time.Duration) (sum float64, elapsed time.Duration, ok bool) {
	deltas, elapsed, ok := db.Increases(name, match, window)
	if !ok {
		return 0, 0, false
	}
	for _, d := range deltas {
		sum += d.Increase
	}
	return sum, elapsed, true
}

// RateSum is IncreaseSum per second.
func (db *DB) RateSum(name string, match map[string]string, window time.Duration) (perSec float64, ok bool) {
	sum, elapsed, ok := db.IncreaseSum(name, match, window)
	if !ok || elapsed <= 0 {
		return 0, false
	}
	return sum / elapsed.Seconds(), true
}

// GaugeLast sums the newest value of every matching series of a gauge.
func (db *DB) GaugeLast(name string, match map[string]string) (sum float64, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.size == 0 {
		return 0, false
	}
	newest := db.nth(db.size - 1)
	found := false
	for _, s := range newest.m.Samples(name) {
		if s.Labels.Matches(match) {
			sum += s.Value
			found = true
		}
	}
	return sum, found
}

// GaugeMinMax scans every retained snapshot inside the window and returns
// the min and max of the per-snapshot sums of matching series.
func (db *DB) GaugeMinMax(name string, match map[string]string, window time.Duration) (min, max float64, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.size == 0 {
		return 0, 0, false
	}
	cutoff := db.nth(db.size - 1).at.Add(-window)
	min, max = math.Inf(1), math.Inf(-1)
	for i := 0; i < db.size; i++ {
		snap := db.nth(i)
		if snap.at.Before(cutoff) {
			continue
		}
		sum, found := 0.0, false
		for _, s := range snap.m.Samples(name) {
			if s.Labels.Matches(match) {
				sum += s.Value
				found = true
			}
		}
		if !found {
			continue
		}
		ok = true
		if sum < min {
			min = sum
		}
		if sum > max {
			max = sum
		}
	}
	if !ok {
		return 0, 0, false
	}
	return min, max, true
}

// Quantile estimates the q-quantile of a histogram's observations inside
// the window, from per-bucket increases — the same linear interpolation
// metrics.Histogram.Quantile applies to cumulative counts, here applied
// to the windowed delta. name is the family name (without _bucket).
// Matching series are merged (summed per le) before interpolation.
func (db *DB) Quantile(name string, match map[string]string, q float64, window time.Duration) (float64, bool) {
	deltas, _, ok := db.Increases(name+"_bucket", match, window)
	if !ok || math.IsNaN(q) {
		return 0, false
	}
	// Merge all matching series by le bound.
	type bkt struct {
		le  float64
		inc float64
	}
	byLE := make(map[float64]float64)
	for _, d := range deltas {
		leStr, has := d.Labels.Get("le")
		if !has {
			continue
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			v, err := parseFloat(leStr)
			if err != nil {
				continue
			}
			le = v
		}
		byLE[le] += d.Increase
	}
	if len(byLE) == 0 {
		return 0, false
	}
	buckets := make([]bkt, 0, len(byLE))
	for le, inc := range byLE {
		buckets = append(buckets, bkt{le, inc})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	// Buckets are cumulative in the exposition format, and differences of
	// cumulative counts stay cumulative — de-cumulate to per-bucket counts.
	total := buckets[len(buckets)-1].inc
	if total <= 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * total
	for i, b := range buckets {
		prevCum := 0.0
		if i > 0 {
			prevCum = buckets[i-1].inc
		}
		inBucket := b.inc - prevCum
		if inBucket <= 0 {
			continue
		}
		if b.inc >= rank {
			if math.IsInf(b.le, 1) {
				// Overflow bucket: clamp to the highest finite bound.
				if i > 0 {
					return buckets[i-1].le, true
				}
				return 0, false
			}
			lower := 0.0
			if i > 0 {
				lower = buckets[i-1].le
			}
			frac := (rank - prevCum) / inBucket
			return lower + (b.le-lower)*frac, true
		}
	}
	// rank beyond every bucket (float fuzz): clamp like the overflow case.
	last := buckets[len(buckets)-1]
	if math.IsInf(last.le, 1) && len(buckets) > 1 {
		return buckets[len(buckets)-2].le, true
	}
	return last.le, true
}

// Point is one (time, value) pair of a series trajectory.
type Point struct {
	At    time.Time
	Value float64
}

// Points returns the per-snapshot sum of matching series across the
// window, oldest first — raw gauge trajectories for sparklines.
func (db *DB) Points(name string, match map[string]string, window time.Duration) []Point {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.size == 0 {
		return nil
	}
	cutoff := db.nth(db.size - 1).at.Add(-window)
	var pts []Point
	for i := 0; i < db.size; i++ {
		snap := db.nth(i)
		if snap.at.Before(cutoff) {
			continue
		}
		sum, found := 0.0, false
		for _, s := range snap.m.Samples(name) {
			if s.Labels.Matches(match) {
				sum += s.Value
				found = true
			}
		}
		if found {
			pts = append(pts, Point{At: snap.at, Value: sum})
		}
	}
	return pts
}

// RatePoints converts a counter trajectory into per-interval rates:
// one point per adjacent snapshot pair, reset-corrected — the sparkline
// form of RateSum.
func (db *DB) RatePoints(name string, match map[string]string, window time.Duration) []Point {
	pts := db.Points(name, match, window)
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := pts[i].At.Sub(pts[i-1].At).Seconds()
		if dt <= 0 {
			continue
		}
		inc := pts[i].Value - pts[i-1].Value
		if inc < 0 {
			inc = pts[i].Value // counter reset
		}
		out = append(out, Point{At: pts[i].At, Value: inc / dt})
	}
	return out
}

// sparkRunes are the eight block glyphs Spark scales values onto.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a unicode sparkline, scaled to the series'
// own min..max (a flat series renders as all-low).
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	min, max := values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// parseFloat parses a bucket bound.
func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
