package slo

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"prefcover/internal/retry"
)

// WebhookNotifier POSTs alert transitions as JSON to a fixed URL, with
// the house retry discipline: transport failures and shedding statuses
// (429/5xx, Retry-After honored) re-send; anything else fails fast. A
// delivery is one Transition object per request — receivers dedupe on
// (alert, endpoint, to, at).
type WebhookNotifier struct {
	// URL receives the POSTs.
	URL string
	// Client issues the requests (default: a client with a 5s timeout).
	Client *http.Client
	// Policy shapes the retry loop (zero value: retry defaults).
	Policy retry.Policy
}

// Notify delivers one transition.
func (n *WebhookNotifier) Notify(ctx context.Context, t Transition) error {
	body, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("slo: encode transition: %w", err)
	}
	client := n.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return n.Policy.Do(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.URL, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return retry.TransportError(err)
		}
		defer func() {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			_ = resp.Body.Close()
		}()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return nil
		}
		err = fmt.Errorf("slo: webhook %s returned %s", n.URL, resp.Status)
		return retry.HTTPStatusError(resp.StatusCode, resp.Header, err)
	})
}
