package slo

import (
	"encoding/json"
	"fmt"
	"html"
	"mime"
	"net/http"
	"strings"
	"time"
)

// DebugHandler serves the monitor at /debug/slo: an HTML dashboard by
// default (also text/html), JSON for Accept: application/json — the same
// negotiation convention /debug/traces uses, inverted defaults because
// this page is operator-first.
func (m *Monitor) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		st := m.Status()
		wantJSON, err := jsonFromAccept(r.Header.Get("Accept"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotAcceptable)
			return
		}
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(st)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeHTML(w, st)
	})
}

// DisabledHandler serves a /debug/slo explaining that no monitor is
// running (the daemon was started without -slo-spec/-scrape-interval).
func DisabledHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := Status{Enabled: false}
		if wantJSON, err := jsonFromAccept(r.Header.Get("Accept")); err == nil && wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(st)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<!DOCTYPE html>\n<html><head><title>prefcoverd slo</title></head><body>\n"+
			"<h1>SLO monitor disabled</h1>\n"+
			"<p>Start prefcoverd with <code>-slo-spec</code> (e.g. <code>avail:/v1/solve:99.9</code>) to enable burn-rate alerting.</p>\n"+
			"</body></html>\n")
	})
}

// jsonFromAccept resolves the /debug/slo representation: HTML (default,
// also */*) or JSON.
func jsonFromAccept(header string) (bool, error) {
	if strings.TrimSpace(header) == "" {
		return false, nil
	}
	for _, part := range strings.Split(header, ",") {
		mt, _, err := mime.ParseMediaType(part)
		if err != nil {
			continue
		}
		switch mt {
		case "text/html", "text/*", "*/*":
			return false, nil
		case "application/json", "application/*":
			return true, nil
		}
	}
	return false, fmt.Errorf("not acceptable %q (use text/html or application/json)", header)
}

// stateBadge colors a state for the HTML table.
func stateBadge(st State) string {
	color := "#888"
	switch st {
	case StateFiring:
		color = "#c0392b"
	case StatePending:
		color = "#e67e22"
	case StateResolved:
		color = "#27ae60"
	}
	return fmt.Sprintf("<span style=\"color:%s;font-weight:bold\">%s</span>", color, html.EscapeString(string(st)))
}

func burnCell(w WindowBurn) string {
	if !w.OK {
		return "<td>–</td>"
	}
	return fmt.Sprintf("<td>%.2f× (%.4g)</td>", w.Burn, w.Value)
}

func writeHTML(w http.ResponseWriter, st Status) {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>prefcoverd slo</title></head><body>\n")
	b.WriteString("<h1>SLO burn-rate monitor</h1>\n")
	b.WriteString("<table border=\"1\" cellpadding=\"4\">\n")
	fmt.Fprintf(&b, "<tr><td>spec</td><td><code>%s</code></td></tr>\n", html.EscapeString(st.Spec))
	fmt.Fprintf(&b, "<tr><td>windows</td><td>fast %s / slow %s, for %s</td></tr>\n",
		html.EscapeString(st.FastWindow), html.EscapeString(st.SlowWindow), html.EscapeString(st.ForDuration))
	fmt.Fprintf(&b, "<tr><td>ticks</td><td>%d (%d snapshots retained, %d transitions)</td></tr>\n",
		st.Ticks, st.Snapshots, st.Transitions)
	if !st.LastTick.IsZero() {
		fmt.Fprintf(&b, "<tr><td>last tick</td><td>%s</td></tr>\n", st.LastTick.UTC().Format(time.RFC3339))
	}
	if st.ScrapeError != "" {
		fmt.Fprintf(&b, "<tr><td>scrape error</td><td>%s</td></tr>\n", html.EscapeString(st.ScrapeError))
	}
	b.WriteString("</table>\n")
	b.WriteString("<h2>Alerts</h2>\n")
	if len(st.Alerts) == 0 {
		b.WriteString("<p>No objectives configured.</p>\n")
	} else {
		b.WriteString("<table border=\"1\" cellpadding=\"4\">\n")
		b.WriteString("<tr><th>objective</th><th>alert</th><th>state</th><th>severity</th><th>fast burn</th><th>slow burn</th><th>since</th></tr>\n")
		for _, a := range st.Alerts {
			since := ""
			if !a.Since.IsZero() {
				since = a.Since.UTC().Format(time.RFC3339)
			}
			fmt.Fprintf(&b, "<tr><td><code>%s</code></td><td>%s</td><td>%s</td><td>%s</td>%s%s<td>%s</td></tr>\n",
				html.EscapeString(a.Objective), html.EscapeString(a.Alert), stateBadge(a.State),
				html.EscapeString(string(a.Severity)), burnCell(a.Fast), burnCell(a.Slow),
				html.EscapeString(since))
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
	_, _ = w.Write([]byte(b.String()))
}
