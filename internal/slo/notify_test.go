package slo

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"prefcover/internal/faults"
	"prefcover/internal/retry"
)

// faultyWebhook is an httptest receiver whose failures are driven by a
// seeded faults.Injector — the same chaos vocabulary the serving stack
// uses (500s, 429/503 with Retry-After), so the notifier's retry
// discipline is exercised against realistic shedding.
type faultyWebhook struct {
	inj *faults.Injector

	mu       sync.Mutex
	attempts int
	received []Transition
}

func (f *faultyWebhook) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.attempts++
		f.mu.Unlock()
		kind, _ := f.inj.NextOp()
		switch kind {
		case faults.KindError:
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		case faults.KindThrottle:
			w.Header().Set("Retry-After", strconv.Itoa(0))
			http.Error(w, "injected", http.StatusTooManyRequests)
			return
		case faults.KindUnavail:
			w.Header().Set("Retry-After", strconv.Itoa(0))
			http.Error(w, "injected", http.StatusServiceUnavailable)
			return
		}
		var t Transition
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.received = append(f.received, t)
		f.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
	})
}

func TestWebhookNotifierRetriesThroughFaults(t *testing.T) {
	spec, err := faults.ParseSpec("seed=7,error=0.3,throttle=0.2,unavail=0.2")
	if err != nil {
		t.Fatal(err)
	}
	hook := &faultyWebhook{inj: faults.New(spec)}
	srv := httptest.NewServer(hook.handler())
	defer srv.Close()

	n := &WebhookNotifier{
		URL:    srv.URL,
		Client: srv.Client(),
		Policy: retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	// With P(fault)=0.7 per attempt and 8 attempts per delivery, each of
	// the 20 deliveries succeeds with probability ~1-0.7^8 ≈ 0.94; seed 7
	// is pinned so the schedule is reproducible. Count the successes.
	delivered := 0
	for i := 0; i < 20; i++ {
		tr := Transition{
			Alert: "avail_burn", Endpoint: "/v1/solve", Severity: SeverityCritical,
			From: StatePending, To: StateFiring, At: time.Unix(int64(1700000000+i), 0).UTC(),
			FastBurn: 20, SlowBurn: 15, Objective: "avail:/v1/solve:99",
		}
		if err := n.Notify(context.Background(), tr); err == nil {
			delivered++
		}
	}
	hook.mu.Lock()
	defer hook.mu.Unlock()
	if delivered == 0 {
		t.Fatal("no delivery survived the fault schedule")
	}
	if len(hook.received) != delivered {
		t.Fatalf("received %d, delivered %d — retries double-posted or dropped", len(hook.received), delivered)
	}
	if hook.attempts <= delivered {
		t.Fatalf("attempts = %d with %d deliveries: the injector never forced a retry", hook.attempts, delivered)
	}
	// Payload integrity through the retry path.
	got := hook.received[0]
	if got.Alert != "avail_burn" || got.To != StateFiring || got.FastBurn != 20 {
		t.Fatalf("delivered transition corrupted: %+v", got)
	}
}

func TestWebhookNotifierFailsFastOnClientError(t *testing.T) {
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "bad payload", http.StatusBadRequest)
	}))
	defer srv.Close()
	n := &WebhookNotifier{URL: srv.URL, Client: srv.Client(),
		Policy: retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}}
	if err := n.Notify(context.Background(), Transition{}); err == nil {
		t.Fatal("400 should be an error")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx must not retry)", attempts)
	}
}

func TestWebhookNotifierTransportRetry(t *testing.T) {
	// A server that refuses connections: the notifier must classify the
	// dial failure transient and exhaust its attempts.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // now nothing listens
	n := &WebhookNotifier{URL: url,
		Policy: retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}}
	err := n.Notify(context.Background(), Transition{})
	if err == nil {
		t.Fatal("dead endpoint should error")
	}
	if _, ok := retry.AsTransient(err); !ok {
		t.Fatalf("exhausted transport error should unwrap transient: %v", err)
	}
}
