package slo

import "time"

// State is an alert's position in the lifecycle.
type State string

const (
	// StateInactive: the objective has never breached (or reset after a
	// pending that didn't stick). Not exported as an ALERTS series.
	StateInactive State = "inactive"
	// StatePending: breaching, waiting out the for-duration before firing.
	StatePending State = "pending"
	// StateFiring: breached for at least the for-duration.
	StateFiring State = "firing"
	// StateResolved: previously firing, healthy for at least the
	// for-duration. Sticky until the next breach so the recovery is
	// observable on /metrics.
	StateResolved State = "resolved"
)

// DefaultForDuration is the hysteresis both ways: a breach must persist
// this long before firing, and health must persist this long before a
// firing alert resolves.
const DefaultForDuration = 30 * time.Second

// Alert is one objective's alert, evolving under observe().
type Alert struct {
	Objective Objective `json:"objective"`
	State     State     `json:"state"`
	// Severity is the grade of the breach that drove the current
	// pending/firing state (the latest breach severity while firing;
	// the last one seen when resolved).
	Severity Severity `json:"severity,omitempty"`
	// Since is when the alert entered its current state.
	Since time.Time `json:"since"`
	// breachStart / healthyStart anchor the two hysteresis timers.
	breachStart  time.Time
	healthyStart time.Time
	// Eval is the most recent evaluation.
	Eval Evaluation `json:"eval"`
}

// Transition records one state change, for logs and the webhook notifier.
type Transition struct {
	Alert    string    `json:"alert"` // AlertName: avail_burn, p99_burn, ...
	Endpoint string    `json:"endpoint"`
	Severity Severity  `json:"severity,omitempty"`
	From     State     `json:"from"`
	To       State     `json:"to"`
	At       time.Time `json:"at"`
	FastBurn float64   `json:"fast_burn"`
	SlowBurn float64   `json:"slow_burn"`
	// Objective is the spec token, so a webhook receiver can identify
	// the SLO without parsing the alert name.
	Objective string `json:"objective"`
}

// observe advances the alert with a fresh evaluation at time now and
// returns the transition if the state changed.
func (a *Alert) observe(ev Evaluation, now time.Time, forDur time.Duration) (Transition, bool) {
	a.Eval = ev
	if a.State == "" {
		a.State = StateInactive
	}
	breaching := ev.Severity != SeverityNone
	prev := a.State
	if breaching {
		a.healthyStart = time.Time{}
		a.Severity = ev.Severity
		switch a.State {
		case StateInactive, StateResolved:
			a.State = StatePending
			a.breachStart = now
			a.Since = now
		case StatePending:
			if now.Sub(a.breachStart) >= forDur {
				a.State = StateFiring
				a.Since = now
			}
		case StateFiring:
			// Stay firing; severity tracks the latest breach grade.
		}
	} else {
		a.breachStart = time.Time{}
		switch a.State {
		case StatePending:
			// The breach didn't stick: back to inactive, no alert.
			a.State = StateInactive
			a.Since = now
		case StateFiring:
			if a.healthyStart.IsZero() {
				a.healthyStart = now
			}
			if now.Sub(a.healthyStart) >= forDur {
				a.State = StateResolved
				a.Since = now
			}
		}
	}
	if a.State == prev {
		return Transition{}, false
	}
	return Transition{
		Alert:     a.Objective.AlertName(),
		Endpoint:  a.Objective.Endpoint,
		Severity:  a.Severity,
		From:      prev,
		To:        a.State,
		At:        now,
		FastBurn:  ev.Fast.Burn,
		SlowBurn:  ev.Slow.Burn,
		Objective: a.Objective.String(),
	}, true
}
