package slo

import (
	"strings"
	"time"

	"prefcover/internal/tsdb"
)

// Burn-rate thresholds, per the multi-window multi-burn-rate convention:
// an availability burn ≥ CriticalBurn on both windows exhausts a 30-day
// error budget in under ~2 days (page-worthy); ≥ WarnBurn exhausts it in
// under ~5 days (ticket-worthy). Latency objectives use the observed/
// target ratio directly: ≥ LatencyWarnBurn means the quantile is over
// target, ≥ LatencyCriticalBurn means it is at double the target.
const (
	CriticalBurn        = 14.4
	WarnBurn            = 6.0
	LatencyWarnBurn     = 1.0
	LatencyCriticalBurn = 2.0
)

// Severity grades a breach.
type Severity string

const (
	SeverityNone     Severity = ""
	SeverityWarning  Severity = "warning"
	SeverityCritical Severity = "critical"
)

// EvalConfig names the metric families and windows the evaluator reads.
// The zero value evaluates the single-node serving metrics; the gateway
// overrides the names with its cluster-aggregated families.
type EvalConfig struct {
	// FastWindow catches fresh outages (default 5m); SlowWindow
	// suppresses blips (default 1h). An alert needs the burn over
	// threshold on BOTH.
	FastWindow time.Duration
	SlowWindow time.Duration
	// RequestsMetric is a counter with EndpointLabel and CodeLabel
	// (default prefcover_http_requests_total{endpoint,code}); 5xx codes
	// count against availability.
	RequestsMetric string
	// LatencyMetric is a histogram with EndpointLabel
	// (default prefcover_http_request_duration_seconds{endpoint}).
	LatencyMetric string
	// EndpointLabel and CodeLabel name the labels on the two families.
	EndpointLabel string
	CodeLabel     string
}

// Evaluator defaults.
const (
	DefaultFastWindow = 5 * time.Minute
	DefaultSlowWindow = time.Hour
)

func (c EvalConfig) withDefaults() EvalConfig {
	if c.FastWindow <= 0 {
		c.FastWindow = DefaultFastWindow
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = DefaultSlowWindow
	}
	if c.RequestsMetric == "" {
		c.RequestsMetric = "prefcover_http_requests_total"
	}
	if c.LatencyMetric == "" {
		c.LatencyMetric = "prefcover_http_request_duration_seconds"
	}
	if c.EndpointLabel == "" {
		c.EndpointLabel = "endpoint"
	}
	if c.CodeLabel == "" {
		c.CodeLabel = "code"
	}
	return c
}

// WindowBurn is one window's worth of evidence for an objective.
type WindowBurn struct {
	// Burn is the budget burn rate (avail) or observed/target ratio
	// (latency). 0 when OK is false.
	Burn float64 `json:"burn"`
	// Value is the raw measurement: the 5xx error ratio for avail, the
	// observed quantile in seconds for latency.
	Value float64 `json:"value"`
	// OK reports whether the window had enough history and traffic to
	// measure. Alerts never fire on missing data.
	OK bool `json:"ok"`
}

// Evaluation is one objective's current standing.
type Evaluation struct {
	Objective Objective  `json:"-"`
	Fast      WindowBurn `json:"fast"`
	Slow      WindowBurn `json:"slow"`
	// Severity is the highest grade whose burn threshold both windows
	// meet; SeverityNone when healthy or unmeasurable.
	Severity Severity `json:"severity,omitempty"`
}

// WorstBurn is the lower of the two window burns when both measured (the
// value that must clear a threshold for the alert to act), else the one
// that did, else 0.
func (e Evaluation) WorstBurn() float64 {
	switch {
	case e.Fast.OK && e.Slow.OK:
		if e.Fast.Burn < e.Slow.Burn {
			return e.Fast.Burn
		}
		return e.Slow.Burn
	case e.Fast.OK:
		return e.Fast.Burn
	case e.Slow.OK:
		return e.Slow.Burn
	}
	return 0
}

// evaluate computes one objective's burns from the tsdb history.
func evaluate(db *tsdb.DB, cfg EvalConfig, o Objective) Evaluation {
	ev := Evaluation{Objective: o}
	ev.Fast = windowBurn(db, cfg, o, cfg.FastWindow)
	ev.Slow = windowBurn(db, cfg, o, cfg.SlowWindow)
	ev.Severity = grade(o, ev)
	return ev
}

func windowBurn(db *tsdb.DB, cfg EvalConfig, o Objective, window time.Duration) WindowBurn {
	match := map[string]string{cfg.EndpointLabel: o.Endpoint}
	if o.Kind.Latency() {
		observed, ok := db.Quantile(cfg.LatencyMetric, match, o.Kind.Quantile(), window)
		if !ok {
			return WindowBurn{}
		}
		return WindowBurn{Burn: observed / o.Target, Value: observed, OK: true}
	}
	deltas, _, ok := db.Increases(cfg.RequestsMetric, match, window)
	if !ok {
		return WindowBurn{}
	}
	var total, errs float64
	for _, d := range deltas {
		total += d.Increase
		if code, has := d.Labels.Get(cfg.CodeLabel); has && strings.HasPrefix(code, "5") {
			errs += d.Increase
		}
	}
	if total <= 0 {
		// No traffic in the window: nothing to burn the budget.
		return WindowBurn{}
	}
	ratio := errs / total
	return WindowBurn{Burn: ratio / o.Budget(), Value: ratio, OK: true}
}

// grade maps an evaluation onto a severity: both windows must be
// measurable and over the threshold.
func grade(o Objective, ev Evaluation) Severity {
	if !ev.Fast.OK || !ev.Slow.OK {
		return SeverityNone
	}
	warn, crit := WarnBurn, CriticalBurn
	if o.Kind.Latency() {
		warn, crit = LatencyWarnBurn, LatencyCriticalBurn
	}
	switch {
	case ev.Fast.Burn >= crit && ev.Slow.Burn >= crit:
		return SeverityCritical
	case ev.Fast.Burn >= warn && ev.Slow.Burn >= warn:
		return SeverityWarning
	}
	return SeverityNone
}
