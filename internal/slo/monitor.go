package slo

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"

	"prefcover/internal/metrics"
	"prefcover/internal/promtext"
	"prefcover/internal/tsdb"
)

// Notifier receives alert transitions (the webhook implementation lives
// in notify.go; tests substitute their own).
type Notifier interface {
	Notify(ctx context.Context, t Transition) error
}

// MonitorOptions configures a Monitor.
type MonitorOptions struct {
	// Spec lists the objectives; an empty spec still scrapes (feeding
	// statusz sparklines) but never alerts.
	Spec Spec
	// Scrape produces one metrics snapshot per tick. For the single-node
	// server this renders its own registry in-process; the gateway feeds
	// its cluster-aggregated families.
	Scrape func() (*promtext.Metrics, error)
	// Interval is the Start loop's cadence (default 10s). Tick can also
	// be driven externally (the gateway calls it from its scrape loop,
	// tests call it directly).
	Interval time.Duration
	// Eval names windows and metric families.
	Eval EvalConfig
	// ForDuration is the two-way alert hysteresis (default 30s).
	ForDuration time.Duration
	// Capacity bounds the snapshot ring (default tsdb.DefaultCapacity).
	Capacity int
	// Alerts, when non-nil, receives the alert lifecycle as
	// ALERTS{alertname,endpoint,severity,state} gauge series.
	Alerts *metrics.GaugeVec
	// Logger receives one structured record per transition.
	Logger *slog.Logger
	// Notifier, when non-nil, is called for every pending→firing and
	// firing→resolved transition (not pending flaps).
	Notifier Notifier
	// NotifyTimeout bounds one notification delivery (default 10s).
	NotifyTimeout time.Duration
	// Now injects the clock (default time.Now).
	Now func() time.Time
}

// DefaultInterval is the self-scrape cadence.
const DefaultInterval = 10 * time.Second

// Monitor owns the tsdb ring and the alert set for one metrics source.
// Tick is safe to call concurrently with Status and with itself.
type Monitor struct {
	scrape        func() (*promtext.Metrics, error)
	interval      time.Duration
	eval          EvalConfig
	forDur        time.Duration
	alertsGauge   *metrics.GaugeVec
	logger        *slog.Logger
	notifier      Notifier
	notifyTimeout time.Duration
	now           func() time.Time
	db            *tsdb.DB

	mu          sync.Mutex
	spec        Spec
	alerts      map[string]*Alert // keyed by Objective.String()
	scrapeErr   error
	lastTick    time.Time
	ticks       int64
	transitions int64

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
	notifyWG  sync.WaitGroup
	notifyCtx context.Context
	cancel    context.CancelFunc
}

// NewMonitor builds a monitor; call Start for the self-driving loop or
// Tick to drive it externally.
func NewMonitor(opts MonitorOptions) *Monitor {
	if opts.Scrape == nil {
		panic("slo: MonitorOptions.Scrape is required")
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = DefaultInterval
	}
	forDur := opts.ForDuration
	if forDur <= 0 {
		forDur = DefaultForDuration
	}
	notifyTimeout := opts.NotifyTimeout
	if notifyTimeout <= 0 {
		notifyTimeout = 10 * time.Second
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Monitor{
		scrape:        opts.Scrape,
		interval:      interval,
		eval:          opts.Eval.withDefaults(),
		forDur:        forDur,
		alertsGauge:   opts.Alerts,
		logger:        logger,
		notifier:      opts.Notifier,
		notifyTimeout: notifyTimeout,
		now:           now,
		db:            tsdb.New(tsdb.Options{Capacity: opts.Capacity, Now: now}),
		spec:          opts.Spec,
		alerts:        make(map[string]*Alert),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		notifyCtx:     ctx,
		cancel:        cancel,
	}
	for _, o := range opts.Spec.Objectives {
		m.alerts[o.String()] = &Alert{Objective: o, State: StateInactive}
	}
	return m
}

// DB exposes the snapshot ring for read-side consumers (statusz
// sparklines).
func (m *Monitor) DB() *tsdb.DB { return m.db }

// Spec returns the objective set.
func (m *Monitor) Spec() Spec {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spec
}

// Windows reports the evaluation windows and hysteresis.
func (m *Monitor) Windows() (fast, slow, forDur time.Duration) {
	return m.eval.FastWindow, m.eval.SlowWindow, m.forDur
}

// Start launches the periodic scrape/evaluate loop; Close stops it.
func (m *Monitor) Start() {
	m.startOnce.Do(func() {
		go func() {
			defer close(m.done)
			ticker := time.NewTicker(m.interval)
			defer ticker.Stop()
			m.Tick()
			for {
				select {
				case <-m.stop:
					return
				case <-ticker.C:
					m.Tick()
				}
			}
		}()
	})
}

// Close stops the loop (if started) and waits for in-flight
// notifications; safe to call regardless of Start.
func (m *Monitor) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.startOnce.Do(func() { close(m.done) }) // never started: unblock the wait
	<-m.done
	m.cancel()
	m.notifyWG.Wait()
}

// Tick performs one scrape + evaluation round.
func (m *Monitor) Tick() {
	snap, err := m.scrape()
	now := m.now()
	m.mu.Lock()
	m.lastTick = now
	m.ticks++
	m.scrapeErr = err
	if err != nil {
		m.mu.Unlock()
		m.logger.Warn("slo scrape failed", "error", err)
		return
	}
	m.db.AppendAt(now, snap)
	var fired []Transition
	for _, a := range m.alerts {
		ev := evaluate(m.db, m.eval, a.Objective)
		if t, changed := a.observe(ev, now, m.forDur); changed {
			m.transitions++
			fired = append(fired, t)
		}
	}
	m.publishLocked()
	m.mu.Unlock()

	for _, t := range fired {
		m.logger.Info("slo alert transition",
			"alert", t.Alert, "endpoint", t.Endpoint, "objective", t.Objective,
			"from", string(t.From), "to", string(t.To), "severity", string(t.Severity),
			"fast_burn", t.FastBurn, "slow_burn", t.SlowBurn)
		// Notify on the consequential edges only: an alert becoming real,
		// and an alert recovering. Pending flaps stay in logs.
		if m.notifier != nil && (t.To == StateFiring || t.To == StateResolved) {
			m.notifyWG.Add(1)
			go func(t Transition) {
				defer m.notifyWG.Done()
				ctx, cancel := context.WithTimeout(m.notifyCtx, m.notifyTimeout)
				defer cancel()
				if err := m.notifier.Notify(ctx, t); err != nil {
					m.logger.Warn("slo alert notification failed",
						"alert", t.Alert, "endpoint", t.Endpoint, "to", string(t.To), "error", err)
				}
			}(t)
		}
	}
}

// publishLocked projects the alert set onto the ALERTS gauge: the series
// for an alert's current state is 1, every other state/severity series
// that alert ever set is 0 (so a state change leaves an explicit falling
// edge rather than a stale 1). Caller holds m.mu.
func (m *Monitor) publishLocked() {
	if m.alertsGauge == nil {
		return
	}
	for _, a := range m.alerts {
		for _, sev := range []Severity{SeverityWarning, SeverityCritical} {
			for _, st := range []State{StatePending, StateFiring, StateResolved} {
				v := int64(0)
				if st == a.State && sev == a.Severity {
					v = 1
				}
				m.alertsGauge.With(a.Objective.AlertName(), a.Objective.Endpoint, string(sev), string(st)).Set(v)
			}
		}
	}
}

// Status is the /debug/slo snapshot.
type Status struct {
	Enabled     bool          `json:"enabled"`
	Spec        string        `json:"spec,omitempty"`
	FastWindow  string        `json:"fast_window"`
	SlowWindow  string        `json:"slow_window"`
	ForDuration string        `json:"for_duration"`
	LastTick    time.Time     `json:"last_tick"`
	Ticks       int64         `json:"ticks"`
	Transitions int64         `json:"transitions"`
	Snapshots   int           `json:"snapshots"`
	ScrapeError string        `json:"scrape_error,omitempty"`
	Alerts      []AlertStatus `json:"alerts"`
}

// AlertStatus is one alert's externally visible state.
type AlertStatus struct {
	Objective string     `json:"objective"`
	Alert     string     `json:"alert"`
	Endpoint  string     `json:"endpoint"`
	State     State      `json:"state"`
	Severity  Severity   `json:"severity,omitempty"`
	Since     time.Time  `json:"since"`
	Fast      WindowBurn `json:"fast"`
	Slow      WindowBurn `json:"slow"`
}

// Status snapshots the monitor for rendering.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Enabled:     m.spec.Enabled(),
		Spec:        m.spec.String(),
		FastWindow:  m.eval.FastWindow.String(),
		SlowWindow:  m.eval.SlowWindow.String(),
		ForDuration: m.forDur.String(),
		LastTick:    m.lastTick,
		Ticks:       m.ticks,
		Transitions: m.transitions,
		Snapshots:   m.db.Len(),
	}
	if m.scrapeErr != nil {
		st.ScrapeError = m.scrapeErr.Error()
	}
	for _, a := range m.alerts {
		st.Alerts = append(st.Alerts, AlertStatus{
			Objective: a.Objective.String(),
			Alert:     a.Objective.AlertName(),
			Endpoint:  a.Objective.Endpoint,
			State:     a.State,
			Severity:  a.Severity,
			Since:     a.Since,
			Fast:      a.Eval.Fast,
			Slow:      a.Eval.Slow,
		})
	}
	sort.Slice(st.Alerts, func(i, j int) bool { return st.Alerts[i].Objective < st.Alerts[j].Objective })
	return st
}
