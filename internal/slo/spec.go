// Package slo turns the raw metrics history in internal/tsdb into
// continuously-evaluated service-level objectives: a declarative spec
// grammar, multi-window burn-rate evaluation, and an alert state machine
// with pending → firing → resolved hysteresis, surfaced as ALERTS gauge
// series on /metrics, a /debug/slo page, structured log transitions, and
// an optional webhook notifier.
//
// Spec grammar (comma-separated kind:endpoint:target tokens):
//
//	avail:/v1/solve:99.9    99.9% of /v1/solve requests answer without a 5xx
//	p99:/v1/solve:0.05      the windowed p99 of /v1/solve stays under 50ms
//	p90:/v1/graphs:0.02     (p50/p90/p99 latency objectives, target seconds)
//
// Endpoints are the label values the serving layer already reports on
// prefcover_http_requests_total — route patterns like /v1/solve or
// /v1/graphs/{name} — and may not contain ':' or ','.
//
// Burn rates follow the multi-window convention: an availability burn of
// B means the error budget (1 − target) is being consumed B× faster than
// the objective allows; an alert requires the burn to exceed its
// threshold on BOTH a fast window (default 5m — catches fresh outages)
// and a slow window (default 1h — suppresses blips). Latency objectives
// burn at observed/target.
package slo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind is the objective type: availability or a latency quantile.
type Kind string

const (
	KindAvail Kind = "avail"
	KindP50   Kind = "p50"
	KindP90   Kind = "p90"
	KindP99   Kind = "p99"
)

// Quantile returns the quantile a latency kind tracks (0 for avail).
func (k Kind) Quantile() float64 {
	switch k {
	case KindP50:
		return 0.50
	case KindP90:
		return 0.90
	case KindP99:
		return 0.99
	}
	return 0
}

// Latency reports whether the kind is a latency-quantile objective.
func (k Kind) Latency() bool { return k == KindP50 || k == KindP90 || k == KindP99 }

// Objective is one parsed kind:endpoint:target token.
type Objective struct {
	Kind     Kind
	Endpoint string
	// Target is a percentage (0 < t < 100) for avail, seconds (> 0) for
	// latency kinds.
	Target float64
}

// String renders the objective in spec-grammar form.
func (o Objective) String() string {
	return string(o.Kind) + ":" + o.Endpoint + ":" + strconv.FormatFloat(o.Target, 'g', -1, 64)
}

// AlertName is the ALERTS{alertname=...} value: the kind plus "_burn",
// so p50 and p99 objectives on one endpoint stay distinct series.
func (o Objective) AlertName() string { return string(o.Kind) + "_burn" }

// Budget is the availability error budget as a ratio (e.g. 99.9 → 0.001);
// 0 for latency objectives.
func (o Objective) Budget() float64 {
	if o.Kind != KindAvail {
		return 0
	}
	return 1 - o.Target/100
}

// validate checks one objective.
func (o Objective) validate() error {
	switch o.Kind {
	case KindAvail:
		if math.IsNaN(o.Target) || o.Target <= 0 || o.Target >= 100 {
			return fmt.Errorf("slo: avail target %v must be a percentage in (0, 100)", o.Target)
		}
	case KindP50, KindP90, KindP99:
		if math.IsNaN(o.Target) || math.IsInf(o.Target, 0) || o.Target <= 0 {
			return fmt.Errorf("slo: latency target %v must be positive seconds", o.Target)
		}
	default:
		return fmt.Errorf("slo: unknown objective kind %q (want avail|p50|p90|p99)", o.Kind)
	}
	if o.Endpoint == "" {
		return fmt.Errorf("slo: objective %s has an empty endpoint", o.Kind)
	}
	if strings.ContainsAny(o.Endpoint, ":, \t\n\"") {
		return fmt.Errorf("slo: endpoint %q may not contain ':', ',', quotes or whitespace", o.Endpoint)
	}
	return nil
}

// Spec is a parsed SLO specification. The zero Spec evaluates nothing.
type Spec struct {
	Objectives []Objective
}

// Enabled reports whether the spec has any objectives.
func (s Spec) Enabled() bool { return len(s.Objectives) > 0 }

// String renders the spec in the grammar ParseSpec accepts
// (ParseSpec(s.String()) round-trips).
func (s Spec) String() string {
	toks := make([]string, len(s.Objectives))
	for i, o := range s.Objectives {
		toks[i] = o.String()
	}
	return strings.Join(toks, ",")
}

// ParseSpec parses the grammar documented on the package. An empty or
// all-whitespace string is the zero (evaluate-nothing) spec.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	seen := make(map[string]bool)
	for _, tok := range strings.Split(text, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(tok, ":")
		if !ok {
			return Spec{}, fmt.Errorf("slo: token %q is not kind:endpoint:target", tok)
		}
		// The endpoint may not contain ':', so the last ':' splits
		// endpoint from target.
		i := strings.LastIndex(rest, ":")
		if i < 0 {
			return Spec{}, fmt.Errorf("slo: token %q is not kind:endpoint:target", tok)
		}
		endpoint, targetStr := rest[:i], rest[i+1:]
		target, err := strconv.ParseFloat(strings.TrimSpace(targetStr), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("slo: token %q: bad target %q", tok, targetStr)
		}
		o := Objective{Kind: Kind(strings.TrimSpace(kindStr)), Endpoint: strings.TrimSpace(endpoint), Target: target}
		if err := o.validate(); err != nil {
			return Spec{}, fmt.Errorf("slo: token %q: %w", tok, err)
		}
		key := o.String()
		if seen[key] {
			return Spec{}, fmt.Errorf("slo: duplicate objective %q", key)
		}
		seen[key] = true
		s.Objectives = append(s.Objectives, o)
	}
	return s, nil
}
