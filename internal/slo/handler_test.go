package slo

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prefcover/internal/promtext"
)

func newHandlerMonitor(t *testing.T) *Monitor {
	t.Helper()
	spec, err := ParseSpec("avail:/v1/solve:99.9,p99:/v1/solve:0.05")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(MonitorOptions{
		Spec: spec,
		Scrape: func() (*promtext.Metrics, error) {
			return promtext.Parse(strings.NewReader("prefcover_http_requests_total{endpoint=\"/v1/solve\",code=\"200\"} 10\n"))
		},
		Logger: slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)),
		Now:    func() time.Time { return time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC) },
	})
	t.Cleanup(m.Close)
	return m
}

func TestDebugHandlerHTML(t *testing.T) {
	m := newHandlerMonitor(t)
	m.Tick()
	h := m.DebugHandler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("default content type = %q, want text/html", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{"avail:/v1/solve:99.9", "p99:/v1/solve:0.05", "avail_burn", "inactive", "SLO burn-rate monitor"} {
		if !strings.Contains(body, want) {
			t.Fatalf("HTML missing %q:\n%s", want, body)
		}
	}
}

func TestDebugHandlerJSON(t *testing.T) {
	m := newHandlerMonitor(t)
	m.Tick()
	req := httptest.NewRequest("GET", "/debug/slo", nil)
	req.Header.Set("Accept", "application/json")
	rr := httptest.NewRecorder()
	m.DebugHandler().ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if !st.Enabled || len(st.Alerts) != 2 || st.Ticks != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Alerts[0].State != StateInactive {
		t.Fatalf("alert state = %s", st.Alerts[0].State)
	}
}

func TestDebugHandlerMethodsAndAccept(t *testing.T) {
	m := newHandlerMonitor(t)
	rr := httptest.NewRecorder()
	m.DebugHandler().ServeHTTP(rr, httptest.NewRequest("POST", "/debug/slo", nil))
	if rr.Code != 405 || rr.Header().Get("Allow") == "" {
		t.Fatalf("POST: code = %d, Allow = %q", rr.Code, rr.Header().Get("Allow"))
	}
	req := httptest.NewRequest("GET", "/debug/slo", nil)
	req.Header.Set("Accept", "image/png")
	rr = httptest.NewRecorder()
	m.DebugHandler().ServeHTTP(rr, req)
	if rr.Code != 406 {
		t.Fatalf("unacceptable Accept: code = %d, want 406", rr.Code)
	}
}

func TestDisabledHandler(t *testing.T) {
	rr := httptest.NewRecorder()
	DisabledHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "disabled") {
		t.Fatalf("code = %d body = %q", rr.Code, rr.Body.String())
	}
	req := httptest.NewRequest("GET", "/debug/slo", nil)
	req.Header.Set("Accept", "application/json")
	rr = httptest.NewRecorder()
	DisabledHandler().ServeHTTP(rr, req)
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil || st.Enabled {
		t.Fatalf("disabled JSON wrong: %v %+v", err, st)
	}
}
