package slo

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"prefcover/internal/metrics"
	"prefcover/internal/promtext"
)

// harness drives a monitor deterministically: a fake clock, a live
// registry as the scrape source, and per-tick traffic injection.
type harness struct {
	t        *testing.T
	clock    time.Time
	reg      *metrics.Registry
	reqs     *metrics.CounterVec
	lat      *metrics.HistogramVec
	alertsGV *metrics.GaugeVec
	mon      *Monitor
	trans    []Transition
	mu       sync.Mutex
}

type recordingNotifier struct{ h *harness }

func (n *recordingNotifier) Notify(_ context.Context, t Transition) error {
	n.h.mu.Lock()
	defer n.h.mu.Unlock()
	n.h.trans = append(n.h.trans, t)
	return nil
}

func newHarness(t *testing.T, spec string, fast, slow, forDur time.Duration) *harness {
	h := &harness{t: t, clock: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
	h.reg = metrics.NewRegistry()
	h.reqs = h.reg.NewCounter("prefcover_http_requests_total", "h", "endpoint", "code")
	h.lat = h.reg.NewHistogram("prefcover_http_request_duration_seconds", "h",
		[]float64{0.01, 0.05, 0.1, 0.5}, "endpoint")
	h.alertsGV = h.reg.NewGauge("ALERTS", "h", "alertname", "endpoint", "severity", "state")
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	h.mon = NewMonitor(MonitorOptions{
		Spec: s,
		Scrape: func() (*promtext.Metrics, error) {
			var buf bytes.Buffer
			if err := h.reg.WritePrometheus(&buf); err != nil {
				return nil, err
			}
			return promtext.Parse(&buf)
		},
		Eval:        EvalConfig{FastWindow: fast, SlowWindow: slow},
		ForDuration: forDur,
		Alerts:      h.alertsGV,
		Logger:      slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)),
		Notifier:    &recordingNotifier{h},
		Now:         func() time.Time { return h.clock },
	})
	t.Cleanup(h.mon.Close)
	return h
}

// tick advances the clock and runs one scrape/evaluate round.
func (h *harness) tick(step time.Duration) {
	h.clock = h.clock.Add(step)
	h.mon.Tick()
	h.mon.notifyWG.Wait() // notifications are async; settle before asserting
}

// traffic records n requests on endpoint with the given code and latency.
func (h *harness) traffic(endpoint, code string, n int, latency float64) {
	h.reqs.With(endpoint, code).Add(int64(n))
	for i := 0; i < n; i++ {
		h.lat.With(endpoint).Observe(latency)
	}
}

// state returns the single alert's state (tests use one-objective specs).
func (h *harness) state() State {
	st := h.mon.Status()
	if len(st.Alerts) != 1 {
		h.t.Fatalf("alerts = %d, want 1", len(st.Alerts))
	}
	return st.Alerts[0].State
}

// gauge reads an ALERTS series value.
func (h *harness) gauge(alertname, endpoint string, sev Severity, st State) int64 {
	return h.alertsGV.With(alertname, endpoint, string(sev), string(st)).Value()
}

// transitions snapshots the notified transitions.
func (h *harness) transitions() []Transition {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Transition(nil), h.trans...)
}

func TestAvailAlertLifecycle(t *testing.T) {
	// Budget 1%: a 50% error ratio burns at 50x — far over critical 14.4.
	h := newHarness(t, "avail:/v1/solve:99", 2*time.Minute, 10*time.Minute, 30*time.Second)

	// 12 minutes of clean traffic builds both windows healthy.
	for i := 0; i < 72; i++ {
		h.traffic("/v1/solve", "200", 100, 0.01)
		h.tick(10 * time.Second)
	}
	if got := h.state(); got != StateInactive {
		t.Fatalf("after clean warmup: state = %s, want inactive", got)
	}
	if h.gauge("avail_burn", "/v1/solve", SeverityCritical, StateFiring) != 0 {
		t.Fatal("firing gauge should be 0 while healthy")
	}

	// Outage: 50% errors. The slow window (10m) is the limiter — it needs
	// its average error ratio over 0.144. Drive until pending appears.
	ticksToPending := 0
	for h.state() == StateInactive {
		h.traffic("/v1/solve", "200", 50, 0.01)
		h.traffic("/v1/solve", "500", 50, 0.01)
		h.tick(10 * time.Second)
		if ticksToPending++; ticksToPending > 200 {
			t.Fatal("never reached pending")
		}
	}
	if got := h.state(); got != StatePending {
		t.Fatalf("state = %s, want pending", got)
	}
	// The breach may grade warning first (burn crosses 6 before 14.4 on
	// the slow window): assert the gauge under whichever severity stuck.
	pendSev := h.mon.Status().Alerts[0].Severity
	if h.gauge("avail_burn", "/v1/solve", pendSev, StatePending) != 1 {
		t.Fatalf("pending gauge (severity %s) should be 1", pendSev)
	}
	// Hysteresis: 30s of continued breach fires the alert. The pending
	// tick itself anchors the timer, so two more 10s ticks stay pending
	// and the third (t+30s) fires.
	for i := 0; i < 2; i++ {
		h.traffic("/v1/solve", "500", 100, 0.01)
		h.tick(10 * time.Second)
		if got := h.state(); got != StatePending {
			t.Fatalf("tick %d: state = %s, want pending (for-duration not yet served)", i, got)
		}
	}
	h.traffic("/v1/solve", "500", 100, 0.01)
	h.tick(10 * time.Second)
	if got := h.state(); got != StateFiring {
		t.Fatalf("state = %s, want firing after for-duration", got)
	}
	fireSev := h.mon.Status().Alerts[0].Severity
	if h.gauge("avail_burn", "/v1/solve", fireSev, StateFiring) != 1 {
		t.Fatalf("firing gauge (severity %s) should be 1", fireSev)
	}
	for _, sev := range []Severity{SeverityWarning, SeverityCritical} {
		if h.gauge("avail_burn", "/v1/solve", sev, StatePending) != 0 {
			t.Fatalf("pending gauge (severity %s) should fall to 0 once firing", sev)
		}
	}

	// Recovery: clean traffic. Both windows must drain below the warning
	// threshold (slow window holds the memory), then 30s of health
	// resolves the alert.
	ticksToResolve := 0
	for h.state() != StateResolved {
		h.traffic("/v1/solve", "200", 100, 0.01)
		h.tick(10 * time.Second)
		if ticksToResolve++; ticksToResolve > 400 {
			t.Fatal("never resolved")
		}
	}
	resSev := h.mon.Status().Alerts[0].Severity
	if h.gauge("avail_burn", "/v1/solve", resSev, StateResolved) != 1 {
		t.Fatalf("resolved gauge (severity %s) should be 1", resSev)
	}
	for _, sev := range []Severity{SeverityWarning, SeverityCritical} {
		if h.gauge("avail_burn", "/v1/solve", sev, StateFiring) != 0 {
			t.Fatalf("firing gauge (severity %s) should fall to 0 once resolved", sev)
		}
	}

	// The notifier saw exactly the two consequential edges, in order.
	trans := h.transitions()
	if len(trans) != 2 {
		t.Fatalf("notified transitions = %d (%+v), want 2", len(trans), trans)
	}
	if trans[0].To != StateFiring || trans[1].To != StateResolved {
		t.Fatalf("transition order wrong: %+v", trans)
	}
	if trans[0].Alert != "avail_burn" || trans[0].Endpoint != "/v1/solve" || trans[0].Severity == SeverityNone {
		t.Fatalf("firing transition fields: %+v", trans[0])
	}
	if trans[0].FastBurn < WarnBurn || trans[0].SlowBurn < WarnBurn {
		t.Fatalf("firing burns should exceed the warning threshold: %+v", trans[0])
	}

	// A fresh breach re-arms from resolved through pending.
	rearm := 0
	for h.state() == StateResolved {
		h.traffic("/v1/solve", "500", 100, 0.01)
		h.tick(10 * time.Second)
		if rearm++; rearm > 200 {
			t.Fatal("never re-armed from resolved")
		}
	}
	if got := h.state(); got != StatePending {
		t.Fatalf("re-breach from resolved: state = %s, want pending", got)
	}
}

func TestPendingFlapNeverFiresOrNotifies(t *testing.T) {
	h := newHarness(t, "avail:/v1/solve:99", time.Minute, 2*time.Minute, time.Minute)
	for i := 0; i < 30; i++ {
		h.traffic("/v1/solve", "200", 100, 0.01)
		h.tick(10 * time.Second)
	}
	// One bad tick: everything errors. Fast and slow windows both see it.
	h.traffic("/v1/solve", "500", 100, 0.01)
	h.tick(10 * time.Second)
	if got := h.state(); got != StatePending {
		t.Fatalf("state = %s, want pending after one bad tick", got)
	}
	// Health returns before the 1m for-duration elapses: back to inactive.
	for i := 0; i < 30; i++ {
		h.traffic("/v1/solve", "200", 400, 0.01)
		h.tick(10 * time.Second)
	}
	if got := h.state(); got != StateInactive {
		t.Fatalf("state = %s, want inactive after flap", got)
	}
	if trans := h.transitions(); len(trans) != 0 {
		t.Fatalf("flap must not notify: %+v", trans)
	}
	for _, sev := range []Severity{SeverityWarning, SeverityCritical} {
		if h.gauge("avail_burn", "/v1/solve", sev, StatePending) != 0 {
			t.Fatalf("pending gauge (severity %s) should reset after flap", sev)
		}
	}
}

func TestLatencyAlertLifecycle(t *testing.T) {
	// p99 target 50ms; observations at 200ms burn at 4x > critical 2x.
	h := newHarness(t, "p99:/v1/solve:0.05", 2*time.Minute, 4*time.Minute, 20*time.Second)
	for i := 0; i < 40; i++ {
		h.traffic("/v1/solve", "200", 50, 0.02)
		h.tick(10 * time.Second)
	}
	if got := h.state(); got != StateInactive {
		t.Fatalf("fast traffic: state = %s, want inactive", got)
	}
	// Latency regression.
	n := 0
	for h.state() != StateFiring {
		h.traffic("/v1/solve", "200", 50, 0.2)
		h.tick(10 * time.Second)
		if n++; n > 100 {
			t.Fatal("latency alert never fired")
		}
	}
	st := h.mon.Status().Alerts[0]
	if st.Severity != SeverityCritical {
		t.Fatalf("severity = %s, want critical at 4x burn", st.Severity)
	}
	if st.Fast.Value < 0.1 || st.Fast.Value > 0.5 {
		t.Fatalf("observed p99 = %g, want ~0.2", st.Fast.Value)
	}
	// Recovery.
	n = 0
	for h.state() != StateResolved {
		h.traffic("/v1/solve", "200", 400, 0.02)
		h.tick(10 * time.Second)
		if n++; n > 100 {
			t.Fatal("latency alert never resolved")
		}
	}
}

func TestNoTrafficNeverAlerts(t *testing.T) {
	h := newHarness(t, "avail:/v1/solve:99.999,p99:/v1/solve:0.001", time.Minute, 2*time.Minute, 10*time.Second)
	for i := 0; i < 30; i++ {
		h.tick(10 * time.Second)
	}
	st := h.mon.Status()
	for _, a := range st.Alerts {
		if a.State != StateInactive {
			t.Fatalf("alert %s = %s on zero traffic, want inactive", a.Objective, a.State)
		}
		if a.Fast.OK || a.Slow.OK {
			t.Fatalf("alert %s windows should be unmeasurable: %+v", a.Objective, a)
		}
	}
}

func TestScrapeErrorIsSurfacedNotFatal(t *testing.T) {
	calls := 0
	m := NewMonitor(MonitorOptions{
		Spec: Spec{},
		Scrape: func() (*promtext.Metrics, error) {
			calls++
			return nil, fmt.Errorf("scrape boom %d", calls)
		},
		Logger: slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)),
	})
	defer m.Close()
	m.Tick()
	m.Tick()
	st := m.Status()
	if st.Ticks != 2 || !strings.Contains(st.ScrapeError, "scrape boom 2") {
		t.Fatalf("status = %+v", st)
	}
	if st.Snapshots != 0 {
		t.Fatal("failed scrapes must not append snapshots")
	}
}

func TestMonitorStartClose(t *testing.T) {
	var mu sync.Mutex
	n := 0
	m := NewMonitor(MonitorOptions{
		Spec:     Spec{},
		Interval: time.Millisecond,
		Scrape: func() (*promtext.Metrics, error) {
			mu.Lock()
			n++
			mu.Unlock()
			return promtext.Parse(strings.NewReader("c 1\n"))
		},
		Logger: slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil)),
	})
	m.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := n
		mu.Unlock()
		if got >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	m.Close()
	m.Close() // idempotent
	// A monitor that was never started must also close cleanly.
	m2 := NewMonitor(MonitorOptions{
		Spec:   Spec{},
		Scrape: func() (*promtext.Metrics, error) { return nil, nil },
	})
	m2.Close()
}
