package slo

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"avail:/v1/solve:99.9",
		"p99:/v1/solve:0.05",
		"avail:/v1/solve:99.9,p99:/v1/solve:0.05,p50:/v1/graphs/{name}:0.01",
		"p90:/v1/jobs:1.5",
		"",
	}
	for _, in := range cases {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		out := s.String()
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", out, in, err)
		}
		if len(s.Objectives) != len(s2.Objectives) {
			t.Fatalf("round trip changed objective count: %q -> %q", in, out)
		}
		for i := range s.Objectives {
			if s.Objectives[i] != s2.Objectives[i] {
				t.Fatalf("round trip changed objective %d: %+v vs %+v", i, s.Objectives[i], s2.Objectives[i])
			}
		}
	}
}

func TestParseSpecFields(t *testing.T) {
	s, err := ParseSpec(" avail:/v1/solve:99.5 , p99:/v1/solve:0.25 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Objectives) != 2 {
		t.Fatalf("objectives = %d", len(s.Objectives))
	}
	a := s.Objectives[0]
	if a.Kind != KindAvail || a.Endpoint != "/v1/solve" || a.Target != 99.5 {
		t.Fatalf("avail objective = %+v", a)
	}
	if b := a.Budget(); b < 0.00499 || b > 0.00501 {
		t.Fatalf("budget = %g, want 0.005", b)
	}
	p := s.Objectives[1]
	if !p.Kind.Latency() || p.Kind.Quantile() != 0.99 || p.Target != 0.25 {
		t.Fatalf("latency objective = %+v", p)
	}
	if a.AlertName() != "avail_burn" || p.AlertName() != "p99_burn" {
		t.Fatalf("alert names = %q, %q", a.AlertName(), p.AlertName())
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"avail",                                 // no separator
		"avail:/v1/solve",                       // no target
		"avail:/v1/solve:nope",                  // bad target
		"avail:/v1/solve:0",                     // zero percentage
		"avail:/v1/solve:100",                   // 100% has no budget
		"avail:/v1/solve:101",                   // out of range
		"p99:/v1/solve:0",                       // zero latency
		"p99:/v1/solve:-1",                      // negative latency
		"p99:/v1/solve:+Inf",                    // non-finite latency
		"p75:/v1/solve:0.1",                     // unknown kind
		"avail::99",                             // empty endpoint
		"avail:/v1/solve:99,avail:/v1/solve:99", // duplicate
	}
	for _, in := range cases {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) should fail", in)
		}
	}
}

// FuzzSLOSpec holds the grammar round-trip: any accepted input re-renders
// to a string that parses back to the identical objective list.
func FuzzSLOSpec(f *testing.F) {
	f.Add("avail:/v1/solve:99.9")
	f.Add("p99:/v1/solve:0.05,p50:/x:2")
	f.Add("avail:/v1/graphs/{name}:90")
	f.Add(" p90:/a:1e-3 ,, avail:/b:50 ")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		out := s.String()
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("String output %q failed to reparse: %v", out, err)
		}
		if len(s.Objectives) != len(s2.Objectives) {
			t.Fatalf("round trip changed count: %q -> %q", in, out)
		}
		for i := range s.Objectives {
			if s.Objectives[i] != s2.Objectives[i] {
				t.Fatalf("objective %d changed: %+v vs %+v", i, s.Objectives[i], s2.Objectives[i])
			}
		}
		if out2 := s2.String(); out2 != out {
			t.Fatalf("String not a fixed point: %q vs %q", out, out2)
		}
	})
}

func TestSpecEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero spec should be disabled")
	}
	s, _ := ParseSpec("avail:/v1/solve:99")
	if !s.Enabled() {
		t.Fatal("parsed spec should be enabled")
	}
	if !strings.Contains(s.String(), "avail:/v1/solve:99") {
		t.Fatalf("String = %q", s.String())
	}
}
