// Package adapt implements the paper's Data Adaptation Engine (Section 5.2,
// Figures 2 and 3): it turns a raw clickstream into a preference graph and
// recommends which problem variant (Independent or Normalized) fits the
// data.
//
// Construction rules, exactly as in the paper:
//
//   - Nodes are items. A node's weight is its share of purchases:
//     purchases(item) / totalPurchases.
//   - A directed edge A -> B exists iff some session purchased A and clicked
//     B; its weight is the fraction of A-purchase sessions in which B was
//     clicked. (Edges deliberately point purchased -> clicked: when all
//     items are in stock the purchased item is the requested one, and the
//     clicked items are the alternatives that were considered.)
//   - Under the Normalized interpretation, a session with t > 1 distinct
//     alternative clicks contributes 1/t of a click to each edge, so that
//     per-node outgoing weights sum to at most 1.
//   - Browse-only sessions (no purchase) carry no purchase intent and are
//     skipped (paper footnote 5).
package adapt

import (
	"context"
	"fmt"
	"sort"

	"prefcover/internal/clickstream"
	"prefcover/internal/graph"
	"prefcover/internal/nmi"
)

// Options configures BuildGraph.
type Options struct {
	// Variant selects the edge-weight accounting. Normalized splits
	// multi-alternative sessions 1/t per click; Independent counts each
	// click fully.
	Variant graph.Variant
	// MinPurchases drops items purchased fewer than this many times from
	// the *edge source* role (their outgoing correlations are noise, paper
	// Section 5.2 last paragraph); the items themselves are kept as nodes.
	// 0 disables the filter.
	MinPurchases int
	// ClickDiscount is the corrective factor of Section 5.2: viewing every
	// click as an intention to buy overestimates the willingness to
	// purchase an alternative, so platforms with richer signals (dwell
	// time, add-to-cart) can discount the click-derived edge weights by a
	// constant in (0,1]. 0 means 1 (no discount).
	ClickDiscount float64
	// ComputeFitness additionally computes the variant-recommendation
	// statistics (single-alternative share and average pairwise NMI).
	// Costs an extra O(sum t^2) pass over the stored pairs.
	ComputeFitness bool
	// Ctx, if non-nil, allows cancellation: the clickstream drain polls it
	// every ctxCheckSessions sessions and BuildGraph then returns ctx.Err(),
	// so multi-gigabyte adaptations started with a deadline stop promptly.
	Ctx context.Context
}

// Report describes the constructed graph and, when requested, the variant
// fitness statistics of Section 5.2.
type Report struct {
	Sessions         int
	PurchaseSessions int
	Items            int
	Edges            int

	// SingleAlternativeShare is the fraction of purchase sessions with at
	// most one distinct alternative click. >= 0.90 means the Normalized
	// variant fits the data (paper's 90% rule).
	SingleAlternativeShare float64
	// MeanPairwiseNMI is the node-weighted average over purchased items of
	// the mean pairwise normalized mutual information between that item's
	// alternatives. < 0.10 means the Independent variant fits the data.
	MeanPairwiseNMI float64
	// FitnessComputed reports whether the two statistics above were
	// calculated.
	FitnessComputed bool
}

// Thresholds from Section 5.2.
const (
	NormalizedFitThreshold  = 0.90
	IndependentFitThreshold = 0.10
)

// RecommendVariant applies the paper's decision rule to a computed Report.
// The Normalized rule is checked first (it is the stricter structural
// condition); if neither rule fires, Independent is returned as the more
// permissive default along with ok=false.
func (r *Report) RecommendVariant() (graph.Variant, bool) {
	if !r.FitnessComputed {
		return graph.Independent, false
	}
	if r.SingleAlternativeShare >= NormalizedFitThreshold {
		return graph.Normalized, true
	}
	if r.MeanPairwiseNMI < IndependentFitThreshold {
		return graph.Independent, true
	}
	return graph.Independent, false
}

// itemCounts accumulates per-item purchase counts and per-ordered-pair
// fractional click counts.
type itemCounts struct {
	purchases map[string]float64
	// clicks[src][dst] = (possibly fractional) number of src-purchase
	// sessions in which dst was clicked.
	clicks map[string]map[string]float64
	// perItemSessions stores, for items needing NMI, each session's
	// distinct alternative set (as sorted label slices).
	perItemSessions map[string][][]string
	items           map[string]struct{}
}

// BuildGraph drains src and constructs the preference graph.
func BuildGraph(src clickstream.Source, opts Options) (*graph.Graph, *Report, error) {
	if opts.ClickDiscount < 0 || opts.ClickDiscount > 1 {
		return nil, nil, fmt.Errorf("adapt: click discount %g outside (0,1]", opts.ClickDiscount)
	}
	c := itemCounts{
		purchases: make(map[string]float64),
		clicks:    make(map[string]map[string]float64),
		items:     make(map[string]struct{}),
	}
	if opts.ComputeFitness {
		c.perItemSessions = make(map[string][][]string)
	}
	rep := &Report{}
	var scratch []string
	singleAlt := 0
	for {
		if rep.Sessions%ctxCheckSessions == 0 {
			if err := ctxErr(opts.Ctx); err != nil {
				return nil, nil, err
			}
		}
		s, err := src.Next()
		if err != nil {
			if err == clickstream.ErrEOF {
				break
			}
			return nil, nil, fmt.Errorf("adapt: reading clickstream: %w", err)
		}
		rep.Sessions++
		for _, click := range s.Clicks {
			c.items[click] = struct{}{}
		}
		if !s.HasPurchase() {
			continue
		}
		rep.PurchaseSessions++
		c.items[s.Purchase] = struct{}{}
		c.purchases[s.Purchase]++
		scratch = s.AlternativeClicks(scratch)
		if len(scratch) <= 1 {
			singleAlt++
		}
		if len(scratch) > 0 {
			m := c.clicks[s.Purchase]
			if m == nil {
				m = make(map[string]float64)
				c.clicks[s.Purchase] = m
			}
			contribution := 1.0
			if opts.Variant == graph.Normalized && len(scratch) > 1 {
				// The paper "normalizes" multi-alternative sessions by
				// counting each click as a 1/t fraction.
				contribution = 1.0 / float64(len(scratch))
			}
			for _, alt := range scratch {
				m[alt] += contribution
			}
		}
		if opts.ComputeFitness && len(scratch) >= 0 {
			alts := append([]string(nil), scratch...)
			sort.Strings(alts)
			c.perItemSessions[s.Purchase] = append(c.perItemSessions[s.Purchase], alts)
		}
	}
	if rep.PurchaseSessions == 0 {
		return nil, nil, fmt.Errorf("adapt: clickstream contains no purchase sessions")
	}
	rep.SingleAlternativeShare = float64(singleAlt) / float64(rep.PurchaseSessions)
	rep.Items = len(c.items)

	g, err := buildFromCounts(&c, opts, rep)
	if err != nil {
		return nil, nil, err
	}
	rep.Edges = g.NumEdges()
	if opts.ComputeFitness {
		// The NMI pass is the other superlinear stage; re-check before it.
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, nil, err
		}
		rep.MeanPairwiseNMI = meanPairwiseNMI(&c, float64(rep.PurchaseSessions))
		rep.FitnessComputed = true
	}
	return g, rep, nil
}

// ctxCheckSessions is the cancellation poll stride of the drain loop.
const ctxCheckSessions = 1024

// ctxErr is a non-blocking poll of an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// buildFromCounts converts the accumulated counts to a graph. Labels are
// added in sorted order so construction is deterministic regardless of map
// iteration order.
func buildFromCounts(c *itemCounts, opts Options, rep *Report) (*graph.Graph, error) {
	labels := make([]string, 0, len(c.items))
	for item := range c.items {
		labels = append(labels, item)
	}
	sort.Strings(labels)

	var totalPurchases float64
	for _, n := range c.purchases {
		totalPurchases += n
	}
	b := graph.NewBuilder(len(labels), 0)
	for _, label := range labels {
		b.AddLabeledNode(label, c.purchases[label]/totalPurchases)
	}
	for _, src := range labels {
		n := c.purchases[src]
		if n == 0 || (opts.MinPurchases > 0 && n < float64(opts.MinPurchases)) {
			continue
		}
		dsts := c.clicks[src]
		// Deterministic edge order.
		keys := make([]string, 0, len(dsts))
		for dst := range dsts {
			keys = append(keys, dst)
		}
		sort.Strings(keys)
		discount := opts.ClickDiscount
		if discount == 0 {
			discount = 1
		}
		for _, dst := range keys {
			w := dsts[dst] / n
			if w > 1 {
				w = 1 // a click can co-occur at most once per session
			}
			b.AddLabeledEdge(src, dst, w*discount)
		}
	}
	return b.Build(graph.BuildOptions{DropZeroEdges: true})
}

// nmiMinSessions is the minimum number of purchase sessions an item needs
// before its pairwise NMI is trusted: mutual information estimated from few
// observations is biased upward, and the paper's measure weights by
// popularity precisely so that "noisier" rare items do not skew the
// decision.
const nmiMinSessions = 20

// meanPairwiseNMI implements the paper's independence measure: for each
// purchased item, the average NMI over all pairs of its alternatives
// (computed across that item's sessions), then the purchase-weighted mean
// over items.
func meanPairwiseNMI(c *itemCounts, totalPurchases float64) float64 {
	var overall nmi.WeightedMean
	for item, sessions := range c.perItemSessions {
		if len(sessions) < nmiMinSessions {
			continue
		}
		alternatives := distinctAlternatives(sessions)
		if len(alternatives) < 2 {
			continue
		}
		var perItem float64
		pairs := 0
		for i := 0; i < len(alternatives); i++ {
			for j := i + 1; j < len(alternatives); j++ {
				joint := jointTable(sessions, alternatives[i], alternatives[j])
				v, err := nmi.Normalized(joint)
				if err != nil {
					continue
				}
				perItem += v
				pairs++
			}
		}
		if pairs == 0 {
			continue
		}
		overall.Add(perItem/float64(pairs), c.purchases[item]/totalPurchases)
	}
	return overall.Mean()
}

func distinctAlternatives(sessions [][]string) []string {
	seen := make(map[string]struct{})
	for _, alts := range sessions {
		for _, a := range alts {
			seen[a] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// jointTable builds the 2x2 contingency table of clicking a vs clicking b
// across the item's sessions. Each sessions[i] is sorted.
func jointTable(sessions [][]string, a, b string) nmi.BinaryJoint {
	var j nmi.BinaryJoint
	for _, alts := range sessions {
		ca := containsSorted(alts, a)
		cb := containsSorted(alts, b)
		switch {
		case ca && cb:
			j.N11++
		case ca:
			j.N10++
		case cb:
			j.N01++
		default:
			j.N00++
		}
	}
	return j
}

func containsSorted(sorted []string, x string) bool {
	i := sort.SearchStrings(sorted, x)
	return i < len(sorted) && sorted[i] == x
}
