package adapt_test

import (
	"math"
	"testing"

	. "prefcover/internal/adapt"
	"prefcover/internal/clickstream"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
)

const tol = 1e-9

// TestFigure3Construction reproduces the paper's Figure 3 end to end: the
// 5-session iPhone clickstream must yield exactly the preference graph of
// Figure 3b.
func TestFigure3Construction(t *testing.T) {
	g, rep, err := BuildGraph(fixture.Figure3Sessions(), Options{Variant: graph.Normalized})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 5 || rep.PurchaseSessions != 5 {
		t.Fatalf("report = %+v", rep)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	wantW := map[string]float64{
		fixture.Fig3Silver:    0.4,
		fixture.Fig3Gold:      0.2,
		fixture.Fig3SpaceGray: 0.4,
	}
	for label, w := range wantW {
		v, ok := g.Lookup(label)
		if !ok {
			t.Fatalf("missing node %s", label)
		}
		if got := g.NodeWeight(v); math.Abs(got-w) > tol {
			t.Errorf("W(%s) = %g, want %g", label, got, w)
		}
	}
	wantE := []struct {
		src, dst string
		w        float64
	}{
		{fixture.Fig3Silver, fixture.Fig3Gold, 0.5},
		{fixture.Fig3Silver, fixture.Fig3SpaceGray, 0.5},
		{fixture.Fig3SpaceGray, fixture.Fig3Silver, 0.5},
		{fixture.Fig3Gold, fixture.Fig3SpaceGray, 1.0},
	}
	if g.NumEdges() != len(wantE) {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), len(wantE))
	}
	for _, e := range wantE {
		s, _ := g.Lookup(e.src)
		d, _ := g.Lookup(e.dst)
		w, ok := g.EdgeWeight(s, d)
		if !ok {
			t.Errorf("missing edge %s->%s", e.src, e.dst)
			continue
		}
		if math.Abs(w-e.w) > tol {
			t.Errorf("W(%s->%s) = %g, want %g", e.src, e.dst, w, e.w)
		}
	}
	// The paper notes Figure 3 is a clear Normalized fit: every session
	// implies at most one alternative.
	if rep.SingleAlternativeShare != 1 {
		t.Errorf("single-alternative share = %g, want 1", rep.SingleAlternativeShare)
	}
	if err := g.Validate(graph.ValidateOptions{Variant: graph.Normalized, RequireSimplex: true}); err != nil {
		t.Errorf("figure 3 graph invalid: %v", err)
	}
}

func TestNormalizedFractionalClicks(t *testing.T) {
	// One purchase of x with two alternative clicks: under Normalized each
	// edge gets weight 1/2, keeping the out-sum at 1; under Independent
	// both get 1.
	sessions := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "x", Clicks: []string{"y", "z"}},
	})
	gN, _, err := BuildGraph(sessions, Options{Variant: graph.Normalized})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := gN.Lookup("x")
	y, _ := gN.Lookup("y")
	z, _ := gN.Lookup("z")
	if w, _ := gN.EdgeWeight(x, y); math.Abs(w-0.5) > tol {
		t.Errorf("normalized W(x->y) = %g, want 0.5", w)
	}
	if err := gN.Validate(graph.ValidateOptions{Variant: graph.Normalized, RequireSimplex: true}); err != nil {
		t.Errorf("normalized graph invalid: %v", err)
	}

	sessions.Reset()
	gI, _, err := BuildGraph(sessions, Options{Variant: graph.Independent})
	if err != nil {
		t.Fatal(err)
	}
	x, _ = gI.Lookup("x")
	y, _ = gI.Lookup("y")
	z, _ = gI.Lookup("z")
	if w, _ := gI.EdgeWeight(x, y); math.Abs(w-1) > tol {
		t.Errorf("independent W(x->y) = %g, want 1", w)
	}
	if w, _ := gI.EdgeWeight(x, z); math.Abs(w-1) > tol {
		t.Errorf("independent W(x->z) = %g, want 1", w)
	}
}

// TestAdaptEdgeDirection pins the paper's Section 5.2 design choice: edges
// run purchased -> clicked, never the reverse.
func TestAdaptEdgeDirection(t *testing.T) {
	sessions := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "bought", Clicks: []string{"considered"}},
	})
	g, _, err := BuildGraph(sessions, Options{Variant: graph.Independent})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.Lookup("bought")
	c, _ := g.Lookup("considered")
	if _, ok := g.EdgeWeight(b, c); !ok {
		t.Error("missing purchased->clicked edge")
	}
	if _, ok := g.EdgeWeight(c, b); ok {
		t.Error("clicked->purchased edge must not exist")
	}
}

func TestBrowseOnlySessionsIgnored(t *testing.T) {
	sessions := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "x", Clicks: []string{"y"}},
		{ID: "s2", Clicks: []string{"y", "x"}}, // browse-only: no effect on weights or edges
		{ID: "s3", Clicks: []string{"w"}},      // introduces item w as a node only
	})
	g, rep, err := BuildGraph(sessions, Options{Variant: graph.Independent})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 3 || rep.PurchaseSessions != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if g.NumNodes() != 3 { // x, y, w
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	x, _ := g.Lookup("x")
	if w := g.NodeWeight(x); math.Abs(w-1) > tol {
		t.Errorf("W(x) = %g, want 1", w)
	}
	wNode, _ := g.Lookup("w")
	if g.NodeWeight(wNode) != 0 {
		t.Error("browse-only item should have weight 0")
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
}

func TestSelfClickIgnored(t *testing.T) {
	sessions := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "x", Clicks: []string{"x", "y"}},
	})
	g, _, err := BuildGraph(sessions, Options{Variant: graph.Normalized})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := g.Lookup("x")
	y, _ := g.Lookup("y")
	// Only y counts as an alternative, so the edge weight is a whole 1.0.
	if w, _ := g.EdgeWeight(x, y); math.Abs(w-1) > tol {
		t.Errorf("W(x->y) = %g, want 1", w)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestMinPurchasesFilter(t *testing.T) {
	sessions := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "popular", Clicks: []string{"alt"}},
		{ID: "s2", Purchase: "popular", Clicks: []string{"alt"}},
		{ID: "s3", Purchase: "rare", Clicks: []string{"alt"}},
	})
	g, _, err := BuildGraph(sessions, Options{Variant: graph.Independent, MinPurchases: 2})
	if err != nil {
		t.Fatal(err)
	}
	pop, _ := g.Lookup("popular")
	rare, _ := g.Lookup("rare")
	alt, _ := g.Lookup("alt")
	if _, ok := g.EdgeWeight(pop, alt); !ok {
		t.Error("popular item's edge should survive the filter")
	}
	if _, ok := g.EdgeWeight(rare, alt); ok {
		t.Error("rare item's edge should be filtered")
	}
	// The rare item keeps its node and weight.
	if g.NodeWeight(rare) == 0 {
		t.Error("rare item weight lost")
	}
}

func TestClickDiscount(t *testing.T) {
	sessions := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "x", Clicks: []string{"y"}},
	})
	g, _, err := BuildGraph(sessions, Options{Variant: graph.Independent, ClickDiscount: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := g.Lookup("x")
	y, _ := g.Lookup("y")
	if w, _ := g.EdgeWeight(x, y); math.Abs(w-0.4) > tol {
		t.Errorf("discounted W(x->y) = %g, want 0.4", w)
	}
	sessions.Reset()
	if _, _, err := BuildGraph(sessions, Options{ClickDiscount: 1.5}); err == nil {
		t.Error("discount > 1 should fail")
	}
	sessions.Reset()
	if _, _, err := BuildGraph(sessions, Options{ClickDiscount: -0.1}); err == nil {
		t.Error("negative discount should fail")
	}
}

func TestNoPurchasesError(t *testing.T) {
	sessions := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Clicks: []string{"x"}},
	})
	if _, _, err := BuildGraph(sessions, Options{}); err == nil {
		t.Error("purchase-free clickstream should fail")
	}
}

func TestNodeWeightsFormSimplex(t *testing.T) {
	g, _, err := BuildGraph(fixture.Figure3Sessions(), Options{Variant: graph.Independent})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(graph.ValidateOptions{RequireSimplex: true}); err != nil {
		t.Errorf("node weights not a simplex: %v", err)
	}
}

func TestFitnessIndependentData(t *testing.T) {
	// Construct sessions where two alternatives are clicked independently:
	// all four combinations appear with product frequencies.
	var sessions []clickstream.Session
	id := 0
	add := func(n int, clicks ...string) {
		for i := 0; i < n; i++ {
			sessions = append(sessions, clickstream.Session{
				ID: string(rune('a' + id)), Purchase: "x", Clicks: clicks,
			})
			id++
		}
	}
	// P(click y)=0.5, P(click z)=0.5, independent over 40 sessions.
	add(10, "y", "z")
	add(10, "y")
	add(10, "z")
	add(10)
	g, rep, err := BuildGraph(clickstream.NewStore(sessions), Options{Variant: graph.Independent, ComputeFitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FitnessComputed {
		t.Fatal("fitness not computed")
	}
	if rep.MeanPairwiseNMI > 1e-9 {
		t.Errorf("NMI = %g, want ~0 for independent clicks", rep.MeanPairwiseNMI)
	}
	variant, ok := rep.RecommendVariant()
	if !ok || variant != graph.Independent {
		t.Errorf("recommendation = %v,%v want Independent", variant, ok)
	}
	_ = g
}

func TestFitnessNormalizedData(t *testing.T) {
	var sessions []clickstream.Session
	for i := 0; i < 50; i++ {
		alt := "y"
		if i%2 == 0 {
			alt = "z"
		}
		sessions = append(sessions, clickstream.Session{ID: "s", Purchase: "x", Clicks: []string{alt}})
	}
	_, rep, err := BuildGraph(clickstream.NewStore(sessions), Options{Variant: graph.Normalized, ComputeFitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SingleAlternativeShare != 1 {
		t.Fatalf("share = %g", rep.SingleAlternativeShare)
	}
	variant, ok := rep.RecommendVariant()
	if !ok || variant != graph.Normalized {
		t.Errorf("recommendation = %v,%v want Normalized", variant, ok)
	}
}

func TestFitnessDependentData(t *testing.T) {
	// y and z are always clicked together: NMI 1, and two alternatives per
	// session (share 0), so neither rule fires.
	var sessions []clickstream.Session
	for i := 0; i < 30; i++ {
		clicks := []string{"y", "z"}
		if i%3 == 0 {
			clicks = nil
		}
		sessions = append(sessions, clickstream.Session{ID: "s", Purchase: "x", Clicks: clicks})
	}
	_, rep, err := BuildGraph(clickstream.NewStore(sessions), Options{Variant: graph.Independent, ComputeFitness: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanPairwiseNMI < 0.5 {
		t.Errorf("NMI = %g, want high for coupled clicks", rep.MeanPairwiseNMI)
	}
	if _, ok := rep.RecommendVariant(); ok {
		t.Error("neither variant should be a confident fit")
	}
}

func TestRecommendWithoutFitness(t *testing.T) {
	rep := &Report{}
	if _, ok := rep.RecommendVariant(); ok {
		t.Error("recommendation without fitness stats should not be confident")
	}
}
