// Package dynamic implements incremental maintenance of a Preference Cover
// solution under catalog changes over time — the future-work direction the
// paper's conclusion names ("incremental maintenance in response to
// changes over time"). It provides:
//
//   - MutableGraph: an editable preference graph (add/remove items, set
//     weights and edges) that freezes into the immutable CSR form the
//     solver consumes;
//   - Tracker: maintains the cover of a retained set exactly while the
//     graph mutates, accounts the demand drift since the last solve, and
//     offers cheap local repair (best single exchange) as well as full
//     re-solve triggers.
package dynamic

import (
	"fmt"
	"sort"

	"prefcover/internal/graph"
)

// edge is one directed adjacency entry.
type edge struct {
	other int32
	w     float64
}

// nodeRec is the mutable per-item state.
type nodeRec struct {
	label   string
	w       float64
	out, in []edge
	alive   bool
}

// MutableGraph is an editable preference graph. It is not safe for
// concurrent use. Node ids are stable across removals (removed ids are
// never reused), so external references stay valid.
type MutableGraph struct {
	nodes  []nodeRec
	byName map[string]int32
	nAlive int
	mEdges int
}

// NewMutableGraph returns an empty mutable graph.
func NewMutableGraph() *MutableGraph {
	return &MutableGraph{byName: make(map[string]int32)}
}

// FromGraph copies an immutable graph into mutable form.
func FromGraph(g *graph.Graph) *MutableGraph {
	m := NewMutableGraph()
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		label := ""
		if g.Labeled() {
			label = g.Label(v)
		}
		id := m.addNode(label, g.NodeWeight(v))
		if id != v {
			panic("dynamic: id drift while copying")
		}
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			m.nodes[v].out = append(m.nodes[v].out, edge{other: u, w: ws[i]})
			m.nodes[u].in = append(m.nodes[u].in, edge{other: v, w: ws[i]})
			m.mEdges++
		}
	}
	return m
}

// NumAlive returns the number of live items.
func (m *MutableGraph) NumAlive() int { return m.nAlive }

// IDs returns the ids of all live items in ascending order.
func (m *MutableGraph) IDs() []int32 {
	out := make([]int32, 0, m.nAlive)
	for id := range m.nodes {
		if m.nodes[id].alive {
			out = append(out, int32(id))
		}
	}
	return out
}

// NumEdges returns the number of live edges.
func (m *MutableGraph) NumEdges() int { return m.mEdges }

// Alive reports whether id refers to a live item.
func (m *MutableGraph) Alive(id int32) bool {
	return id >= 0 && int(id) < len(m.nodes) && m.nodes[id].alive
}

// Weight returns the item's weight.
func (m *MutableGraph) Weight(id int32) (float64, error) {
	if !m.Alive(id) {
		return 0, fmt.Errorf("dynamic: no live item %d", id)
	}
	return m.nodes[id].w, nil
}

// Label returns the item's label ("" for unlabeled graphs).
func (m *MutableGraph) Label(id int32) string {
	if !m.Alive(id) {
		return ""
	}
	return m.nodes[id].label
}

// Lookup resolves a label.
func (m *MutableGraph) Lookup(label string) (int32, bool) {
	id, ok := m.byName[label]
	if !ok || !m.nodes[id].alive {
		return 0, false
	}
	return id, true
}

func (m *MutableGraph) addNode(label string, w float64) int32 {
	id := int32(len(m.nodes))
	m.nodes = append(m.nodes, nodeRec{label: label, w: w, alive: true})
	if label != "" {
		m.byName[label] = id
	}
	m.nAlive++
	return id
}

// AddItem adds a new item and returns its id. The label may be empty only
// if no labeled items exist.
func (m *MutableGraph) AddItem(label string, w float64) (int32, error) {
	if w < 0 {
		return 0, fmt.Errorf("dynamic: negative weight %g", w)
	}
	if label != "" {
		if prev, ok := m.byName[label]; ok && m.nodes[prev].alive {
			return 0, fmt.Errorf("dynamic: duplicate label %q", label)
		}
	}
	return m.addNode(label, w), nil
}

// RemoveItem deletes an item and all its incident edges.
func (m *MutableGraph) RemoveItem(id int32) error {
	if !m.Alive(id) {
		return fmt.Errorf("dynamic: no live item %d", id)
	}
	n := &m.nodes[id]
	for _, e := range n.out {
		m.dropIn(e.other, id)
		m.mEdges--
	}
	for _, e := range n.in {
		m.dropOut(e.other, id)
		m.mEdges--
	}
	n.out, n.in = nil, nil
	n.alive = false
	if n.label != "" {
		delete(m.byName, n.label)
	}
	m.nAlive--
	return nil
}

func (m *MutableGraph) dropIn(v, src int32) {
	in := m.nodes[v].in
	for i, e := range in {
		if e.other == src {
			m.nodes[v].in = append(in[:i], in[i+1:]...)
			return
		}
	}
}

func (m *MutableGraph) dropOut(v, dst int32) {
	out := m.nodes[v].out
	for i, e := range out {
		if e.other == dst {
			m.nodes[v].out = append(out[:i], out[i+1:]...)
			return
		}
	}
}

// SetWeight updates an item's request probability.
func (m *MutableGraph) SetWeight(id int32, w float64) error {
	if !m.Alive(id) {
		return fmt.Errorf("dynamic: no live item %d", id)
	}
	if w < 0 {
		return fmt.Errorf("dynamic: negative weight %g", w)
	}
	m.nodes[id].w = w
	return nil
}

// SetEdge inserts or updates the edge (src,dst). Weight must be in (0,1];
// use RemoveEdge to delete.
func (m *MutableGraph) SetEdge(src, dst int32, w float64) error {
	if !m.Alive(src) || !m.Alive(dst) {
		return fmt.Errorf("dynamic: edge (%d,%d) references a dead item", src, dst)
	}
	if src == dst {
		return fmt.Errorf("dynamic: self edge on %d", src)
	}
	if w <= 0 || w > 1 {
		return fmt.Errorf("dynamic: edge weight %g outside (0,1]", w)
	}
	for i, e := range m.nodes[src].out {
		if e.other == dst {
			m.nodes[src].out[i].w = w
			for j, ie := range m.nodes[dst].in {
				if ie.other == src {
					m.nodes[dst].in[j].w = w
					break
				}
			}
			return nil
		}
	}
	m.nodes[src].out = append(m.nodes[src].out, edge{other: dst, w: w})
	m.nodes[dst].in = append(m.nodes[dst].in, edge{other: src, w: w})
	m.mEdges++
	return nil
}

// EdgeWeight returns the weight of (src,dst) if present.
func (m *MutableGraph) EdgeWeight(src, dst int32) (float64, bool) {
	if !m.Alive(src) {
		return 0, false
	}
	for _, e := range m.nodes[src].out {
		if e.other == dst {
			return e.w, true
		}
	}
	return 0, false
}

// RemoveEdge deletes the edge (src,dst) if present.
func (m *MutableGraph) RemoveEdge(src, dst int32) error {
	if !m.Alive(src) || !m.Alive(dst) {
		return fmt.Errorf("dynamic: edge (%d,%d) references a dead item", src, dst)
	}
	if _, ok := m.EdgeWeight(src, dst); !ok {
		return fmt.Errorf("dynamic: no edge (%d,%d)", src, dst)
	}
	m.dropOut(src, dst)
	m.dropIn(dst, src)
	m.mEdges--
	return nil
}

// Freeze builds the immutable CSR graph plus the mapping from frozen dense
// ids back to mutable ids (frozen id i corresponds to mapping[i]).
// Weights are not renormalized; call graph.Renormalize on the result if a
// probability simplex is required.
func (m *MutableGraph) Freeze() (*graph.Graph, []int32, error) {
	ids := make([]int32, 0, m.nAlive)
	for id := range m.nodes {
		if m.nodes[id].alive {
			ids = append(ids, int32(id))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dense := make(map[int32]int32, len(ids))
	for i, id := range ids {
		dense[id] = int32(i)
	}
	b := graph.NewBuilder(len(ids), m.mEdges)
	labeled := len(ids) > 0 && m.nodes[ids[0]].label != ""
	for _, id := range ids {
		if labeled {
			b.AddLabeledNode(m.nodes[id].label, m.nodes[id].w)
		} else {
			b.AddNode(m.nodes[id].w)
		}
	}
	for _, id := range ids {
		for _, e := range m.nodes[id].out {
			b.AddEdge(dense[id], dense[e.other], e.w)
		}
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		return nil, nil, err
	}
	return g, ids, nil
}
