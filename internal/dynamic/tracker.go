package dynamic

import (
	"fmt"
	"math"

	"prefcover/internal/graph"
	"prefcover/internal/greedy"
)

// Tracker maintains the exact cover of a retained set while the underlying
// MutableGraph changes, so an operator can watch solution quality decay in
// real time and decide when to re-curate. All mutations must go through
// the Tracker (not the MutableGraph directly) once tracking starts.
//
// Costs per operation are O(degree of the touched item); the cover is
// recomputed only for items whose matching probability actually changed.
type Tracker struct {
	m       *MutableGraph
	variant graph.Variant
	// retained marks the current retained set by mutable id.
	retained map[int32]bool
	// contrib[v] is v's current contribution to the cover: W(v) times its
	// matching probability. Dead items carry no entry.
	contrib map[int32]float64
	cover   float64
	// drift accumulates |delta cover| since the last Resolve; the re-solve
	// policy compares it against a threshold.
	drift float64
}

// NewTracker starts tracking the given retained set (mutable ids) over m.
func NewTracker(m *MutableGraph, variant graph.Variant, retained []int32) (*Tracker, error) {
	t := &Tracker{
		m:        m,
		variant:  variant,
		retained: make(map[int32]bool, len(retained)),
		contrib:  make(map[int32]float64, m.NumAlive()),
	}
	for _, id := range retained {
		if !m.Alive(id) {
			return nil, fmt.Errorf("dynamic: retained item %d is not alive", id)
		}
		t.retained[id] = true
	}
	for id := range m.nodes {
		if m.nodes[id].alive {
			t.recompute(int32(id), false)
		}
	}
	t.drift = 0
	return t, nil
}

// Cover returns the exact current cover of the retained set.
func (t *Tracker) Cover() float64 { return t.cover }

// Drift returns the accumulated |delta cover| since the last Resolve (or
// construction). It is a conservative staleness signal: the optimal
// solution for the mutated graph can beat the tracked one by at most the
// total positive drift plus new greedy opportunity, and in practice
// re-solving is warranted when Drift crosses a few percent.
func (t *Tracker) Drift() float64 { return t.drift }

// Retained reports membership.
func (t *Tracker) Retained(id int32) bool { return t.retained[id] }

// Weight returns an item's current weight.
func (t *Tracker) Weight(id int32) (float64, error) { return t.m.Weight(id) }

// RetainedSet returns the retained mutable ids (unordered).
func (t *Tracker) RetainedSet() []int32 {
	out := make([]int32, 0, len(t.retained))
	for id := range t.retained {
		out = append(out, id)
	}
	return out
}

// matchProb returns the probability a request for v is matched by the
// current retained set.
func (t *Tracker) matchProb(v int32) float64 {
	if t.retained[v] {
		return 1
	}
	switch t.variant {
	case graph.Normalized:
		var p float64
		for _, e := range t.m.nodes[v].out {
			if t.retained[e.other] {
				p += e.w
			}
		}
		if p > 1 {
			p = 1
		}
		return p
	default:
		miss := 1.0
		for _, e := range t.m.nodes[v].out {
			if t.retained[e.other] {
				miss *= 1 - e.w
			}
		}
		return 1 - miss
	}
}

// recompute refreshes contrib[v] and the cover total; accountDrift adds
// the absolute change to the drift counter.
func (t *Tracker) recompute(v int32, accountDrift bool) {
	old := t.contrib[v]
	var now float64
	if t.m.Alive(v) {
		now = t.m.nodes[v].w * t.matchProb(v)
		t.contrib[v] = now
	} else {
		delete(t.contrib, v)
	}
	t.cover += now - old
	if accountDrift {
		t.drift += math.Abs(now - old)
	}
}

// SetWeight updates an item's weight, maintaining the cover.
func (t *Tracker) SetWeight(id int32, w float64) error {
	if err := t.m.SetWeight(id, w); err != nil {
		return err
	}
	t.recompute(id, true)
	return nil
}

// SetEdge inserts or updates an alternative edge, maintaining the cover
// (only the source item's matching probability can change).
func (t *Tracker) SetEdge(src, dst int32, w float64) error {
	if err := t.m.SetEdge(src, dst, w); err != nil {
		return err
	}
	t.recompute(src, true)
	return nil
}

// RemoveEdge deletes an edge, maintaining the cover.
func (t *Tracker) RemoveEdge(src, dst int32) error {
	if err := t.m.RemoveEdge(src, dst); err != nil {
		return err
	}
	t.recompute(src, true)
	return nil
}

// AddItem introduces a new item (not retained). Edges are added separately
// with SetEdge.
func (t *Tracker) AddItem(label string, w float64) (int32, error) {
	id, err := t.m.AddItem(label, w)
	if err != nil {
		return 0, err
	}
	t.recompute(id, true)
	return id, nil
}

// RemoveItem deletes an item entirely (a delisted product). If it was
// retained it leaves the retained set; every item it covered is
// recomputed.
func (t *Tracker) RemoveItem(id int32) error {
	if !t.m.Alive(id) {
		return fmt.Errorf("dynamic: no live item %d", id)
	}
	affected := make([]int32, 0, len(t.m.nodes[id].in))
	for _, e := range t.m.nodes[id].in {
		affected = append(affected, e.other)
	}
	if err := t.m.RemoveItem(id); err != nil {
		return err
	}
	delete(t.retained, id)
	t.recompute(id, true)
	for _, v := range affected {
		t.recompute(v, true)
	}
	return nil
}

// Retain adds an item to the retained set (e.g. after a manual override),
// maintaining the cover for it and everything it newly covers.
func (t *Tracker) Retain(id int32) error {
	if !t.m.Alive(id) {
		return fmt.Errorf("dynamic: no live item %d", id)
	}
	if t.retained[id] {
		return nil
	}
	t.retained[id] = true
	t.recompute(id, true)
	for _, e := range t.m.nodes[id].in {
		t.recompute(e.other, true)
	}
	return nil
}

// Release removes an item from the retained set (it stays in the
// catalog).
func (t *Tracker) Release(id int32) error {
	if !t.m.Alive(id) {
		return fmt.Errorf("dynamic: no live item %d", id)
	}
	if !t.retained[id] {
		return nil
	}
	delete(t.retained, id)
	t.recompute(id, true)
	for _, e := range t.m.nodes[id].in {
		t.recompute(e.other, true)
	}
	return nil
}

// Exchange describes one local-search swap.
type Exchange struct {
	Out, In int32
	// Delta is the exact cover improvement of applying the swap.
	Delta float64
}

// BestExchange proposes a (release u, retain v) swap: it selects the
// retained item with the smallest release loss and the non-retained item
// with the largest retain gain — each measured against the current set —
// and then evaluates that one candidate pair exactly. It returns ok=false
// when the candidate does not improve the cover by more than eps.
//
// This is a heuristic repair step, not an exhaustive pair search: when
// loss and gain interact through shared in-neighbors a different pair
// could be better, but the proposed swap's Delta is always exact and
// nonnegative improvements are never misreported. Cost is
// O((|S| + n) * avgDeg) per call; intended as cheap local repair between
// full re-solves.
func (t *Tracker) BestExchange(eps float64) (Exchange, bool) {
	if eps <= 0 {
		eps = 1e-12
	}
	// Loss of releasing u, and gain of retaining v, are interdependent
	// only when u and v share in-neighbors; evaluating the top candidate
	// pair exactly afterwards keeps the search honest.
	type scored struct {
		id    int32
		delta float64
	}
	var bestOut scored
	first := true
	for u := range t.retained {
		loss := t.releaseLoss(u)
		if first || loss < bestOut.delta || (loss == bestOut.delta && u < bestOut.id) {
			bestOut = scored{id: u, delta: loss}
			first = false
		}
	}
	if first {
		return Exchange{}, false // nothing retained
	}
	var bestIn scored
	first = true
	for id := range t.m.nodes {
		v := int32(id)
		if !t.m.Alive(v) || t.retained[v] || v == bestOut.id {
			continue
		}
		gain := t.retainGain(v)
		if first || gain > bestIn.delta || (gain == bestIn.delta && v < bestIn.id) {
			bestIn = scored{id: v, delta: gain}
			first = false
		}
	}
	if first {
		return Exchange{}, false // nothing to bring in
	}
	// Exact evaluation of the candidate swap.
	delta := t.exchangeDelta(bestOut.id, bestIn.id)
	if delta <= eps {
		return Exchange{}, false
	}
	return Exchange{Out: bestOut.id, In: bestIn.id, Delta: delta}, true
}

// releaseLoss is C(S) - C(S \ {u}).
func (t *Tracker) releaseLoss(u int32) float64 {
	delete(t.retained, u)
	loss := t.contrib[u] - t.m.nodes[u].w*t.matchProb(u)
	for _, e := range t.m.nodes[u].in {
		v := e.other
		loss += t.contrib[v] - t.m.nodes[v].w*t.matchProb(v)
	}
	t.retained[u] = true
	return loss
}

// retainGain is C(S ∪ {v}) - C(S).
func (t *Tracker) retainGain(v int32) float64 {
	t.retained[v] = true
	gain := t.m.nodes[v].w*t.matchProb(v) - t.contrib[v]
	for _, e := range t.m.nodes[v].in {
		u := e.other
		if u == v {
			continue
		}
		gain += t.m.nodes[u].w*t.matchProb(u) - t.contrib[u]
	}
	delete(t.retained, v)
	return gain
}

// exchangeDelta computes the exact cover change of (release out, retain
// in) without mutating tracked state.
func (t *Tracker) exchangeDelta(out, in int32) float64 {
	delete(t.retained, out)
	t.retained[in] = true
	// Affected items: out, in, and their in-neighbors.
	touched := map[int32]bool{out: true, in: true}
	for _, e := range t.m.nodes[out].in {
		touched[e.other] = true
	}
	for _, e := range t.m.nodes[in].in {
		touched[e.other] = true
	}
	var delta float64
	for v := range touched {
		delta += t.m.nodes[v].w*t.matchProb(v) - t.contrib[v]
	}
	delete(t.retained, in)
	t.retained[out] = true
	return delta
}

// ApplyExchange commits a swap returned by BestExchange.
func (t *Tracker) ApplyExchange(ex Exchange) error {
	if !t.retained[ex.Out] || t.retained[ex.In] {
		return fmt.Errorf("dynamic: stale exchange %+v", ex)
	}
	if err := t.Release(ex.Out); err != nil {
		return err
	}
	return t.Retain(ex.In)
}

// ResolveResult is the outcome of a full re-solve.
type ResolveResult struct {
	// Solution is the fresh greedy solution over the frozen graph.
	Solution *greedy.Solution
	// RetainedIDs are the new retained items as mutable ids.
	RetainedIDs []int32
	// CoverBefore and CoverAfter compare the tracked and fresh covers on
	// the current (possibly unnormalized) graph.
	CoverBefore, CoverAfter float64
}

// Resolve freezes the current graph, runs the greedy solver at the same
// retained-set size (or newK if positive), swaps the tracker onto the new
// solution, and resets the drift counter.
func (t *Tracker) Resolve(newK int, opts greedy.Options) (*ResolveResult, error) {
	g, mapping, err := t.m.Freeze()
	if err != nil {
		return nil, err
	}
	k := newK
	if k <= 0 {
		k = len(t.retained)
	}
	if k <= 0 {
		return nil, fmt.Errorf("dynamic: nothing to resolve (k=0)")
	}
	opts.Variant = t.variant
	opts.K = k
	opts.Threshold = 0
	sol, err := greedy.Solve(g, opts)
	if err != nil {
		return nil, err
	}
	before := t.cover
	ids := make([]int32, len(sol.Order))
	for i, dense := range sol.Order {
		ids[i] = mapping[dense]
	}
	t.retained = make(map[int32]bool, len(ids))
	for _, id := range ids {
		t.retained[id] = true
	}
	t.cover = 0
	t.contrib = make(map[int32]float64, t.m.NumAlive())
	for id := range t.m.nodes {
		if t.m.nodes[id].alive {
			t.recompute(int32(id), false)
		}
	}
	t.drift = 0
	return &ResolveResult{
		Solution:    sol,
		RetainedIDs: ids,
		CoverBefore: before,
		CoverAfter:  t.cover,
	}, nil
}
