package dynamic_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prefcover/internal/cover"
	. "prefcover/internal/dynamic"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/greedy"
)

const tol = 1e-9

func TestMutableGraphBasics(t *testing.T) {
	m := NewMutableGraph()
	a, err := m.AddItem("a", 0.6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddItem("b", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetEdge(a, b, 0.5); err != nil {
		t.Fatal(err)
	}
	if m.NumAlive() != 2 || m.NumEdges() != 1 {
		t.Fatalf("counts: %d alive %d edges", m.NumAlive(), m.NumEdges())
	}
	if w, ok := m.EdgeWeight(a, b); !ok || w != 0.5 {
		t.Fatalf("edge = %g,%v", w, ok)
	}
	if id, ok := m.Lookup("b"); !ok || id != b {
		t.Fatalf("lookup = %d,%v", id, ok)
	}
	if w, err := m.Weight(a); err != nil || w != 0.6 {
		t.Fatalf("weight = %g,%v", w, err)
	}
}

func TestMutableGraphErrors(t *testing.T) {
	m := NewMutableGraph()
	a, _ := m.AddItem("a", 0.5)
	if _, err := m.AddItem("a", 0.5); err == nil {
		t.Error("duplicate label should fail")
	}
	if _, err := m.AddItem("neg", -1); err == nil {
		t.Error("negative weight should fail")
	}
	if err := m.SetEdge(a, a, 0.5); err == nil {
		t.Error("self edge should fail")
	}
	if err := m.SetEdge(a, 99, 0.5); err == nil {
		t.Error("edge to unknown should fail")
	}
	if err := m.SetEdge(a, a+0, 1.5); err == nil {
		t.Error("bad weight should fail")
	}
	if err := m.RemoveEdge(a, 99); err == nil {
		t.Error("removing from dead should fail")
	}
	if err := m.SetWeight(99, 0.5); err == nil {
		t.Error("weight on unknown should fail")
	}
	if err := m.RemoveItem(99); err == nil {
		t.Error("removing unknown should fail")
	}
	if _, err := m.Weight(99); err == nil {
		t.Error("weight of unknown should fail")
	}
}

func TestMutableEdgeUpdateAndRemove(t *testing.T) {
	m := NewMutableGraph()
	a, _ := m.AddItem("a", 0.5)
	b, _ := m.AddItem("b", 0.5)
	if err := m.SetEdge(a, b, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEdge(a, b, 0.7); err != nil { // update in place
		t.Fatal(err)
	}
	if m.NumEdges() != 1 {
		t.Fatalf("edges = %d after update", m.NumEdges())
	}
	if w, _ := m.EdgeWeight(a, b); w != 0.7 {
		t.Fatalf("updated weight = %g", w)
	}
	if err := m.RemoveEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != 0 {
		t.Fatal("edge not removed")
	}
	if err := m.RemoveEdge(a, b); err == nil {
		t.Error("double remove should fail")
	}
}

func TestRemoveItemDropsIncidentEdges(t *testing.T) {
	m := NewMutableGraph()
	a, _ := m.AddItem("a", 0.4)
	b, _ := m.AddItem("b", 0.3)
	c, _ := m.AddItem("c", 0.3)
	m.SetEdge(a, b, 0.5)
	m.SetEdge(b, c, 0.5)
	m.SetEdge(c, b, 0.5)
	if err := m.RemoveItem(b); err != nil {
		t.Fatal(err)
	}
	if m.NumAlive() != 2 || m.NumEdges() != 0 {
		t.Fatalf("after removal: %d alive %d edges", m.NumAlive(), m.NumEdges())
	}
	if _, ok := m.Lookup("b"); ok {
		t.Error("dead label still resolves")
	}
	// The label can be reused afterwards.
	if _, err := m.AddItem("b", 0.1); err != nil {
		t.Errorf("label reuse after removal: %v", err)
	}
	_ = a
	_ = c
}

func TestFreezeRoundTrip(t *testing.T) {
	g := fixture.Figure1Graph()
	m := FromGraph(g)
	frozen, mapping, err := m.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if frozen.NumNodes() != g.NumNodes() || frozen.NumEdges() != g.NumEdges() {
		t.Fatal("freeze changed shape")
	}
	for i, id := range mapping {
		if int32(i) != id {
			t.Fatal("identity mapping expected without removals")
		}
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if frozen.NodeWeight(v) != g.NodeWeight(v) || frozen.Label(v) != g.Label(v) {
			t.Fatal("node data changed")
		}
	}
}

func TestFreezeAfterRemovalCompacts(t *testing.T) {
	g := fixture.Figure1Graph()
	m := FromGraph(g)
	c, _ := m.Lookup("C")
	if err := m.RemoveItem(c); err != nil {
		t.Fatal(err)
	}
	frozen, mapping, err := m.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if frozen.NumNodes() != 4 {
		t.Fatalf("nodes = %d", frozen.NumNodes())
	}
	// Edges incident to C (A->C, B->C, C->B, D->C) are gone: 6-4 = 2 left.
	if frozen.NumEdges() != 2 {
		t.Fatalf("edges = %d", frozen.NumEdges())
	}
	for dense, id := range mapping {
		if m.Label(id) != frozen.Label(int32(dense)) {
			t.Fatal("mapping/label mismatch")
		}
	}
}

func trackerOn(t *testing.T, variant graph.Variant) (*MutableGraph, *Tracker, *graph.Graph) {
	t.Helper()
	g := fixture.Figure1Graph()
	m := FromGraph(g)
	b, _ := m.Lookup("B")
	d, _ := m.Lookup("D")
	tr, err := NewTracker(m, variant, []int32{b, d})
	if err != nil {
		t.Fatal(err)
	}
	return m, tr, g
}

func TestTrackerInitialCover(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		_, tr, _ := trackerOn(t, variant)
		if math.Abs(tr.Cover()-fixture.Fig1CoverBD) > tol {
			t.Errorf("variant %v: cover = %g, want %g", variant, tr.Cover(), fixture.Fig1CoverBD)
		}
		if tr.Drift() != 0 {
			t.Errorf("fresh tracker drift = %g", tr.Drift())
		}
	}
}

// trackerMatchesOracle freezes the mutable graph and compares the tracked
// cover against a from-scratch evaluation.
func trackerMatchesOracle(t *testing.T, m *MutableGraph, tr *Tracker, variant graph.Variant) {
	t.Helper()
	g, mapping, err := m.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	inverse := make(map[int32]int32, len(mapping))
	for dense, id := range mapping {
		inverse[id] = int32(dense)
	}
	var set []int32
	for _, id := range tr.RetainedSet() {
		set = append(set, inverse[id])
	}
	want, err := cover.EvaluateSet(g, variant, set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-tr.Cover()) > 1e-9 {
		t.Fatalf("tracked cover %g != oracle %g", tr.Cover(), want)
	}
}

func TestTrackerWeightUpdate(t *testing.T) {
	m, tr, _ := trackerOn(t, graph.Independent)
	a, _ := m.Lookup("A")
	if err := tr.SetWeight(a, 0.5); err != nil {
		t.Fatal(err)
	}
	trackerMatchesOracle(t, m, tr, graph.Independent)
	if tr.Drift() <= 0 {
		t.Error("weight change should register drift")
	}
}

func TestTrackerEdgeUpdates(t *testing.T) {
	m, tr, _ := trackerOn(t, graph.Independent)
	a, _ := m.Lookup("A")
	d, _ := m.Lookup("D")
	e, _ := m.Lookup("E")
	if err := tr.SetEdge(a, d, 0.9); err != nil { // new alternative into retained D
		t.Fatal(err)
	}
	trackerMatchesOracle(t, m, tr, graph.Independent)
	if err := tr.RemoveEdge(e, d); err != nil { // E loses its only alternative
		t.Fatal(err)
	}
	trackerMatchesOracle(t, m, tr, graph.Independent)
}

func TestTrackerAddRemoveItem(t *testing.T) {
	m, tr, _ := trackerOn(t, graph.Normalized)
	f, err := tr.AddItem("F", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Lookup("B")
	if err := tr.SetEdge(f, b, 0.8); err != nil {
		t.Fatal(err)
	}
	trackerMatchesOracle(t, m, tr, graph.Normalized)
	// Remove a retained item: D leaves the set, E loses its coverage.
	d, _ := m.Lookup("D")
	if err := tr.RemoveItem(d); err != nil {
		t.Fatal(err)
	}
	if tr.Retained(d) {
		t.Error("removed item still retained")
	}
	trackerMatchesOracle(t, m, tr, graph.Normalized)
}

func TestTrackerRetainRelease(t *testing.T) {
	m, tr, _ := trackerOn(t, graph.Independent)
	a, _ := m.Lookup("A")
	before := tr.Cover()
	if err := tr.Retain(a); err != nil {
		t.Fatal(err)
	}
	if tr.Cover() <= before {
		t.Error("retaining A must increase cover")
	}
	trackerMatchesOracle(t, m, tr, graph.Independent)
	if err := tr.Release(a); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Cover()-before) > tol {
		t.Errorf("release did not restore cover: %g vs %g", tr.Cover(), before)
	}
	// Idempotency.
	if err := tr.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Retain(a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Retain(a); err != nil {
		t.Fatal(err)
	}
	trackerMatchesOracle(t, m, tr, graph.Independent)
}

func TestTrackerRandomEditScript(t *testing.T) {
	// Property: after any random edit script, the tracked cover equals a
	// from-scratch evaluation of the frozen graph.
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 5+rng.Intn(20), 4, variant)
			m := FromGraph(g)
			var retained []int32
			for v := int32(0); v < int32(g.NumNodes()); v += 3 {
				retained = append(retained, v)
			}
			tr, err := NewTracker(m, variant, retained)
			if err != nil {
				return false
			}
			for step := 0; step < 30; step++ {
				ids := m.IDs()
				if len(ids) < 2 {
					break
				}
				a := ids[rng.Intn(len(ids))]
				b := ids[rng.Intn(len(ids))]
				switch rng.Intn(6) {
				case 0:
					if err := tr.SetWeight(a, rng.Float64()); err != nil {
						return false
					}
				case 1:
					if a != b {
						// Keep Normalized feasible: small weights.
						_ = tr.SetEdge(a, b, 0.01+0.05*rng.Float64())
					}
				case 2:
					if _, ok := m.EdgeWeight(a, b); ok {
						if err := tr.RemoveEdge(a, b); err != nil {
							return false
						}
					}
				case 3:
					if _, err := tr.AddItem("", rng.Float64()*0.1); err != nil {
						return false
					}
				case 4:
					if m.NumAlive() > 3 {
						if err := tr.RemoveItem(a); err != nil {
							return false
						}
					}
				case 5:
					if tr.Retained(a) {
						_ = tr.Release(a)
					} else {
						_ = tr.Retain(a)
					}
				}
			}
			// Oracle comparison.
			frozen, mapping, err := m.Freeze()
			if err != nil {
				return false
			}
			inverse := make(map[int32]int32)
			for dense, id := range mapping {
				inverse[id] = int32(dense)
			}
			var set []int32
			for _, id := range tr.RetainedSet() {
				set = append(set, inverse[id])
			}
			want, err := cover.EvaluateSet(frozen, variant, set)
			if err != nil {
				return false
			}
			return math.Abs(want-tr.Cover()) < 1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("variant %v: %v", variant, err)
		}
	}
}

// TestExchangeDeltaExactProperty: whenever BestExchange proposes a swap,
// applying it changes the cover by exactly the promised Delta and the
// tracked state still matches the from-scratch oracle.
func TestExchangeDeltaExactProperty(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		variant := variant
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 5+rng.Intn(20), 4, variant)
			m := FromGraph(g)
			var retained []int32
			for v := int32(0); v < int32(g.NumNodes()); v += 2 {
				retained = append(retained, v)
			}
			tr, err := NewTracker(m, variant, retained)
			if err != nil {
				return false
			}
			// Perturb weights so the initial set is no longer greedy.
			for i := 0; i < 5; i++ {
				if err := tr.SetWeight(int32(rng.Intn(g.NumNodes())), rng.Float64()); err != nil {
					return false
				}
			}
			ex, ok := tr.BestExchange(1e-9)
			if !ok {
				return true // nothing to verify
			}
			before := tr.Cover()
			if err := tr.ApplyExchange(ex); err != nil {
				return false
			}
			if math.Abs(tr.Cover()-(before+ex.Delta)) > 1e-9 {
				return false
			}
			// Oracle cross-check.
			frozen, mapping, err := m.Freeze()
			if err != nil {
				return false
			}
			inverse := make(map[int32]int32)
			for dense, id := range mapping {
				inverse[id] = int32(dense)
			}
			var set []int32
			for _, id := range tr.RetainedSet() {
				set = append(set, inverse[id])
			}
			want, err := cover.EvaluateSet(frozen, variant, set)
			return err == nil && math.Abs(want-tr.Cover()) < 1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("variant %v: %v", variant, err)
		}
	}
}

func TestBestExchangeRepairsAfterCrash(t *testing.T) {
	// Start from the optimal {B,D}; crash D's only covered demand (E's
	// weight shifts to A), so a swap should fire.
	m, tr, _ := trackerOn(t, graph.Independent)
	e, _ := m.Lookup("E")
	a, _ := m.Lookup("A")
	if err := tr.SetWeight(e, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetWeight(a, 0.49); err != nil {
		t.Fatal(err)
	}
	before := tr.Cover()
	ex, ok := tr.BestExchange(1e-9)
	if !ok {
		t.Fatal("expected an improving exchange")
	}
	if err := tr.ApplyExchange(ex); err != nil {
		t.Fatal(err)
	}
	if tr.Cover() <= before {
		t.Errorf("exchange did not improve: %g -> %g", before, tr.Cover())
	}
	if math.Abs(tr.Cover()-(before+ex.Delta)) > tol {
		t.Errorf("delta mismatch: promised %g, got %g", ex.Delta, tr.Cover()-before)
	}
	trackerMatchesOracle(t, m, tr, graph.Independent)
	// Applying the same exchange twice must fail.
	if err := tr.ApplyExchange(ex); err == nil {
		t.Error("stale exchange should fail")
	}
}

func TestBestExchangeNoImprovementAtOptimum(t *testing.T) {
	// {B,D} is the true optimum on Figure 1; no single swap can improve.
	_, tr, _ := trackerOn(t, graph.Independent)
	if ex, ok := tr.BestExchange(1e-9); ok {
		t.Errorf("unexpected exchange %+v at the optimum", ex)
	}
}

func TestResolveRecovers(t *testing.T) {
	m, tr, _ := trackerOn(t, graph.Independent)
	// Shift demand radically: E becomes the top item with no alternatives.
	e, _ := m.Lookup("E")
	d, _ := m.Lookup("D")
	if err := tr.RemoveEdge(e, d); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetWeight(e, 0.6); err != nil {
		t.Fatal(err)
	}
	if tr.Drift() <= 0 {
		t.Fatal("drift should accumulate")
	}
	res, err := tr.Resolve(0, greedy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverAfter < res.CoverBefore {
		t.Errorf("resolve regressed cover: %g -> %g", res.CoverBefore, res.CoverAfter)
	}
	if tr.Drift() != 0 {
		t.Error("resolve must reset drift")
	}
	// E must now be retained.
	if !tr.Retained(e) {
		t.Error("resolve missed the new top item")
	}
	trackerMatchesOracle(t, m, tr, graph.Independent)
	_ = d
}

func TestResolveWithNewK(t *testing.T) {
	_, tr, _ := trackerOn(t, graph.Independent)
	res, err := tr.Resolve(3, greedy.Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RetainedIDs) != 3 {
		t.Fatalf("retained = %d, want 3", len(res.RetainedIDs))
	}
	if res.CoverAfter <= res.CoverBefore {
		t.Error("larger budget should increase cover")
	}
}

func TestNewTrackerRejectsDeadRetained(t *testing.T) {
	g := fixture.Figure1Graph()
	m := FromGraph(g)
	if _, err := NewTracker(m, graph.Independent, []int32{99}); err == nil {
		t.Error("dead retained item should fail")
	}
}
