// Package version reports build identity — module version, VCS revision
// and Go toolchain — from the build info the Go linker embeds, so traces,
// benchmark trajectories and running daemons can be tied to an exact
// build without any -ldflags ceremony.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity surfaced by `prefcover version`,
// `prefcoverd -version` and GET /version.
type Info struct {
	// Module is the main module path (e.g. "prefcover").
	Module string `json:"module"`
	// Version is the module version, "(devel)" for source builds.
	Version string `json:"version"`
	// Revision is the VCS commit hash, "unknown" when the build carries
	// no VCS stamp (go test binaries, GOFLAGS=-buildvcs=false).
	Revision string `json:"revision"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
}

// Get assembles the Info for the running binary.
func Get() Info {
	info := Info{
		Module:    "prefcover",
		Version:   "(devel)",
		Revision:  "unknown",
		GoVersion: runtime.Version(),
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line form used by the -version flags.
func (i Info) String() string {
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Dirty {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (%s, %s)", i.Module, i.Version, rev, i.GoVersion)
}
