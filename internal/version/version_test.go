package version

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	info := Get()
	if info.Module == "" {
		t.Error("empty module")
	}
	if info.Version == "" {
		t.Error("empty version")
	}
	if info.GoVersion == "" || !strings.HasPrefix(info.GoVersion, "go") {
		t.Errorf("goVersion = %q, want go*", info.GoVersion)
	}
	// The JSON shape is part of the /version API contract.
	b, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"module"`, `"version"`, `"goVersion"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s: %s", key, b)
		}
	}
}

func TestString(t *testing.T) {
	info := Info{Module: "prefcover", Version: "v1.2.3", Revision: "abcdef1234567890", GoVersion: "go1.22.0"}
	s := info.String()
	if !strings.Contains(s, "prefcover") || !strings.Contains(s, "v1.2.3") ||
		!strings.Contains(s, "abcdef123456") || !strings.Contains(s, "go1.22.0") {
		t.Errorf("String() = %q missing fields", s)
	}
	if strings.Contains(s, "+dirty") {
		t.Errorf("clean build rendered dirty: %q", s)
	}
	info.Dirty = true
	if !strings.Contains(info.String(), "+dirty") {
		t.Errorf("dirty build not flagged: %q", info.String())
	}
}

func TestStringNoRevision(t *testing.T) {
	info := Info{Module: "prefcover", Version: "(devel)", GoVersion: "go1.22.0"}
	s := info.String()
	if !strings.Contains(s, "(devel)") || !strings.Contains(s, "go1.22.0") {
		t.Errorf("String() = %q", s)
	}
}
