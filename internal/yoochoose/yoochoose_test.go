package yoochoose_test

import (
	"math"
	"strings"
	"testing"

	"prefcover/internal/adapt"
	"prefcover/internal/graph"
	. "prefcover/internal/yoochoose"
)

const sampleClicks = `1,2014-04-07T10:51:09.277Z,214536502,0
1,2014-04-07T10:54:09.868Z,214536500,0
1,2014-04-07T10:57:00.306Z,214536506,0
2,2014-04-07T13:56:37.614Z,214662742,0
2,2014-04-07T13:57:19.373Z,214662742,0
3,2014-04-02T06:38:04.963Z,214716935,0
`

const sampleBuys = `1,2014-04-07T10:58:00.306Z,214536506,12462,1
2,2014-04-07T13:58:37.614Z,214662742,1046,2
`

func TestParseBasic(t *testing.T) {
	store, stats, err := Parse(strings.NewReader(sampleClicks), strings.NewReader(sampleBuys))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ClickRows != 6 || stats.BuyRows != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Sessions != 3 || stats.BuySessions != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if store.Len() != 3 {
		t.Fatalf("sessions = %d", store.Len())
	}
	sessions := store.Sessions()
	// Session 1 bought 214536506 and clicked two other items.
	if sessions[0].Purchase != "214536506" {
		t.Errorf("session 1 purchase = %s", sessions[0].Purchase)
	}
	alts := sessions[0].AlternativeClicks(nil)
	if len(alts) != 2 {
		t.Errorf("session 1 alternatives = %v", alts)
	}
	// Session 2's repeated clicks on the purchased item are deduped and
	// then dropped as self-clicks.
	if len(sessions[1].AlternativeClicks(nil)) != 0 {
		t.Errorf("session 2 alternatives = %v", sessions[1].AlternativeClicks(nil))
	}
	// Session 3 is browse-only.
	if sessions[2].HasPurchase() {
		t.Error("session 3 should be browse-only")
	}
}

func TestParseMultiItemPurchaseSplits(t *testing.T) {
	clicks := "9,t,300,0\n9,t,301,0\n9,t,302,0\n"
	buys := "9,t,301,0,1\n9,t,302,0,1\n"
	store, stats, err := Parse(strings.NewReader(clicks), strings.NewReader(buys))
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("sessions = %d, want 2 (split)", store.Len())
	}
	if stats.SplitSessions != 1 {
		t.Errorf("split = %d, want 1 extra", stats.SplitSessions)
	}
	a, b := store.Sessions()[0], store.Sessions()[1]
	if a.Purchase != "301" || b.Purchase != "302" {
		t.Errorf("purchases = %s,%s", a.Purchase, b.Purchase)
	}
	if a.ID == b.ID {
		t.Error("split sessions must have distinct ids")
	}
	// Both inherit the full click set.
	if len(a.Clicks) != 3 || len(b.Clicks) != 3 {
		t.Errorf("click inheritance: %v / %v", a.Clicks, b.Clicks)
	}
}

func TestParseBuysOnly(t *testing.T) {
	store, stats, err := Parse(nil, strings.NewReader(sampleBuys))
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 || stats.ClickRows != 0 {
		t.Fatalf("store=%d stats=%+v", store.Len(), stats)
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := Parse(strings.NewReader("1,2\n"), nil); err == nil {
		t.Error("short click row should fail")
	}
	if _, _, err := Parse(nil, strings.NewReader("1,2,3\n")); err == nil {
		t.Error("short buy row should fail")
	}
	if _, _, err := Parse(strings.NewReader(",t,1,0\n"), nil); err == nil {
		t.Error("empty session id should fail")
	}
	if _, _, err := Parse(nil, strings.NewReader("1,t,,0,1\n")); err == nil {
		t.Error("empty item id should fail")
	}
}

func TestParseSkipsBlanksAndComments(t *testing.T) {
	in := "# header\n\n1,t,100,0\n"
	store, stats, err := Parse(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ClickRows != 1 || store.Len() != 1 {
		t.Fatalf("stats=%+v store=%d", stats, store.Len())
	}
}

// TestEndToEndAdaptation feeds a synthetic YooChoose-format dataset
// through the full paper pipeline: parse -> adapt -> preference graph.
func TestEndToEndAdaptation(t *testing.T) {
	clicks := `1,t,A,0
1,t,B,0
2,t,A,0
3,t,B,0
3,t,A,0
4,t,B,0
`
	buys := `1,t,A,0,1
2,t,A,0,1
3,t,B,0,1
`
	store, _, err := Parse(strings.NewReader(clicks), strings.NewReader(buys))
	if err != nil {
		t.Fatal(err)
	}
	g, rep, err := adapt.BuildGraph(store, adapt.Options{Variant: graph.Normalized})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PurchaseSessions != 3 {
		t.Fatalf("purchases = %d", rep.PurchaseSessions)
	}
	a, _ := g.Lookup("A")
	b, _ := g.Lookup("B")
	// A purchased twice (weight 2/3), B once (1/3).
	if math.Abs(g.NodeWeight(a)-2.0/3.0) > 1e-9 {
		t.Errorf("W(A) = %g", g.NodeWeight(a))
	}
	// Session 1 clicked B alongside buying A: edge A->B with weight 1/2
	// (one of two A-purchases saw a B click).
	if w, ok := g.EdgeWeight(a, b); !ok || math.Abs(w-0.5) > 1e-9 {
		t.Errorf("W(A->B) = %g,%v", w, ok)
	}
	// Session 3 bought B and clicked A: edge B->A weight 1.
	if w, ok := g.EdgeWeight(b, a); !ok || math.Abs(w-1.0) > 1e-9 {
		t.Errorf("W(B->A) = %g,%v", w, ok)
	}
}
