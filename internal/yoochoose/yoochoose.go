// Package yoochoose parses the RecSys 2015 Challenge dataset format (the
// paper's public YC dataset, included there "to allow the reader to
// reproduce the results") into the library's session model.
//
// The dataset ships as two CSV files:
//
//	yoochoose-clicks.dat:  SessionID,Timestamp,ItemID,Category
//	yoochoose-buys.dat:    SessionID,Timestamp,ItemID,Price,Quantity
//
// Timestamps are RFC3339-like ("2014-04-07T10:51:09.277Z"); sessions are
// contiguous by id in the click file but the parser does not rely on it.
// Matching the paper's protocol, only sessions that end in a purchase of a
// single item type carry purchase-intent signal; sessions with multiple
// distinct purchased items are split into one session per purchased item
// (paper Section 2.1: multi-item purchases are modeled as separate
// sessions), each inheriting all of the session's clicks.
package yoochoose

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"prefcover/internal/clickstream"
)

// Stats summarizes a parsed dataset.
type Stats struct {
	ClickRows     int
	BuyRows       int
	Sessions      int // distinct session ids seen in either file
	BuySessions   int // sessions with at least one purchase
	SplitSessions int // extra sessions created by multi-item purchase splits
}

// Parse reads the two CSV streams and returns the session store plus
// statistics. Either stream may be nil (e.g. clicks-only exploration),
// but building a preference graph requires buys.
func Parse(clicks, buys io.Reader) (*clickstream.Store, Stats, error) {
	var stats Stats
	// sessionClicks preserves first-seen click order per session.
	sessionClicks := make(map[string][]string)
	sessionOrder := []string{}
	seen := make(map[string]struct{})
	note := func(id string) {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			sessionOrder = append(sessionOrder, id)
		}
	}
	if clicks != nil {
		if err := scanCSV(clicks, 4, func(fields []string, line int) error {
			id, item := fields[0], fields[2]
			if id == "" || item == "" {
				return fmt.Errorf("yoochoose: clicks line %d: empty session or item id", line)
			}
			stats.ClickRows++
			note(id)
			sessionClicks[id] = append(sessionClicks[id], item)
			return nil
		}); err != nil {
			return nil, Stats{}, err
		}
	}
	sessionBuys := make(map[string][]string)
	if buys != nil {
		if err := scanCSV(buys, 5, func(fields []string, line int) error {
			id, item := fields[0], fields[2]
			if id == "" || item == "" {
				return fmt.Errorf("yoochoose: buys line %d: empty session or item id", line)
			}
			stats.BuyRows++
			note(id)
			if !contains(sessionBuys[id], item) {
				sessionBuys[id] = append(sessionBuys[id], item)
			}
			return nil
		}); err != nil {
			return nil, Stats{}, err
		}
	}
	stats.Sessions = len(sessionOrder)

	store := clickstream.NewStore(make([]clickstream.Session, 0, len(sessionOrder)))
	for _, id := range sessionOrder {
		purchases := sessionBuys[id]
		clicksForID := dedupe(sessionClicks[id])
		if len(purchases) == 0 {
			store.Append(clickstream.Session{ID: id, Clicks: clicksForID})
			continue
		}
		stats.BuySessions++
		// Deterministic split order for multi-item purchases.
		sorted := append([]string(nil), purchases...)
		sort.Strings(sorted)
		for i, item := range sorted {
			sid := id
			if len(sorted) > 1 {
				sid = fmt.Sprintf("%s#%d", id, i+1)
				stats.SplitSessions++
			}
			store.Append(clickstream.Session{
				ID:       sid,
				Purchase: item,
				Clicks:   clicksForID,
			})
		}
		if len(sorted) > 1 {
			stats.SplitSessions-- // n items create n-1 *extra* sessions
		}
	}
	return store, stats, nil
}

// scanCSV streams simple comma-separated rows (the dataset has no quoting)
// with at least minFields columns.
func scanCSV(r io.Reader, minFields int, row func(fields []string, line int) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < minFields {
			return fmt.Errorf("yoochoose: line %d: %d fields, want >= %d", line, len(fields), minFields)
		}
		if err := row(fields, line); err != nil {
			return err
		}
	}
	return sc.Err()
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func dedupe(xs []string) []string {
	if len(xs) == 0 {
		return nil
	}
	out := make([]string, 0, len(xs))
	seen := make(map[string]struct{}, len(xs))
	for _, x := range xs {
		if _, dup := seen[x]; !dup {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	return out
}
