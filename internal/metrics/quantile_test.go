package metrics

import (
	"math"
	"sync"
	"testing"
)

// Quantile / Each / exemplar edge cases (ISSUE 7 satellite): the statusz
// and profilez read paths lean on exactly these corners.

func TestQuantileEmptyHistogramIsNaN(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_q_empty", "h", []float64{1, 2}).With()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%g) on empty histogram = %g, want NaN", q, got)
		}
	}
}

func TestQuantileNaNInput(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_q_nan", "h", []float64{1}).With()
	h.Observe(0.5)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %g, want NaN", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_q_single", "h", []float64{10}).With()
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	// All mass sits in [0,10]; interpolation is linear across the bucket.
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %g, want 5", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("p100 = %g, want upper bound 10", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %g, want lower bound 0", got)
	}
}

func TestQuantileClampsOutOfRangeQ(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_q_clamp", "h", []float64{1, 2}).With()
	h.Observe(0.5)
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3) = %g, want %g (clamped to 0)", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7) = %g, want %g (clamped to 1)", got, want)
	}
}

func TestQuantileP100AndOverflowClamp(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_q_overflow", "h", []float64{1, 2}).With()
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99) // lands in +Inf overflow
	// Any rank falling in the overflow bucket clamps to the highest
	// finite bound rather than reporting +Inf.
	if got := h.Quantile(1); got != 2 {
		t.Errorf("p100 with overflow = %g, want clamp to 2", got)
	}
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("p99 with overflow = %g, want clamp to 2", got)
	}
}

func TestEachEmptyAndOrdering(t *testing.T) {
	r := NewRegistry()
	hv := r.NewHistogram("t_each", "h", []float64{1}, "endpoint")

	// No series yet: Each must not call fn at all.
	calls := 0
	hv.Each(func([]string, *Histogram) { calls++ })
	if calls != 0 {
		t.Fatalf("Each on empty vec made %d calls", calls)
	}

	hv.With("/b").Observe(1)
	hv.With("/a").Observe(2)
	hv.With("/c").Observe(3)
	var seen []string
	hv.Each(func(lv []string, h *Histogram) {
		if len(lv) != 1 {
			t.Fatalf("label values = %v", lv)
		}
		seen = append(seen, lv[0])
		if h.Count() != 1 {
			t.Errorf("series %s count = %d", lv[0], h.Count())
		}
	})
	want := []string{"/a", "/b", "/c"}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Each order = %v, want %v (deterministic, sorted)", seen, want)
		}
	}
}

func TestCounterVecEachUnlabeled(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounter("t_each_counter", "c")
	cv.With().Add(3)
	calls := 0
	cv.Each(func(lv []string, c *Counter) {
		calls++
		if len(lv) != 0 {
			t.Errorf("unlabeled series has label values %v", lv)
		}
		if c.Value() != 3 {
			t.Errorf("value = %d", c.Value())
		}
	})
	if calls != 1 {
		t.Fatalf("Each made %d calls, want 1", calls)
	}
}

func TestExemplarTracksMax(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_exemplar", "h", []float64{1}).With()

	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram reports an exemplar")
	}
	h.Observe(100) // plain Observe never sets an exemplar
	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("Observe set an exemplar")
	}
	h.ObserveExemplar(0.2, "") // empty trace ID: counted, no exemplar
	if _, _, ok := h.Exemplar(); ok {
		t.Fatal("empty trace ID set an exemplar")
	}
	h.ObserveExemplar(0.5, "trace-a")
	h.ObserveExemplar(0.3, "trace-b") // smaller: must not replace
	if v, id, ok := h.Exemplar(); !ok || id != "trace-a" || v != 0.5 {
		t.Fatalf("exemplar = (%g, %q, %v), want (0.5, trace-a, true)", v, id, ok)
	}
	h.ObserveExemplar(0.9, "trace-c") // larger: replaces
	if v, id, ok := h.Exemplar(); !ok || id != "trace-c" || v != 0.9 {
		t.Fatalf("exemplar = (%g, %q, %v), want (0.9, trace-c, true)", v, id, ok)
	}
	// Exemplar observations still count toward the histogram.
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

func TestExemplarConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_exemplar_race", "h", []float64{1}).With()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h.ObserveExemplar(float64(i*200+j), "t")
			}
		}(i)
	}
	wg.Wait()
	v, _, ok := h.Exemplar()
	if !ok || v != 8*200-1 {
		t.Fatalf("exemplar after concurrent max race = (%g, %v), want %d", v, ok, 8*200-1)
	}
}
