// Package metrics is a dependency-free instrumentation core exposing
// counters, gauges and histograms in the Prometheus text exposition
// format (version 0.0.4). It implements just the subset the prefcover
// serving layer needs — integer counters and gauges, float histograms,
// and a fixed label set per metric family — with lock-free hot paths
// (atomics) and a mutex only around series creation and scraping.
//
// The design follows the usual client-library shape: a Registry owns
// metric families, a family (CounterVec, GaugeVec, HistogramVec) owns the
// label schema, and With(labelValues...) returns the concrete series to
// update. Families with no labels have exactly one series, With().
package metrics

import (
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets (seconds), matching the
// Prometheus client defaults so dashboards carry over.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry owns a set of metric families and renders them for scraping.
type Registry struct {
	mu       sync.Mutex
	families map[string]renderable
}

// renderable is one family's contribution to a scrape.
type renderable interface {
	render(w io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]renderable)}
}

func (r *Registry) register(name string, f renderable) {
	if name == "" || strings.ContainsAny(name, " \t\n{}\"") {
		panic("metrics: invalid metric name " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("metrics: duplicate metric " + name)
	}
	r.families[name] = f
}

// WritePrometheus renders every registered family in the text exposition
// format, families sorted by name and series by label values, so scrapes
// are deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]renderable, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.render(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry at GET /metrics semantics: any method is
// answered (Prometheus only GETs), content type is the 0.0.4 text format.
// Responses are gzip-encoded when the client advertises Accept-Encoding:
// gzip — scrapes are highly repetitive text, and the cluster gateway's
// federation loop pulls every node's /metrics each interval, so the
// ~10x shrink matters on the wire.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		out := NegotiateGzip(w, req)
		_ = r.WritePrometheus(out)
		_ = out.Close()
	})
}

// NegotiateGzip inspects the request's Accept-Encoding and, when gzip is
// acceptable, sets the response headers and returns a gzip-compressing
// writer; otherwise it returns the response writer pass-through. The
// caller must Close the result after writing the body (a no-op in the
// pass-through case). Shared by the registry handler and the gateway's
// federated /metrics.
func NegotiateGzip(w http.ResponseWriter, req *http.Request) io.WriteCloser {
	w.Header().Add("Vary", "Accept-Encoding")
	if req == nil || !acceptsGzip(req.Header.Get("Accept-Encoding")) {
		return nopWriteCloser{w}
	}
	w.Header().Set("Content-Encoding", "gzip")
	return gzip.NewWriter(w)
}

// acceptsGzip parses an Accept-Encoding header just far enough to honor
// "gzip" and "*" tokens, respecting an explicit q=0 refusal.
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		token, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		token = strings.TrimSpace(token)
		if token != "gzip" && token != "*" {
			continue
		}
		q := strings.TrimSpace(params)
		if q, ok := strings.CutPrefix(q, "q="); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err == nil && v == 0 {
				continue
			}
		}
		return true
	}
	return false
}

// nopWriteCloser adapts the identity-encoding path to NegotiateGzip's
// contract.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// family carries the shared naming/labeling machinery of the three vec
// types. Series are keyed by the joined label values.
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	mu     sync.Mutex
	keys   []string // sorted series keys for deterministic rendering
	series map[string]interface{}
}

func newFamily(name, help, typ string, labels []string) *family {
	return &family{
		name: name, help: help, typ: typ, labels: labels,
		series: make(map[string]interface{}),
	}
}

// seriesKey joins label values; 0x1f cannot appear in sane label values
// and keeps the key unambiguous.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// splitSeriesKey inverts seriesKey; the unlabeled family's single series
// has the empty key and zero label values.
func splitSeriesKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x1f")
}

// lookup returns the series for the label values, creating it with make
// on first use.
func (f *family) lookup(values []string, make func() interface{}) interface{} {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = make()
		f.series[key] = s
		f.keys = append(f.keys, key)
		sort.Strings(f.keys)
	}
	return s
}

// snapshot returns the series in rendering order.
func (f *family) snapshot() []struct {
	key string
	s   interface{}
} {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]struct {
		key string
		s   interface{}
	}, len(f.keys))
	for i, key := range f.keys {
		out[i] = struct {
			key string
			s   interface{}
		}{key, f.series[key]}
	}
	return out
}

func (f *family) header(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	return nil
}

// labelString renders {k="v",...} for a series key, with an optional
// extra label (the histogram "le") appended.
func (f *family) labelString(key string, extra ...string) string {
	var parts []string
	if key != "" || len(f.labels) > 0 {
		values := strings.Split(key, "\x1f")
		for i, name := range f.labels {
			v := ""
			if i < len(values) {
				v = values[i]
			}
			parts = append(parts, fmt.Sprintf("%s=%q", name, v))
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// NewCounter registers a counter family.
func (r *Registry) NewCounter(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{f: newFamily(name, help, "counter", labels)}
	r.register(name, cv)
	return cv
}

// With returns the series for the label values, creating it on first use.
func (cv *CounterVec) With(labelValues ...string) *Counter {
	return cv.f.lookup(labelValues, func() interface{} { return new(Counter) }).(*Counter)
}

// Each calls fn for every existing series with its label values, in the
// deterministic rendering order.
func (cv *CounterVec) Each(fn func(labelValues []string, c *Counter)) {
	for _, e := range cv.f.snapshot() {
		fn(splitSeriesKey(e.key), e.s.(*Counter))
	}
}

func (cv *CounterVec) render(w io.Writer) error {
	if err := cv.f.header(w); err != nil {
		return err
	}
	for _, e := range cv.f.snapshot() {
		c := e.s.(*Counter)
		if _, err := fmt.Fprintf(w, "%s%s %d\n", cv.f.name, cv.f.labelString(e.key), c.Value()); err != nil {
			return err
		}
	}
	return nil
}

// Gauge is an integer that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// NewGauge registers a gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{f: newFamily(name, help, "gauge", labels)}
	r.register(name, gv)
	return gv
}

// With returns the series for the label values, creating it on first use.
func (gv *GaugeVec) With(labelValues ...string) *Gauge {
	return gv.f.lookup(labelValues, func() interface{} { return new(Gauge) }).(*Gauge)
}

func (gv *GaugeVec) render(w io.Writer) error {
	if err := gv.f.header(w); err != nil {
		return err
	}
	for _, e := range gv.f.snapshot() {
		g := e.s.(*Gauge)
		if _, err := fmt.Fprintf(w, "%s%s %d\n", gv.f.name, gv.f.labelString(e.key), g.Value()); err != nil {
			return err
		}
	}
	return nil
}

// FloatGauge is a float64 value that can be set and shifted; the value is
// stored as raw bits so reads and writes never take a lock.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop, like Histogram sums).
func (g *FloatGauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reads the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// FloatGaugeVec is a float gauge family partitioned by labels.
type FloatGaugeVec struct{ f *family }

// NewFloatGauge registers a float gauge family — for values that are not
// naturally integers (seconds of GC pause, uptime).
func (r *Registry) NewFloatGauge(name, help string, labels ...string) *FloatGaugeVec {
	gv := &FloatGaugeVec{f: newFamily(name, help, "gauge", labels)}
	r.register(name, gv)
	return gv
}

// With returns the series for the label values, creating it on first use.
func (gv *FloatGaugeVec) With(labelValues ...string) *FloatGauge {
	return gv.f.lookup(labelValues, func() interface{} { return new(FloatGauge) }).(*FloatGauge)
}

func (gv *FloatGaugeVec) render(w io.Writer) error {
	if err := gv.f.header(w); err != nil {
		return err
	}
	for _, e := range gv.f.snapshot() {
		g := e.s.(*FloatGauge)
		if _, err := fmt.Fprintf(w, "%s%s %s\n", gv.f.name, gv.f.labelString(e.key), formatFloat(g.Value())); err != nil {
			return err
		}
	}
	return nil
}

// Histogram accumulates float observations into fixed buckets. Bucket
// counts are stored non-cumulatively and cumulated at render time; the
// sum is a CAS loop over float64 bits so Observe never takes a lock.
type Histogram struct {
	upper   []float64
	counts  []atomic.Int64 // len(upper)+1; last is the +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64
	// exemplar remembers the largest observation that carried a trace ID;
	// the statusz p99 cell links it to /debug/traces. Nil until the first
	// ObserveExemplar with a non-empty ID.
	exemplar atomic.Pointer[exemplar]
}

// exemplar pairs one observation with the trace that produced it.
type exemplar struct {
	value   float64
	traceID string
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v ("le" semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty and v
// is the largest such observation so far, remembers (v, traceID) as the
// series' exemplar — the concrete trace behind the latency tail. With an
// empty traceID it is exactly Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	next := &exemplar{value: v, traceID: traceID}
	for {
		old := h.exemplar.Load()
		if old != nil && old.value >= v {
			return
		}
		if h.exemplar.CompareAndSwap(old, next) {
			return
		}
	}
}

// Exemplar returns the largest trace-carrying observation, if any.
func (h *Histogram) Exemplar() (value float64, traceID string, ok bool) {
	e := h.exemplar.Load()
	if e == nil {
		return 0, "", false
	}
	return e.value, e.traceID, true
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts
// with the same linear interpolation Prometheus's histogram_quantile
// applies: the target rank is located in its bucket and interpolated
// between the bucket bounds. Observations in the +Inf overflow bucket clamp
// to the highest finite bound; an empty histogram returns NaN. Estimates,
// like histogram_quantile's, are only as fine as the bucket layout.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, ub := range h.upper {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.upper[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + (ub-lower)*frac
		}
		cum += n
	}
	if len(h.upper) == 0 {
		return math.NaN()
	}
	return h.upper[len(h.upper)-1]
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	f     *family
	upper []float64
}

// NewHistogram registers a histogram family with the given bucket upper
// bounds (nil means DefBuckets). Bounds must be strictly increasing.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets not strictly increasing for " + name)
		}
	}
	upper := append([]float64(nil), buckets...)
	hv := &HistogramVec{f: newFamily(name, help, "histogram", labels), upper: upper}
	r.register(name, hv)
	return hv
}

// With returns the series for the label values, creating it on first use.
func (hv *HistogramVec) With(labelValues ...string) *Histogram {
	return hv.f.lookup(labelValues, func() interface{} { return newHistogram(hv.upper) }).(*Histogram)
}

// Each calls fn for every existing series with its label values, in the
// deterministic rendering order. Used by read-side consumers (the statusz
// page) that need the populated label combinations without knowing them
// up front.
func (hv *HistogramVec) Each(fn func(labelValues []string, h *Histogram)) {
	for _, e := range hv.f.snapshot() {
		fn(splitSeriesKey(e.key), e.s.(*Histogram))
	}
}

func (hv *HistogramVec) render(w io.Writer) error {
	if err := hv.f.header(w); err != nil {
		return err
	}
	for _, e := range hv.f.snapshot() {
		h := e.s.(*Histogram)
		cum := int64(0)
		for i, ub := range h.upper {
			cum += h.counts[i].Load()
			le := formatFloat(ub)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", hv.f.name, hv.f.labelString(e.key, "le", le), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.upper)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", hv.f.name, hv.f.labelString(e.key, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", hv.f.name, hv.f.labelString(e.key), formatFloat(h.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", hv.f.name, hv.f.labelString(e.key), h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders floats the way Prometheus expects (shortest
// round-trip representation).
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
