package metrics

import (
	"compress/gzip"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerGzipNegotiation covers the /metrics content negotiation:
// identity by default, gzip when the client asks for it, identity again
// when the client explicitly refuses gzip with q=0.
func TestHandlerGzipNegotiation(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("gz_total", "help", "endpoint")
	for i := 0; i < 50; i++ {
		c.With("/v1/solve").Inc()
	}
	want := "gz_total{endpoint=\"/v1/solve\"} 50"

	cases := []struct {
		name           string
		acceptEncoding string
		wantGzip       bool
	}{
		{"no header", "", false},
		{"gzip", "gzip", true},
		{"weighted list", "br;q=1.0, gzip;q=0.8, *;q=0.1", true},
		{"wildcard", "*", true},
		{"refused", "gzip;q=0", false},
		{"other codec only", "br", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", "/metrics", nil)
			if tc.acceptEncoding != "" {
				req.Header.Set("Accept-Encoding", tc.acceptEncoding)
			}
			rr := httptest.NewRecorder()
			reg.Handler().ServeHTTP(rr, req)
			if rr.Code != 200 {
				t.Fatalf("status = %d", rr.Code)
			}
			if got := rr.Header().Get("Vary"); got != "Accept-Encoding" {
				t.Fatalf("Vary = %q", got)
			}
			enc := rr.Header().Get("Content-Encoding")
			if tc.wantGzip {
				if enc != "gzip" {
					t.Fatalf("Content-Encoding = %q, want gzip", enc)
				}
				zr, err := gzip.NewReader(rr.Body)
				if err != nil {
					t.Fatalf("body is not gzip: %v", err)
				}
				body, err := io.ReadAll(zr)
				if err != nil {
					t.Fatalf("decompress: %v", err)
				}
				if !strings.Contains(string(body), want) {
					t.Fatalf("decompressed body missing %q:\n%s", want, body)
				}
			} else {
				if enc != "" {
					t.Fatalf("Content-Encoding = %q, want identity", enc)
				}
				if !strings.Contains(rr.Body.String(), want) {
					t.Fatalf("body missing %q:\n%s", want, rr.Body.String())
				}
			}
		})
	}
}

// TestGzipActuallyShrinks sanity-checks the satellite's motivation on a
// registry big enough to matter.
func TestGzipActuallyShrinks(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("shrink_seconds", "help", nil, "endpoint", "code")
	for _, ep := range []string{"/v1/solve", "/v1/graphs", "/v1/jobs", "/v1/events"} {
		for _, code := range []string{"200", "404", "429", "500"} {
			for i := 0; i < 10; i++ {
				h.With(ep, code).Observe(float64(i) / 100)
			}
		}
	}
	plain := httptest.NewRecorder()
	reg.Handler().ServeHTTP(plain, httptest.NewRequest("GET", "/metrics", nil))
	zipped := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	reg.Handler().ServeHTTP(zipped, req)
	if zipped.Body.Len()*4 >= plain.Body.Len() {
		t.Fatalf("gzip body %d not <1/4 of plain %d", zipped.Body.Len(), plain.Body.Len())
	}
}
