package metrics_test

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	. "prefcover/internal/metrics"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.", "endpoint", "code")
	c.With("/v1/solve", "200").Add(3)
	c.With("/v1/solve", "400").Inc()
	c.With("/healthz", "200").Inc()
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP requests_total Total requests.\n",
		"# TYPE requests_total counter\n",
		`requests_total{endpoint="/v1/solve",code="200"} 3`,
		`requests_total{endpoint="/v1/solve",code="400"} 1`,
		`requests_total{endpoint="/healthz",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	c.With("/healthz", "200").Add(-5) // negative deltas ignored
	if got := c.With("/healthz", "200").Value(); got != 1 {
		t.Errorf("counter went backwards: %d", got)
	}
}

func TestGaugeAndUnlabeled(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("in_flight", "In-flight requests.")
	g.With().Inc()
	g.With().Inc()
	g.With().Dec()
	out := scrape(t, r)
	if !strings.Contains(out, "in_flight 1\n") {
		t.Errorf("unlabeled gauge rendered wrong:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE in_flight gauge\n") {
		t.Errorf("missing type line:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.1, 1, 10}, "endpoint")
	s := h.With("/v1/solve")
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		s.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{endpoint="/v1/solve",le="0.1"} 2`,  // 0.05 and the boundary 0.1
		`latency_seconds_bucket{endpoint="/v1/solve",le="1"} 3`,    // + 0.5
		`latency_seconds_bucket{endpoint="/v1/solve",le="10"} 4`,   // + 5
		`latency_seconds_bucket{endpoint="/v1/solve",le="+Inf"} 5`, // + 100
		`latency_seconds_count{endpoint="/v1/solve"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if s.Sum() != 105.65 {
		t.Errorf("sum = %g, want 105.65", s.Sum())
	}
}

func TestFamiliesSortedAndSeriesStable(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zzz_total", "Z.").With().Inc()
	r.NewCounter("aaa_total", "A.").With().Inc()
	out := scrape(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
	if scrape(t, r) != out {
		t.Error("scrape output not deterministic")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("weird_total", "Weird labels.", "path")
	c.With("a\"b\\c\nd").Inc()
	out := scrape(t, r)
	if !strings.Contains(out, `weird_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("hits_total", "Hits.").With().Inc()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "Second.")
}

// TestConcurrentUpdates exercises the lock-free paths under the race
// detector: concurrent Inc/Observe on shared and fresh series while a
// scraper renders.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "C.", "worker")
	h := r.NewHistogram("conc_seconds", "H.", nil, "worker")
	g := r.NewGauge("conc_gauge", "G.")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				c.With(label).Inc()
				h.With(label).Observe(float64(i) / 100)
				g.With().Inc()
				g.With().Dec()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += c.With(l).Value()
	}
	if total != 8000 {
		t.Errorf("lost counter increments: %d", total)
	}
	if g.With().Value() != 0 {
		t.Errorf("gauge should settle at 0, got %d", g.With().Value())
	}
}

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewFloatGauge("uptime_seconds", "Uptime.")
	g.With().Set(1.5)
	g.With().Add(0.25)
	if got := g.With().Value(); got != 1.75 {
		t.Errorf("Value = %v, want 1.75", got)
	}
	out := scrape(t, r)
	if !strings.Contains(out, "# TYPE uptime_seconds gauge\n") {
		t.Errorf("missing type line:\n%s", out)
	}
	if !strings.Contains(out, "uptime_seconds 1.75\n") {
		t.Errorf("float gauge rendered wrong:\n%s", out)
	}
}

func TestFloatGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.NewFloatGauge("acc_seconds", "Accumulated.", "kind")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.With("gc").Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.With("gc").Value(); got != 8*1000*0.5 {
		t.Errorf("Value = %v, want %v", got, 8*1000*0.5)
	}
}
