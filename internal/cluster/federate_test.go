package cluster

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prefcover/internal/faults"
	"prefcover/internal/jobs"
	"prefcover/internal/promtext"
	"prefcover/internal/server"
	"prefcover/internal/slo"
	"prefcover/internal/store"
)

// fedFixture boots K real prefcoverd servers plus a federating gateway.
// Probe and scrape intervals are huge so nothing moves between the
// explicit ScrapeNodes calls a test makes — that stillness is what lets
// the differential assertions demand exact equality.
type fedFixture struct {
	servers []*server.Server
	nodeTS  []*httptest.Server
	gw      *Gateway
	gwTS    *httptest.Server
}

func bootFederated(t *testing.T, k int, tune func(*Options)) *fedFixture {
	t.Helper()
	fx := &fedFixture{}
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		srv, err := server.NewWithConfig(server.Config{
			Store: store.Options{Dir: t.TempDir()},
			Jobs:  jobs.Options{Workers: 1, QueueDepth: 16},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		fx.servers = append(fx.servers, srv)
		fx.nodeTS = append(fx.nodeTS, ts)
		urls[i] = ts.URL
	}
	opts := Options{
		Nodes:          urls,
		ProbeInterval:  time.Hour,
		ScrapeInterval: time.Hour,
	}
	if tune != nil {
		tune(&opts)
	}
	gw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fx.gw = gw
	fx.gwTS = httptest.NewServer(gw.Handler())
	return fx
}

func (fx *fedFixture) close() {
	fx.gwTS.Close()
	fx.gw.Close()
	for i, ts := range fx.nodeTS {
		ts.Close()
		fx.servers[i].Close()
	}
}

// hit drives n requests straight at a node so its registry moves
// independently of the gateway's forwarding path.
func hit(t *testing.T, base, path string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
}

func scrapeGateway(t *testing.T, url string) *promtext.Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFederationDifferentialExact is the federation contract: on the
// gateway's rendered /metrics, every prefcover_cluster_* sample equals
// the exact float sum of the prefcover_node_* samples it aggregates —
// recomputed here independently from the same wire output.
func TestFederationDifferentialExact(t *testing.T) {
	fx := bootFederated(t, 3, nil)
	defer fx.close()

	// Distinct traffic per node so the sums are non-trivial.
	for i, ts := range fx.nodeTS {
		hit(t, ts.URL, "/v1/solve?variant=i&k=3", 3+2*i)
	}
	fx.gw.ScrapeNodes()
	m := scrapeGateway(t, fx.gwTS.URL)

	// Every node must appear on the federated surface.
	reqs := m.Samples("prefcover_node_http_requests_total")
	for _, ts := range fx.nodeTS {
		found := false
		for _, s := range reqs {
			if v, _ := s.Labels.Get("node"); v == ts.URL {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no prefcover_node_http_requests_total series for node %s", ts.URL)
		}
	}

	// Recompute each cluster family from the node series and compare
	// exactly. Group node samples by (trailing name, labels minus node).
	checked := 0
	for _, f := range m.Families {
		if !strings.HasPrefix(f.Name, clusterPrefix) {
			continue
		}
		rest := strings.TrimPrefix(f.Name, clusterPrefix)
		nf := m.Family(nodePrefix + rest)
		if nf == nil {
			t.Errorf("cluster family %s has no node family", f.Name)
			continue
		}
		sums := make(map[string]float64)
		for _, ns := range nf.Samples {
			key := ns.Name + "\x00" + ns.Labels.Without("node").Key()
			sums[key] += ns.Value
		}
		// Histogram child samples (_bucket/_sum/_count) live in the same
		// family; walk them all.
		for _, cs := range f.Samples {
			key := nodePrefix + strings.TrimPrefix(cs.Name, clusterPrefix) + "\x00" + cs.Labels.Key()
			want, ok := sums[key]
			if !ok {
				t.Errorf("cluster sample %s%v has no node counterparts", cs.Name, cs.Labels)
				continue
			}
			if cs.Value != want {
				t.Errorf("cluster %s%v = %v, node sum = %v", cs.Name, cs.Labels, cs.Value, want)
			}
			checked++
		}
	}
	if checked < 30 {
		t.Fatalf("differential only covered %d samples — federation surface suspiciously small", checked)
	}

	// The per-node request counters must match each node's own registry
	// exactly: scraping a node's /metrics is not an instrumented /v1
	// endpoint, so nothing moved since the federation snapshot.
	for _, ts := range fx.nodeTS {
		direct := scrapeNodeDirect(t, ts.URL)
		for _, ds := range direct.Samples("prefcover_http_requests_total") {
			var got float64
			found := false
			for _, s := range reqs {
				if v, _ := s.Labels.Get("node"); v != ts.URL {
					continue
				}
				if s.Labels.Without("node").Key() == ds.Labels.Key() {
					got, found = s.Value, true
					break
				}
			}
			if !found || got != ds.Value {
				t.Errorf("node %s series %v: federated %v (found=%v), direct %v",
					ts.URL, ds.Labels, got, found, ds.Value)
			}
		}
	}
}

func scrapeNodeDirect(t *testing.T, url string) *promtext.Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFederationSurvivesNodeScrapeFailure kills one node: its series
// drop off the federated surface, the others keep aggregating, and the
// scrape error lands on statusz.
func TestFederationSurvivesNodeScrapeFailure(t *testing.T) {
	fx := bootFederated(t, 2, nil)
	defer fx.close()

	hit(t, fx.nodeTS[0].URL, "/v1/solve?variant=i&k=3", 2)
	hit(t, fx.nodeTS[1].URL, "/v1/solve?variant=i&k=3", 2)
	fx.gw.ScrapeNodes()

	dead := fx.nodeTS[1].URL
	fx.nodeTS[1].Close()
	fx.gw.ScrapeNodes()
	m := scrapeGateway(t, fx.gwTS.URL)
	for _, s := range m.Samples("prefcover_node_http_requests_total") {
		if v, _ := s.Labels.Get("node"); v == dead {
			t.Fatalf("dead node %s still on the federated surface", dead)
		}
	}
	if len(m.Samples("prefcover_cluster_http_requests_total")) == 0 {
		t.Fatal("cluster aggregates vanished with one node down")
	}
	resp, err := http.Get(fx.gwTS.URL + "/debug/statusz")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(page), "scrape:") {
		t.Error("statusz does not surface the scrape error")
	}
}

// TestFederatedMetricsGzip checks the federated /metrics honours
// Accept-Encoding: gzip end to end.
func TestFederatedMetricsGzip(t *testing.T) {
	fx := bootFederated(t, 1, nil)
	defer fx.close()
	hit(t, fx.nodeTS[0].URL, "/v1/solve?variant=i&k=3", 1)
	fx.gw.ScrapeNodes()

	req, _ := http.NewRequest("GET", fx.gwTS.URL+"/metrics", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q", resp.Header.Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prefcover_node_http_requests_total", "prefcover_cluster_http_requests_total", "prefcover_gateway_ring_nodes"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("gzipped federated /metrics missing %s", want)
		}
	}
}

// TestClusterSLOAlertLifecycle runs a cluster-level availability SLO
// against real nodes: one node starts injecting 500s, the gateway's
// federated evaluator sees the cluster error ratio burn through the
// budget and fires, then resolves once the faults are disarmed.
func TestClusterSLOAlertLifecycle(t *testing.T) {
	fx := bootFederated(t, 2, func(o *Options) {
		o.SLO = mustSpec(t, "avail:/v1/solve:99")
		o.SLOFastWindow = 100 * time.Millisecond
		o.SLOSlowWindow = 200 * time.Millisecond
		o.SLOForDuration = time.Nanosecond
	})
	defer fx.close()
	if fx.gw.Monitor() == nil {
		t.Fatal("SLO options must enable the monitor")
	}

	spec, err := faults.ParseSpec("seed=3,error=1.0")
	if err != nil {
		t.Fatal(err)
	}
	fx.servers[0].SetFaults(faults.New(spec))

	state := func() slo.State {
		st := fx.gw.Monitor().Status()
		if len(st.Alerts) != 1 {
			t.Fatalf("alerts = %+v", st.Alerts)
		}
		return st.Alerts[0].State
	}
	deadline := time.Now().Add(10 * time.Second)
	for state() != slo.StateFiring {
		if time.Now().After(deadline) {
			t.Fatalf("cluster alert never fired; status %+v", fx.gw.Monitor().Status())
		}
		hit(t, fx.nodeTS[0].URL, "/v1/solve?variant=i&k=3", 10)
		hit(t, fx.nodeTS[1].URL, "/v1/solve?variant=i&k=3", 2)
		time.Sleep(5 * time.Millisecond)
		fx.gw.ScrapeNodes()
	}

	// The gateway's own /metrics carries the cluster ALERTS series.
	resp, err := http.Get(fx.gwTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(body),
		`ALERTS{alertname="avail_burn",endpoint="/v1/solve",severity="critical",state="firing"} 1`) {
		t.Fatal("gateway /metrics missing the firing ALERTS series")
	}

	fx.servers[0].SetFaults(nil)
	deadline = time.Now().Add(10 * time.Second)
	for state() != slo.StateResolved {
		if time.Now().After(deadline) {
			t.Fatalf("cluster alert never resolved; status %+v", fx.gw.Monitor().Status())
		}
		hit(t, fx.nodeTS[0].URL, "/v1/solve?variant=i&k=3", 10)
		hit(t, fx.nodeTS[1].URL, "/v1/solve?variant=i&k=3", 10)
		time.Sleep(5 * time.Millisecond)
		fx.gw.ScrapeNodes()
	}
}

// TestStatuszRateColumns checks the tsdb-derived columns appear once
// the ring has enough history for windowed rates.
func TestStatuszRateColumns(t *testing.T) {
	fx := bootFederated(t, 1, nil)
	defer fx.close()

	for i := 0; i < 4; i++ {
		hit(t, fx.nodeTS[0].URL, "/v1/solve?variant=i&k=3", 5)
		time.Sleep(5 * time.Millisecond)
		fx.gw.ScrapeNodes()
	}
	resp, err := http.Get(fx.gwTS.URL + "/debug/statusz")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	for _, want := range []string{"<th>req/s</th>", "<th>trend</th>", "/s</td>"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("statusz missing %q", want)
		}
	}
	if !strings.ContainsAny(string(page), "▁▂▃▄▅▆▇█") {
		t.Error("statusz has no sparkline runes")
	}
}

func mustSpec(t *testing.T, text string) slo.Spec {
	t.Helper()
	s, err := slo.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
