package cluster

import (
	"prefcover/internal/metrics"
)

// gwMetrics is the gateway's own metric surface: per-node RED (requests,
// errors, duration) for the forwarded traffic, ring/membership state, and
// the failure-handling counters the chaos suite reconciles against
// injected fault counts (nodeFailures == failovers + giveUps when every
// failure is transient).
type gwMetrics struct {
	// Per-node RED for forwarded requests.
	requests *metrics.CounterVec   // prefcover_gateway_requests_total{node,endpoint,code}
	latency  *metrics.HistogramVec // prefcover_gateway_request_seconds{node,endpoint}

	// Failure accounting. nodeFailures counts every failed forward attempt
	// by node and kind (transport | status); failovers counts attempts
	// retried on another candidate; giveUps counts logical calls that
	// exhausted every candidate.
	nodeFailures *metrics.CounterVec // prefcover_gateway_node_failures_total{node,kind}
	failovers    *metrics.CounterVec // prefcover_gateway_failovers_total{endpoint}
	giveUps      *metrics.CounterVec // prefcover_gateway_giveups_total{endpoint}

	// Replication outcomes per secondary write: "stored" (PUT accepted),
	// "reconciled" (If-None-Match said the replica already holds the
	// bytes), "failed" (all attempts exhausted).
	replication *metrics.CounterVec // prefcover_gateway_replication_total{outcome}

	// Ring and health state.
	ringNodes   *metrics.GaugeVec   // prefcover_gateway_ring_nodes
	nodeHealthy *metrics.GaugeVec   // prefcover_gateway_node_healthy{node}
	probes      *metrics.CounterVec // prefcover_gateway_probes_total{node,outcome}

	// Routing decisions: how solves picked their node.
	routed *metrics.CounterVec // prefcover_gateway_routed_total{strategy}

	// Federation: node /metrics scrape outcomes and the cluster-level
	// SLO alert lifecycle (see internal/slo).
	scrapes *metrics.CounterVec // prefcover_gateway_scrapes_total{node,outcome}
	alerts  *metrics.GaugeVec   // ALERTS{alertname,endpoint,severity,state}
}

func newGwMetrics(r *metrics.Registry) *gwMetrics {
	return &gwMetrics{
		requests: r.NewCounter("prefcover_gateway_requests_total",
			"Requests forwarded to a node, by endpoint and response code.",
			"node", "endpoint", "code"),
		latency: r.NewHistogram("prefcover_gateway_request_seconds",
			"Forwarded-request latency by node and endpoint.",
			metrics.DefBuckets, "node", "endpoint"),
		nodeFailures: r.NewCounter("prefcover_gateway_node_failures_total",
			"Failed forward attempts by node and failure kind (transport/status).",
			"node", "kind"),
		failovers: r.NewCounter("prefcover_gateway_failovers_total",
			"Forward attempts retried on another replica, by endpoint.",
			"endpoint"),
		giveUps: r.NewCounter("prefcover_gateway_giveups_total",
			"Logical calls that exhausted every replica, by endpoint.",
			"endpoint"),
		replication: r.NewCounter("prefcover_gateway_replication_total",
			"Secondary-replica write outcomes (stored/reconciled/failed).",
			"outcome"),
		ringNodes: r.NewGauge("prefcover_gateway_ring_nodes",
			"Nodes currently on the hash ring (drained nodes excluded)."),
		nodeHealthy: r.NewGauge("prefcover_gateway_node_healthy",
			"1 while the node's last readiness probe succeeded.", "node"),
		probes: r.NewCounter("prefcover_gateway_probes_total",
			"Readiness probes by node and outcome (ready/unready/error).",
			"node", "outcome"),
		routed: r.NewCounter("prefcover_gateway_routed_total",
			"Solve routing decisions by strategy (sticky/primary/least_loaded).",
			"strategy"),
		scrapes: r.NewCounter("prefcover_gateway_scrapes_total",
			"Node /metrics federation scrapes by node and outcome (ok/error).",
			"node", "outcome"),
		alerts: r.NewGauge("ALERTS",
			"Cluster SLO burn-rate alerts: 1 on the series matching each alert's current state.",
			"alertname", "endpoint", "severity", "state"),
	}
}
