package cluster

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"prefcover/internal/apiclient"
	"prefcover/internal/metrics"
	"prefcover/internal/slo"
	"prefcover/internal/trace"
	"prefcover/internal/version"
)

// Defaults for Options' zero values.
const (
	DefaultReplicas      = 2
	DefaultProbeInterval = 2 * time.Second
	DefaultProbeTimeout  = time.Second
	DefaultMaxAttempts   = 3
	DefaultRetryBase     = 50 * time.Millisecond
	DefaultMaxBodyBytes  = 256 << 20
	DefaultScrapeTimeout = 5 * time.Second
)

// Options shapes a Gateway.
type Options struct {
	// Nodes are the backend prefcoverd base URLs ("http://host:port").
	// At least one is required; more can join at runtime via
	// /debug/cluster.
	Nodes []string
	// Replicas is R: how many nodes hold each graph (capped at the node
	// count). 0 means DefaultReplicas.
	Replicas int
	// VNodes is the virtual-node count per backend on the hash ring.
	// 0 means DefaultVNodes.
	VNodes int
	// Logger receives health transitions and forwarding warnings; nil
	// disables logging.
	Logger *slog.Logger
	// ProbeInterval is the readiness-probe period (0 = 2s); ProbeTimeout
	// bounds one probe (0 = 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// RequestTimeout bounds one forwarded attempt end to end. 0 means no
	// gateway-side limit (reference solves may run long; the node owns
	// its own deadline).
	RequestTimeout time.Duration
	// MaxAttempts is the failover budget per logical call, including the
	// first attempt (0 = DefaultMaxAttempts); RetryBase seeds the backoff
	// between attempts (0 = DefaultRetryBase).
	MaxAttempts int
	RetryBase   time.Duration
	// DisableKeepAlives forces a fresh gateway->node connection per
	// request. The chaos harness sets it so injected connection resets
	// surface as exactly one observed failure (net/http silently replays
	// idempotent requests on dead reused connections).
	DisableKeepAlives bool
	// MaxBodyBytes caps a buffered inbound request body (bodies are held
	// in memory so failover can resend them). 0 = DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// TraceCapacity sizes the gateway's flight-recorder ring (0 = trace
	// package default).
	TraceCapacity int

	// ScrapeInterval turns on metrics federation: every interval the
	// gateway pulls each node's /metrics, re-exports the families as
	// prefcover_node_*{node=...} plus prefcover_cluster_* sums on its own
	// /metrics, and feeds the snapshot ring behind statusz and the SLO
	// evaluator. 0 disables federation unless SLO asks for it (then the
	// slo package's default cadence applies).
	ScrapeInterval time.Duration
	// ScrapeTimeout bounds one node /metrics pull (0 = 5s).
	ScrapeTimeout time.Duration
	// SLO lists cluster-level objectives evaluated against the
	// prefcover_cluster_* aggregates (see internal/slo's grammar).
	SLO slo.Spec
	// SLOFastWindow/SLOSlowWindow/SLOForDuration tune the burn-rate
	// evaluator; zero values use the slo defaults (5m/1h/30s).
	SLOFastWindow  time.Duration
	SLOSlowWindow  time.Duration
	SLOForDuration time.Duration
	// AlertWebhook, when set, receives firing/resolved transitions as
	// JSON POSTs with retry.
	AlertWebhook string
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBase <= 0 {
		o.RetryBase = DefaultRetryBase
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.TraceCapacity <= 0 {
		o.TraceCapacity = trace.DefaultCapacity
	}
	if o.ScrapeTimeout <= 0 {
		o.ScrapeTimeout = DefaultScrapeTimeout
	}
	return o
}

// Gateway routes the prefcoverd HTTP API across a set of backend nodes:
// consistent-hash placement with R-way replication for graphs, sticky
// least-loaded routing for solves, replica failover on node failure. It
// is an http.Handler factory (Handler) plus a background readiness
// prober; Close stops the prober.
type Gateway struct {
	opts   Options
	ring   *Ring
	client *http.Client
	reg    *metrics.Registry
	met    *gwMetrics
	tracer *trace.Tracer
	logger *slog.Logger
	start  time.Time

	// Federation state: the cluster SLO monitor owns the scrape loop and
	// the tsdb ring; fed holds the latest parsed snapshot per node. Both
	// are nil/empty when Options left federation off.
	monitor *slo.Monitor
	fed     federation

	mu     sync.Mutex
	nodes  map[string]*nodeState // every known node, drained included
	sticky map[string]string     // graph name -> last good replica
	// jobOwner remembers which node accepted each async job so status
	// polls route straight to it; jobOrder caps the map FIFO-style.
	jobOwner map[string]string
	jobOrder []string

	probeStop chan struct{}
	probeDone chan struct{}
}

// maxTrackedJobs bounds the job->node ownership map; beyond it the oldest
// entries fall back to fan-out lookup (nodes themselves retain finished
// jobs only briefly, so stale entries have no value).
const maxTrackedJobs = 8192

// New validates opts, builds the ring, runs one synchronous probe round
// (so the gateway routes correctly from its first request) and starts
// the background prober.
func New(opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: at least one node is required")
	}
	g := &Gateway{
		opts:      opts,
		ring:      NewRing(opts.VNodes),
		reg:       metrics.NewRegistry(),
		tracer:    trace.New(opts.TraceCapacity),
		logger:    opts.Logger,
		start:     time.Now(),
		nodes:     make(map[string]*nodeState),
		sticky:    make(map[string]string),
		jobOwner:  make(map[string]string),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	g.met = newGwMetrics(g.reg)
	g.client = apiclient.New(apiclient.Options{
		DisableKeepAlives: opts.DisableKeepAlives,
		Hosts:             len(opts.Nodes),
	})
	for _, raw := range opts.Nodes {
		url, err := normalizeNodeURL(raw)
		if err != nil {
			return nil, err
		}
		if g.nodes[url] != nil {
			return nil, fmt.Errorf("cluster: duplicate node %s", url)
		}
		// Optimistically healthy until the first probe says otherwise:
		// a gateway that boots before its nodes should still route (the
		// forward path degrades unreachable nodes on first failure).
		g.nodes[url] = &nodeState{healthy: true}
		g.ring.Add(url)
	}
	g.probeAll()
	if opts.federationEnabled() {
		g.monitor = g.newMonitor()
		g.monitor.Start()
	}
	go g.probeLoop()
	return g, nil
}

// normalizeNodeURL canonicalizes a backend address: scheme required
// (http:// assumed when absent), no trailing slash, no path.
func normalizeNodeURL(raw string) (string, error) {
	u := strings.TrimSpace(raw)
	if u == "" {
		return "", fmt.Errorf("cluster: empty node URL")
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	u = strings.TrimRight(u, "/")
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		return "", fmt.Errorf("cluster: node %q: only http/https backends are supported", raw)
	}
	if strings.Count(u, "/") > 2 {
		return "", fmt.Errorf("cluster: node %q must be a base URL without a path", raw)
	}
	return u, nil
}

// Close stops the prober and the federation scrape loop, then releases
// pooled connections.
func (g *Gateway) Close() {
	if g.monitor != nil {
		g.monitor.Close()
	}
	close(g.probeStop)
	<-g.probeDone
	g.client.CloseIdleConnections()
}

// Registry exposes the gateway's metric registry (tests).
func (g *Gateway) Registry() *metrics.Registry { return g.reg }

// Ring exposes the placement ring (tests, statusz).
func (g *Gateway) Ring() *Ring { return g.ring }

// Handler returns the gateway's routed handler: the full /v1 API
// forwarded to backends, plus the gateway's own health, metrics and
// debug surface.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok", "role": "gateway"})
	})
	mux.HandleFunc("/readyz", g.handleReady)
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, version.Get())
	})
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/debug/cluster", g.handleCluster)
	mux.HandleFunc("/debug/statusz", g.handleStatusz)
	mux.HandleFunc("/debug/traces", g.handleTraces)
	if g.monitor != nil {
		mux.Handle("/debug/slo", g.monitor.DebugHandler())
	} else {
		mux.Handle("/debug/slo", slo.DisabledHandler())
	}

	mux.HandleFunc("/v1/graphs", g.handleGraphList)
	mux.HandleFunc("/v1/graphs/", g.handleGraph)
	mux.HandleFunc("/v1/solve", g.handleSolve)
	mux.HandleFunc("/v1/adapt", g.handleCompute("/v1/adapt"))
	mux.HandleFunc("/v1/pipeline", g.handleCompute("/v1/pipeline"))
	mux.HandleFunc("/v1/stats", g.handleCompute("/v1/stats"))
	mux.HandleFunc("/v1/jobs", g.handleJobs)
	mux.HandleFunc("/v1/jobs/", g.handleJob)
	return mux
}

// handleReady reports gateway readiness: at least one healthy,
// routable node on the ring.
func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, ns := range g.snapshots() {
		if ns.Healthy && g.ring.Contains(ns.URL) {
			healthy++
		}
	}
	resp := map[string]any{
		"status":       "ready",
		"ringNodes":    g.ring.Len(),
		"healthyNodes": healthy,
	}
	if healthy == 0 {
		resp["status"] = "unavailable"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// replicasFor returns the ring's R-replica set for a graph name.
func (g *Gateway) replicasFor(name string) []string {
	return g.ring.Lookup(name, g.opts.Replicas)
}

// routeOrder orders candidate nodes for a failover walk: the sticky node
// for key first (when still a candidate and healthy), then healthy
// candidates by ascending load, then unhealthy ones as a last resort —
// a probe may be stale and a "down" replica is still better than a
// guaranteed 502.
func (g *Gateway) routeOrder(key string, candidates []string) []string {
	if len(candidates) == 0 {
		return nil
	}
	snaps := make(map[string]nodeSnapshot, len(candidates))
	for _, ns := range g.snapshots() {
		snaps[ns.URL] = ns
	}
	var stickyNode string
	if key != "" {
		g.mu.Lock()
		stickyNode = g.sticky[key]
		g.mu.Unlock()
	}
	healthy := make([]string, 0, len(candidates))
	unhealthy := make([]string, 0, len(candidates))
	for _, c := range candidates {
		if snaps[c].Healthy {
			healthy = append(healthy, c)
		} else {
			unhealthy = append(unhealthy, c)
		}
	}
	// Stable least-loaded order among the healthy set.
	for i := 1; i < len(healthy); i++ {
		for j := i; j > 0 && snaps[healthy[j]].load() < snaps[healthy[j-1]].load(); j-- {
			healthy[j], healthy[j-1] = healthy[j-1], healthy[j]
		}
	}
	out := make([]string, 0, len(candidates))
	if stickyNode != "" {
		for _, c := range healthy {
			if c == stickyNode {
				out = append(out, c)
				break
			}
		}
	}
	for _, c := range healthy {
		if len(out) > 0 && c == out[0] {
			continue
		}
		out = append(out, c)
	}
	out = append(out, unhealthy...)
	return out
}

// healthyNodes returns all routable ring members ordered by ascending
// load (for inline work with no placement key), unhealthy members last.
func (g *Gateway) healthyNodes() []string {
	return g.routeOrder("", g.ring.Nodes())
}

// rememberSticky records that node served graph key successfully.
func (g *Gateway) rememberSticky(key, node string) {
	if key == "" || node == "" {
		return
	}
	g.mu.Lock()
	g.sticky[key] = node
	g.mu.Unlock()
}

// forgetSticky drops the sticky route for key (graph deleted).
func (g *Gateway) forgetSticky(key string) {
	g.mu.Lock()
	delete(g.sticky, key)
	g.mu.Unlock()
}

// rememberJob records which node accepted job id.
func (g *Gateway) rememberJob(id, node string) {
	if id == "" || node == "" {
		return
	}
	g.mu.Lock()
	if _, ok := g.jobOwner[id]; !ok {
		g.jobOrder = append(g.jobOrder, id)
		for len(g.jobOrder) > maxTrackedJobs {
			delete(g.jobOwner, g.jobOrder[0])
			g.jobOrder = g.jobOrder[1:]
		}
	}
	g.jobOwner[id] = node
	g.mu.Unlock()
}

// jobNode returns the node that accepted job id, or "".
func (g *Gateway) jobNode(id string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.jobOwner[id]
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeGatewayError emits the server's JSON error envelope shape from
// the gateway itself (routing failures, body-too-large, bad methods).
func (g *Gateway) writeGatewayError(w http.ResponseWriter, requestID string, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error":     err.Error(),
		"requestId": requestID,
	})
}
