package cluster

// Metrics federation: the gateway periodically scrapes every member
// node's /metrics, re-exports each node's families under
// prefcover_node_*{node="..."} and publishes exact cluster-wide sums as
// prefcover_cluster_*, all from one locked snapshot so the aggregate
// always equals the sum of the per-node series it was derived from. The
// same snapshots feed a tsdb ring (statusz rate/sparkline columns) and
// the cluster-level SLO monitor (/debug/slo on the gateway).

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"prefcover/internal/apiclient"
	"prefcover/internal/metrics"
	"prefcover/internal/promtext"
	"prefcover/internal/slo"
)

// nodePrefix/clusterPrefix rename a node's prefcover_* families on the
// federated surface; families without the prefcover_ prefix (runtime
// internals, a node's own ALERTS) are not federated.
const (
	localPrefix   = "prefcover_"
	nodePrefix    = "prefcover_node_"
	clusterPrefix = "prefcover_cluster_"
)

// federation is the gateway's scrape state: the latest parsed snapshot
// per node plus the last scrape error, both keyed by node URL.
type federation struct {
	mu    sync.RWMutex
	nodes map[string]*promtext.Metrics
	errs  map[string]string
}

// federationEnabled reports whether any knob asks for the scrape loop.
func (o Options) federationEnabled() bool {
	return o.ScrapeInterval > 0 || o.SLO.Enabled()
}

// newMonitor builds the gateway's cluster-level SLO monitor. Its scrape
// callback pulls every node, refreshes the federation snapshot, and
// returns exactly what an external scraper would read from the
// gateway's /metrics — so the SLO evaluator and the wire format can
// never disagree.
func (g *Gateway) newMonitor() *slo.Monitor {
	var notifier slo.Notifier
	if g.opts.AlertWebhook != "" {
		notifier = &slo.WebhookNotifier{URL: g.opts.AlertWebhook}
	}
	return slo.NewMonitor(slo.MonitorOptions{
		Spec:     g.opts.SLO,
		Scrape:   g.scrapeFederated,
		Interval: g.opts.ScrapeInterval,
		Eval: slo.EvalConfig{
			FastWindow:     g.opts.SLOFastWindow,
			SlowWindow:     g.opts.SLOSlowWindow,
			RequestsMetric: clusterPrefix + "http_requests_total",
			LatencyMetric:  clusterPrefix + "http_request_duration_seconds",
		},
		ForDuration: g.opts.SLOForDuration,
		Alerts:      g.met.alerts,
		Logger:      g.logger,
		Notifier:    notifier,
	})
}

// Monitor exposes the cluster SLO monitor; nil when federation is off.
func (g *Gateway) Monitor() *slo.Monitor { return g.monitor }

// ScrapeNodes runs one synchronous scrape round outside the monitor's
// loop (tests, /debug/cluster?action=probe follow-ups).
func (g *Gateway) ScrapeNodes() {
	if g.monitor != nil {
		g.monitor.Tick()
	}
}

// scrapeFederated pulls /metrics from every member node concurrently,
// folds the results into the federation snapshot, and assembles the
// full federated view (gateway registry + node re-exports + cluster
// sums). It fails only when every node scrape fails — a partial
// cluster still yields a usable aggregate.
func (g *Gateway) scrapeFederated() (*promtext.Metrics, error) {
	g.mu.Lock()
	urls := make([]string, 0, len(g.nodes))
	for u := range g.nodes {
		urls = append(urls, u)
	}
	g.mu.Unlock()
	sort.Strings(urls)

	type result struct {
		url string
		m   *promtext.Metrics
		err error
	}
	results := make([]result, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			m, err := g.scrapeNode(u)
			results[i] = result{url: u, m: m, err: err}
		}(i, u)
	}
	wg.Wait()

	g.fed.mu.Lock()
	// Rebuild rather than patch: nodes that left the membership drop out
	// of the federated surface on the next round.
	g.fed.nodes = make(map[string]*promtext.Metrics, len(results))
	g.fed.errs = make(map[string]string)
	okCount := 0
	var lastErr error
	for _, res := range results {
		if res.err != nil {
			g.fed.errs[res.url] = res.err.Error()
			g.met.scrapes.With(res.url, "error").Inc()
			lastErr = res.err
			continue
		}
		g.fed.nodes[res.url] = res.m
		g.met.scrapes.With(res.url, "ok").Inc()
		okCount++
	}
	g.fed.mu.Unlock()

	if okCount == 0 && len(urls) > 0 {
		return nil, fmt.Errorf("cluster: all %d node scrapes failed: %w", len(urls), lastErr)
	}
	var buf bytes.Buffer
	if err := g.writeFederated(&buf); err != nil {
		return nil, err
	}
	return promtext.Parse(&buf)
}

// scrapeNode fetches and parses one node's /metrics. The transport's
// transparent gzip negotiation applies, so large registries travel
// compressed without any handling here.
func (g *Gateway) scrapeNode(url string) (*promtext.Metrics, error) {
	req, err := http.NewRequest(http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	req, cancel := apiclient.WithTimeout(req, g.opts.ScrapeTimeout)
	defer cancel()
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("scrape %s/metrics: %s", url, resp.Status)
	}
	return promtext.Parse(resp.Body)
}

// writeFederated renders the gateway's complete metric surface: its own
// registry first, then the per-node re-exports and cluster aggregates
// derived from the latest federation snapshot.
func (g *Gateway) writeFederated(w io.Writer) error {
	if err := g.reg.WritePrometheus(w); err != nil {
		return err
	}
	for _, f := range g.federatedFamilies() {
		if err := promtext.WriteFamily(w, &f); err != nil {
			return err
		}
	}
	return nil
}

// federatedFamilies assembles the node and cluster families from the
// latest snapshot. Both views come from the same parsed scrapes, which
// makes the differential invariant exact: every prefcover_cluster_*
// sample equals the sum of its prefcover_node_* counterparts.
func (g *Gateway) federatedFamilies() []promtext.Family {
	g.fed.mu.RLock()
	urls := make([]string, 0, len(g.fed.nodes))
	for u := range g.fed.nodes {
		urls = append(urls, u)
	}
	snaps := make(map[string]*promtext.Metrics, len(g.fed.nodes))
	for u, m := range g.fed.nodes {
		snaps[u] = m
	}
	g.fed.mu.RUnlock()
	sort.Strings(urls)

	type agg struct {
		fam     *promtext.Family
		byKey   map[string]int // sample name + labels key -> index in fam.Samples
		anyNaN  map[string]bool
		ordered []string
	}
	nodeFams := make(map[string]*promtext.Family)
	clusterFams := make(map[string]*agg)
	var order []string

	for _, url := range urls {
		for fi := range snaps[url].Families {
			f := &snaps[url].Families[fi]
			if !strings.HasPrefix(f.Name, localPrefix) {
				continue
			}
			rest := strings.TrimPrefix(f.Name, localPrefix)

			nf := nodeFams[nodePrefix+rest]
			if nf == nil {
				nf = &promtext.Family{
					Name: nodePrefix + rest,
					Help: f.Help + " (per node)",
					Type: f.Type,
				}
				nodeFams[nf.Name] = nf
				order = append(order, nf.Name)
			}
			cf := clusterFams[clusterPrefix+rest]
			if cf == nil {
				cf = &agg{
					fam: &promtext.Family{
						Name: clusterPrefix + rest,
						Help: f.Help + " (cluster sum)",
						Type: f.Type,
					},
					byKey:  make(map[string]int),
					anyNaN: make(map[string]bool),
				}
				clusterFams[cf.fam.Name] = cf
				order = append(order, cf.fam.Name)
			}

			for _, s := range f.Samples {
				sampleRest := strings.TrimPrefix(s.Name, localPrefix)
				nf.Samples = append(nf.Samples, promtext.Sample{
					Name:   nodePrefix + sampleRest,
					Labels: s.Labels.With("node", url),
					Value:  s.Value,
				})
				key := sampleRest + "\x00" + s.Labels.Key()
				if s.Value != s.Value { // NaN would poison the sum
					cf.anyNaN[key] = true
					continue
				}
				if i, ok := cf.byKey[key]; ok {
					cf.fam.Samples[i].Value += s.Value
				} else {
					cf.byKey[key] = len(cf.fam.Samples)
					cf.fam.Samples = append(cf.fam.Samples, promtext.Sample{
						Name:   clusterPrefix + sampleRest,
						Labels: s.Labels,
						Value:  s.Value,
					})
				}
			}
		}
	}

	sort.Strings(order)
	out := make([]promtext.Family, 0, len(order))
	for _, name := range order {
		if nf := nodeFams[name]; nf != nil {
			out = append(out, *nf)
			continue
		}
		cf := clusterFams[name]
		// Drop aggregate series any node reported as NaN: a sum that
		// silently omits one member's contribution would break the
		// node-vs-cluster differential.
		kept := cf.fam.Samples[:0]
		for _, s := range cf.fam.Samples {
			key := strings.TrimPrefix(s.Name, clusterPrefix) + "\x00" + s.Labels.Key()
			if !cf.anyNaN[key] {
				kept = append(kept, s)
			}
		}
		cf.fam.Samples = kept
		if len(cf.fam.Samples) > 0 {
			out = append(out, *cf.fam)
		}
	}
	return out
}

// scrapeErrors returns the last scrape error per node (statusz).
func (g *Gateway) scrapeErrors() map[string]string {
	g.fed.mu.RLock()
	defer g.fed.mu.RUnlock()
	out := make(map[string]string, len(g.fed.errs))
	for u, e := range g.fed.errs {
		out[u] = e
	}
	return out
}

// handleMetrics serves the gateway's /metrics: just the local registry
// when federation is off, the full federated surface when on. Both
// paths honour Accept-Encoding: gzip.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if g.monitor == nil {
		g.reg.Handler().ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	out := metrics.NegotiateGzip(w, r)
	_ = g.writeFederated(out)
	_ = out.Close()
}
