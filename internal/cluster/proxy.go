package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"prefcover/internal/apiclient"
	"prefcover/internal/jobs"
	"prefcover/internal/retry"
	"prefcover/internal/trace"
)

// hopHeaders are stripped when relaying a node response: they describe
// the gateway->node hop, not the client->gateway one.
var hopHeaders = []string{"Connection", "Keep-Alive", "Transfer-Encoding", "Upgrade"}

// nodeResponse is one fully-buffered backend reply. Responses are read
// to completion before anything is written to the client so a failed
// attempt can fail over without having committed a status line.
type nodeResponse struct {
	node   string
	status int
	header http.Header
	body   []byte
}

// forward sends one logical call to the first candidate that answers,
// failing over through the rest via internal/retry. Contract:
//
//   - One X-Request-ID per logical call, constant across attempts, taken
//     from the inbound request when present.
//   - One traceparent per attempt: when the inbound trace is sampled the
//     gateway records a root span with a child per attempt, so the trace
//     reads client -> gateway -> node; otherwise the inbound header (or
//     a fresh unsampled one) is passed through.
//   - Transport errors and transient statuses (5xx, 429) mark the node
//     failed and advance to the next candidate; any other status is the
//     node's authoritative answer and is relayed as-is.
//   - body is resent verbatim on every attempt (callers buffer it).
//
// The successful (or final non-transient) response is returned buffered;
// a nil response means every candidate was exhausted.
func (g *Gateway) forward(r *http.Request, endpoint, method, path, rawQuery string, body []byte, candidates []string) (*nodeResponse, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("no nodes available for %s", path)
	}
	requestID := sanitizeRequestID(r.Header.Get("X-Request-ID"))
	if requestID == "" {
		requestID = apiclient.NewRequestID()
	}
	inboundTP := r.Header.Get(trace.TraceparentHeader)
	var root *trace.Span
	if sc, err := trace.ParseTraceparent(inboundTP); err == nil && sc.Sampled {
		root = g.tracer.RootContext("gateway "+endpoint, sc)
		root.SetAttr("requestID", requestID)
		root.SetAttr("method", method)
		defer root.End()
	}
	if inboundTP == "" {
		inboundTP = apiclient.NewTraceparent(false)
	}

	maxAttempts := g.opts.MaxAttempts
	if len(candidates) > maxAttempts {
		maxAttempts = len(candidates)
	}
	policy := retry.Policy{
		MaxAttempts: maxAttempts,
		BaseDelay:   g.opts.RetryBase,
		Jitter:      0.5,
		Observer:    &forwardObserver{g: g, endpoint: endpoint},
	}

	attempt := 0
	var result *nodeResponse
	err := policy.Do(r.Context(), func(ctx context.Context) error {
		node := candidates[attempt%len(candidates)]
		attempt++
		span := root.Child("forward " + node)
		span.SetAttr("node", node)
		span.SetAttr("attempt", attempt)
		defer span.End()

		tp := inboundTP
		if sc := span.Context(); sc.Valid() {
			tp = sc.Traceparent()
		}
		resp, err := g.sendOnce(ctx, node, endpoint, method, path, rawQuery, body, r.Header, requestID, tp)
		if err != nil {
			span.SetAttr("error", err.Error())
			g.markFailure(node, "transport", err)
			return retry.TransportError(fmt.Errorf("node %s: %w", node, err))
		}
		span.SetAttr("status", resp.status)
		if retry.StatusTransient(resp.status) {
			statusErr := fmt.Errorf("node %s: %s %s: HTTP %d", node, method, path, resp.status)
			g.markFailure(node, "status", statusErr)
			return retry.HTTPStatusError(resp.status, resp.header, statusErr)
		}
		result = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// sendOnce performs a single gateway->node request and buffers the reply.
func (g *Gateway) sendOnce(ctx context.Context, node, endpoint, method, path, rawQuery string, body []byte, inbound http.Header, requestID, traceparent string) (*nodeResponse, error) {
	url := node + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rdr)
	if err != nil {
		return nil, err
	}
	copyForwardHeaders(req.Header, inbound)
	apiclient.Decorate(req, requestID, traceparent)
	req, cancel := apiclient.WithTimeout(req, g.opts.RequestTimeout)
	defer cancel()

	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		g.met.latency.With(node, endpoint).Observe(time.Since(start).Seconds())
		return nil, err
	}
	buf, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	g.met.latency.With(node, endpoint).Observe(time.Since(start).Seconds())
	if err != nil {
		// A truncated body (partial fault, dropped connection mid-read) is
		// a transport failure even though a status line arrived.
		return nil, fmt.Errorf("reading response: %w", err)
	}
	g.met.requests.With(node, endpoint, strconv.Itoa(resp.StatusCode)).Inc()
	return &nodeResponse{node: node, status: resp.StatusCode, header: resp.Header, body: buf}, nil
}

// copyForwardHeaders relays the content/conditional headers that shape
// the node's answer, dropping hop-by-hop ones; identification headers
// are stamped separately by Decorate.
func copyForwardHeaders(dst, src http.Header) {
	for k, vv := range src {
		switch http.CanonicalHeaderKey(k) {
		case "X-Request-Id", trace.TraceparentHeader, "Traceparent", "Host":
			continue
		}
		hop := false
		for _, h := range hopHeaders {
			if http.CanonicalHeaderKey(k) == h {
				hop = true
				break
			}
		}
		if hop {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

// relay writes a buffered node response to the client.
func (g *Gateway) relay(w http.ResponseWriter, resp *nodeResponse) {
	h := w.Header()
	for k, vv := range resp.header {
		canonical := http.CanonicalHeaderKey(k)
		hop := false
		for _, hh := range hopHeaders {
			if canonical == hh {
				hop = true
				break
			}
		}
		if hop || canonical == "Content-Length" {
			continue
		}
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	h.Set("X-Prefcover-Node", resp.node)
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// readBody buffers an inbound request body for replayable forwarding.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, g.opts.MaxBodyBytes+1))
	if err != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadRequest,
			fmt.Errorf("reading request body: %w", err))
		return nil, false
	}
	if int64(len(body)) > g.opts.MaxBodyBytes {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", g.opts.MaxBodyBytes))
		return nil, false
	}
	return body, true
}

// forwardAndRelay is the common "route with failover, relay the answer"
// path; key selects sticky bookkeeping (remembered on success).
func (g *Gateway) forwardAndRelay(w http.ResponseWriter, r *http.Request, endpoint, key string, body []byte, candidates []string) {
	resp, err := g.forward(r, endpoint, r.Method, r.URL.Path, r.URL.RawQuery, body, candidates)
	if err != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadGateway,
			fmt.Errorf("all replicas failed: %w", err))
		return
	}
	if key != "" && resp.status < 500 {
		g.rememberSticky(key, resp.node)
	}
	g.relay(w, resp)
}

// forwardGraphKeyed routes a graph-keyed call (reference solve, graph
// download, job submission) with an extra layer above transient
// failover: a replica answering 404 means "this node does not hold the
// graph" — which happens transiently after membership changes, because
// placement recomputes instantly but bytes only move on the next PUT —
// so the walk drops that node and asks the remaining candidates before
// accepting "not found" as the cluster's answer.
func (g *Gateway) forwardGraphKeyed(w http.ResponseWriter, r *http.Request, endpoint, key string, body []byte, candidates []string) {
	resp, err := g.forwardWalk(r, endpoint, r.Method, r.URL.Path, r.URL.RawQuery, body, candidates)
	if err != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadGateway,
			fmt.Errorf("all replicas failed: %w", err))
		return
	}
	if key != "" && resp.status < 500 {
		g.rememberSticky(key, resp.node)
	}
	g.relay(w, resp)
}

// forwardWalk implements the 404 walk: forward with transient failover,
// and when the answering node says 404, drop it from the candidate set
// and ask the rest. Returns the first non-404 answer, the last 404 once
// every candidate has disclaimed the graph, or an error if every
// candidate died in transport without any 404 to fall back on.
func (g *Gateway) forwardWalk(r *http.Request, endpoint, method, path, rawQuery string, body []byte, candidates []string) (*nodeResponse, error) {
	remaining := candidates
	var notFound *nodeResponse
	for len(remaining) > 0 {
		resp, err := g.forward(r, endpoint, method, path, rawQuery, body, remaining)
		if err != nil {
			if notFound != nil {
				return notFound, nil
			}
			return nil, err
		}
		if resp.status == http.StatusNotFound {
			notFound = resp
			next := remaining[:0:0]
			for _, c := range remaining {
				if c != resp.node {
					next = append(next, c)
				}
			}
			remaining = next
			continue
		}
		return resp, nil
	}
	if notFound != nil {
		return notFound, nil
	}
	return nil, fmt.Errorf("no nodes available for %s", path)
}

// graphCandidates is the failover order for graph-keyed work: the
// graph's replica set first (sticky node leading), then every other
// ring member — the 404 walk's last resort for graphs stranded by
// membership changes.
func (g *Gateway) graphCandidates(key string) []string {
	out := g.routeOrder(key, g.replicasFor(key))
	seen := make(map[string]bool, len(out))
	for _, n := range out {
		seen[n] = true
	}
	for _, n := range g.healthyNodes() {
		if !seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// --- /v1/graphs (collection) ---

func (g *Gateway) handleGraphList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		g.methodNotAllowed(w, r, http.MethodGet)
		return
	}
	// Every node holds a shard; the cluster listing is the union, deduped
	// by name (replicas report the same graph R times).
	type listBody struct {
		Graphs     []json.RawMessage `json:"graphs"`
		TotalBytes int64             `json:"totalBytes"`
	}
	seen := make(map[string]bool)
	var merged listBody
	merged.Graphs = []json.RawMessage{}
	var firstErr error
	for _, node := range g.healthyNodes() {
		resp, err := g.forward(r, "/v1/graphs", http.MethodGet, "/v1/graphs", r.URL.RawQuery, nil, []string{node})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if resp.status != http.StatusOK {
			continue
		}
		var lb listBody
		if err := json.Unmarshal(resp.body, &lb); err != nil {
			continue
		}
		for _, raw := range lb.Graphs {
			var meta struct {
				Name  string `json:"name"`
				Bytes int64  `json:"bytes"`
			}
			if err := json.Unmarshal(raw, &meta); err != nil || meta.Name == "" || seen[meta.Name] {
				continue
			}
			seen[meta.Name] = true
			merged.Graphs = append(merged.Graphs, raw)
			merged.TotalBytes += meta.Bytes
		}
	}
	if len(seen) == 0 && firstErr != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadGateway,
			fmt.Errorf("listing graphs: %w", firstErr))
		return
	}
	writeJSON(w, merged)
}

// --- /v1/graphs/{name} ---

func (g *Gateway) handleGraph(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/graphs/")
	if name == "" || strings.Contains(name, "/") {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusNotFound,
			fmt.Errorf("no such graph route"))
		return
	}
	switch r.Method {
	case http.MethodPut:
		g.replicateGraph(w, r, name)
	case http.MethodGet, http.MethodHead:
		g.forwardGraphKeyed(w, r, "/v1/graphs/{name}", name, nil, g.graphCandidates(name))
	case http.MethodDelete:
		g.deleteGraph(w, r, name)
	default:
		g.methodNotAllowed(w, r, http.MethodPut, http.MethodGet, http.MethodHead, http.MethodDelete)
	}
}

// replicateGraph fans a PUT out to the graph's R-replica set: the
// primary's answer is authoritative (its ETag/body relay to the client);
// secondaries reconcile by conditional HEAD — a replica that already
// holds the content hash (304) is not re-uploaded.
func (g *Gateway) replicateGraph(w http.ResponseWriter, r *http.Request, name string) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	replicas := g.replicasFor(name)
	if len(replicas) == 0 {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusServiceUnavailable,
			fmt.Errorf("ring is empty (all nodes drained?)"))
		return
	}
	primaryResp, err := g.forward(r, "/v1/graphs/{name}", http.MethodPut, r.URL.Path, r.URL.RawQuery, body, replicas[:1])
	if err != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadGateway,
			fmt.Errorf("primary write failed: %w", err))
		return
	}
	if primaryResp.status >= 300 {
		// The primary rejected the upload (bad body, name, size): nothing
		// to replicate, relay the verdict.
		g.relay(w, primaryResp)
		return
	}
	etag := primaryResp.header.Get("ETag")
	for _, secondary := range replicas[1:] {
		g.replicateOne(r, secondary, r.URL.Path, r.URL.RawQuery, body, etag)
	}
	g.rememberSticky(name, primaryResp.node)
	w.Header().Set("X-Prefcover-Replicas", strconv.Itoa(len(replicas)))
	g.relay(w, primaryResp)
}

// replicateOne writes one secondary replica, skipping the upload when a
// conditional HEAD proves the replica already holds these exact bytes
// (304 against the primary's ETag — the content hash, so "same ETag"
// means "same canonical graph encoding").
func (g *Gateway) replicateOne(r *http.Request, node, path, rawQuery string, body []byte, etag string) {
	if etag != "" {
		probe := r.Clone(r.Context())
		probe.Header = http.Header{"If-None-Match": {etag}}
		if id := r.Header.Get("X-Request-ID"); id != "" {
			probe.Header.Set("X-Request-ID", id)
		}
		if tp := r.Header.Get(trace.TraceparentHeader); tp != "" {
			probe.Header.Set(trace.TraceparentHeader, tp)
		}
		head, err := g.forward(probe, "/v1/graphs/{name}", http.MethodHead, path, "", nil, []string{node})
		if err == nil && head.status == http.StatusNotModified {
			g.met.replication.With("reconciled").Inc()
			return
		}
	}
	resp, err := g.forward(r, "/v1/graphs/{name}", http.MethodPut, path, rawQuery, body, []string{node})
	if err != nil || resp.status >= 300 {
		g.met.replication.With("failed").Inc()
		if g.logger != nil {
			msg := "replication write failed"
			if err != nil {
				g.logger.Warn(msg, "node", node, "graph", path, "error", err.Error())
			} else {
				g.logger.Warn(msg, "node", node, "graph", path, "status", resp.status)
			}
		}
		return
	}
	g.met.replication.With("stored").Inc()
}

// deleteGraph fans the delete out to every replica; 200 if any replica
// held it.
func (g *Gateway) deleteGraph(w http.ResponseWriter, r *http.Request, name string) {
	replicas := g.replicasFor(name)
	var best *nodeResponse
	for _, node := range replicas {
		resp, err := g.forward(r, "/v1/graphs/{name}", http.MethodDelete, r.URL.Path, r.URL.RawQuery, nil, []string{node})
		if err != nil {
			continue
		}
		if best == nil || resp.status < best.status {
			best = resp
		}
	}
	g.forgetSticky(name)
	if best == nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadGateway,
			fmt.Errorf("all replicas failed to delete %s", name))
		return
	}
	g.relay(w, best)
}

// --- /v1/solve ---

// solveRefBody is the part of a solve body the gateway routes on.
type solveRefBody struct {
	GraphRef string `json:"graph_ref"`
}

func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		g.methodNotAllowed(w, r, http.MethodPost)
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	// Reference solves are sticky-routed to the graph's replica set so
	// repeat solves hit a warm prefix cache; inline solves carry their
	// graph with them and go wherever load is lowest.
	var ref solveRefBody
	_ = json.Unmarshal(body, &ref)
	if ref.GraphRef != "" {
		g.met.routed.With("sticky").Inc()
		g.forwardGraphKeyed(w, r, "/v1/solve", ref.GraphRef, body, g.graphCandidates(ref.GraphRef))
		return
	}
	g.met.routed.With("least_loaded").Inc()
	g.forwardAndRelay(w, r, "/v1/solve", "", body, g.healthyNodes())
}

// handleCompute serves the stateless compute endpoints (adapt, pipeline,
// stats): any healthy node can answer, least-loaded first.
func (g *Gateway) handleCompute(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			g.methodNotAllowed(w, r, http.MethodPost)
			return
		}
		body, ok := g.readBody(w, r)
		if !ok {
			return
		}
		g.met.routed.With("least_loaded").Inc()
		g.forwardAndRelay(w, r, endpoint, "", body, g.healthyNodes())
	}
}

// --- /v1/jobs ---

func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		g.submitJob(w, r)
	case http.MethodGet:
		g.listJobs(w, r)
	default:
		g.methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

// submitJob routes an async solve to the referenced graph's replica set
// (the job's worker solves against the local registry, so the job must
// land on a node that holds the graph) and records which node accepted
// it for later status polls.
func (g *Gateway) submitJob(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	req, err := jobs.ParseRequest(body)
	if err != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadRequest, err)
		return
	}
	candidates := g.graphCandidates(req.GraphRef)
	resp, ferr := g.forwardWalk(r, "/v1/jobs", http.MethodPost, r.URL.Path, r.URL.RawQuery, body, candidates)
	if ferr != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadGateway,
			fmt.Errorf("all replicas failed: %w", ferr))
		return
	}
	if resp.status == http.StatusAccepted {
		var payload struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(resp.body, &payload) == nil {
			g.rememberJob(payload.ID, resp.node)
		}
		g.rememberSticky(req.GraphRef, resp.node)
	}
	g.relay(w, resp)
}

// listJobs merges the queue listing across every healthy node.
func (g *Gateway) listJobs(w http.ResponseWriter, r *http.Request) {
	merged := []json.RawMessage{}
	var firstErr error
	got := false
	for _, node := range g.healthyNodes() {
		resp, err := g.forward(r, "/v1/jobs", http.MethodGet, "/v1/jobs", r.URL.RawQuery, nil, []string{node})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if resp.status != http.StatusOK {
			continue
		}
		var lb struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		if json.Unmarshal(resp.body, &lb) == nil {
			merged = append(merged, lb.Jobs...)
			got = true
		}
	}
	if !got && firstErr != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadGateway,
			fmt.Errorf("listing jobs: %w", firstErr))
		return
	}
	writeJSON(w, map[string]any{"jobs": merged})
}

// handleJob routes job status/cancel to the node that accepted the job;
// unknown IDs (gateway restarted, map evicted) fall back to asking every
// node until one recognizes it.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusNotFound,
			fmt.Errorf("no such job route"))
		return
	}
	if owner := g.jobNode(id); owner != "" {
		resp, err := g.forward(r, "/v1/jobs/{id}", r.Method, r.URL.Path, r.URL.RawQuery, nil, []string{owner})
		if err == nil && resp.status != http.StatusNotFound {
			g.relay(w, resp)
			return
		}
	}
	var notFound *nodeResponse
	for _, node := range g.healthyNodes() {
		resp, err := g.forward(r, "/v1/jobs/{id}", r.Method, r.URL.Path, r.URL.RawQuery, nil, []string{node})
		if err != nil {
			continue
		}
		if resp.status == http.StatusNotFound {
			notFound = resp
			continue
		}
		g.rememberJob(id, node)
		g.relay(w, resp)
		return
	}
	if notFound != nil {
		g.relay(w, notFound)
		return
	}
	g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadGateway,
		fmt.Errorf("no node could answer for job %s", id))
}

func (g *Gateway) methodNotAllowed(w http.ResponseWriter, r *http.Request, allowed ...string) {
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusMethodNotAllowed,
		fmt.Errorf("method %s not allowed", r.Method))
}

// sanitizeRequestID mirrors the server's inbound-ID policy: printable
// ASCII up to 128 bytes, no quotes or backslashes.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

// forwardObserver wires retry lifecycle events into the failover
// counters.
type forwardObserver struct {
	g        *Gateway
	endpoint string
}

func (o *forwardObserver) Attempt() {}

func (o *forwardObserver) Retry(_ time.Duration, _ bool, _ error) {
	o.g.met.failovers.With(o.endpoint).Inc()
}

func (o *forwardObserver) GiveUp(error) {
	o.g.met.giveUps.With(o.endpoint).Inc()
}
