package cluster

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"prefcover/internal/apiclient"
)

// nodeState is the gateway's view of one backend, refreshed by the
// readiness prober and degraded immediately by forward failures (a node
// that just dropped a connection should not wait a probe interval to
// stop receiving traffic).
type nodeState struct {
	mu sync.Mutex

	healthy  bool
	draining bool
	lastErr  string
	lastSeen time.Time

	// Load signals from /readyz, the least-loaded tiebreak inputs.
	graphs     int
	queueDepth int
	queueCap   int
	running    int
	inFlight   int
}

// nodeSnapshot is the lock-free copy handed to routing and debug pages.
type nodeSnapshot struct {
	URL        string    `json:"url"`
	Healthy    bool      `json:"healthy"`
	Draining   bool      `json:"draining"`
	LastErr    string    `json:"lastError,omitempty"`
	LastSeen   time.Time `json:"lastSeen,omitempty"`
	Graphs     int       `json:"graphs"`
	QueueDepth int       `json:"queueDepth"`
	QueueCap   int       `json:"queueCap"`
	Running    int       `json:"running"`
	InFlight   int       `json:"inFlight"`
}

// load is the least-loaded routing score: work the node is already
// committed to. Lower routes sooner.
func (n nodeSnapshot) load() int { return n.QueueDepth + n.Running + n.InFlight }

func (ns *nodeState) snapshot(url string) nodeSnapshot {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return nodeSnapshot{
		URL:        url,
		Healthy:    ns.healthy,
		Draining:   ns.draining,
		LastErr:    ns.lastErr,
		LastSeen:   ns.lastSeen,
		Graphs:     ns.graphs,
		QueueDepth: ns.queueDepth,
		QueueCap:   ns.queueCap,
		Running:    ns.running,
		InFlight:   ns.inFlight,
	}
}

// readyBody mirrors the server's /readyz response shape.
type readyBody struct {
	Status     string `json:"status"`
	Graphs     int    `json:"graphs"`
	QueueDepth int    `json:"queueDepth"`
	QueueCap   int    `json:"queueCap"`
	Running    int    `json:"running"`
	InFlight   int    `json:"inFlight"`
}

// probeLoop drives readiness probes for every known node (drained ones
// included, so an operator can watch a drained node recover before
// undraining it) until stop is closed.
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	ticker := time.NewTicker(g.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.probeStop:
			return
		case <-ticker.C:
			g.probeAll()
		}
	}
}

// probeAll probes every known node once, concurrently.
func (g *Gateway) probeAll() {
	g.mu.Lock()
	urls := make([]string, 0, len(g.nodes))
	for u := range g.nodes {
		urls = append(urls, u)
	}
	g.mu.Unlock()
	sort.Strings(urls)

	var wg sync.WaitGroup
	for _, u := range urls {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			g.probeNode(u)
		}(u)
	}
	wg.Wait()
	g.updateRingGauges()
}

// probeNode performs one readiness probe and folds the result into the
// node's state.
func (g *Gateway) probeNode(url string) {
	ns := g.state(url)
	if ns == nil {
		return
	}
	req, err := http.NewRequest(http.MethodGet, url+"/readyz", nil)
	if err != nil {
		g.setProbeResult(url, ns, false, "bad probe url: "+err.Error(), nil)
		g.met.probes.With(url, "error").Inc()
		return
	}
	req, cancel := apiclient.WithTimeout(req, g.opts.ProbeTimeout)
	defer cancel()
	resp, err := g.client.Do(req)
	if err != nil {
		g.setProbeResult(url, ns, false, err.Error(), nil)
		g.met.probes.With(url, "error").Inc()
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	var rb readyBody
	// The body decodes on both 200 and 503 (saturated nodes still report
	// their load); a decode failure leaves the previous load numbers.
	decoded := json.Unmarshal(body, &rb) == nil
	switch {
	case resp.StatusCode == http.StatusOK:
		if decoded {
			g.setProbeResult(url, ns, true, "", &rb)
		} else {
			g.setProbeResult(url, ns, true, "", nil)
		}
		g.met.probes.With(url, "ready").Inc()
	default:
		msg := "readiness probe: " + resp.Status
		if decoded {
			g.setProbeResult(url, ns, false, msg, &rb)
		} else {
			g.setProbeResult(url, ns, false, msg, nil)
		}
		g.met.probes.With(url, "unready").Inc()
	}
}

func (g *Gateway) setProbeResult(url string, ns *nodeState, healthy bool, errMsg string, rb *readyBody) {
	ns.mu.Lock()
	wasHealthy := ns.healthy
	ns.healthy = healthy
	ns.lastErr = errMsg
	ns.lastSeen = time.Now()
	if rb != nil {
		ns.graphs = rb.Graphs
		ns.queueDepth = rb.QueueDepth
		ns.queueCap = rb.QueueCap
		ns.running = rb.Running
		ns.inFlight = rb.InFlight
	}
	ns.mu.Unlock()
	if healthy {
		g.met.nodeHealthy.With(url).Set(1)
	} else {
		g.met.nodeHealthy.With(url).Set(0)
	}
	if wasHealthy != healthy && g.logger != nil {
		lvl := slog.LevelWarn
		verdict := "unhealthy"
		if healthy {
			lvl = slog.LevelInfo
			verdict = "healthy"
		}
		g.logger.LogAttrs(context.Background(), lvl, "node health changed",
			slog.String("node", url),
			slog.String("state", verdict),
			slog.String("error", errMsg),
		)
	}
}

// markFailure degrades a node immediately after a failed forward attempt:
// routing prefers other replicas until the next successful probe restores
// it. kind is "transport" or "status".
func (g *Gateway) markFailure(url, kind string, err error) {
	g.met.nodeFailures.With(url, kind).Inc()
	ns := g.state(url)
	if ns == nil {
		return
	}
	ns.mu.Lock()
	ns.healthy = false
	if err != nil {
		ns.lastErr = err.Error()
	}
	ns.mu.Unlock()
	g.met.nodeHealthy.With(url).Set(0)
}

// state returns the tracked state for url, or nil for unknown nodes.
func (g *Gateway) state(url string) *nodeState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nodes[url]
}

// snapshots returns the state of every known node, sorted by URL.
func (g *Gateway) snapshots() []nodeSnapshot {
	g.mu.Lock()
	states := make(map[string]*nodeState, len(g.nodes))
	for u, ns := range g.nodes {
		states[u] = ns
	}
	g.mu.Unlock()
	out := make([]nodeSnapshot, 0, len(states))
	for u, ns := range states {
		out = append(out, ns.snapshot(u))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

func (g *Gateway) updateRingGauges() {
	g.met.ringNodes.With().Set(int64(g.ring.Len()))
}
