package cluster

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestNormalizeNodeURL(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"http://a:7070", "http://a:7070", true},
		{"https://a:7070/", "https://a:7070", true},
		{"a:7070", "http://a:7070", true},
		{" 10.0.0.1:7070 ", "http://10.0.0.1:7070", true},
		{"", "", false},
		{"ftp://a:7070", "", false},
		{"http://a:7070/path", "", false},
	}
	for _, c := range cases {
		got, err := normalizeNodeURL(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("normalizeNodeURL(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("normalizeNodeURL(%q) accepted, want error", c.in)
		}
	}
}

func TestNewRejectsEmptyAndDuplicateNodes(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New with no nodes should fail")
	}
	if _, err := New(Options{Nodes: []string{"http://a:1", "a:1"}}); err == nil {
		t.Error("New with duplicate nodes should fail")
	}
}

// The control-plane surface, against a live 3-node cluster: state JSON,
// drain/undrain/join validation, gateway readiness, and the metrics and
// statusz pages carrying the cluster families.
func TestGatewayControlPlane(t *testing.T) {
	fx := bootCluster(t, 3)
	defer fx.close()
	gwURL := fx.harness.GatewayURL()
	client := http.DefaultClient

	resp, body := doGW(t, client, http.MethodGet, gwURL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway /readyz = %d (%s)", resp.StatusCode, body)
	}

	resp, body = doGW(t, client, http.MethodGet, gwURL+"/debug/cluster", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/cluster = %d", resp.StatusCode)
	}
	var st clusterState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.RingNodes) != 3 || st.Replicas != 2 || len(st.Nodes) != 3 {
		t.Fatalf("cluster state: ring=%d replicas=%d nodes=%d", len(st.RingNodes), st.Replicas, len(st.Nodes))
	}
	for _, ns := range st.Nodes {
		if !ns.Healthy {
			t.Errorf("node %s unhealthy in a fresh cluster: %s", ns.URL, ns.LastErr)
		}
	}

	// Action validation.
	for _, bad := range []string{
		"?action=drain&node=http://unknown:1",
		"?action=nonsense&node=" + st.RingNodes[0],
		"?action=drain&node=ftp://x",
	} {
		resp, _ := doGW(t, client, http.MethodPost, gwURL+"/debug/cluster"+bad, nil)
		if resp.StatusCode < 400 {
			t.Errorf("POST /debug/cluster%s = %d, want an error", bad, resp.StatusCode)
		}
	}

	// Drain is idempotence-checked, undrain restores.
	victim := st.RingNodes[0]
	resp, _ = doGW(t, client, http.MethodPost, gwURL+"/debug/cluster?action=drain&node="+victim, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d", resp.StatusCode)
	}
	if fx.gw.Ring().Contains(victim) {
		t.Fatal("drained node still on the ring")
	}
	resp, _ = doGW(t, client, http.MethodPost, gwURL+"/debug/cluster?action=drain&node="+victim, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double drain = %d, want 409", resp.StatusCode)
	}
	resp, _ = doGW(t, client, http.MethodPost, gwURL+"/debug/cluster?action=undrain&node="+victim, nil)
	if resp.StatusCode != http.StatusOK || !fx.gw.Ring().Contains(victim) {
		t.Fatalf("undrain = %d, on ring: %v", resp.StatusCode, fx.gw.Ring().Contains(victim))
	}

	// The metric families the dashboards scrape must be exposed.
	resp, body = doGW(t, client, http.MethodGet, gwURL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, family := range []string{
		"prefcover_gateway_ring_nodes",
		"prefcover_gateway_node_healthy",
		"prefcover_gateway_probes_total",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	resp, body = doGW(t, client, http.MethodGet, gwURL+"/debug/statusz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "prefcover cluster gateway") {
		t.Fatalf("/debug/statusz = %d", resp.StatusCode)
	}
	for _, ns := range st.Nodes {
		if !strings.Contains(string(body), ns.URL) {
			t.Errorf("statusz does not list node %s", ns.URL)
		}
	}
}

// A node joined at runtime starts taking placements: after join the ring
// has K+1 members and ~1/(K+1) of fresh placements land on it.
func TestGatewayJoin(t *testing.T) {
	fx := bootCluster(t, 3)
	defer fx.close()
	gwURL := fx.harness.GatewayURL()

	// Boot a 4th node out-of-band and join it through the gateway.
	extraFx := bootCluster(t, 1)
	defer extraFx.close()
	extra := extraFx.harness.NodeURLs()[0]

	resp, body := doGW(t, http.DefaultClient, http.MethodPost,
		gwURL+"/debug/cluster?action=join&node="+extra, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join = %d (%s)", resp.StatusCode, body)
	}
	if fx.gw.Ring().Len() != 4 {
		t.Fatalf("ring has %d nodes after join, want 4", fx.gw.Ring().Len())
	}
	shares := fx.gw.Ring().LoadShares(4096)
	if s := shares[extra]; s < 0.10 || s > 0.45 {
		t.Errorf("joined node holds %.3f of placements, want ~0.25", s)
	}
	resp, _ = doGW(t, http.DefaultClient, http.MethodPost,
		gwURL+"/debug/cluster?action=join&node="+extra, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double join = %d, want 409", resp.StatusCode)
	}
}
