package cluster

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"time"

	"prefcover/internal/metrics"
	"prefcover/internal/tsdb"
)

// clusterState is the /debug/cluster GET body: ring membership, per-node
// health/load, placement balance, and the gateway's routing maps' sizes.
type clusterState struct {
	Replicas   int                `json:"replicas"`
	VNodes     int                `json:"vnodes"`
	RingNodes  []string           `json:"ringNodes"`
	Nodes      []nodeSnapshot     `json:"nodes"`
	LoadShares map[string]float64 `json:"loadShares"`
	StickyKeys int                `json:"stickyKeys"`
	TrackedJbs int                `json:"trackedJobs"`
}

func (g *Gateway) currentState() clusterState {
	g.mu.Lock()
	sticky := len(g.sticky)
	jobs := len(g.jobOwner)
	g.mu.Unlock()
	return clusterState{
		Replicas:   g.opts.Replicas,
		VNodes:     g.ring.VNodes(),
		RingNodes:  g.ring.Nodes(),
		Nodes:      g.snapshots(),
		LoadShares: g.ring.LoadShares(0),
		StickyKeys: sticky,
		TrackedJbs: jobs,
	}
}

// handleCluster is the runtime membership control plane:
//
//	GET  /debug/cluster                    -> cluster state JSON
//	POST /debug/cluster?action=drain&node=URL    remove from ring, keep probing
//	POST /debug/cluster?action=undrain&node=URL  restore a drained node
//	POST /debug/cluster?action=join&node=URL     add a brand-new node
//	POST /debug/cluster?action=probe             force an immediate probe round
//
// Draining removes the node from placement and routing but keeps its
// state and probes alive, so an operator can watch it recover (or
// restart it) and undrain without re-describing it. Join both registers
// and ring-adds in one step. Graphs already replicated to a drained
// node stay there; new placements simply skip it.
func (g *Gateway) handleCluster(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, g.currentState())
	case http.MethodPost:
		g.handleClusterAction(w, r)
	default:
		g.methodNotAllowed(w, r, http.MethodGet, http.MethodPost)
	}
}

func (g *Gateway) handleClusterAction(w http.ResponseWriter, r *http.Request) {
	action := r.URL.Query().Get("action")
	if action == "probe" {
		g.probeAll()
		writeJSON(w, g.currentState())
		return
	}
	node, err := normalizeNodeURL(r.URL.Query().Get("node"))
	if err != nil {
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadRequest, err)
		return
	}
	switch action {
	case "drain":
		if g.state(node) == nil {
			g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusNotFound,
				fmt.Errorf("unknown node %s", node))
			return
		}
		if !g.ring.Remove(node) {
			g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusConflict,
				fmt.Errorf("node %s is already drained", node))
			return
		}
		g.setDraining(node, true)
		g.dropStickyTo(node)
	case "undrain":
		ns := g.state(node)
		if ns == nil {
			g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusNotFound,
				fmt.Errorf("unknown node %s", node))
			return
		}
		if !g.ring.Add(node) {
			g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusConflict,
				fmt.Errorf("node %s is not drained", node))
			return
		}
		g.setDraining(node, false)
	case "join":
		g.mu.Lock()
		if g.nodes[node] == nil {
			g.nodes[node] = &nodeState{healthy: false}
		}
		g.mu.Unlock()
		if !g.ring.Add(node) {
			g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusConflict,
				fmt.Errorf("node %s is already a member", node))
			return
		}
		// Joining shifts ~1/N of placements onto the new node; cached
		// routes for moved graphs would dodge it forever, so reset them.
		g.mu.Lock()
		g.sticky = make(map[string]string)
		g.mu.Unlock()
		g.probeNode(node)
	default:
		g.writeGatewayError(w, r.Header.Get("X-Request-ID"), http.StatusBadRequest,
			fmt.Errorf("unknown action %q (want drain|undrain|join|probe)", action))
		return
	}
	g.updateRingGauges()
	if g.logger != nil {
		g.logger.Info("cluster membership changed", "action", action, "node", node,
			"ring_nodes", g.ring.Len())
	}
	writeJSON(w, g.currentState())
}

func (g *Gateway) setDraining(node string, draining bool) {
	if ns := g.state(node); ns != nil {
		ns.mu.Lock()
		ns.draining = draining
		ns.mu.Unlock()
	}
}

// dropStickyTo forgets sticky routes pointing at a node leaving the
// ring. Job ownership is kept: a drained node still answers status polls
// for jobs it accepted.
func (g *Gateway) dropStickyTo(node string) {
	g.mu.Lock()
	for k, n := range g.sticky {
		if n == node {
			delete(g.sticky, k)
		}
	}
	g.mu.Unlock()
}

// handleTraces dumps the gateway's flight recorder: Chrome trace JSON by
// default, a text tree under Accept: text/plain.
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = g.tracer.WriteTree(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = g.tracer.WriteChrome(w)
}

// handleStatusz renders the one-page cluster dashboard: membership and
// health, per-node RED stats from the gateway's own metric families, and
// the failover/replication counters.
func (g *Gateway) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := g.currentState()
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><title>prefcover gateway statusz</title>
<style>
body{font-family:sans-serif;margin:2em;color:#222}
table{border-collapse:collapse;margin:1em 0}
td,th{border:1px solid #ccc;padding:4px 10px;text-align:left;font-size:14px}
th{background:#f3f3f3}
h1{font-size:22px}h2{font-size:17px;margin-top:1.6em}
.ok{color:#070}.bad{color:#b00}.drain{color:#a60}
small{color:#777}
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>prefcover cluster gateway</h1>\n")
	fmt.Fprintf(&b, "<p>uptime %s · ring %d nodes · R=%d · %d vnodes/node · %d sticky routes · %d tracked jobs</p>\n",
		time.Since(g.start).Round(time.Second), len(st.RingNodes), st.Replicas, st.VNodes,
		st.StickyKeys, st.TrackedJbs)

	// With federation on, the Nodes panel carries live rate columns
	// derived from the tsdb snapshot ring: request rate over the fast SLO
	// window plus a sparkline of per-interval rates over the slow window.
	var db *tsdb.DB
	var fastWin, slowWin time.Duration
	if g.monitor != nil {
		db = g.monitor.DB()
		fastWin, slowWin, _ = g.monitor.Windows()
	}
	scrapeErrs := g.scrapeErrors()

	b.WriteString("<h2>Nodes</h2>\n<table><tr><th>node</th><th>state</th><th>ring share</th><th>graphs</th><th>queue</th><th>running</th><th>in-flight</th><th>req/s</th><th>trend</th><th>last probe</th><th>last error</th></tr>\n")
	for _, ns := range st.Nodes {
		state, class := "healthy", "ok"
		switch {
		case ns.Draining:
			state, class = "draining", "drain"
		case !ns.Healthy:
			state, class = "unhealthy", "bad"
		}
		share := "-"
		if s, ok := st.LoadShares[ns.URL]; ok {
			share = fmt.Sprintf("%.1f%%", s*100)
		}
		seen := "-"
		if !ns.LastSeen.IsZero() {
			seen = time.Since(ns.LastSeen).Round(time.Millisecond).String() + " ago"
		}
		rate, spark := "-", "-"
		if db != nil {
			match := map[string]string{"node": ns.URL}
			if r, ok := db.RateSum("prefcover_node_http_requests_total", match, fastWin); ok {
				rate = fmt.Sprintf("%.1f/s", r)
			}
			pts := db.RatePoints("prefcover_node_http_requests_total", match, slowWin)
			if len(pts) > 0 {
				vals := make([]float64, len(pts))
				for i, p := range pts {
					vals[i] = p.Value
				}
				spark = tsdb.Spark(vals)
			}
		}
		lastErr := ns.LastErr
		if e := scrapeErrs[ns.URL]; e != "" {
			if lastErr != "" {
				lastErr += "; "
			}
			lastErr += "scrape: " + e
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td class=%q>%s</td><td>%s</td><td>%d</td><td>%d/%d</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td><small>%s</small></td></tr>\n",
			html.EscapeString(ns.URL), class, state, share, ns.Graphs,
			ns.QueueDepth, ns.QueueCap, ns.Running, ns.InFlight,
			rate, spark, seen, html.EscapeString(lastErr))
	}
	b.WriteString("</table>\n")

	b.WriteString("<h2>Forwarded traffic (RED)</h2>\n<table><tr><th>node</th><th>endpoint</th><th>requests</th><th>p50</th><th>p99</th></tr>\n")
	type redRow struct {
		node, endpoint string
		count          int64
		p50, p99       float64
	}
	var rows []redRow
	g.met.latency.Each(func(labels []string, h *metrics.Histogram) {
		rows = append(rows, redRow{
			node: labels[0], endpoint: labels[1],
			count: h.Count(), p50: h.Quantile(0.5), p99: h.Quantile(0.99),
		})
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].node != rows[j].node {
			return rows[i].node < rows[j].node
		}
		return rows[i].endpoint < rows[j].endpoint
	})
	for _, row := range rows {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%.1fms</td><td>%.1fms</td></tr>\n",
			html.EscapeString(row.node), html.EscapeString(row.endpoint),
			row.count, row.p50*1000, row.p99*1000)
	}
	b.WriteString("</table>\n")

	b.WriteString(`<p><a href="/metrics">/metrics</a> · <a href="/debug/cluster">/debug/cluster</a> · <a href="/debug/slo">/debug/slo</a> · <a href="/debug/traces">/debug/traces</a></p>`)
	b.WriteString("</body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
