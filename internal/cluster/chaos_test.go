package cluster

// The cluster-level chaos suite: K=3 real in-process prefcoverd nodes
// behind the gateway, R=2 replication, a seeded fault injector armed on
// one node. The claims:
//
//   - placement: every uploaded graph lands on exactly its ring-computed
//     R-replica set, and a re-upload reconciles (304) instead of
//     re-transferring;
//   - failover: with one node under faults, solves through the gateway
//     keep succeeding, and the gateway's failure accounting reconciles
//     exactly — injected faults == failed forward attempts == failovers
//     + give-ups (the gateway's transport has keep-alives disabled so
//     connection resets surface exactly once, and nothing else in this
//     configuration can produce a transient);
//   - the cluster-level differential oracle: once faults stop, the
//     gateway and every replica return the identical ordered prefix for
//     the same (graph, variant, k) as a fresh local solve — replicas
//     cannot drift apart under chaos because the greedy solver is
//     deterministic;
//   - zero goroutine leaks after teardown.
//
// CHAOS_SEEDS=1,7,1337 runs one fault schedule per seed, exactly like
// internal/server's suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"prefcover"
	"prefcover/internal/chaostest"
	"prefcover/internal/faults"
	"prefcover/internal/graphtest"
	"prefcover/internal/jobs"
	"prefcover/internal/metrics"
	"prefcover/internal/server"
	"prefcover/internal/store"
)

func chaosSeeds(t *testing.T) []int64 {
	raw := os.Getenv("CHAOS_SEEDS")
	if raw == "" {
		return []int64{1}
	}
	var out []int64
	for _, tok := range strings.Split(raw, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: bad seed %q: %v", tok, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		t.Fatal("CHAOS_SEEDS set but contained no seeds")
	}
	return out
}

func TestChaosCluster(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runChaosCluster(t, seed) })
	}
}

// clusterFixture is the booted cluster: K prefcoverd servers, their
// graphs, the gateway, and the harness tying them together.
type clusterFixture struct {
	harness *chaostest.ClusterHarness
	servers []*server.Server
	gw      *Gateway
	graphs  map[string]*prefcover.Graph
}

func bootCluster(t *testing.T, k int) *clusterFixture {
	t.Helper()
	fx := &clusterFixture{servers: make([]*server.Server, k), graphs: map[string]*prefcover.Graph{}}
	fx.harness = chaostest.NewClusterHarness(k, func(i int) chaostest.ClusterNode {
		srv, err := server.NewWithConfig(server.Config{
			Store: store.Options{Dir: t.TempDir()},
			Jobs:  jobs.Options{Workers: 2, QueueDepth: 256},
		})
		if err != nil {
			t.Fatal(err)
		}
		fx.servers[i] = srv
		ts := httptest.NewServer(srv.Handler())
		return chaostest.ClusterNode{Server: ts, URL: ts.URL}
	})
	gw, err := New(Options{
		Nodes:    fx.harness.NodeURLs(),
		Replicas: 2,
		// Fast probes so a failure-marked node rejoins rotation quickly
		// and keeps drawing from the fault schedule.
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		MaxAttempts:   4,
		RetryBase:     time.Millisecond,
		// Keep-alives off gateway->node: a reused connection would let
		// net/http transparently replay a request whose connection died,
		// swallowing an injected reset before the failover layer saw it.
		DisableKeepAlives: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.gw = gw
	fx.harness.SetGateway(httptest.NewServer(gw.Handler()))
	return fx
}

func (fx *clusterFixture) close() {
	fx.harness.Close()
	fx.gw.Close()
	for _, s := range fx.servers {
		if s != nil {
			s.Close()
		}
	}
}

// doGW performs one request against the gateway with no client-side
// retries: failover is the gateway's job, and a retrying client would
// blur the accounting.
func doGW(t *testing.T, client *http.Client, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("%s %s: reading body: %v", method, url, err)
	}
	return resp, data
}

func graphBody(t *testing.T, g *prefcover.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := prefcover.WriteGraphJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sumCounters(cv *metrics.CounterVec) int64 {
	var total int64
	cv.Each(func(_ []string, c *metrics.Counter) { total += c.Value() })
	return total
}

func runChaosCluster(t *testing.T, seed int64) {
	baseline := chaostest.GoroutineBaseline()
	fx := bootCluster(t, 3)
	gwURL := fx.harness.GatewayURL()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	// ---- Setup: upload the catalog through the gateway, faults off. ----
	names := []string{"alpha", "beta", "gamma"}
	for i, name := range names {
		g := graphtest.Random(rand.New(rand.NewSource(int64(100+i))), 400+50*i, 6, prefcover.Independent)
		fx.graphs[name] = g
		resp, body := doGW(t, client, http.MethodPut, gwURL+"/v1/graphs/"+name, graphBody(t, g))
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %s through gateway = %d (%s)", name, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Prefcover-Replicas"); got != "2" {
			t.Errorf("PUT %s: X-Prefcover-Replicas = %q, want 2", name, got)
		}
	}

	// Placement: each graph must live on exactly its ring-computed
	// replica set — present on both replicas, absent elsewhere.
	urls := fx.harness.NodeURLs()
	for _, name := range names {
		replicas := map[string]bool{}
		for _, n := range fx.gw.Ring().Lookup(name, 2) {
			replicas[n] = true
		}
		for _, u := range urls {
			resp, _ := doGW(t, client, http.MethodGet, u+"/v1/graphs/"+name, nil)
			switch {
			case replicas[u] && resp.StatusCode != http.StatusOK:
				t.Errorf("replica %s of %s: GET = %d, want 200", u, name, resp.StatusCode)
			case !replicas[u] && resp.StatusCode != http.StatusNotFound:
				t.Errorf("non-replica %s of %s: GET = %d, want 404", u, name, resp.StatusCode)
			}
		}
	}

	// Re-upload: the primary accepts the same bytes, the secondary
	// reconciles by ETag (304) instead of re-storing.
	before := fx.gw.met.replication.With("reconciled").Value()
	for _, name := range names {
		resp, body := doGW(t, client, http.MethodPut, gwURL+"/v1/graphs/"+name, graphBody(t, fx.graphs[name]))
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			t.Fatalf("re-PUT %s = %d (%s)", name, resp.StatusCode, body)
		}
	}
	if got := fx.gw.met.replication.With("reconciled").Value() - before; got != int64(len(names)) {
		t.Errorf("re-uploads reconciled %d secondaries, want %d", got, len(names))
	}

	// ---- Chaos: arm the injector on node 0 and drive the workload. ----
	inj := faults.New(faults.Spec{
		Seed:       seed,
		Error:      0.08,
		Throttle:   0.04,
		Unavail:    0.05,
		Reset:      0.05,
		Partial:    0.04,
		Latency:    200 * time.Microsecond,
		LatencyP:   0.2,
		RetryAfter: time.Millisecond,
	})
	fx.servers[0].SetFaults(inj)

	rng := rand.New(rand.NewSource(seed))
	var jobIDs []string
	clientFailures := 0
	const ops = 200
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // reference solve, the bread and butter
			name := names[rng.Intn(len(names))]
			k := 1 + rng.Intn(8)
			url := fmt.Sprintf("%s/v1/solve?variant=independent&k=%d", gwURL, k)
			resp, _ := doGW(t, client, http.MethodPost, url, []byte(`{"graph_ref":"`+name+`"}`))
			if resp.StatusCode != http.StatusOK {
				clientFailures++
			}
		case 5: // graph download through the gateway
			name := names[rng.Intn(len(names))]
			resp, _ := doGW(t, client, http.MethodGet, gwURL+"/v1/graphs/"+name, nil)
			if resp.StatusCode != http.StatusOK {
				clientFailures++
			}
		case 6: // cluster-wide graph listing
			resp, body := doGW(t, client, http.MethodGet, gwURL+"/v1/graphs", nil)
			if resp.StatusCode == http.StatusOK {
				var lb struct {
					Graphs []json.RawMessage `json:"graphs"`
				}
				if err := json.Unmarshal(body, &lb); err != nil {
					t.Errorf("graph listing is not JSON: %v", err)
				} else if len(lb.Graphs) != len(names) {
					t.Errorf("cluster listing has %d graphs, want %d (dedup across replicas)", len(lb.Graphs), len(names))
				}
			}
		case 7: // async job submission
			name := names[rng.Intn(len(names))]
			body := []byte(fmt.Sprintf(`{"graph_ref":%q,"variant":"independent","k":%d}`, name, 1+rng.Intn(8)))
			resp, rbody := doGW(t, client, http.MethodPost, gwURL+"/v1/jobs", body)
			if resp.StatusCode == http.StatusAccepted {
				var snap struct {
					ID string `json:"id"`
				}
				if json.Unmarshal(rbody, &snap) == nil && snap.ID != "" {
					jobIDs = append(jobIDs, snap.ID)
				}
			}
		case 8: // poll a known job (sticky job routing)
			if len(jobIDs) > 0 {
				id := jobIDs[rng.Intn(len(jobIDs))]
				resp, _ := doGW(t, client, http.MethodGet, gwURL+"/v1/jobs/"+id, nil)
				if resp.StatusCode != http.StatusOK {
					clientFailures++
				}
			}
		case 9: // merged job listing
			_, _ = doGW(t, client, http.MethodGet, gwURL+"/v1/jobs", nil)
		}
	}

	// ---- Reconciliation: stop injecting, then audit the books. ----
	fx.servers[0].SetFaults(nil)
	injected := inj.TotalFaults()
	failures := sumCounters(fx.gw.met.nodeFailures)
	failovers := sumCounters(fx.gw.met.failovers)
	giveUps := sumCounters(fx.gw.met.giveUps)
	if failures != injected {
		t.Errorf("failure accounting: node 0 injected %d faults (%s) but the gateway recorded %d failed attempts",
			injected, inj.CountsString(), failures)
	}
	if failures != failovers+giveUps {
		t.Errorf("failover accounting: %d failed attempts but %d failovers + %d give-ups",
			failures, failovers, giveUps)
	}
	// The whole point of R=2: one faulted replica must not surface to
	// clients except in the rare all-attempts-exhausted case.
	if maxTolerated := int(giveUps); clientFailures > maxTolerated {
		t.Errorf("clients saw %d failures but the gateway only gave up %d times", clientFailures, giveUps)
	}

	// ---- Differential oracle (faults off): the gateway and every ----
	// replica must answer the same ordered prefix as a fresh local solve.
	for _, name := range names {
		g := fx.graphs[name]
		replicas := fx.gw.Ring().Lookup(name, 2)
		for _, k := range []int{1, 3, 6} {
			want, err := prefcover.SolveContext(context.Background(), g,
				prefcover.Options{K: k, Lazy: true, Variant: prefcover.Independent})
			if err != nil {
				t.Fatal(err)
			}
			targets := append([]string{gwURL}, replicas...)
			var firstOrder []string
			for ti, base := range targets {
				url := fmt.Sprintf("%s/v1/solve?variant=independent&k=%d", base, k)
				resp, body := doGW(t, client, http.MethodPost, url, []byte(`{"graph_ref":"`+name+`"}`))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("oracle: solve %s k=%d via %s = %d (%s)", name, k, base, resp.StatusCode, body)
					continue
				}
				var got struct {
					Order []string  `json:"order"`
					Cover float64   `json:"cover"`
					Gains []float64 `json:"gains"`
				}
				if err := json.Unmarshal(body, &got); err != nil {
					t.Fatal(err)
				}
				if len(got.Order) != len(want.Order) {
					t.Errorf("oracle: %s k=%d via %s: %d items, fresh solve %d",
						name, k, base, len(got.Order), len(want.Order))
					continue
				}
				for i, v := range want.Order {
					if got.Order[i] != g.Label(v) {
						t.Errorf("oracle: %s k=%d via %s: order[%d] = %q, fresh solve %q",
							name, k, base, i, got.Order[i], g.Label(v))
					}
				}
				if ti == 0 {
					firstOrder = got.Order
				} else if strings.Join(firstOrder, "\x00") != strings.Join(got.Order, "\x00") {
					t.Errorf("oracle: %s k=%d: replica %s disagrees with the gateway: %v vs %v",
						name, k, base, got.Order, firstOrder)
				}
			}
		}
	}

	// ---- Drain/failover control plane under a live cluster. ----
	resp, body := doGW(t, client, http.MethodPost,
		gwURL+"/debug/cluster?action=drain&node="+urls[0], nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain node 0 = %d (%s)", resp.StatusCode, body)
	}
	var st struct {
		RingNodes []string `json:"ringNodes"`
	}
	if err := json.Unmarshal(body, &st); err != nil || len(st.RingNodes) != 2 {
		t.Fatalf("after drain: ring = %v (err %v), want 2 nodes", st.RingNodes, err)
	}
	// Every graph must still solve: placements recompute onto the two
	// surviving nodes and the gateway re-replicates on the next PUT.
	for _, name := range names {
		resp, _ := doGW(t, client, http.MethodPost,
			gwURL+"/v1/solve?variant=independent&k=3", []byte(`{"graph_ref":"`+name+`"}`))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("solve %s after drain = %d", name, resp.StatusCode)
		}
	}
	resp, body = doGW(t, client, http.MethodPost,
		gwURL+"/debug/cluster?action=undrain&node="+urls[0], nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain node 0 = %d (%s)", resp.StatusCode, body)
	}

	// ---- Teardown and leak check. ----
	fx.close()
	client.CloseIdleConnections()
	chaostest.CheckGoroutines(t, baseline)
}
